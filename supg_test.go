package supg_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"supg"
)

func TestRunRecallQuery(t *testing.T) {
	ds := supg.GenerateBeta(1, 50000, 0.01, 2)
	res, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), supg.Query{
		Kind:        supg.RecallQuery,
		Target:      0.9,
		Probability: 0.95,
		OracleLimit: 2000,
	}, supg.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleCalls > 2000 {
		t.Fatalf("oracle calls %d exceed limit", res.OracleCalls)
	}
	eval := supg.Evaluate(ds, res.Indices)
	if eval.Recall < 0.8 {
		t.Fatalf("recall %v implausible for a 90%% target", eval.Recall)
	}
}

func TestRunPrecisionQuery(t *testing.T) {
	ds := supg.GenerateBeta(2, 50000, 0.01, 2)
	res, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), supg.Query{
		Kind:        supg.PrecisionQuery,
		Target:      0.9,
		Probability: 0.95,
		OracleLimit: 2000,
	}, supg.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	eval := supg.Evaluate(ds, res.Indices)
	if eval.Precision < 0.8 {
		t.Fatalf("precision %v implausible for a 90%% target", eval.Precision)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	ds := supg.GenerateBeta(3, 20000, 0.01, 2)
	q := supg.Query{Kind: supg.RecallQuery, Target: 0.9, Probability: 0.95, OracleLimit: 1000}
	a, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q, supg.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q, supg.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau != b.Tau || len(a.Indices) != len(b.Indices) {
		t.Fatal("same seed should reproduce")
	}
	c, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q, supg.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau == c.Tau && len(a.Indices) == len(c.Indices) && a.OracleCalls == c.OracleCalls {
		t.Log("different seeds happened to coincide (unlikely but not fatal)")
	}
}

func TestRunMethodOptions(t *testing.T) {
	ds := supg.GenerateBeta(4, 20000, 0.01, 2)
	q := supg.Query{Kind: supg.RecallQuery, Target: 0.8, Probability: 0.95, OracleLimit: 1000}
	for _, m := range []supg.Method{supg.MethodSUPG, supg.MethodUniform, supg.MethodNoGuarantee} {
		if _, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q, supg.WithMethod(m)); err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
	}
}

func TestRunTuningOptions(t *testing.T) {
	ds := supg.GenerateBeta(5, 20000, 0.01, 2)
	q := supg.Query{Kind: supg.PrecisionQuery, Target: 0.8, Probability: 0.95, OracleLimit: 1000}
	_, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q,
		supg.WithSeed(9),
		supg.WithWeightExponent(0.7),
		supg.WithDefensiveMixing(0.2),
		supg.WithCandidateStride(50),
		supg.WithTwoStage(false),
		supg.WithCI(supg.CIBootstrap))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCIMethods(t *testing.T) {
	ds := supg.GenerateBeta(6, 20000, 0.05, 1)
	q := supg.Query{Kind: supg.RecallQuery, Target: 0.8, Probability: 0.95, OracleLimit: 1000}
	for _, ci := range []supg.CIMethod{supg.CINormal, supg.CIHoeffding, supg.CIBootstrap} {
		if _, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q, supg.WithCI(ci)); err != nil {
			t.Fatalf("CI %v: %v", ci, err)
		}
	}
	// Clopper-Pearson applies to uniform sampling.
	if _, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q,
		supg.WithMethod(supg.MethodUniform), supg.WithCI(supg.CIClopperPearson)); err != nil {
		t.Fatalf("CP with uniform: %v", err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	ds := supg.GenerateBeta(7, 5000, 1, 1)
	bad := []supg.Query{
		{Kind: supg.RecallQuery, Target: 0, Probability: 0.95, OracleLimit: 100},
		{Kind: supg.RecallQuery, Target: 0.9, Probability: 1.0, OracleLimit: 100},
		{Kind: supg.RecallQuery, Target: 0.9, Probability: 0.95, OracleLimit: 0},
		{Kind: supg.QueryKind(9), Target: 0.9, Probability: 0.95, OracleLimit: 100},
	}
	for i, q := range bad {
		if _, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), q); err == nil {
			t.Errorf("query %d should be rejected", i)
		}
	}
}

func TestRunJoint(t *testing.T) {
	ds := supg.GenerateBeta(8, 30000, 0.01, 2)
	res, err := supg.RunJoint(ds.Scores(), supg.SimulatedOracle(ds), supg.JointQuery{
		RecallTarget:    0.8,
		PrecisionTarget: 0.9,
		Probability:     0.95,
		StageBudget:     1500,
	}, supg.WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	eval := supg.Evaluate(ds, res.Indices)
	if eval.Precision != 1 {
		t.Fatalf("joint precision %v, want 1 (verified positives only)", eval.Precision)
	}
	if eval.Recall < 0.8 {
		t.Fatalf("joint recall %v", eval.Recall)
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := supg.NewDataset("x", []float64{2}, []bool{true}); err == nil {
		t.Error("invalid dataset accepted")
	}
	d, err := supg.NewDataset("x", []float64{0.5, 0.7}, []bool{false, true})
	if err != nil || d.Len() != 2 {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestDatasetCSVFacade(t *testing.T) {
	d := supg.GenerateBeta(9, 500, 1, 1)
	var buf bytes.Buffer
	if err := supg.WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := supg.ReadDatasetCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.PositiveCount() != d.PositiveCount() {
		t.Fatal("CSV roundtrip mismatch")
	}
}

func TestEngineFacade(t *testing.T) {
	ds := supg.GenerateBeta(10, 20000, 0.01, 2)
	eng := supg.NewEngine(3)
	eng.RegisterDatasetDefaults("tbl", ds)
	res, err := eng.Execute(`
		SELECT * FROM tbl
		WHERE tbl_oracle(x) = true
		ORACLE LIMIT 800
		USING tbl_proxy(x)
		RECALL TARGET 85%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleCalls > 800 {
		t.Fatalf("budget exceeded: %d", res.OracleCalls)
	}
	if !strings.Contains(res.Plan.SourceText, "RECALL TARGET") {
		t.Error("plan source text missing")
	}
}

func TestOracleFuncErrorsPropagate(t *testing.T) {
	ds := supg.GenerateBeta(11, 5000, 1, 1)
	boom := errors.New("labeler offline")
	orc := supg.OracleFunc(func(i int) (bool, error) { return false, boom })
	_, err := supg.Run(ds.Scores(), orc, supg.Query{
		Kind: supg.RecallQuery, Target: 0.9, Probability: 0.95, OracleLimit: 100,
	})
	if err == nil || !strings.Contains(err.Error(), "labeler offline") {
		t.Fatalf("oracle error lost: %v", err)
	}
}

func TestRunMulti(t *testing.T) {
	ds := supg.GenerateBeta(12, 30000, 0.05, 1)
	// Two noisy views of the same proxy.
	cols := make([][]float64, 2)
	for c := range cols {
		cols[c] = make([]float64, ds.Len())
		copy(cols[c], ds.Scores())
	}
	q := supg.Query{Kind: supg.RecallQuery, Target: 0.85, Probability: 0.95, OracleLimit: 1500}
	for _, fusion := range []supg.Fusion{supg.FuseMean, supg.FuseMax, supg.FuseLogistic} {
		res, err := supg.RunMulti(cols, supg.SimulatedOracle(ds), q, fusion, supg.WithSeed(13))
		if err != nil {
			t.Fatalf("%v: %v", fusion, err)
		}
		if res.OracleCalls > q.OracleLimit {
			t.Fatalf("%v: budget exceeded (%d)", fusion, res.OracleCalls)
		}
		eval := supg.Evaluate(ds, res.Indices)
		if eval.Recall < 0.7 {
			t.Fatalf("%v: recall %v implausible", fusion, eval.Recall)
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	ds := supg.GenerateBeta(13, 2000, 1, 1)
	q := supg.Query{Kind: supg.RecallQuery, Target: 0, Probability: 0.95, OracleLimit: 100}
	if _, err := supg.RunMulti([][]float64{ds.Scores()}, supg.SimulatedOracle(ds), q, supg.FuseMean); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestQueryKindString(t *testing.T) {
	if supg.RecallQuery.String() != "recall" || supg.PrecisionQuery.String() != "precision" {
		t.Error("QueryKind strings")
	}
}
