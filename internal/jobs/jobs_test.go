package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"supg/internal/metrics"
)

// waitState polls until the job reaches a terminal-or-wanted state.
func waitState(t *testing.T, j *Job, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := j.Snapshot()
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() && snap.State != want {
			t.Fatalf("job %s reached %s, want %s (err %q)", j.ID(), snap.State, want, snap.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.Snapshot().State)
	return Snapshot{}
}

func TestJobLifecycleDone(t *testing.T) {
	var c metrics.Counters
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		progress(7)
		return fmt.Sprintf("ran %v", payload), nil
	}, Config{Workers: 2, Counters: &c})
	defer m.Shutdown(context.Background())

	j, err := m.Submit("q1")
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, j, StateDone)
	if snap.Result != "ran q1" || snap.OracleCalls != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.SubmittedAt.IsZero() || snap.StartedAt.IsZero() || snap.FinishedAt.IsZero() {
		t.Errorf("timestamps missing: %+v", snap)
	}
	cs := c.Snapshot()
	if cs.JobsSubmitted != 1 || cs.JobsDone != 1 {
		t.Errorf("counters = %+v", cs)
	}
}

func TestJobLifecycleFailed(t *testing.T) {
	boom := errors.New("boom")
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		return nil, boom
	}, Config{Workers: 1})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(nil)
	snap := waitState(t, j, StateFailed)
	if snap.Error != "boom" || snap.Result != nil {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCancelRunningJob(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		for i := 0; ; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			calls.Add(1)
			progress(i + 1)
			time.Sleep(time.Millisecond)
		}
	}, Config{Workers: 1})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(nil)
	waitState(t, j, StateRunning)
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if changed, err := m.Cancel(j.ID()); err != nil || !changed {
		t.Fatalf("Cancel = %v, %v", changed, err)
	}
	snap := waitState(t, j, StateCancelled)
	settled := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != settled {
		t.Errorf("work continued after cancellation: %d -> %d", settled, calls.Load())
	}
	if snap.OracleCalls == 0 {
		t.Errorf("progress not reported before cancel: %+v", snap)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		<-release
		return nil, nil
	}, Config{Workers: 1})
	defer func() {
		close(release)
		m.Shutdown(context.Background())
	}()

	blocker, _ := m.Submit("blocker")
	waitState(t, blocker, StateRunning)
	queued, _ := m.Submit("queued")
	if changed, err := m.Cancel(queued.ID()); err != nil || !changed {
		t.Fatalf("Cancel = %v, %v", changed, err)
	}
	snap := queued.Snapshot()
	if snap.State != StateCancelled {
		t.Errorf("queued job state = %s, want cancelled", snap.State)
	}
	// Cancelling a finished job changes nothing.
	if changed, err := m.Cancel(queued.ID()); err != nil || changed {
		t.Errorf("second Cancel = %v, %v", changed, err)
	}
}

func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		<-release
		return nil, nil
	}, Config{Workers: 1, QueueDepth: 2})
	defer func() {
		close(release)
		m.Shutdown(context.Background())
	}()

	// One running (after dequeue) plus two queued fills the depth-2
	// queue; submit until full, then expect ErrQueueFull.
	var err error
	for i := 0; i < 5; i++ {
		if _, err = m.Submit(i); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestListNewestFirst(t *testing.T) {
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		return nil, nil
	}, Config{Workers: 1})
	defer m.Shutdown(context.Background())

	a, _ := m.Submit("a")
	b, _ := m.Submit("b")
	waitState(t, a, StateDone)
	waitState(t, b, StateDone)
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("List len = %d", len(list))
	}
	if list[0].ID != b.ID() || list[1].ID != a.ID() {
		t.Errorf("order = %s, %s; want newest first", list[0].ID, list[1].ID)
	}
}

func TestRemove(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		<-release
		return nil, nil
	}, Config{Workers: 1})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(nil)
	waitState(t, j, StateRunning)
	if err := m.Remove(j.ID()); err == nil {
		t.Error("removing a running job should fail")
	}
	close(release)
	waitState(t, j, StateDone)
	if err := m.Remove(j.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(j.ID()); ok {
		t.Error("job still present after Remove")
	}
	if err := m.Remove(j.ID()); err == nil {
		t.Error("removing an unknown job should fail")
	}
}

func TestGCRetention(t *testing.T) {
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		return nil, nil
	}, Config{Workers: 1, Retention: 20 * time.Millisecond})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(nil)
	waitState(t, j, StateDone)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := m.Get(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never garbage-collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGCMaxFinished(t *testing.T) {
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		return nil, nil
	}, Config{Workers: 2, Retention: time.Hour, MaxFinished: 3})
	defer m.Shutdown(context.Background())

	var last *Job
	for i := 0; i < 8; i++ {
		j, err := m.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		last = j
	}
	m.gc(time.Now())
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("kept %d finished jobs, want 3", len(list))
	}
	if list[0].ID != last.ID() {
		t.Errorf("newest job evicted: %s", list[0].ID)
	}
}

func TestShutdownDrains(t *testing.T) {
	var ran atomic.Int64
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		time.Sleep(5 * time.Millisecond)
		ran.Add(1)
		return nil, nil
	}, Config{Workers: 2})

	jobs := make([]*Job, 6)
	for i := range jobs {
		jobs[i], _ = m.Submit(i)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != int64(len(jobs)) {
		t.Errorf("drained %d jobs, want %d", ran.Load(), len(jobs))
	}
	for _, j := range jobs {
		if s := j.Snapshot().State; s != StateDone {
			t.Errorf("job %s state %s after drain", j.ID(), s)
		}
	}
	if _, err := m.Submit(nil); !errors.Is(err, ErrShutdown) {
		t.Errorf("Submit after shutdown = %v", err)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

func TestConcurrentShutdownWaitsForDrain(t *testing.T) {
	var ran atomic.Int64
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		time.Sleep(20 * time.Millisecond)
		ran.Add(1)
		return nil, nil
	}, Config{Workers: 1})

	j, _ := m.Submit(nil)
	waitState(t, j, StateRunning)

	// Both callers must block until the in-flight job finishes; the
	// second must not return early just because shutdown already began.
	results := make(chan int64, 2)
	for i := 0; i < 2; i++ {
		go func() {
			m.Shutdown(context.Background())
			results <- ran.Load()
		}()
	}
	for i := 0; i < 2; i++ {
		if got := <-results; got != 1 {
			t.Errorf("Shutdown returned before drain completed (ran=%d)", got)
		}
	}
}

func TestShutdownDeadlineAbortsJobs(t *testing.T) {
	m := NewManager(func(ctx context.Context, payload any, progress func(int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, Config{Workers: 1})

	j, _ := m.Submit(nil)
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if s := j.Snapshot().State; s != StateCancelled {
		t.Errorf("job state = %s after forced shutdown", s)
	}
}
