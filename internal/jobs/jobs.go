// Package jobs provides the asynchronous job subsystem: a manager with
// a bounded worker pool and a full job lifecycle — submit → queued →
// running → done/failed/cancelled — with context-based cancellation,
// progress reporting of oracle calls consumed, and retention-based
// garbage collection of finished jobs.
//
// The manager is generic over the work it runs: a Runner callback
// executes one job under a context and reports progress. The server
// plugs in an engine query executor; tests plug in stubs. This keeps
// the lifecycle machinery independent of query semantics and reusable
// for future workloads (dataset imports, experiment sweeps).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"supg/internal/metrics"
)

// State is a job lifecycle state.
type State string

// Job lifecycle states. Queued and Running are active; Done, Failed,
// and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Runner executes one job's payload under ctx. It should honor ctx
// promptly (the engine's oracle layer checks it on every uncached
// call) and report cumulative oracle consumption through progress.
// The returned value becomes the job's Result.
type Runner func(ctx context.Context, payload any, progress func(oracleCalls int)) (any, error)

// Config tunes a Manager. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 256); Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// Retention is how long finished jobs remain queryable before GC
	// (default 15 minutes).
	Retention time.Duration
	// MaxFinished caps the number of finished jobs kept regardless of
	// age (default 1024); the oldest are evicted first.
	MaxFinished int
	// Counters, when non-nil, records job lifecycle transitions.
	Counters *metrics.Counters
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 1024
	}
	return c
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrShutdown is returned by Submit after Shutdown has begun.
var ErrShutdown = errors.New("jobs: manager shut down")

// Job is one unit of asynchronous work. All fields are private; read
// them through Snapshot.
type Job struct {
	id      string
	payload any

	// oracleCalls is written by the runner's progress hook, possibly
	// from several dispatcher goroutines, so it lives outside mu.
	oracleCalls atomic.Int64

	mu        sync.Mutex
	state     State
	err       string
	result    any
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID          string
	State       State
	Error       string
	OracleCalls int
	SubmittedAt time.Time
	StartedAt   time.Time // zero until the job starts
	FinishedAt  time.Time // zero until the job finishes
	Payload     any
	Result      any // non-nil only when State == StateDone
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:          j.id,
		State:       j.state,
		Error:       j.err,
		OracleCalls: int(j.oracleCalls.Load()),
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Payload:     j.payload,
		Result:      j.result,
	}
}

// Manager owns the worker pool and the job table.
type Manager struct {
	cfg    Config
	runner Runner

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue   chan *Job
	workers sync.WaitGroup

	gcStop chan struct{}
	gcDone chan struct{}
	// drainDone closes once every worker has exited and GC has stopped;
	// concurrent Shutdown callers all wait on it.
	drainDone chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int64
	closed bool
}

// NewManager starts a manager with cfg.Workers workers ready to run
// jobs through runner. Call Shutdown to stop it.
func NewManager(runner Runner, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		runner:     runner,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		gcStop:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		drainDone:  make(chan struct{}),
		jobs:       make(map[string]*Job),
	}
	m.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	go m.gcLoop()
	return m
}

// Submit enqueues a new job for the payload and returns it in
// StateQueued. It fails with ErrQueueFull when the pending queue is at
// capacity and ErrShutdown after Shutdown has begun.
func (m *Manager) Submit(payload any) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShutdown
	}
	m.seq++
	j := &Job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		payload:   payload,
		state:     StateQueued,
		submitted: time.Now(),
	}
	// The enqueue happens under m.mu so it cannot race Shutdown's
	// close(m.queue): Shutdown flips closed under the same lock before
	// closing the channel. The send never blocks (select/default).
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.cfg.Counters.JobSubmitted()
		return j, nil
	default:
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns a snapshot of every known job, newest first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.Snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.After(out[b].SubmittedAt)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Cancel stops the job: a queued job moves straight to StateCancelled
// (a worker that later dequeues it skips it), a running job has its
// context cancelled and reaches StateCancelled when its runner returns.
// Cancelling a finished job is a no-op. The bool reports whether the
// call changed anything.
func (m *Manager) Cancel(id string) (bool, error) {
	j, ok := m.Get(id)
	if !ok {
		return false, fmt.Errorf("jobs: unknown job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = "cancelled before start"
		j.finished = time.Now()
		m.cfg.Counters.JobCancelled()
		return true, nil
	case StateRunning:
		j.cancel() // worker observes ctx and finalizes the state
		return true, nil
	default:
		return false, nil
	}
}

// Remove deletes a finished job's record. Active jobs cannot be
// removed — cancel them first.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", id)
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("jobs: job %q is %s; cancel it before removing", id, j.state)
	}
	delete(m.jobs, id)
	return nil
}

// Shutdown stops accepting jobs and drains the pool: queued and
// in-flight jobs run to completion unless ctx expires first, at which
// point every remaining job is cancelled and Shutdown returns ctx's
// error once the workers exit. Concurrent and repeated calls all block
// until the drain completes (whichever caller's ctx expires first
// forces the cancellation).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	m.mu.Unlock()

	if first {
		close(m.queue) // workers drain the backlog then exit
		close(m.gcStop)
		go func() {
			m.workers.Wait()
			m.baseCancel()
			<-m.gcDone
			close(m.drainDone)
		}()
	}

	select {
	case <-m.drainDone:
		return nil
	case <-ctx.Done():
		m.baseCancel() // aborts running jobs; queued ones fail fast
		<-m.drainDone
		return ctx.Err()
	}
}

// worker runs queued jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job through the runner and finalizes its state.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	payload := j.payload
	j.mu.Unlock()
	defer cancel()

	result, err := m.runner(ctx, payload, func(n int) {
		// Progress reports may arrive out of order from concurrent
		// dispatcher goroutines; keep the maximum so the cumulative
		// count never regresses.
		for {
			cur := j.oracleCalls.Load()
			if int64(n) <= cur || j.oracleCalls.CompareAndSwap(cur, int64(n)) {
				return
			}
		}
	})

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		// A runner that finished its work keeps its result even if a
		// cancellation landed between completion and finalization — the
		// budget was spent either way.
		j.state = StateDone
		j.result = result
		m.cfg.Counters.JobDone()
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = err.Error()
		m.cfg.Counters.JobCancelled()
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.cfg.Counters.JobFailed()
	}
}

// gcLoop periodically evicts finished jobs past the retention window or
// beyond the finished-job cap.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	interval := m.cfg.Retention / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.gc(time.Now())
		case <-m.gcStop:
			return
		}
	}
}

// gc applies the retention policy at the given instant.
func (m *Manager) gc(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	type finished struct {
		id string
		at time.Time
	}
	var fin []finished
	for id, j := range m.jobs {
		j.mu.Lock()
		terminal, at := j.state.Terminal(), j.finished
		j.mu.Unlock()
		if !terminal {
			continue
		}
		if now.Sub(at) > m.cfg.Retention {
			delete(m.jobs, id)
			continue
		}
		fin = append(fin, finished{id, at})
	}
	if extra := len(fin) - m.cfg.MaxFinished; extra > 0 {
		sort.Slice(fin, func(a, b int) bool { return fin[a].at.Before(fin[b].at) })
		for _, f := range fin[:extra] {
			delete(m.jobs, f.id)
		}
	}
}
