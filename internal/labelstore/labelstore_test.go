package labelstore

import (
	"sync"
	"testing"

	"supg/internal/metrics"
)

func TestGetPutRoundTrip(t *testing.T) {
	s := New(Options{})
	c := s.Cache("video", "video_oracle")
	if _, ok := c.Get(7); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(7, true)
	c.Put(8, false)
	if v, ok := c.Get(7); !ok || !v {
		t.Errorf("Get(7) = %v, %v after Put(7, true)", v, ok)
	}
	if v, ok := c.Get(8); !ok || v {
		t.Errorf("Get(8) = %v, %v after Put(8, false)", v, ok)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	// Re-putting an existing record must not double-count it.
	c.Put(7, true)
	if s.Len() != 2 {
		t.Errorf("Len after duplicate Put = %d, want 2", s.Len())
	}
}

func TestCacheHandleIsSharedPerKey(t *testing.T) {
	s := New(Options{})
	a := s.Cache("t", "o")
	b := s.Cache("t", "o")
	if a != b {
		t.Fatal("same (table, oracle) pair returned distinct caches")
	}
	if s.Cache("t", "other") == a {
		t.Fatal("different oracle shares a cache")
	}
	if s.Cache("other", "o") == a {
		t.Fatal("different table shares a cache")
	}
}

func TestNilStoreServesMisses(t *testing.T) {
	var s *Store
	if c := s.Cache("t", "o"); c != nil {
		t.Fatal("nil store returned a cache")
	}
	if n := s.InvalidateTable("t"); n != 0 {
		t.Errorf("nil store invalidated %d caches", n)
	}
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Error("nil store reported state")
	}
	s.WithCounters(nil) // must not panic
}

func TestEvictionBoundsEntries(t *testing.T) {
	// Budget for exactly 10 entries, one shard so FIFO order is global.
	s := New(Options{MaxBytes: 10 * entryBytes, Shards: 1})
	c := s.Cache("t", "o")
	for i := 0; i < 100; i++ {
		c.Put(i, i%2 == 0)
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want bounded at 10", got)
	}
	st := s.Stats()
	if st.Evictions != 90 {
		t.Errorf("Evictions = %d, want 90", st.Evictions)
	}
	// FIFO: the oldest 90 are gone, the newest 10 remain.
	for i := 0; i < 90; i++ {
		if _, ok := c.Get(i); ok {
			t.Fatalf("evicted record %d still cached", i)
		}
	}
	for i := 90; i < 100; i++ {
		if v, ok := c.Get(i); !ok || v != (i%2 == 0) {
			t.Fatalf("retained record %d = %v, %v", i, v, ok)
		}
	}
}

func TestInvalidateTableKillsLiveHandles(t *testing.T) {
	s := New(Options{})
	c := s.Cache("t", "o")
	other := s.Cache("u", "o2")
	c.Put(1, true)
	other.Put(1, true)

	if n := s.InvalidateTable("t"); n != 1 {
		t.Fatalf("InvalidateTable dropped %d caches, want 1", n)
	}
	// The old handle must stop serving (stale labels) and stop
	// accepting writes (pollution of the replacement cache).
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated handle served a stale label")
	}
	c.Put(2, true)
	if _, ok := c.Get(2); ok {
		t.Fatal("invalidated handle accepted a write")
	}
	// A fresh handle for the same key starts cold.
	fresh := s.Cache("t", "o")
	if fresh == c {
		t.Fatal("Cache returned the killed handle")
	}
	if _, ok := fresh.Get(1); ok {
		t.Fatal("replacement cache inherited a stale label")
	}
	// Unrelated caches survive.
	if v, ok := other.Get(1); !ok || !v {
		t.Error("unrelated cache was invalidated")
	}
	if s.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", s.Stats().Invalidations)
	}
}

func TestInvalidateOracleMatchesAcrossTables(t *testing.T) {
	s := New(Options{})
	s.Cache("a", "shared_oracle").Put(1, true)
	s.Cache("b", "shared_oracle").Put(1, true)
	s.Cache("a", "other_oracle").Put(1, true)
	if n := s.InvalidateOracle("shared_oracle"); n != 2 {
		t.Fatalf("InvalidateOracle dropped %d caches, want 2", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 surviving entry", s.Len())
	}
}

func TestStatsAndCountersMirror(t *testing.T) {
	var counters metrics.Counters
	s := New(Options{MaxBytes: 2 * entryBytes, Shards: 1}).WithCounters(&counters)
	c := s.Cache("t", "o")
	c.Put(1, true)
	c.Get(1) // hit
	c.Get(2) // miss
	c.Put(2, true)
	c.Put(3, true) // evicts 1
	s.InvalidateTable("t")

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 || st.Invalidations != 1 {
		t.Errorf("Stats = %+v, want 1 of each", st)
	}
	if st.Entries != 0 || st.Caches != 0 {
		t.Errorf("post-invalidation Stats = %+v, want empty", st)
	}
	snap := counters.Snapshot()
	if snap.LabelCacheHits != 1 || snap.LabelCacheMisses != 1 ||
		snap.LabelCacheEvictions != 1 || snap.LabelCacheInvalidations != 1 {
		t.Errorf("mirrored counters = %+v, want 1 of each label-cache field", snap)
	}
}

// TestConcurrentAccess exercises the sharded locking under -race:
// parallel readers, writers, and invalidators on overlapping keys.
func TestConcurrentAccess(t *testing.T) {
	s := New(Options{MaxBytes: 1000 * entryBytes, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Cache("t", "o")
			for i := 0; i < 2000; i++ {
				c.Put(i, i%3 == 0)
				if v, ok := c.Get(i); ok && v != (i%3 == 0) {
					t.Errorf("worker %d: wrong label for %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.InvalidateTable("t")
			// Labels are a pure function of the index; re-seeding after
			// invalidation must agree with what the workers write.
			s.Cache("t", "o").Put(i, i%3 == 0)
		}
	}()
	wg.Wait()
	if s.Len() > 1000 {
		t.Errorf("Len = %d exceeds the configured bound", s.Len())
	}
	// With all writers stopped, invalidating everything must drain the
	// entry accounting to exactly zero — a Put racing a kill may
	// neither leak nor double-subtract entries.
	s.InvalidateTable("t")
	if got := s.Len(); got != 0 {
		t.Errorf("Len = %d after full invalidation, want 0 (phantom entries)", got)
	}
}

// TestNewCacheDisplacesOldWorkload: when one (table, oracle) pair has
// filled the store-wide budget, inserts for a new pair must evict the
// old workload's entries rather than self-evicting their own fresh
// entries (which would pin the hit rate of every new workload at 0).
func TestNewCacheDisplacesOldWorkload(t *testing.T) {
	s := New(Options{MaxBytes: 50 * entryBytes, Shards: 2})
	old := s.Cache("old", "o")
	for i := 0; i < 50; i++ {
		old.Put(i, true)
	}
	fresh := s.Cache("new", "o")
	for i := 0; i < 20; i++ {
		fresh.Put(i, true)
	}
	hits := 0
	for i := 0; i < 20; i++ {
		if _, ok := fresh.Get(i); ok {
			hits++
		}
	}
	if hits != 20 {
		t.Errorf("new workload retained %d/20 entries — self-evicted while the old cache held the budget", hits)
	}
	if s.Len() > 50 {
		t.Errorf("Len = %d exceeds the budget", s.Len())
	}
	if s.Stats().Evictions < 20 {
		t.Errorf("Evictions = %d, want >= 20 from the old workload", s.Stats().Evictions)
	}
}
