package labelstore

import (
	"os"
	"path/filepath"
	"testing"

	"supg/internal/metrics"
)

func walStore(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")

	s1 := walStore(t, path)
	c1 := s1.Cache("video", "oracle")
	c2 := s1.Cache("audio", "oracle")
	for i := 0; i < 100; i++ {
		c1.Put(i, i%3 == 0)
	}
	c2.Put(7, true)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := walStore(t, path)
	if got := s2.Len(); got != 101 {
		t.Fatalf("replayed entries = %d, want 101", got)
	}
	st := s2.Stats()
	if st.WALReplayed != 101 {
		t.Fatalf("wal_replayed = %d, want 101", st.WALReplayed)
	}
	if st.WALRecords == 0 {
		t.Fatal("wal_records = 0 after replay")
	}
	r1 := s2.Cache("video", "oracle")
	for i := 0; i < 100; i++ {
		v, ok := r1.Get(i)
		if !ok || v != (i%3 == 0) {
			t.Fatalf("record %d: got (%v, %v), want (%v, true)", i, v, ok, i%3 == 0)
		}
	}
	if v, ok := s2.Cache("audio", "oracle").Get(7); !ok || !v {
		t.Fatalf("audio record 7: (%v, %v)", v, ok)
	}
}

func TestWALCountersAttach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s1 := walStore(t, path)
	s1.Cache("t", "o").Put(1, true)
	s1.Cache("t", "o").Put(2, false)
	s1.Close()

	s2 := walStore(t, path)
	var c metrics.Counters
	s2.WithCounters(&c)
	snap := c.Snapshot()
	if snap.WALReplayed != 2 {
		t.Fatalf("wal_replayed counter = %d, want 2", snap.WALReplayed)
	}
	if snap.WALRecords == 0 {
		t.Fatal("wal_records counter = 0 after attach")
	}
	before := snap.WALRecords
	s2.Cache("t", "o").Put(3, true)
	if got := c.Snapshot().WALRecords; got != before+1 {
		t.Fatalf("wal_records after put = %d, want %d", got, before+1)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s1 := walStore(t, path)
	for i := 0; i < 10; i++ {
		s1.Cache("t", "o").Put(i, true)
	}
	s1.Close()

	// Simulate a crash mid-append: garbage half-frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	s2 := walStore(t, path)
	if got := s2.Len(); got != 10 {
		t.Fatalf("entries after torn tail = %d, want 10", got)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The truncated log accepts appends and replays them.
	s2.Cache("t", "o").Put(99, true)
	s2.Close()
	s3 := walStore(t, path)
	if got := s3.Len(); got != 11 {
		t.Fatalf("entries after append+reopen = %d, want 11", got)
	}
}

func TestWALCorruptFrameDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s1 := walStore(t, path)
	for i := 0; i < 10; i++ {
		s1.Cache("t", "o").Put(i, true)
	}
	s1.Close()

	// Flip a byte in the last frame's payload: CRC fails, the replay
	// keeps everything before it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := walStore(t, path)
	if got := s2.Len(); got != 9 {
		t.Fatalf("entries after corrupt last frame = %d, want 9", got)
	}
}

func TestWALTombstones(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s1 := walStore(t, path)
	s1.Cache("video", "a").Put(1, true)
	s1.Cache("video", "b").Put(2, true)
	s1.Cache("audio", "a").Put(3, true)
	if n := s1.InvalidateOracle("a"); n != 2 {
		t.Fatalf("invalidated %d caches, want 2", n)
	}
	// Labels bought after the tombstone, against the fresh cache, live.
	s1.Cache("video", "a").Put(4, true)
	s1.Close()

	s2 := walStore(t, path)
	if v, ok := s2.Cache("video", "b").Get(2); !ok || !v {
		t.Fatal("label of untouched oracle lost")
	}
	if _, ok := s2.Cache("video", "a").Get(1); ok {
		t.Fatal("tombstoned label resurrected")
	}
	if _, ok := s2.Cache("audio", "a").Get(3); ok {
		t.Fatal("tombstoned label resurrected (other table)")
	}
	if v, ok := s2.Cache("video", "a").Get(4); !ok || !v {
		t.Fatal("post-tombstone label lost")
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}

	// Table tombstones likewise survive restart.
	s2.InvalidateTable("video")
	s2.Close()
	s3 := walStore(t, path)
	if got := s3.Len(); got != 0 {
		t.Fatalf("entries after table tombstone = %d, want 0", got)
	}
}

func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s := walStore(t, path)
	for i := 0; i < 500; i++ {
		s.Cache("t", "o").Put(i, i%2 == 0)
	}
	s.InvalidateOracle("o") // all 500 labels now dead in the log
	for i := 0; i < 20; i++ {
		s.Cache("t", "o").Put(i, i%2 == 0)
	}
	recordsBefore := s.Stats().WALRecords
	if err := s.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	recordsAfter := s.Stats().WALRecords
	// 20 live labels + 1 cache def.
	if recordsAfter != 21 {
		t.Fatalf("records after compaction = %d, want 21 (before: %d)", recordsAfter, recordsBefore)
	}
	// Compacted log still accepts appends and replays correctly.
	s.Cache("t", "o").Put(900, true)
	s.Close()

	r := walStore(t, path)
	if got := r.Len(); got != 21 {
		t.Fatalf("entries after compact+reopen = %d, want 21", got)
	}
	for i := 0; i < 20; i++ {
		v, ok := r.Cache("t", "o").Get(i)
		if !ok || v != (i%2 == 0) {
			t.Fatalf("record %d: (%v, %v)", i, v, ok)
		}
	}
	if v, ok := r.Cache("t", "o").Get(900); !ok || !v {
		t.Fatal("post-compaction append lost")
	}
}

func TestWALAutoCompactOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s := walStore(t, path)
	// Far more dead than live frames, above the auto-compact floor.
	for i := 0; i < 2000; i++ {
		s.Cache("t", "o").Put(i, true)
	}
	s.InvalidateOracle("o")
	s.Cache("t", "o").Put(1, true)
	s.Close()

	r := walStore(t, path)
	if got := r.Stats().WALRecords; got != 2 {
		t.Fatalf("records after auto-compaction = %d, want 2 (def + 1 label)", got)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
}

func TestWALDisabledIsNoop(t *testing.T) {
	s := New(Options{})
	s.Cache("t", "o").Put(1, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALRecords != 0 || st.WALReplayed != 0 {
		t.Fatalf("WAL stats on WAL-less store: %+v", st)
	}
	// Nil store stays nil-safe through the new methods too.
	var nils *Store
	if err := nils.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nils.CompactWAL(); err != nil {
		t.Fatal(err)
	}
}

func TestWALOpenErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(Options{WALPath: dir}); err == nil {
		t.Fatal("opening a directory as WAL must fail")
	}
}

func TestWALConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	s := walStore(t, path)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			c := s.Cache("t", "o")
			for i := 0; i < 200; i++ {
				c.Put(g*200+i, (g+i)%2 == 0)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	s.Close()
	r := walStore(t, path)
	if got := r.Len(); got != 1600 {
		t.Fatalf("entries = %d, want 1600", got)
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 200; i++ {
			v, ok := r.Cache("t", "o").Get(g*200 + i)
			if !ok || v != ((g+i)%2 == 0) {
				t.Fatalf("record %d: (%v, %v)", g*200+i, v, ok)
			}
		}
	}
}
