package labelstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The write-ahead log makes paid oracle labels crash-durable: every
// label written through a Cache is appended (and fsync'd per the sync
// policy) to an append-only file, and Open replays the file into the
// in-memory shards on boot — a restarted server recovers every label
// it ever bought with zero oracle re-buys.
//
// Format: a sequence of CRC-framed records. Each frame is
//
//	[4-byte LE payload length][4-byte LE CRC32(payload)][payload]
//
// and the payload starts with a one-byte record type:
//
//	recCacheDef   assigns a numeric id to a (table, oracle) pair;
//	              labels reference the id instead of repeating strings
//	recLabel      one bought label: (cache id, record index, label)
//	recTombTable  invalidation tombstone: every cache of the table
//	              (and every earlier label of it) is dead
//	recTombOracle invalidation tombstone for an oracle UDF
//
// Replay applies records in order: tombstones kill the caches (and
// ids) defined before them, so labels bought against a superseded
// registration can never resurrect. A torn or corrupt tail — the
// expected shape of a crash mid-append — is truncated at the last
// whole frame and replay keeps everything before it.
const (
	recCacheDef   byte = 1
	recLabel      byte = 2
	recTombTable  byte = 3
	recTombOracle byte = 4
)

// walMaxFrame bounds a frame payload; anything larger is treated as
// corruption (the largest legitimate payload is a cache-def with two
// names).
const walMaxFrame = 1 << 20

// walCompactMinRecords is the auto-compaction floor: Open rewrites the
// log only when it holds more than this many frames and more than half
// of them are dead (tombstoned or superseded).
const walCompactMinRecords = 1024

// wal is the append side of the write-ahead log. All appends are
// serialized under mu; the store's in-memory insert happens first, so
// the log is an ordered journal of every label the memory tier
// accepted. Append failures are fail-stop: the first error disables
// further appends and surfaces from Close.
type wal struct {
	store *Store

	mu        sync.Mutex
	path      string
	f         *os.File
	w         *bufio.Writer
	syncEvery int
	unsynced  int
	records   int64
	ids       map[*Cache]uint64
	nextID    uint64
	err       error
	closed    bool
}

// openWAL opens (creating if absent) the log at path, replays it into
// s, truncates any torn tail, and returns the append handle plus the
// number of labels replayed.
func openWAL(s *Store, path string, syncEvery int) (*wal, int64, error) {
	if syncEvery <= 0 {
		syncEvery = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) //supg:atomiccommit-ok the WAL is the commit path: frames are CRC-framed and fsynced per sync policy, torn tails are truncated on replay
	if err != nil {
		return nil, 0, fmt.Errorf("labelstore: open wal: %w", err)
	}
	w := &wal{
		store:     s,
		path:      path,
		f:         f,
		syncEvery: syncEvery,
		ids:       make(map[*Cache]uint64),
		nextID:    1,
	}
	replayed, goodOff, err := w.replay()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	// A torn tail is the normal post-crash state: drop it and append
	// from the last whole frame.
	if fi, err := f.Stat(); err == nil && fi.Size() > goodOff {
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("labelstore: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("labelstore: seek wal: %w", err)
	}
	w.w = bufio.NewWriter(f)
	return w, replayed, nil
}

// replay reads every whole frame from the start of the file, applies
// it to the store (bypassing logging), and returns the number of label
// records applied plus the offset just past the last good frame.
func (w *wal) replay() (replayed int64, goodOff int64, err error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("labelstore: seek wal: %w", err)
	}
	var (
		r      = bufio.NewReader(w.f)
		hdr    [8]byte
		liveID = make(map[uint64]*Cache)
		defs   = make(map[uint64]Key)
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > walMaxFrame {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			break // corrupt payload
		}
		if !w.apply(payload, liveID, defs, &replayed) {
			break // structurally invalid record
		}
		goodOff += 8 + int64(n)
		w.records++
	}
	// Adopt the surviving id assignments for the append side, so new
	// labels of an already-defined cache need no fresh def record.
	for id, c := range liveID {
		if !c.dead.Load() {
			w.ids[c] = id
		}
		if id >= w.nextID {
			w.nextID = id + 1
		}
	}
	return replayed, goodOff, nil
}

// apply folds one replayed record into the store. Reports whether the
// record was structurally valid.
func (w *wal) apply(payload []byte, liveID map[uint64]*Cache, defs map[uint64]Key, replayed *int64) bool {
	s := w.store
	switch payload[0] {
	case recCacheDef:
		rest := payload[1:]
		id, rest, ok := readUvarint(rest)
		if !ok {
			return false
		}
		table, rest, ok := readString(rest)
		if !ok {
			return false
		}
		oracle, _, ok := readString(rest)
		if !ok {
			return false
		}
		defs[id] = Key{Table: table, Oracle: oracle}
		liveID[id] = s.Cache(table, oracle)
	case recLabel:
		rest := payload[1:]
		id, rest, ok := readUvarint(rest)
		if !ok {
			return false
		}
		idx, rest, ok := readUvarint(rest)
		if !ok || len(rest) != 1 {
			return false
		}
		if c := liveID[id]; c != nil {
			// A label referencing a tombstoned (dead) cache is silently
			// dropped by put's dead check — exactly the in-memory
			// semantics of a stale write. Duplicates (possible after a
			// compaction raced an insert) are dropped the same way.
			if c.put(int(idx), rest[0] != 0, false) {
				*replayed++
			}
		}
	case recTombTable:
		name, _, ok := readString(payload[1:])
		if !ok {
			return false
		}
		s.invalidateMatch(func(k Key) bool { return k.Table == name }, false)
	case recTombOracle:
		name, _, ok := readString(payload[1:])
		if !ok {
			return false
		}
		s.invalidateMatch(func(k Key) bool { return k.Oracle == name }, false)
	default:
		return false
	}
	return true
}

// appendLabel journals one freshly-bought label, writing the cache's
// def record first if this is its first label. Nil-safe.
func (w *wal) appendLabel(c *Cache, i int, v bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	// An insert that raced an invalidation may reach here after the
	// tombstone was journaled (kill sets dead before the tombstone
	// append). Logging it would resurrect the label under a fresh def on
	// replay, so it is dropped — matching the memory tier, where kill
	// clears the entry the racing insert produced.
	if c.dead.Load() {
		return
	}
	id, ok := w.ids[c]
	if !ok {
		id = w.nextID
		w.nextID++
		w.ids[c] = id
		var def []byte
		def = append(def, recCacheDef)
		def = binary.AppendUvarint(def, id)
		def = appendString(def, c.key.Table)
		def = appendString(def, c.key.Oracle)
		if err := w.appendFrameLocked(def); err != nil {
			w.err = err
			return
		}
	}
	var rec []byte
	rec = append(rec, recLabel)
	rec = binary.AppendUvarint(rec, id)
	rec = binary.AppendUvarint(rec, uint64(i))
	if v {
		rec = append(rec, 1)
	} else {
		rec = append(rec, 0)
	}
	if err := w.appendFrameLocked(rec); err != nil {
		w.err = err
	}
}

// appendTombstone journals an invalidation (kind is recTombTable or
// recTombOracle) and drops the id assignments of the caches it killed,
// so their memory is reclaimable and later labels of a re-created
// cache get a fresh def. Nil-safe.
func (w *wal) appendTombstone(kind byte, name string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for c := range w.ids {
		if c.dead.Load() {
			delete(w.ids, c)
		}
	}
	if w.err != nil || w.closed {
		return
	}
	var rec []byte
	rec = append(rec, kind)
	rec = appendString(rec, name)
	if err := w.appendFrameLocked(rec); err != nil {
		w.err = err
	}
}

// appendFrameLocked writes one CRC-framed record and applies the sync
// policy. Callers hold w.mu.
func (w *wal) appendFrameLocked(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("labelstore: wal append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("labelstore: wal append: %w", err)
	}
	w.records++
	w.unsynced++
	w.store.counters.Load().WALRecords(1)
	if w.unsynced >= w.syncEvery {
		if err := w.w.Flush(); err != nil {
			return fmt.Errorf("labelstore: wal flush: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("labelstore: wal sync: %w", err)
		}
		w.unsynced = 0
	}
	return nil
}

// compactLocked rewrites the log to hold only the live labels: a fresh
// def per live cache plus its current entries, written to a temp file
// that atomically replaces the old log. Callers hold w.mu (appends are
// blocked for the duration; in-memory reads and writes are not — a
// label inserted mid-compaction is either snapshotted into the new
// file or journaled right after it, possibly both, and replay is
// idempotent).
func (w *wal) compactLocked() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("labelstore: wal closed")
	}
	s := w.store
	s.mu.RLock()
	caches := make([]*Cache, 0, len(s.caches))
	for _, c := range s.caches {
		caches = append(caches, c)
	}
	s.mu.RUnlock()

	tmpPath := w.path + ".compact"
	tmp, err := os.Create(tmpPath) //supg:atomiccommit-ok compaction's tmp file; fsynced below, then renamed over the WAL
	if err != nil {
		return fmt.Errorf("labelstore: wal compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	var (
		records int64
		ids     = make(map[*Cache]uint64)
		nextID  = uint64(1)
	)
	writeFrame := func(payload []byte) error {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		records++
		return err
	}
	for _, c := range caches {
		if c.dead.Load() {
			continue
		}
		var id uint64
		for si := range c.shards {
			sh := &c.shards[si]
			sh.mu.Lock()
			snap := make(map[int]bool, len(sh.m))
			for k, v := range sh.m {
				snap[k] = v
			}
			sh.mu.Unlock()
			for k, v := range snap {
				if id == 0 {
					id = nextID
					nextID++
					var def []byte
					def = append(def, recCacheDef)
					def = binary.AppendUvarint(def, id)
					def = appendString(def, c.key.Table)
					def = appendString(def, c.key.Oracle)
					if err := writeFrame(def); err != nil {
						tmp.Close()
						return fmt.Errorf("labelstore: wal compact: %w", err)
					}
				}
				var rec []byte
				rec = append(rec, recLabel)
				rec = binary.AppendUvarint(rec, id)
				rec = binary.AppendUvarint(rec, uint64(k))
				if v {
					rec = append(rec, 1)
				} else {
					rec = append(rec, 0)
				}
				if err := writeFrame(rec); err != nil {
					tmp.Close()
					return fmt.Errorf("labelstore: wal compact: %w", err)
				}
			}
		}
		if id != 0 {
			ids[c] = id
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("labelstore: wal compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("labelstore: wal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("labelstore: wal compact: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil { //supg:atomiccommit-ok this IS the compaction commit point: tmp was fsynced above and the directory is synced after
		return fmt.Errorf("labelstore: wal compact: %w", err)
	}
	// Swap the append side over to the fresh file.
	old := w.f
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("labelstore: wal compact reopen: %w", err)
	}
	old.Close()
	w.f = f
	w.w = bufio.NewWriter(f)
	w.unsynced = 0
	w.records = records
	w.ids = ids
	w.nextID = nextID
	return nil
}

// close flushes, syncs, and closes the log. Idempotent; returns the
// first append error if one was recorded.
func (w *wal) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err == nil {
		if err := w.w.Flush(); err != nil {
			w.err = fmt.Errorf("labelstore: wal flush: %w", err)
		} else if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("labelstore: wal sync: %w", err)
		}
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("labelstore: wal close: %w", err)
	}
	return w.err
}

// recordCount returns the number of frames currently in the file.
func (w *wal) recordCount() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// appendString writes a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readUvarint consumes a uvarint from b.
func readUvarint(b []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// readString consumes a length-prefixed string from b.
func readString(b []byte) (s string, rest []byte, ok bool) {
	n, b, ok := readUvarint(b)
	if !ok || uint64(len(b)) < n {
		return "", nil, false
	}
	return string(b[:n]), b[n:], true
}
