// Package labelstore is the cross-query oracle label store: a
// concurrency-safe, bounded cache of ground-truth labels keyed by
// (table, oracle UDF) and record index. The paper's premise is that
// oracle calls are orders of magnitude more expensive than proxy
// evaluations, and labels are a pure function of the record index, so
// once a label has been bought by any query it can be reused by every
// later query of the same (table, oracle) pair — repeated queries,
// sensitivity sweeps, and async jobs stop re-buying ground truth the
// system already paid for.
//
// Reuse changes only cost, never results: in the default charged mode
// the budget wrapper still charges a budget unit for a store hit, so a
// warm query's Indices/Tau/oracle-call trace is byte-identical to a
// cold run; the opt-in reuse-free mode makes hits free, stretching the
// effective sample size (see oracle.Budgeted.WithStore).
//
// The store is bounded by an approximate byte budget with FIFO
// eviction, sharded to keep concurrent queries off a single lock, and
// invalidated (never silently reused) when a table or oracle UDF is
// re-registered. Appends extend a table without changing existing
// record ids or labels, so append leaves the store intact by design.
package labelstore

import (
	"sync"
	"sync/atomic"

	"supg/internal/metrics"
)

// DefaultMaxBytes is the store-wide byte budget when Options.MaxBytes
// is zero.
const DefaultMaxBytes = 64 << 20

// DefaultShards is the per-cache shard count when Options.Shards is
// zero.
const DefaultShards = 16

// entryBytes is the approximate in-memory footprint of one cached
// label: a map[int]bool entry (bucket share, key, value, padding)
// plus its FIFO queue slot. Deliberately conservative so the
// configured byte budget is an upper bound in practice.
const entryBytes = 48

// Options tune a Store. The zero value selects the defaults above.
type Options struct {
	// MaxBytes bounds the approximate total memory of all cached labels
	// across every (table, oracle) pair (0 = DefaultMaxBytes). When the
	// bound is exceeded the inserting shard evicts its oldest entries
	// (FIFO) until the store fits again.
	MaxBytes int64
	// Shards is the number of independently-locked segments per cache
	// (0 = DefaultShards; values are rounded up to a power of two).
	Shards int
	// WALPath, when non-empty, makes the store crash-durable: every
	// label written through a Cache is appended to the write-ahead log
	// at this path, and Open replays the log into memory on boot so a
	// restarted process recovers every label it paid for with zero
	// oracle re-buys. See wal.go for the on-disk format.
	WALPath string
	// WALSyncEvery is the fsync cadence: the log is flushed and synced
	// after every N appended records (0 or 1 = every record, the
	// durable default; larger values trade the tail of a crash for
	// throughput).
	WALSyncEvery int
}

// Key identifies one cache: labels are valid only for a specific
// (table registration, oracle UDF registration) pair.
type Key struct {
	Table  string
	Oracle string
}

// Store is the top-level label store: a registry of per-(table,
// oracle) caches sharing one byte budget and one set of counters. All
// methods are goroutine-safe and nil-safe (a nil *Store serves only
// misses and drops writes), so callers never need a feature gate at
// the call site.
type Store struct {
	mu     sync.RWMutex
	caches map[Key]*Cache

	shards     int
	maxEntries int64
	entries    atomic.Int64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	wal         *wal
	walReplayed atomic.Int64

	counters atomic.Pointer[metrics.Counters]
}

// New returns an empty store with the given bounds. It panics if the
// configured write-ahead log cannot be opened — only reachable when
// Options.WALPath is set; callers configuring a WAL should prefer Open
// and handle the error.
func New(opts Options) *Store {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a store with the given bounds. When Options.WALPath is
// set it opens (creating if absent) the write-ahead log, replays every
// durable label into the in-memory shards, truncates any torn tail
// left by a crash, and compacts the log if it has grown far past the
// live label set.
func Open(opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	maxEntries := opts.MaxBytes / entryBytes
	if maxEntries < 1 {
		maxEntries = 1
	}
	s := &Store{
		caches:     make(map[Key]*Cache),
		shards:     n,
		maxEntries: maxEntries,
	}
	if opts.WALPath != "" {
		w, replayed, err := openWAL(s, opts.WALPath, opts.WALSyncEvery)
		if err != nil {
			return nil, err
		}
		s.wal = w
		s.walReplayed.Store(replayed)
		// Compact on boot when the log is dominated by dead frames
		// (tombstoned labels, duplicates), so it cannot grow without
		// bound across restarts.
		live := s.entries.Load() + int64(len(s.caches))
		if w.records > walCompactMinRecords && w.records > 2*live {
			w.mu.Lock()
			err := w.compactLocked()
			w.mu.Unlock()
			if err != nil {
				w.close()
				return nil, err
			}
		}
	}
	return s, nil
}

// WithCounters mirrors hit/miss/eviction/invalidation activity into
// the service counters (shown by GET /v1/stats). Returns s for
// chaining. When a WAL is attached, the records already in the log and
// the labels replayed on boot are folded into the counters at attach
// time.
func (s *Store) WithCounters(c *metrics.Counters) *Store {
	if s != nil {
		s.counters.Store(c)
		if s.wal != nil {
			c.WALRecords(s.wal.recordCount())
			c.WALReplayed(s.walReplayed.Load())
		}
	}
	return s
}

// Close flushes and closes the write-ahead log, if one is attached.
// Nil-safe and idempotent; returns the first WAL append error if any
// write was lost.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.wal.close()
}

// CompactWAL rewrites the write-ahead log to hold only the currently
// live labels, reclaiming the space of tombstoned and duplicate
// records. No-op without a WAL.
func (s *Store) CompactWAL() error {
	if s == nil || s.wal == nil {
		return nil
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.compactLocked()
}

// Cache returns the live cache for the (table, oracle) pair, creating
// it if absent. The returned handle stays valid across invalidations:
// an invalidated handle serves only misses and drops writes, so a
// query that snapshotted it mid-flight can neither read stale labels
// into a later query nor pollute the replacement cache. Returns nil
// when s is nil.
func (s *Store) Cache(table, oracle string) *Cache {
	if s == nil {
		return nil
	}
	key := Key{Table: table, Oracle: oracle}
	s.mu.RLock()
	c := s.caches[key]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.caches[key]; c != nil {
		return c
	}
	c = &Cache{store: s, key: key, shards: make([]shard, s.shards), mask: uint32(s.shards - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[int]bool)
	}
	s.caches[key] = c
	return c
}

// InvalidateTable kills every cache of the table (any oracle) and
// reports how many caches were dropped. Call when a table is
// re-registered: record ids may now mean different records. With a WAL
// attached, a tombstone is journaled so the dropped labels stay dead
// across restarts.
func (s *Store) InvalidateTable(table string) int {
	if s == nil {
		return 0
	}
	n := s.invalidateMatch(func(k Key) bool { return k.Table == table }, true)
	if n > 0 {
		s.wal.appendTombstone(recTombTable, table)
	}
	return n
}

// InvalidateOracle kills every cache of the oracle UDF (any table) and
// reports how many caches were dropped. Call when an oracle UDF is
// re-registered or wrapped: the function may now label differently.
// With a WAL attached, a tombstone is journaled so the dropped labels
// stay dead across restarts.
func (s *Store) InvalidateOracle(oracle string) int {
	if s == nil {
		return 0
	}
	n := s.invalidateMatch(func(k Key) bool { return k.Oracle == oracle }, true)
	if n > 0 {
		s.wal.appendTombstone(recTombOracle, oracle)
	}
	return n
}

// invalidateMatch kills every cache whose key matches. count=false is
// the WAL replay path: reconstructing a past invalidation must not
// inflate the live stats.
func (s *Store) invalidateMatch(match func(Key) bool, count bool) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	var dead []*Cache
	for k, c := range s.caches {
		if match(k) {
			dead = append(dead, c)
			delete(s.caches, k)
		}
	}
	s.mu.Unlock()
	for _, c := range dead {
		c.kill()
	}
	if n := len(dead); n > 0 && count {
		s.invalidations.Add(int64(n))
		s.counters.Load().LabelCacheInvalidations(int64(n))
	}
	return len(dead)
}

// Len returns the total number of cached labels across all caches.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return int(s.entries.Load())
}

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	// Hits and Misses count Get outcomes across all caches.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts labels dropped to stay under the byte budget.
	Evictions int64 `json:"evictions"`
	// Invalidations counts caches killed by table/oracle re-registration.
	Invalidations int64 `json:"invalidations"`
	// Entries is the current number of cached labels; Caches the number
	// of live (table, oracle) pairs.
	Entries int64 `json:"entries"`
	Caches  int   `json:"caches"`
	// WALRecords is the number of frames currently in the write-ahead
	// log; WALReplayed the number of labels restored from it on boot.
	// Both zero without a WAL.
	WALRecords  int64 `json:"wal_records"`
	WALReplayed int64 `json:"wal_replayed"`
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.RLock()
	caches := len(s.caches)
	s.mu.RUnlock()
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Invalidations: s.invalidations.Load(),
		Entries:       s.entries.Load(),
		Caches:        caches,
		WALRecords:    s.wal.recordCount(),
		WALReplayed:   s.walReplayed.Load(),
	}
}

// shard is one independently-locked segment of a cache. Insertion
// order is tracked in a FIFO queue so eviction is O(1).
type shard struct {
	mu   sync.Mutex
	m    map[int]bool
	fifo []int
	head int
}

// Cache is the label cache of one (table, oracle) pair. It implements
// the read/write interface oracle.Budgeted consumes (Get/Put) and is
// safe for concurrent use by any number of queries.
type Cache struct {
	store *Store
	key   Key
	dead  atomic.Bool

	shards []shard
	mask   uint32
}

// Key returns the (table, oracle) pair this cache serves.
func (c *Cache) Key() Key { return c.key }

// shardOf maps a record index to its shard (Fibonacci hashing so
// consecutive ids spread across shards).
func (c *Cache) shardOf(i int) *shard {
	h := uint32(uint64(i)*0x9E3779B97F4A7C15>>32) & c.mask
	return &c.shards[h]
}

// Get returns the cached label of record i. A killed (invalidated)
// cache always misses.
func (c *Cache) Get(i int) (bool, bool) {
	if c.dead.Load() {
		c.store.misses.Add(1)
		c.store.counters.Load().LabelCacheMisses(1)
		return false, false
	}
	sh := c.shardOf(i)
	sh.mu.Lock()
	v, ok := sh.m[i]
	sh.mu.Unlock()
	if ok {
		c.store.hits.Add(1)
		c.store.counters.Load().LabelCacheHits(1)
	} else {
		c.store.misses.Add(1)
		c.store.counters.Load().LabelCacheMisses(1)
	}
	return v, ok
}

// Put records the label of record i. Writes to a killed cache are
// dropped: labels bought against a superseded registration must not
// leak into the replacement cache. When the store-wide byte budget is
// exceeded an oldest entry is evicted — preferably from another shard
// or cache, so a fresh workload is not starved by a budget another
// table filled. With a WAL attached the label is journaled after the
// memory insert, so the log never holds a label memory rejected.
func (c *Cache) Put(i int, v bool) {
	c.put(i, v, true)
}

// put is Put with the WAL append gated: replay applies logged labels
// with log=false (they are already durable). Reports whether the label
// was newly inserted.
func (c *Cache) put(i int, v bool, log bool) bool {
	sh := c.shardOf(i)
	sh.mu.Lock()
	// The dead flag is re-checked under the shard lock: kill sets it
	// before clearing the shards, so an insert that won the lock first
	// is counted (and cleared) by kill, and one that lost observes dead
	// and drops — either way Store.entries stays consistent.
	if c.dead.Load() {
		sh.mu.Unlock()
		return false
	}
	if _, ok := sh.m[i]; ok {
		// Labels are a pure function of the record index; an existing
		// entry is already correct.
		sh.mu.Unlock()
		return false
	}
	sh.m[i] = v
	sh.fifo = append(sh.fifo, i)
	total := c.store.entries.Add(1)
	sh.mu.Unlock()
	if log {
		c.store.wal.appendLabel(c, i, v)
	}
	if total > c.store.maxEntries {
		if n := c.store.evictOne(c, sh); n > 0 {
			c.store.evictions.Add(int64(n))
			c.store.counters.Load().LabelCacheEvictions(int64(n))
		}
	}
	return true
}

// evictOne reclaims one entry to get back under the byte budget. It
// prefers other caches first — a new workload displaces an old one
// instead of self-evicting its own fresh entries forever — then the
// inserting cache's other shards (per-cache FIFO in the common
// single-workload case), and only as a last resort the shard the
// insert landed in. At most one shard lock is held at a time, so
// concurrent evictions cannot deadlock.
func (s *Store) evictOne(from *Cache, inserted *shard) int {
	s.mu.RLock()
	others := make([]*Cache, 0, len(s.caches))
	for _, c := range s.caches {
		if c != from {
			others = append(others, c)
		}
	}
	s.mu.RUnlock()
	for _, c := range others {
		if evictFromCache(c, nil) {
			s.entries.Add(-1)
			return 1
		}
	}
	if evictFromCache(from, inserted) {
		s.entries.Add(-1)
		return 1
	}
	inserted.mu.Lock()
	n := inserted.evictOldest()
	inserted.mu.Unlock()
	s.entries.Add(int64(-n))
	return n
}

// evictFromCache drops the oldest entry of the first non-empty shard
// of c, skipping skip. Reports whether an entry was evicted.
func evictFromCache(c *Cache, skip *shard) bool {
	for i := range c.shards {
		sh := &c.shards[i]
		if sh == skip {
			continue
		}
		sh.mu.Lock()
		n := sh.evictOldest()
		sh.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// evictOldest removes the shard's oldest entry (callers hold sh.mu)
// and returns how many entries were dropped (0 when the shard is
// empty — another shard holds the overflow).
func (sh *shard) evictOldest() int {
	if sh.head >= len(sh.fifo) {
		return 0
	}
	oldest := sh.fifo[sh.head]
	sh.head++
	// Compact the queue once the dead prefix dominates.
	if sh.head > 32 && sh.head > len(sh.fifo)/2 {
		sh.fifo = append(sh.fifo[:0], sh.fifo[sh.head:]...)
		sh.head = 0
	}
	delete(sh.m, oldest)
	return 1
}

// kill marks the cache dead and releases its entries. In-flight
// holders observe only misses and dropped writes from then on.
func (c *Cache) kill() {
	if c.dead.Swap(true) {
		return
	}
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += int64(len(sh.m))
		sh.m = make(map[int]bool)
		sh.fifo = nil
		sh.head = 0
		sh.mu.Unlock()
	}
	c.store.entries.Add(-n)
}
