package core

import (
	"supg/internal/sampling"
)

// ScoreSource is the read-only view of a proxy-score column together
// with the precomputed artifacts the estimators consume: threshold
// counts, order statistics, threshold extraction, and the
// defensive-mixture sampling distribution. Two implementations exist:
// internal/index.ScoreIndex amortizes everything across queries of a
// registered table (the engine hot path), and the package-private
// rawSource computes lazily for one-shot score slices (the supg.Run
// path).
type ScoreSource interface {
	// Len returns the number of records.
	Len() int
	// Scores returns the score column in record order, read-only.
	Scores() []float64
	// CountAtLeast returns |{x : A(x) >= tau}|.
	CountAtLeast(tau float64) int
	// KthHighest returns the k-th highest score (0-based, clamped).
	KthHighest(k int) float64
	// AppendAtLeast appends the record ids with score >= tau to dst in
	// ascending id order and returns the extended slice.
	AppendAtLeast(dst []int, tau float64) []int
	// Mixture returns the defensive-mixture weights and alias table for
	// the given exponent and mixing ratio; both are read-only.
	Mixture(exponent, mix float64) ([]float64, *sampling.Alias)
}

// rawSource adapts a plain score slice to ScoreSource for the
// non-indexed entry points. The sorted view and the mixture are built
// lazily — at most once per query — and a single mixture entry is
// cached because one query uses one (exponent, mix) pair. It is not
// safe for concurrent use; each query owns its own rawSource.
type rawSource struct {
	scores []float64
	ix     *scoreIndex // lazily sorted copy for count/order queries

	mixSet  bool
	mixKey  [2]float64
	weights []float64
	alias   *sampling.Alias
}

func newRawSource(scores []float64) *rawSource {
	return &rawSource{scores: scores}
}

func (s *rawSource) Len() int          { return len(s.scores) }
func (s *rawSource) Scores() []float64 { return s.scores }

func (s *rawSource) index() *scoreIndex {
	if s.ix == nil {
		s.ix = newScoreIndex(s.scores)
	}
	return s.ix
}

// CountAtLeast counts linearly until the sorted view exists: building
// an O(n log n) sort to answer one count (e.g. assembleFrom's capacity
// hint) would cost more than the O(n) scan it saves. Estimators that
// need order statistics (KthHighest) build the sorted view, after
// which counts are binary searches.
func (s *rawSource) CountAtLeast(tau float64) int {
	if s.ix == nil {
		n := 0
		for _, sc := range s.scores {
			if sc >= tau {
				n++
			}
		}
		return n
	}
	return s.ix.countAtLeast(tau)
}

func (s *rawSource) KthHighest(k int) float64 { return s.index().kthHighest(k) }

// AppendAtLeast scans the column directly: a one-shot slice has no
// sorted permutation worth building for a single extraction, and the
// scan emits ids already ascending.
func (s *rawSource) AppendAtLeast(dst []int, tau float64) []int {
	for i, sc := range s.scores {
		if sc >= tau {
			dst = append(dst, i)
		}
	}
	return dst
}

func (s *rawSource) Mixture(exponent, mix float64) ([]float64, *sampling.Alias) {
	key := [2]float64{exponent, mix}
	if !s.mixSet || s.mixKey != key {
		s.weights = sampling.DefensiveWeights(s.scores, exponent, mix)
		s.alias = sampling.NewAlias(s.weights)
		s.mixKey = key
		s.mixSet = true
	}
	return s.weights, s.alias
}
