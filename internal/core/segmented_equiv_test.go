package core

import (
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file is the segmented-index equivalence battery, extending the
// TestSelectFromIndexMatchesRawPath pattern to every segmentation: the
// paper's guarantees are distributional, so a correct sharding must be
// *invisible* — byte-identical Indices and Tau for a fixed seed at
// every segment size, every estimator family, and every query kind.

// segmentSizes is the satellite-mandated sweep: degenerate 1-record
// segments, a small prime that misaligns with everything, a mid-size
// power of two, and the monolithic single-segment layout.
func segmentSizes(n int) []int {
	return []int{1, 7, 1024, n}
}

func assertResultsEqual(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.Tau != got.Tau {
		t.Fatalf("%s: tau %v vs %v", label, want.Tau, got.Tau)
	}
	if want.OracleCalls != got.OracleCalls {
		t.Fatalf("%s: oracle calls %d vs %d", label, want.OracleCalls, got.OracleCalls)
	}
	if want.SampledPositives != got.SampledPositives {
		t.Fatalf("%s: sampled positives %d vs %d", label, want.SampledPositives, got.SampledPositives)
	}
	if len(want.Indices) != len(got.Indices) {
		t.Fatalf("%s: %d records vs %d", label, len(want.Indices), len(got.Indices))
	}
	for i := range want.Indices {
		if want.Indices[i] != got.Indices[i] {
			t.Fatalf("%s: record %d differs: %d vs %d", label, i, want.Indices[i], got.Indices[i])
		}
	}
}

// TestSelectSegmentedMatchesMonolithic sweeps randomized tables and
// segment sizes across recall/precision queries of every estimator
// family, asserting byte-identical results between the monolithic
// (single-segment) layout, every sharded layout, and the raw
// non-indexed path.
func TestSelectSegmentedMatchesMonolithic(t *testing.T) {
	configs := map[string]Config{
		"SUPG":   DefaultSUPG(),
		"UCI":    DefaultUCI(),
		"UNoCI":  DefaultUNoCI(),
		"Finite": DefaultFinite(),
	}
	for ti, tbl := range []struct {
		n      int
		budget int
		alpha  float64
		beta   float64
	}{
		{n: 400, budget: 80, alpha: 0.5, beta: 1},
		{n: 3000, budget: 300, alpha: 0.01, beta: 2},
		{n: 20000, budget: 600, alpha: 0.01, beta: 2},
	} {
		d := dataset.Beta(randx.New(uint64(500+ti)), tbl.n, tbl.alpha, tbl.beta)
		mono, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: tbl.n})
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range configs {
			for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
				spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: tbl.budget}
				seed := uint64(1000*ti) + 17
				want, err := SelectFrom(randx.New(seed), mono, oracle.NewSimulated(d), spec, cfg)
				if err != nil {
					t.Fatalf("n=%d %s/%v monolithic: %v", tbl.n, name, kind, err)
				}
				raw, err := Select(randx.New(seed), d.Scores(), oracle.NewSimulated(d), spec, cfg)
				if err != nil {
					t.Fatalf("n=%d %s/%v raw: %v", tbl.n, name, kind, err)
				}
				assertResultsEqual(t, "raw-vs-monolithic", raw, want)
				for _, segSize := range segmentSizes(tbl.n) {
					seg, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: segSize, Parallelism: 4})
					if err != nil {
						t.Fatal(err)
					}
					got, err := SelectFrom(randx.New(seed), seg, oracle.NewSimulated(d), spec, cfg)
					if err != nil {
						t.Fatalf("n=%d segSize=%d %s/%v: %v", tbl.n, segSize, name, kind, err)
					}
					assertResultsEqual(t, labelFor(tbl.n, segSize, name, kind), want, got)
					// The 16-bit quantized index must be invisible too:
					// byte-identical Indices/Tau/OracleCalls against the
					// float monolithic baseline at every segment size and
					// estimator family.
					quant, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: segSize, Parallelism: 4, Quantize: true})
					if err != nil {
						t.Fatal(err)
					}
					if !quant.Quantized() {
						t.Fatalf("n=%d segSize=%d: Quantize option ignored", tbl.n, segSize)
					}
					qgot, err := SelectFrom(randx.New(seed), quant, oracle.NewSimulated(d), spec, cfg)
					if err != nil {
						t.Fatalf("n=%d segSize=%d %s/%v quantized: %v", tbl.n, segSize, name, kind, err)
					}
					assertResultsEqual(t, labelFor(tbl.n, segSize, name, kind)+"/quantized", want, qgot)
				}
			}
		}
	}
}

func labelFor(n, segSize int, name string, kind TargetKind) string {
	return "n=" + itoa(n) + " segSize=" + itoa(segSize) + " " + name + "/" + kind.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSelectJointSegmentedMatchesMonolithic is the same sweep for the
// appendix joint-target algorithm, whose two-stage plumbing exercises
// KthHighest and subset sampling across segment boundaries.
func TestSelectJointSegmentedMatchesMonolithic(t *testing.T) {
	n := 12000
	d := dataset.Beta(randx.New(77), n, 0.01, 2)
	spec := JointSpec{GammaRecall: 0.8, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 400}
	mono, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: n})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SelectJointFrom(randx.New(5), mono, oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	for _, segSize := range segmentSizes(n) {
		seg, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: segSize, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectJointFrom(randx.New(5), seg, oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatalf("segSize=%d: %v", segSize, err)
		}
		if want.Tau != got.Tau || want.OracleCalls != got.OracleCalls || want.CandidateSize != got.CandidateSize {
			t.Fatalf("segSize=%d: joint stats differ: %+v vs %+v", segSize, want, got)
		}
		if len(want.Indices) != len(got.Indices) {
			t.Fatalf("segSize=%d: %d records vs %d", segSize, len(want.Indices), len(got.Indices))
		}
		for i := range want.Indices {
			if want.Indices[i] != got.Indices[i] {
				t.Fatalf("segSize=%d: joint record %d differs", segSize, i)
			}
		}
	}
}

// TestSelectAppendedIndexMatchesMonolithic closes the loop on the
// append path at the selection level: an index grown record-batch by
// record-batch must select the same records as a one-shot build.
func TestSelectAppendedIndexMatchesMonolithic(t *testing.T) {
	n := 9000
	d := dataset.Beta(randx.New(88), n, 0.01, 2)
	mono, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: n})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := index.NewWithOptions(d.Scores()[:3000], index.Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, hi := range []int{3001, 6500, n} {
		grown, err = grown.Append(d.Scores()[grown.Len():hi])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
		spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: 400}
		want, err := SelectFrom(randx.New(3), mono, oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectFrom(randx.New(3), grown, oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "appended/"+kind.String(), want, got)
	}
}
