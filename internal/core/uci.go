package core

import (
	"math"

	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file implements the uniform-sampling estimators with guarantees:
// Algorithm 2 (U-CI-R) and Algorithm 3 (U-CI-P).

// estimateUCIRecall implements Algorithm 2. It finds the empirical
// threshold for the requested recall, inflates the recall target to γ'
// to absorb sampling variation (via UB/LB on the above/below-threshold
// positive indicator means), and re-solves for the threshold at γ'.
func estimateUCIRecall(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	s, err := drawUniform(r, src.Scores(), o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	b := newBounder(cfg, r.Stream(0xb0))
	tau, err := recallThresholdWithCI(s, spec, b, ar)
	if err != nil {
		return TauResult{Tau: selectAllTau, Labeled: s.labels, OracleCalls: s.calls}, err
	}
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}

// minPositiveDraws returns the smallest number k of sampled positives
// for which even the most conservative in-sample threshold (the lowest
// sampled positive score) certifies the recall target: under uniform
// sampling the failure probability of that threshold is exactly
// gamma^k (all k positives landing above the 1-gamma quantile), so we
// require gamma^k <= delta. Below this count no in-sample threshold is
// certifiable and the caller must fall back to selecting everything.
// This finite-sample guard closes the gap the paper leaves to its
// asymptotic analysis (Section 8 lists finite-sample bounds as future
// work).
func minPositiveDraws(gamma, delta float64) int {
	if gamma >= 1 {
		return math.MaxInt32 // recall 1 can never be certified from a sample
	}
	return int(math.Ceil(math.Log(delta) / math.Log(gamma)))
}

// recallThresholdWithCI is the shared Algorithm 2/4 body: both the
// uniform and importance-weighted variants inflate gamma to gamma' using
// confidence bounds on Z1 (positives above the empirical threshold) and
// Z2 (positives below), then re-solve. For uniform samples all m(x)==1
// and this reduces exactly to Algorithm 2.
func recallThresholdWithCI(s *labeledSample, spec Spec, b bounder, ar *arena) (float64, error) {
	tauHat, ok := s.maxTauWithRecall(spec.Gamma, ar)
	if !ok {
		return selectAllTau, ErrNoPositives
	}

	// Finite-sample guard: with too few positive draws the asymptotic
	// machinery below is meaningless and the only safe answer is the
	// whole dataset.
	positives := 0
	for _, l := range s.label {
		if l > 0 {
			positives++
		}
	}
	if positives < minPositiveDraws(spec.Gamma, spec.Delta) {
		return selectAllTau, nil
	}

	n := s.len()
	z1 := ar.floats(n)
	z2 := ar.floats(n)
	for i := 0; i < n; i++ {
		v := s.label[i] * s.m[i]
		if s.score[i] >= tauHat {
			z1[i] = v
		} else {
			z2[i] = v
		}
	}
	rangeHint := math.Max(s.maxM, 1)
	ub1 := b.upper(z1, spec.Delta/2, rangeHint)
	lb2 := b.lower(z2, spec.Delta/2, rangeHint)
	if lb2 < 0 {
		lb2 = 0
	}
	gammaPrime := 1.0
	if ub1+lb2 > 0 {
		gammaPrime = ub1 / (ub1 + lb2)
	}
	if gammaPrime > 1 {
		gammaPrime = 1
	}
	if gammaPrime < spec.Gamma {
		// The inflated target can only be more conservative.
		gammaPrime = spec.Gamma
	}
	tau, ok := s.maxTauWithRecall(gammaPrime, ar)
	if !ok {
		return selectAllTau, ErrNoPositives
	}
	return tau, nil
}

// estimateUCIPrecision implements Algorithm 3: lower-bound the precision
// of every m-th candidate threshold with a union-bound-corrected
// confidence level, and return the smallest certified candidate.
//
// Candidates are the m-th, 2m-th, ... highest sampled scores, so every
// candidate's above-threshold subset holds at least m labels. (Reading
// the sort in Algorithm 3 as ascending would leave the topmost
// candidates with subsets of one or two samples, whose plug-in variance
// of zero would vacuously "certify" any precision — the descending
// reading is the one consistent with the paper's minimum step size m
// and its observation that the normal approximation needs 100+
// samples.)
func estimateUCIPrecision(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	s, err := drawUniform(r, src.Scores(), o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	b := newBounder(cfg, r.Stream(0xb1))

	n := s.len()
	// Clamp the stride to the sample size: a budget below MinStep
	// otherwise yields a phantom candidate past the sample's end
	// (historically an out-of-range panic). The single surviving
	// candidate is the full sample — the most conservative threshold.
	step := cfg.MinStep
	if step > n {
		step = n
	}
	numCandidates := n / step
	deltaEach := spec.Delta / float64(numCandidates)

	tau := noSelectionTau()
	// Scan candidates from the lowest threshold upward so the first
	// certified candidate is the minimal one.
	for i := numCandidates * step; i >= step; i -= step {
		cand := s.score[n-i] // i-th highest sampled score
		// Extend left over ties so Z is exactly {x in S : A(x) >= cand}.
		j := n - i
		for j > 0 && s.score[j-1] >= cand {
			j--
		}
		z := s.label[j:]
		pl := b.lower(z, deltaEach, 1)
		if pl > spec.Gamma {
			tau = cand
			break
		}
	}
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}
