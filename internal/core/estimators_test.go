package core

import (
	"math"
	"testing"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// trialStats runs `trials` independent selections and returns the
// failure rate against the spec target plus mean quality (the opposite
// metric).
func trialStats(t *testing.T, d *dataset.Dataset, spec Spec, cfg Config, trials int, seed uint64) (failRate, quality float64) {
	t.Helper()
	r := randx.New(seed)
	fails := 0
	qsum := 0.0
	for trial := 0; trial < trials; trial++ {
		res, err := Select(r.Stream(uint64(trial)), d.Scores(), oracle.NewSimulated(d), spec, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e := metrics.Evaluate(d, res.Indices)
		var achieved, q float64
		if spec.Kind == RecallTarget {
			achieved, q = e.Recall, e.Precision
		} else {
			achieved, q = e.Precision, e.Recall
		}
		if achieved < spec.Gamma {
			fails++
		}
		qsum += q
	}
	return float64(fails) / float64(trials), qsum / float64(trials)
}

func calibratedDataset(seed uint64, n int) *dataset.Dataset {
	return dataset.Beta(randx.New(seed), n, 0.01, 2)
}

// --- Validity: the CI methods must respect the failure probability. ---

func TestUCIRecallValidity(t *testing.T) {
	d := calibratedDataset(1, 60000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, DefaultUCI(), 60, 10)
	// Binomial(60, 0.05) rarely exceeds 8 failures; allow slack.
	if fail > 0.15 {
		t.Fatalf("U-CI-R failure rate %v far above delta 0.05", fail)
	}
}

func TestUCIPrecisionValidity(t *testing.T) {
	d := calibratedDataset(2, 60000)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, DefaultUCI(), 60, 11)
	if fail > 0.15 {
		t.Fatalf("U-CI-P failure rate %v far above delta 0.05", fail)
	}
}

func TestISRecallValidity(t *testing.T) {
	d := calibratedDataset(3, 60000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, DefaultSUPG(), 60, 12)
	if fail > 0.15 {
		t.Fatalf("IS-CI-R failure rate %v far above delta 0.05", fail)
	}
}

func TestISPrecisionValidity(t *testing.T) {
	d := calibratedDataset(4, 60000)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, DefaultSUPG(), 60, 13)
	if fail > 0.15 {
		t.Fatalf("IS-CI-P failure rate %v far above delta 0.05", fail)
	}
}

func TestISPrecisionOneStageValidity(t *testing.T) {
	d := calibratedDataset(5, 60000)
	cfg := DefaultSUPG()
	cfg.TwoStage = false
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, cfg, 60, 14)
	if fail > 0.15 {
		t.Fatalf("one-stage IS-CI-P failure rate %v far above delta 0.05", fail)
	}
}

// --- The headline claims: U-NoCI fails often; SUPG beats U-CI. ---

func TestUNoCIFailsOften(t *testing.T) {
	// The paper's core negative result (Figures 5/6): the empirical
	// cutoff misses the target roughly half the time.
	d := calibratedDataset(6, 60000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, d, spec, DefaultUNoCI(), 60, 15)
	if fail < 0.2 {
		t.Fatalf("U-NoCI failure rate %v suspiciously low; expected frequent failures", fail)
	}
}

func TestSUPGBeatsUniformOnPrecisionTarget(t *testing.T) {
	// Figure 7's shape: importance sampling yields much higher recall
	// at a precision target on rare-event data.
	d := calibratedDataset(7, 100000)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	_, uQual := trialStats(t, d, spec, DefaultUCI(), 20, 16)
	_, sQual := trialStats(t, d, spec, DefaultSUPG(), 20, 17)
	if sQual <= uQual {
		t.Fatalf("SUPG recall %v should beat U-CI %v on rare events", sQual, uQual)
	}
}

func TestSqrtWeightsBeatUniformOnRecallTarget(t *testing.T) {
	// Figure 8's shape at a mid recall target.
	d := calibratedDataset(8, 200000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.7, Delta: 0.05, Budget: 4000}
	_, uQual := trialStats(t, d, spec, DefaultUCI(), 15, 18)
	_, sQual := trialStats(t, d, spec, DefaultSUPG(), 15, 19)
	if sQual <= uQual {
		t.Fatalf("SUPG precision %v should beat U-CI %v", sQual, uQual)
	}
}

// --- Structural behavior. ---

func TestUNoCIRecallEmpiricalThreshold(t *testing.T) {
	// A tiny fully-labeled dataset where the math is checkable by hand:
	// budget = n so the "sample" is the entire dataset.
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	labels := []bool{false, true, false, true, false, true, false, true, true, true}
	d := dataset.MustNew("hand", scores, labels)
	spec := Spec{Kind: RecallTarget, Gamma: 0.5, Delta: 0.05, Budget: 10}
	budgeted := oracle.NewBudgeted(oracle.NewSimulated(d), 10)
	tr, err := EstimateTau(randx.New(1), scores, budgeted, spec, DefaultUNoCI())
	if err != nil {
		t.Fatal(err)
	}
	// 6 positives at 0.2,0.4,0.6,0.8,0.9,1.0; recall >= 0.5 needs 3:
	// tau = 0.8.
	if tr.Tau != 0.8 {
		t.Fatalf("tau = %v, want 0.8", tr.Tau)
	}
}

func TestRecallTauShrinksWithGamma(t *testing.T) {
	d := calibratedDataset(9, 50000)
	r := randx.New(20)
	prev := math.Inf(1)
	for _, gamma := range []float64{0.5, 0.7, 0.9, 0.99} {
		spec := Spec{Kind: RecallTarget, Gamma: gamma, Delta: 0.05, Budget: 2000}
		budgeted := oracle.NewBudgeted(oracle.NewSimulated(d), spec.Budget)
		tr, err := EstimateTau(randx.New(555), d.Scores(), budgeted, spec, DefaultUCI())
		if err != nil {
			t.Fatal(err)
		}
		if tr.Tau > prev {
			t.Fatalf("tau(%v)=%v exceeds tau at smaller gamma %v", gamma, tr.Tau, prev)
		}
		prev = tr.Tau
	}
	_ = r
}

func TestBudgetRespected(t *testing.T) {
	d := calibratedDataset(10, 30000)
	for _, cfg := range []Config{DefaultUNoCI(), DefaultUCI(), DefaultSUPG()} {
		for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
			spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: 777}
			sim := oracle.NewSimulated(d)
			res, err := Select(randx.New(21), d.Scores(), sim, spec, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", cfg.Method, kind, err)
			}
			if res.OracleCalls > 777 {
				t.Fatalf("%v/%v consumed %d > budget 777", cfg.Method, kind, res.OracleCalls)
			}
			if sim.Calls() > 777 {
				t.Fatalf("%v/%v made %d raw oracle calls > budget", cfg.Method, kind, sim.Calls())
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := calibratedDataset(11, 30000)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 1000}
	a, err := Select(randx.New(42), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(randx.New(42), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau != b.Tau || len(a.Indices) != len(b.Indices) {
		t.Fatal("same seed should reproduce the identical result")
	}
}

func TestNoPositivesRecallReturnsEverything(t *testing.T) {
	// A dataset whose positives are so rare the sample sees none: the
	// only recall-safe answer is the full dataset.
	n := 10000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = 0.5
	}
	labels[n-1] = true
	d := dataset.MustNew("rare", scores, labels)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 50}
	res, err := Select(randx.New(22), d.Scores(), oracle.NewSimulated(d), spec, DefaultUCI())
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.Evaluate(d, res.Indices)
	if e.Recall < 0.9 {
		t.Fatalf("fallback result recall %v misses target", e.Recall)
	}
}

func TestNoPositivesPrecisionReturnsLabeledOnly(t *testing.T) {
	n := 5000
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i) / float64(n)
	}
	labels := make([]bool, n) // all negative
	d := dataset.MustNew("neg", scores, labels)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 100}
	res, err := Select(randx.New(23), d.Scores(), oracle.NewSimulated(d), spec, DefaultUCI())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 0 {
		t.Fatalf("all-negative dataset returned %d records; empty set is the only valid PT result", len(res.Indices))
	}
}

func TestAllPositives(t *testing.T) {
	n := 3000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = 0.5 + float64(i)/(2*float64(n))
		labels[i] = true
	}
	d := dataset.MustNew("allpos", scores, labels)
	for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
		spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: 500}
		res, err := Select(randx.New(24), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		e := metrics.Evaluate(d, res.Indices)
		if kind == RecallTarget && e.Recall < 0.9 {
			t.Fatalf("recall %v", e.Recall)
		}
		if kind == PrecisionTarget && e.Precision < 0.9 {
			t.Fatalf("precision %v", e.Precision)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: RecallTarget, Gamma: 0, Delta: 0.05, Budget: 100},
		{Kind: RecallTarget, Gamma: 1.2, Delta: 0.05, Budget: 100},
		{Kind: RecallTarget, Gamma: 0.9, Delta: 0, Budget: 100},
		{Kind: RecallTarget, Gamma: 0.9, Delta: 1, Budget: 100},
		{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d should be invalid: %+v", i, s)
		}
	}
	good := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestEstimateTauRejectsEmptyDataset(t *testing.T) {
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 100}
	budgeted := oracle.NewBudgeted(oracle.Func(func(int) (bool, error) { return false, nil }), 100)
	if _, err := EstimateTau(randx.New(1), nil, budgeted, spec, DefaultSUPG()); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestUnknownMethod(t *testing.T) {
	d := calibratedDataset(12, 5000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 100}
	cfg := Config{Method: Method(99)}
	if _, err := Select(randx.New(1), d.Scores(), oracle.NewSimulated(d), spec, cfg); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{Method: MethodISCI}.normalize()
	if c.WeightExponent != 0.5 || c.Mix != 0.1 || c.MinStep != 100 {
		t.Errorf("normalize did not apply IS defaults: %+v", c)
	}
	c2 := Config{Method: MethodISCI, WeightExponent: 1.0}.normalize()
	if c2.WeightExponent != 1.0 {
		t.Error("normalize should preserve explicit exponent")
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodUNoCI.String() != "U-NoCI" || MethodUCI.String() != "U-CI" || MethodISCI.String() != "IS-CI" {
		t.Error("method strings")
	}
	if RecallTarget.String() != "recall" || PrecisionTarget.String() != "precision" {
		t.Error("target kind strings")
	}
}

func TestAssembleUnion(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9, 0.95}
	tr := TauResult{
		Tau:     0.9,
		Labeled: map[int]bool{0: true, 1: false},
	}
	res := assemble(scores, tr)
	// R2 = {2, 3}; R1 adds labeled positive 0; label-negative 1 excluded.
	want := []int{0, 2, 3}
	if len(res.Indices) != len(want) {
		t.Fatalf("indices %v, want %v", res.Indices, want)
	}
	for i := range want {
		if res.Indices[i] != want[i] {
			t.Fatalf("indices %v, want %v", res.Indices, want)
		}
	}
	if res.SampledPositives != 1 {
		t.Fatalf("SampledPositives = %d, want 1 (record 0 below tau)", res.SampledPositives)
	}
}

func TestAssembleNoSelection(t *testing.T) {
	scores := []float64{0.1, 0.9}
	tr := TauResult{Tau: noSelectionTau(), Labeled: map[int]bool{1: true}}
	res := assemble(scores, tr)
	if len(res.Indices) != 1 || res.Indices[0] != 1 {
		t.Fatalf("expected only the labeled positive, got %v", res.Indices)
	}
}

func TestScoreIndex(t *testing.T) {
	ix := newScoreIndex([]float64{0.5, 0.1, 0.9, 0.5})
	if got := ix.countAtLeast(0.5); got != 3 {
		t.Errorf("countAtLeast(0.5) = %d, want 3", got)
	}
	if got := ix.countAtLeast(0.91); got != 0 {
		t.Errorf("countAtLeast(0.91) = %d, want 0", got)
	}
	if got := ix.countAtLeast(0); got != 4 {
		t.Errorf("countAtLeast(0) = %d, want 4", got)
	}
	if ix.kthHighest(0) != 0.9 {
		t.Error("kthHighest(0)")
	}
	if ix.kthHighest(3) != 0.1 {
		t.Error("kthHighest(3)")
	}
	if ix.kthHighest(100) != 0.1 {
		t.Error("kthHighest clamps to min")
	}
}

func TestTwoStageTightensStageOne(t *testing.T) {
	// On strongly separated data, the two-stage PT algorithm should be
	// at least as good as one-stage (Figure 7's claim).
	d := calibratedDataset(13, 150000)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	one := DefaultSUPG()
	one.TwoStage = false
	_, oneQ := trialStats(t, d, spec, one, 15, 30)
	_, twoQ := trialStats(t, d, spec, DefaultSUPG(), 15, 31)
	if twoQ < oneQ*0.7 {
		t.Fatalf("two-stage recall %v much worse than one-stage %v", twoQ, oneQ)
	}
}

func TestDefensiveMixingGuardsAdversarialProxy(t *testing.T) {
	// With an inverted (anti-correlated) proxy the guarantee must still
	// hold thanks to defensive mixing — the result is just low quality.
	base := calibratedDataset(14, 40000)
	inv := base.Clone()
	for i, s := range inv.Scores() {
		inv.Scores()[i] = 1 - s
	}
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	fail, _ := trialStats(t, inv, spec, DefaultSUPG(), 40, 32)
	if fail > 0.15 {
		t.Fatalf("adversarial proxy broke the recall guarantee: fail rate %v", fail)
	}
}

func TestExponentSweepInteriorOptimum(t *testing.T) {
	// Figure 12's shape: sqrt weighting should (weakly) beat both
	// endpoints on calibrated rare-event data.
	d := calibratedDataset(15, 150000)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 3000}
	quality := map[float64]float64{}
	for _, exp := range []float64{0, 0.5, 1} {
		cfg := DefaultSUPG()
		cfg.WeightExponent = exp
		_, q := trialStats(t, d, spec, cfg, 15, uint64(40+int(exp*10)))
		quality[exp] = q
	}
	if quality[0.5] < quality[0]*0.8 {
		t.Fatalf("sqrt quality %v should not be far below uniform %v", quality[0.5], quality[0])
	}
}
