package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"supg/internal/dataset"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// TestConcurrentDispatchDeterminism is the dispatcher determinism
// regression: labeling the sampled draws concurrently (through an
// oracle.Dispatcher at several widths) must return results identical to
// the sequential path for a fixed seed, across recall, precision, and
// joint queries.
func TestConcurrentDispatchDeterminism(t *testing.T) {
	d := dataset.Beta(randx.New(5), 20_000, 0.02, 2)

	cases := []struct {
		name string
		run  func(orc oracle.Oracle) ([]int, float64, int, error)
	}{
		{"recall/IS-CI", func(orc oracle.Oracle) ([]int, float64, int, error) {
			spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 400}
			res, err := Select(randx.New(42), d.Scores(), orc, spec, DefaultSUPG())
			return res.Indices, res.Tau, res.OracleCalls, err
		}},
		{"recall/U-CI", func(orc oracle.Oracle) ([]int, float64, int, error) {
			spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 400}
			res, err := Select(randx.New(43), d.Scores(), orc, spec, DefaultUCI())
			return res.Indices, res.Tau, res.OracleCalls, err
		}},
		{"precision/IS-CI two-stage", func(orc oracle.Oracle) ([]int, float64, int, error) {
			spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 400}
			res, err := Select(randx.New(44), d.Scores(), orc, spec, DefaultSUPG())
			return res.Indices, res.Tau, res.OracleCalls, err
		}},
		{"precision/U-CI", func(orc oracle.Oracle) ([]int, float64, int, error) {
			spec := Spec{Kind: PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: 400}
			res, err := Select(randx.New(45), d.Scores(), orc, spec, DefaultUCI())
			return res.Indices, res.Tau, res.OracleCalls, err
		}},
		{"joint", func(orc oracle.Oracle) ([]int, float64, int, error) {
			spec := JointSpec{GammaRecall: 0.9, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 400}
			res, err := SelectJoint(randx.New(46), d.Scores(), orc, spec, DefaultSUPG())
			return res.Indices, res.Tau, res.OracleCalls, err
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantIdx, wantTau, wantCalls, err := tc.run(oracle.NewSimulated(d))
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, p := range []int{2, 8} {
				gotIdx, gotTau, gotCalls, err := tc.run(oracle.NewDispatcher(oracle.NewSimulated(d), p))
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if gotTau != wantTau {
					t.Errorf("parallelism %d: tau = %v, want %v", p, gotTau, wantTau)
				}
				if gotCalls != wantCalls {
					t.Errorf("parallelism %d: oracle calls = %d, want %d", p, gotCalls, wantCalls)
				}
				if len(gotIdx) != len(wantIdx) {
					t.Fatalf("parallelism %d: %d indices, want %d", p, len(gotIdx), len(wantIdx))
				}
				for i := range wantIdx {
					if gotIdx[i] != wantIdx[i] {
						t.Fatalf("parallelism %d: index[%d] = %d, want %d", p, i, gotIdx[i], wantIdx[i])
					}
				}
			}
		})
	}
}

// TestSelectFromContextCancellation verifies a cancelled context stops
// oracle consumption: the query fails with context.Canceled and the
// oracle is never invoked.
func TestSelectFromContextCancellation(t *testing.T) {
	d := dataset.Beta(randx.New(6), 5000, 0.05, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var calls atomic.Int64
	orc := oracle.Func(func(i int) (bool, error) {
		calls.Add(1)
		return d.TrueLabel(i), nil
	})
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 200}
	_, err := SelectFromContext(ctx, randx.New(9), newRawSource(d.Scores()), orc, spec, DefaultSUPG())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("oracle called %d times after cancellation", calls.Load())
	}

	_, err = SelectJointFromContext(ctx, randx.New(9), newRawSource(d.Scores()), orc,
		JointSpec{GammaRecall: 0.9, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 200}, DefaultSUPG())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joint err = %v, want context.Canceled", err)
	}
}
