package core

import (
	"math"
	"testing"

	"supg/internal/oracle"
	"supg/internal/randx"
	"supg/internal/sampling"
)

// makeSample builds a labeledSample directly for unit-testing the curve
// primitives (bypassing the oracle plumbing).
func makeSample(scores []float64, labels []float64, m []float64) *labeledSample {
	if m == nil {
		m = make([]float64, len(scores))
		for i := range m {
			m[i] = 1
		}
	}
	s := &labeledSample{
		idx:    make([]int, len(scores)),
		score:  append([]float64(nil), scores...),
		label:  append([]float64(nil), labels...),
		m:      append([]float64(nil), m...),
		labels: map[int]bool{},
	}
	// Callers must pass scores already ascending, matching the
	// invariant labelDraws establishes.
	for i := 1; i < len(scores); i++ {
		if scores[i] < scores[i-1] {
			panic("test sample must be sorted ascending")
		}
	}
	for _, v := range m {
		if v > s.maxM {
			s.maxM = v
		}
	}
	return s
}

func TestMaxTauWithRecallBasic(t *testing.T) {
	// Positives at scores 0.2, 0.6, 0.8, 0.9 (4 positives).
	s := makeSample(
		[]float64{0.1, 0.2, 0.3, 0.6, 0.8, 0.9},
		[]float64{0, 1, 0, 1, 1, 1},
		nil)
	// gamma=0.75: need 3 of 4 positives above tau -> tau = 0.6.
	tau, ok := s.maxTauWithRecall(0.75, nil)
	if !ok || tau != 0.6 {
		t.Fatalf("tau = %v, ok=%v; want 0.6", tau, ok)
	}
	// gamma=1.0: all positives -> tau = 0.2.
	tau, _ = s.maxTauWithRecall(1.0, nil)
	if tau != 0.2 {
		t.Fatalf("tau at gamma=1 is %v, want 0.2", tau)
	}
	// gamma=0.25: one positive suffices -> tau = 0.9.
	tau, _ = s.maxTauWithRecall(0.25, nil)
	if tau != 0.9 {
		t.Fatalf("tau at gamma=0.25 is %v, want 0.9", tau)
	}
}

func TestMaxTauWithRecallNoPositives(t *testing.T) {
	s := makeSample([]float64{0.1, 0.5}, []float64{0, 0}, nil)
	if _, ok := s.maxTauWithRecall(0.9, nil); ok {
		t.Fatal("no positives should report !ok")
	}
}

func TestMaxTauWithRecallTies(t *testing.T) {
	// Tied scores must be included together: positives at 0.5, 0.5, 0.9.
	s := makeSample(
		[]float64{0.5, 0.5, 0.9},
		[]float64{1, 1, 1},
		nil)
	// gamma = 2/3: tau=0.5 gives recall 1 (ties grouped); tau=0.9 gives 1/3.
	tau, _ := s.maxTauWithRecall(0.6667, nil)
	if tau != 0.5 {
		t.Fatalf("tau = %v, want 0.5 (tie group)", tau)
	}
}

func TestMaxTauWithRecallWeighted(t *testing.T) {
	// Two positives: low-score one carries 3x the weight, so dropping it
	// loses 75% of recall mass.
	s := makeSample(
		[]float64{0.2, 0.8},
		[]float64{1, 1},
		[]float64{3, 1})
	tau, _ := s.maxTauWithRecall(0.5, nil)
	// Keeping only 0.8 yields weighted recall 1/4 < 0.5: tau must be 0.2.
	if tau != 0.2 {
		t.Fatalf("weighted tau = %v, want 0.2", tau)
	}
	tau, _ = s.maxTauWithRecall(0.25, nil)
	if tau != 0.8 {
		t.Fatalf("weighted tau at gamma=0.25 = %v, want 0.8", tau)
	}
}

func TestMaxTauMonotoneInGamma(t *testing.T) {
	r := randx.New(3)
	scores := make([]float64, 300)
	labels := make([]float64, 300)
	for i := range scores {
		scores[i] = float64(i) / 300
		if r.Bernoulli(scores[i]) {
			labels[i] = 1
		}
	}
	s := makeSample(scores, labels, nil)
	prev := math.Inf(1)
	for _, g := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		tau, ok := s.maxTauWithRecall(g, nil)
		if !ok {
			t.Skip("no positives in synthetic sample")
		}
		if tau > prev {
			t.Fatalf("tau should not increase with gamma: tau(%v)=%v > %v", g, tau, prev)
		}
		prev = tau
	}
}

func TestWeightedPositiveTotal(t *testing.T) {
	s := makeSample([]float64{0.1, 0.5, 0.9}, []float64{1, 0, 1}, []float64{2, 5, 0.5})
	if got := s.weightedPositiveTotal(); got != 2.5 {
		t.Fatalf("weightedPositiveTotal = %v, want 2.5", got)
	}
}

func TestSuffixPositive(t *testing.T) {
	s := makeSample([]float64{0.1, 0.5, 0.9}, []float64{1, 0, 1}, nil)
	suf := s.suffixPositive(nil)
	want := []float64{2, 1, 1, 0}
	for i := range want {
		if suf[i] != want[i] {
			t.Fatalf("suffix = %v, want %v", suf, want)
		}
	}
}

func TestGroupStarts(t *testing.T) {
	s := makeSample([]float64{0.1, 0.1, 0.5, 0.9, 0.9}, []float64{0, 0, 0, 0, 0}, nil)
	starts := s.groupStarts()
	want := []int{0, 2, 3}
	if len(starts) != len(want) {
		t.Fatalf("groupStarts = %v", starts)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("groupStarts = %v, want %v", starts, want)
		}
	}
}

func TestDrawUniformSortedAndBudgeted(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	labels := []bool{true, false, false, false, true}
	o := oracle.NewBudgeted(oracle.Func(func(i int) (bool, error) { return labels[i], nil }), 5)
	s, err := drawUniform(randx.New(1), scores, o, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.len() != 4 {
		t.Fatalf("sample size %d", s.len())
	}
	for i := 1; i < s.len(); i++ {
		if s.score[i] < s.score[i-1] {
			t.Fatal("sample not sorted ascending")
		}
	}
	for _, m := range s.m {
		if m != 1 {
			t.Fatal("uniform sample must have m == 1")
		}
	}
	if s.calls != 4 || o.Used() != 4 {
		t.Fatalf("oracle calls %d / used %d", s.calls, o.Used())
	}
}

func TestDrawWeightedReweighting(t *testing.T) {
	scores := []float64{0.0, 0.5, 1.0}
	o := oracle.NewBudgeted(oracle.Func(func(i int) (bool, error) { return i == 2, nil }), 1000)
	weights := sampling.DefensiveWeights(scores, 0.5, 0.1)
	s, err := drawWeighted(randx.New(2), scores, weights, o, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	// m(x) = (1/n)/w(x): records with higher weight get smaller m.
	u := 1.0 / 3
	for i := 0; i < s.len(); i++ {
		j := s.idx[i]
		want := u / weights[j]
		if math.Abs(s.m[i]-want) > 1e-12 {
			t.Fatalf("m mismatch for record %d: %v vs %v", j, s.m[i], want)
		}
	}
	// Importance-weighted positive-rate estimate should be unbiased:
	// true rate is 1/3 (only record 2 positive).
	est := 0.0
	for i := 0; i < s.len(); i++ {
		est += s.label[i] * s.m[i]
	}
	est /= float64(s.len())
	if math.Abs(est-1.0/3) > 0.08 {
		t.Fatalf("IS estimate %v far from 1/3", est)
	}
}

func TestDrawWeightedSubset(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.9, 0.95}
	o := oracle.NewBudgeted(oracle.Func(func(i int) (bool, error) { return scores[i] > 0.5, nil }), 1000)
	weights := sampling.DefensiveWeights(scores, 0.5, 0.1)
	subset := []int{2, 3}
	s, err := drawWeightedSubset(randx.New(3), scores, subset, weights, o, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range s.idx {
		if j != 2 && j != 3 {
			t.Fatalf("draw %d outside subset", j)
		}
	}
	// Within the subset all labels are positive; the reweighted mean
	// over the subset domain must be ~1.
	est := 0.0
	for i := 0; i < s.len(); i++ {
		est += s.label[i] * s.m[i]
	}
	est /= float64(s.len())
	if math.Abs(est-1) > 0.05 {
		t.Fatalf("subset IS estimate %v, want ~1", est)
	}
}

func TestDrawUniformBudgetExceeded(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3}
	o := oracle.NewBudgeted(oracle.Func(func(i int) (bool, error) { return false, nil }), 2)
	if _, err := drawUniform(randx.New(4), scores, o, 3, nil); err == nil {
		t.Fatal("expected budget exhaustion error")
	}
}
