package core

import "sync"

// This file implements the per-query scratch arena behind the select
// hot path's allocation budget (gated in BENCH_hotpath.json).
//
// A query's estimator churns through a dozen short-lived buffers —
// draw indices, reweighting factors, the sorted sample assembly,
// suffix sums, CI scratch — all dead the moment the Result is
// assembled. The arena bump-allocates them from pooled slabs so the
// steady state allocates nothing, while the true result allocations
// (Result.Indices, anything escaping to the caller) stay on the heap.
//
// Ownership rules:
//
//   - Arena memory lives until the owning Select call releases the
//     arena. Nothing arena-backed may be stored in a Result, a
//     TauResult returned by a public function, or any other structure
//     that outlives the query (copy it out instead — see assembleFrom's
//     no-threshold path).
//   - A nil *arena is valid everywhere and falls back to plain make,
//     which is how the public EstimateTau/EstimateTauFrom entry points
//     run: their TauResult (Labeled map included) escapes to the
//     caller, so it must own its memory.
//   - Arenas are single-goroutine, like the random stream. The
//     intra-query parallelism in internal/index never sees them.
type arena struct {
	intBuf   []int
	intOff   int
	floatBuf []float64
	floatOff int
	free     []map[int]bool // recycled label maps
	lent     []map[int]bool // maps handed out since the last reset
}

var arenaPool = sync.Pool{New: func() any { return &arena{} }}

func acquireArena() *arena { return arenaPool.Get().(*arena) }

// release returns the arena's slabs to the pool for the next query.
// All memory it handed out becomes invalid.
func (a *arena) release() {
	if a == nil {
		return
	}
	a.intOff, a.floatOff = 0, 0
	a.free = append(a.free, a.lent...)
	a.lent = a.lent[:0]
	arenaPool.Put(a)
}

// ints returns a zeroed length-n scratch slice. The three-index slice
// keeps an append on one handout from bleeding into the next.
func (a *arena) ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if len(a.intBuf)-a.intOff < n {
		a.intBuf = make([]int, growSlab(n, len(a.intBuf)))
		a.intOff = 0
	}
	s := a.intBuf[a.intOff : a.intOff+n : a.intOff+n]
	a.intOff += n
	clear(s)
	return s
}

// intCap returns a zero-length scratch slice with capacity n, for
// append-style assembly.
func (a *arena) intCap(n int) []int { return a.ints(n)[:0] }

// floats returns a zeroed length-n scratch slice.
func (a *arena) floats(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if len(a.floatBuf)-a.floatOff < n {
		a.floatBuf = make([]float64, growSlab(n, len(a.floatBuf)))
		a.floatOff = 0
	}
	s := a.floatBuf[a.floatOff : a.floatOff+n : a.floatOff+n]
	a.floatOff += n
	clear(s)
	return s
}

// labelMap returns an empty map[int]bool, recycled from a previous
// query when possible. Like slice scratch it dies at release; the
// public estimator paths (nil arena) get a fresh map the caller owns.
func (a *arena) labelMap(hint int) map[int]bool {
	if a == nil {
		return make(map[int]bool, hint)
	}
	var m map[int]bool
	if n := len(a.free); n > 0 {
		m = a.free[n-1]
		a.free = a.free[:n-1]
		clear(m)
	} else {
		m = make(map[int]bool, hint)
	}
	a.lent = append(a.lent, m)
	return m
}

// growSlab sizes a replacement slab: at least the request, at least
// double the old slab (so repeated growth converges), with a floor
// that covers a typical oracle budget's worth of draws outright.
func growSlab(n, old int) int {
	size := 4096
	if 2*old > size {
		size = 2 * old
	}
	if n > size {
		size = n
	}
	return size
}
