package core

import (
	"testing"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

func TestJointSpecValidation(t *testing.T) {
	bad := []JointSpec{
		{GammaRecall: 0, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 100},
		{GammaRecall: 0.9, GammaPrecision: 1.1, Delta: 0.05, StageBudget: 100},
		{GammaRecall: 0.9, GammaPrecision: 0.9, Delta: 0, StageBudget: 100},
		{GammaRecall: 0.9, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("joint spec %d should be invalid", i)
		}
	}
	good := JointSpec{GammaRecall: 0.9, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid joint spec rejected: %v", err)
	}
}

func TestSelectJointPrecisionIsOne(t *testing.T) {
	d := dataset.Beta(randx.New(1), 50000, 0.01, 2)
	spec := JointSpec{GammaRecall: 0.8, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 2000}
	res, err := SelectJoint(randx.New(2), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.Evaluate(d, res.Indices)
	if e.Precision != 1 {
		t.Fatalf("exhaustive filtering must give precision 1, got %v", e.Precision)
	}
	if e.Recall < spec.GammaRecall {
		t.Fatalf("joint recall %v misses target %v", e.Recall, spec.GammaRecall)
	}
}

func TestSelectJointOracleAccounting(t *testing.T) {
	d := dataset.Beta(randx.New(3), 30000, 0.01, 2)
	spec := JointSpec{GammaRecall: 0.7, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 1000}
	sim := oracle.NewSimulated(d)
	res, err := SelectJoint(randx.New(4), d.Scores(), sim, spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	// Total calls = stage-2 sample + stage-3 filtering of unlabeled
	// candidates; must exceed the stage budget alone when candidates
	// exist, and match the reported count.
	if res.OracleCalls != sim.Calls() {
		t.Fatalf("reported %d calls but oracle saw %d", res.OracleCalls, sim.Calls())
	}
	if res.CandidateSize < len(res.Indices) {
		t.Fatalf("candidate set %d smaller than final %d", res.CandidateSize, len(res.Indices))
	}
}

func TestSelectJointRecallValidity(t *testing.T) {
	d := dataset.Beta(randx.New(5), 40000, 0.01, 2)
	spec := JointSpec{GammaRecall: 0.8, GammaPrecision: 0.8, Delta: 0.05, StageBudget: 2000}
	r := randx.New(6)
	fails := 0
	trials := 30
	for trial := 0; trial < trials; trial++ {
		res, err := SelectJoint(r.Stream(uint64(trial)), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Evaluate(d, res.Indices).Recall < spec.GammaRecall {
			fails++
		}
	}
	if rate := float64(fails) / float64(trials); rate > 0.17 {
		t.Fatalf("joint recall failure rate %v far above delta", rate)
	}
}

func TestSelectJointSUPGCheaperThanUniform(t *testing.T) {
	// Figure 15's shape: the SUPG subroutine returns tighter candidate
	// sets, so stage-3 filtering costs fewer oracle calls.
	d := dataset.Beta(randx.New(7), 150000, 0.01, 1)
	spec := JointSpec{GammaRecall: 0.7, GammaPrecision: 0.7, Delta: 0.05, StageBudget: 3000}
	r := randx.New(8)
	var uCalls, sCalls int
	trials := 8
	for trial := 0; trial < trials; trial++ {
		u, err := SelectJoint(r.Stream(uint64(trial)), d.Scores(), oracle.NewSimulated(d), spec, DefaultUCI())
		if err != nil {
			t.Fatal(err)
		}
		s, err := SelectJoint(r.Stream(uint64(100+trial)), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
		if err != nil {
			t.Fatal(err)
		}
		uCalls += u.OracleCalls
		sCalls += s.OracleCalls
	}
	if sCalls >= uCalls {
		t.Fatalf("SUPG joint used %d calls, uniform %d; expected SUPG cheaper", sCalls, uCalls)
	}
}

func TestSelectJointInvalidSpec(t *testing.T) {
	d := dataset.Beta(randx.New(9), 1000, 1, 1)
	if _, err := SelectJoint(randx.New(1), d.Scores(), oracle.NewSimulated(d), JointSpec{}, DefaultSUPG()); err == nil {
		t.Fatal("zero joint spec should error")
	}
}
