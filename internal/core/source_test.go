package core

import (
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// TestSelectFromIndexMatchesRawPath is the load-bearing equivalence
// property of the ScoreIndex refactor: for a fixed random stream, the
// indexed hot path must return exactly the records the raw-slice path
// returns, for every estimator family.
func TestSelectFromIndexMatchesRawPath(t *testing.T) {
	d := dataset.Beta(randx.New(314), 30000, 0.01, 2)
	ix, err := index.New(d.Scores())
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"SUPG":   DefaultSUPG(),
		"UCI":    DefaultUCI(),
		"UNoCI":  DefaultUNoCI(),
		"Finite": DefaultFinite(),
	}
	for name, cfg := range configs {
		for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
			spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: 800}
			raw, err := Select(randx.New(99), d.Scores(), oracle.NewSimulated(d), spec, cfg)
			if err != nil {
				t.Fatalf("%s/%v raw: %v", name, kind, err)
			}
			idxRes, err := SelectFrom(randx.New(99), ix, oracle.NewSimulated(d), spec, cfg)
			if err != nil {
				t.Fatalf("%s/%v indexed: %v", name, kind, err)
			}
			if raw.Tau != idxRes.Tau {
				t.Fatalf("%s/%v: tau %v (raw) vs %v (indexed)", name, kind, raw.Tau, idxRes.Tau)
			}
			if raw.OracleCalls != idxRes.OracleCalls {
				t.Fatalf("%s/%v: oracle calls %d vs %d", name, kind, raw.OracleCalls, idxRes.OracleCalls)
			}
			if raw.SampledPositives != idxRes.SampledPositives {
				t.Fatalf("%s/%v: sampled positives %d vs %d", name, kind, raw.SampledPositives, idxRes.SampledPositives)
			}
			if len(raw.Indices) != len(idxRes.Indices) {
				t.Fatalf("%s/%v: %d records (raw) vs %d (indexed)", name, kind, len(raw.Indices), len(idxRes.Indices))
			}
			for i := range raw.Indices {
				if raw.Indices[i] != idxRes.Indices[i] {
					t.Fatalf("%s/%v: record %d differs: %d vs %d", name, kind, i, raw.Indices[i], idxRes.Indices[i])
				}
			}
		}
	}
}

// TestSelectJointFromIndexMatchesRawPath is the same equivalence for
// the joint-target appendix algorithm.
func TestSelectJointFromIndexMatchesRawPath(t *testing.T) {
	d := dataset.Beta(randx.New(27), 20000, 0.01, 2)
	ix, err := index.New(d.Scores())
	if err != nil {
		t.Fatal(err)
	}
	spec := JointSpec{GammaRecall: 0.8, GammaPrecision: 0.9, Delta: 0.05, StageBudget: 500}
	raw, err := SelectJoint(randx.New(5), d.Scores(), oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	idxRes, err := SelectJointFrom(randx.New(5), ix, oracle.NewSimulated(d), spec, DefaultSUPG())
	if err != nil {
		t.Fatal(err)
	}
	if raw.Tau != idxRes.Tau || raw.OracleCalls != idxRes.OracleCalls || raw.CandidateSize != idxRes.CandidateSize {
		t.Fatalf("joint stats differ: raw %+v vs indexed %+v", raw, idxRes)
	}
	if len(raw.Indices) != len(idxRes.Indices) {
		t.Fatalf("joint result sizes differ: %d vs %d", len(raw.Indices), len(idxRes.Indices))
	}
	for i := range raw.Indices {
		if raw.Indices[i] != idxRes.Indices[i] {
			t.Fatalf("joint record %d differs", i)
		}
	}
}

// TestAssembleFromMergesSampledPositives covers the backward merge of
// labeled positives below the threshold into the presorted suffix.
func TestAssembleFromMergesSampledPositives(t *testing.T) {
	scores := []float64{0.95, 0.05, 0.6, 0.2, 0.8, 0.1}
	ix, err := index.New(scores)
	if err != nil {
		t.Fatal(err)
	}
	tr := TauResult{
		Tau: 0.6,
		// Positives 1 and 5 sit below tau; positive 0 is above; the
		// labeled negative 3 must stay excluded.
		Labeled: map[int]bool{0: true, 1: true, 3: false, 5: true},
	}
	for name, res := range map[string]Result{
		"raw":     assemble(scores, tr),
		"indexed": assembleFrom(ix, tr, nil),
	} {
		want := []int{0, 1, 2, 4, 5}
		if len(res.Indices) != len(want) {
			t.Fatalf("%s: indices %v, want %v", name, res.Indices, want)
		}
		for i := range want {
			if res.Indices[i] != want[i] {
				t.Fatalf("%s: indices %v, want %v", name, res.Indices, want)
			}
		}
		if res.SampledPositives != 2 {
			t.Fatalf("%s: SampledPositives = %d, want 2", name, res.SampledPositives)
		}
	}
}
