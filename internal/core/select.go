package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"supg/internal/oracle"
	"supg/internal/randx"
)

// EstimateTau dispatches to the configured threshold-estimation
// algorithm (the SampleOracle + EstimateTau stages of Algorithm 1) over
// a plain score slice. The oracle must already be budget-wrapped;
// estimators never exceed spec.Budget draws.
func EstimateTau(r *randx.Rand, scores []float64, o *oracle.Budgeted, spec Spec, cfg Config) (TauResult, error) {
	return EstimateTauFrom(r, newRawSource(scores), o, spec, cfg)
}

// EstimateTauFrom is EstimateTau over any ScoreSource. Passing a
// prebuilt index.ScoreIndex amortizes sorting and sampling-structure
// construction across queries; results are identical to the raw-slice
// path for the same random stream.
func EstimateTauFrom(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config) (TauResult, error) {
	// nil arena: the returned TauResult (Labeled map included) escapes
	// to the caller, so every buffer must be freshly owned.
	return estimateTau(r, src, o, spec, cfg, nil)
}

// estimateTau is the arena-threaded dispatch behind EstimateTauFrom.
// With a non-nil arena the TauResult's Labeled map and any scratch are
// arena-owned and die when the calling Select releases it.
func estimateTau(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	if err := spec.Validate(); err != nil {
		return TauResult{}, err
	}
	if src.Len() == 0 {
		return TauResult{}, fmt.Errorf("core: empty dataset")
	}
	cfg = cfg.normalize()

	if cfg.FiniteSample {
		if spec.Kind == RecallTarget {
			return estimateFiniteRecall(r, src, o, spec, ar)
		}
		// Precision targets: Algorithm 3 with exact Clopper-Pearson
		// certificates is finite-sample valid under uniform sampling.
		cfg.Method = MethodUCI
		cfg.Bound = BoundClopperPearson
		return estimateUCIPrecision(r, src, o, spec, cfg, ar)
	}

	switch cfg.Method {
	case MethodUNoCI:
		if spec.Kind == RecallTarget {
			return estimateUNoCIRecall(r, src, o, spec, ar)
		}
		return estimateUNoCIPrecision(r, src, o, spec, ar)
	case MethodUCI:
		if spec.Kind == RecallTarget {
			return estimateUCIRecall(r, src, o, spec, cfg, ar)
		}
		return estimateUCIPrecision(r, src, o, spec, cfg, ar)
	case MethodISCI:
		if spec.Kind == RecallTarget {
			return estimateISRecall(r, src, o, spec, cfg, ar)
		}
		return estimateISPrecision(r, src, o, spec, cfg, ar)
	}
	return TauResult{}, fmt.Errorf("core: unknown method %v", cfg.Method)
}

// Select answers a SUPG query end to end (Algorithm 1) over a plain
// score slice: it wraps the oracle with the budget, estimates tau, and
// returns R = R1 ∪ R2 = {labeled positives} ∪ {x : A(x) >= tau}.
//
// For recall-target queries whose sample surfaces no positives, the
// only recall-safe answer is the full dataset, which Select returns
// (the query stays valid; its quality is the degenerate minimum).
func Select(r *randx.Rand, scores []float64, orc oracle.Oracle, spec Spec, cfg Config) (Result, error) {
	return SelectFrom(r, newRawSource(scores), orc, spec, cfg)
}

// SelectFrom is Select over any ScoreSource — the entry point of the
// indexed hot path. For a fixed random stream it returns exactly the
// records the raw-slice path returns.
func SelectFrom(r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec Spec, cfg Config) (Result, error) {
	return SelectFromContext(context.Background(), r, src, orc, spec, cfg)
}

// SelectFromContext is SelectFrom with cancellation: once ctx is done
// the query stops consuming oracle budget and returns ctx's error. When
// orc implements oracle.BatchOracle (e.g. an oracle.Dispatcher), each
// round of sampled draws is labeled through one batch call, overlapping
// slow oracle latency; results are bit-for-bit identical to the
// sequential path for the same random stream.
func SelectFromContext(ctx context.Context, r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec Spec, cfg Config) (Result, error) {
	return SelectFromContextOptions(ctx, r, src, orc, spec, cfg, SelectOptions{})
}

// SelectOptions carries execution-environment tuning orthogonal to the
// algorithm Config: the cross-query label store tier and its charging
// mode. The zero value runs without a store, exactly as
// SelectFromContext always has.
type SelectOptions struct {
	// Store is a shared label cache consulted before the oracle and
	// extended with every fresh label (nil = none).
	Store oracle.LabelCache
	// FreeReuse makes store hits free instead of budget-charged. The
	// default (charged) mode keeps warm results byte-identical to cold
	// runs; free reuse stretches the effective sample size instead.
	FreeReuse bool
	// OnCachedCharge, when non-nil, is notified each time charged store
	// hits consume budget (n units at a time), so progress accounting
	// that counts real oracle invocations can stay equal to the
	// budget-consumption total.
	OnCachedCharge func(n int)
}

// SelectFromContextOptions is SelectFromContext with a label-store
// tier. In charged mode (the default) the result — Indices, Tau, and
// OracleCalls — is byte-identical to a storeless run; only
// Result.CachedLabels and the inner oracle's call count differ.
func SelectFromContextOptions(ctx context.Context, r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec Spec, cfg Config, sopts SelectOptions) (Result, error) {
	budgeted := oracle.NewBudgeted(orc, spec.Budget).WithContext(ctx).
		WithStore(sopts.Store, sopts.FreeReuse).WithChargeHook(sopts.OnCachedCharge)
	ar := acquireArena()
	defer ar.release()
	tr, err := estimateTau(r, src, budgeted, spec, cfg, ar)
	if err != nil && !errors.Is(err, ErrNoPositives) {
		// An unavailable oracle surfaces with the labels-folded-so-far
		// count: the budget units already consumed are durable (memoized,
		// and persisted when a label store is attached), so a retry of the
		// query resumes warm rather than from zero.
		oracle.NoteLabelsFolded(err, budgeted.Used())
		return Result{}, err
	}
	if errors.Is(err, ErrNoPositives) && spec.Kind == PrecisionTarget {
		// No positives sampled: returning labeled positives only (an
		// empty R1) is the valid PT answer.
		tr.Tau = noSelectionTau()
	}
	res := assembleFrom(src, tr, ar)
	res.CachedLabels = budgeted.StoreHits()
	return res, nil
}

// assemble constructs Algorithm 1's R1 ∪ R2 from a threshold estimate
// over a plain score slice.
func assemble(scores []float64, tr TauResult) Result {
	return assembleFrom(newRawSource(scores), tr, nil)
}

// assembleFrom merges the presorted threshold suffix R2 with the
// (tiny, sorted) list of labeled positives R1. Unlike the historical
// map-plus-full-sort construction this allocates only the result slice
// and the positive list: R2 arrives in ascending id order from the
// source, and the R1 records below the threshold are folded in with a
// single backward merge. The positive list is arena scratch; only the
// result slice (Result.Indices) is a true heap allocation.
func assembleFrom(src ScoreSource, tr TauResult, ar *arena) Result {
	scores := src.Scores()

	// R1: labeled positives, ascending by id.
	pos := ar.intCap(len(tr.Labeled))
	for i, lab := range tr.Labeled { //supg:nondeterminism-ok builds a set of positives; order is restored by the sort below
		if lab {
			pos = append(pos, i)
		}
	}
	slices.Sort(pos)

	noThreshold := math.IsInf(tr.Tau, 1)

	// Keep only the positives the threshold does not already cover —
	// these are also exactly the "sampled only" records reported in
	// Result.SampledPositives.
	extra := pos[:0]
	for _, i := range pos {
		if noThreshold || !(scores[i] >= tr.Tau) {
			extra = append(extra, i)
		}
	}

	if noThreshold {
		// extra is arena scratch; the escaping Indices need their own
		// memory.
		return Result{
			Indices:          append(make([]int, 0, len(extra)), extra...),
			Tau:              tr.Tau,
			OracleCalls:      tr.OracleCalls,
			SampledPositives: len(extra),
		}
	}

	out := make([]int, 0, src.CountAtLeast(tr.Tau)+len(extra))
	out = src.AppendAtLeast(out, tr.Tau)
	k := len(out)
	onlySample := len(extra)
	if onlySample > 0 {
		// Backward merge of the two ascending runs; extra does not
		// alias out, so overwriting out from the tail is safe.
		out = append(out, extra...)
		i, j := k-1, onlySample-1
		for w := len(out) - 1; j >= 0; w-- {
			if i >= 0 && out[i] > extra[j] {
				out[w] = out[i]
				i--
			} else {
				out[w] = extra[j]
				j--
			}
		}
	}
	return Result{
		Indices:          out,
		Tau:              tr.Tau,
		OracleCalls:      tr.OracleCalls,
		SampledPositives: onlySample,
	}
}
