package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"supg/internal/oracle"
	"supg/internal/randx"
)

// EstimateTau dispatches to the configured threshold-estimation
// algorithm (the SampleOracle + EstimateTau stages of Algorithm 1).
// The oracle must already be budget-wrapped; estimators never exceed
// spec.Budget draws.
func EstimateTau(r *randx.Rand, scores []float64, o *oracle.Budgeted, spec Spec, cfg Config) (TauResult, error) {
	if err := spec.Validate(); err != nil {
		return TauResult{}, err
	}
	if len(scores) == 0 {
		return TauResult{}, fmt.Errorf("core: empty dataset")
	}
	cfg = cfg.normalize()

	if cfg.FiniteSample {
		if spec.Kind == RecallTarget {
			return estimateFiniteRecall(r, scores, o, spec)
		}
		// Precision targets: Algorithm 3 with exact Clopper-Pearson
		// certificates is finite-sample valid under uniform sampling.
		cfg.Method = MethodUCI
		cfg.Bound = BoundClopperPearson
		return estimateUCIPrecision(r, scores, o, spec, cfg)
	}

	switch cfg.Method {
	case MethodUNoCI:
		if spec.Kind == RecallTarget {
			return estimateUNoCIRecall(r, scores, o, spec)
		}
		return estimateUNoCIPrecision(r, scores, o, spec)
	case MethodUCI:
		if spec.Kind == RecallTarget {
			return estimateUCIRecall(r, scores, o, spec, cfg)
		}
		return estimateUCIPrecision(r, scores, o, spec, cfg)
	case MethodISCI:
		if spec.Kind == RecallTarget {
			return estimateISRecall(r, scores, o, spec, cfg)
		}
		return estimateISPrecision(r, scores, o, spec, cfg)
	}
	return TauResult{}, fmt.Errorf("core: unknown method %v", cfg.Method)
}

// Select answers a SUPG query end to end (Algorithm 1): it wraps the
// oracle with the budget, estimates tau, and returns
// R = R1 ∪ R2 = {labeled positives} ∪ {x : A(x) >= tau}.
//
// For recall-target queries whose sample surfaces no positives, the
// only recall-safe answer is the full dataset, which Select returns
// (the query stays valid; its quality is the degenerate minimum).
func Select(r *randx.Rand, scores []float64, orc oracle.Oracle, spec Spec, cfg Config) (Result, error) {
	budgeted := oracle.NewBudgeted(orc, spec.Budget)
	tr, err := EstimateTau(r, scores, budgeted, spec, cfg)
	if err != nil && !errors.Is(err, ErrNoPositives) {
		return Result{}, err
	}
	if errors.Is(err, ErrNoPositives) && spec.Kind == PrecisionTarget {
		// No positives sampled: returning labeled positives only (an
		// empty R1) is the valid PT answer.
		tr.Tau = noSelectionTau()
	}
	return assemble(scores, tr), nil
}

// assemble constructs Algorithm 1's R1 ∪ R2 from a threshold estimate.
func assemble(scores []float64, tr TauResult) Result {
	include := make(map[int]struct{})
	fromSample := 0
	for i, lab := range tr.Labeled {
		if lab {
			include[i] = struct{}{}
			fromSample++
		}
	}
	if !math.IsInf(tr.Tau, 1) {
		for i, s := range scores {
			if s >= tr.Tau {
				include[i] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(include))
	for i := range include {
		out = append(out, i)
	}
	sort.Ints(out)

	// Count how many returned records came only from labeling.
	onlySample := 0
	for i, lab := range tr.Labeled {
		if lab && (math.IsInf(tr.Tau, 1) || scores[i] < tr.Tau) {
			onlySample++
		}
	}
	return Result{
		Indices:          out,
		Tau:              tr.Tau,
		OracleCalls:      tr.OracleCalls,
		SampledPositives: onlySample,
	}
}
