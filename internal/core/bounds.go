package core

import (
	"fmt"
	"math"

	"supg/internal/randx"
	"supg/internal/stats"
)

// bounder dispatches mean upper/lower confidence bounds over the CI
// constructions compared in Figure 13. rangeHint is the a-priori width
// of the values' support, needed only by Hoeffding (binary oracle labels
// have width 1; importance-reweighted labels have width max m(x)).
type bounder struct {
	kind      BoundKind
	rng       *randx.Rand
	resamples int
}

func newBounder(cfg Config, rng *randx.Rand) bounder {
	return bounder{kind: cfg.Bound, rng: rng, resamples: cfg.BootstrapResamples}
}

// upper returns an upper confidence bound at failure probability delta
// for the population mean of the distribution behind values.
func (b bounder) upper(values []float64, delta, rangeHint float64) float64 {
	n := len(values)
	if n == 0 {
		return math.Inf(1)
	}
	switch b.kind {
	case BoundNormal:
		m := stats.Summarize(values)
		return stats.UB(m.Mean(), m.StdDev(), n, delta)
	case BoundHoeffding:
		return stats.HoeffdingUB(stats.Mean(values), rangeHint, n, delta)
	case BoundBootstrap:
		return stats.BootstrapUB(b.rng, values, delta, b.resamples)
	case BoundClopperPearson:
		k := binaryCount(values)
		return stats.ClopperPearsonUB(k, n, delta)
	case BoundBernstein:
		m := stats.Summarize(values)
		return stats.BernsteinUB(m.Mean(), m.Variance(), rangeHint, n, delta)
	}
	panic(fmt.Sprintf("core: unknown bound kind %d", int(b.kind)))
}

// lower is the mirror of upper.
func (b bounder) lower(values []float64, delta, rangeHint float64) float64 {
	n := len(values)
	if n == 0 {
		return math.Inf(-1)
	}
	switch b.kind {
	case BoundNormal:
		m := stats.Summarize(values)
		return stats.LB(m.Mean(), m.StdDev(), n, delta)
	case BoundHoeffding:
		return stats.HoeffdingLB(stats.Mean(values), rangeHint, n, delta)
	case BoundBootstrap:
		return stats.BootstrapLB(b.rng, values, delta, b.resamples)
	case BoundClopperPearson:
		k := binaryCount(values)
		return stats.ClopperPearsonLB(k, n, delta)
	case BoundBernstein:
		m := stats.Summarize(values)
		return stats.BernsteinLB(m.Mean(), m.Variance(), rangeHint, n, delta)
	}
	panic(fmt.Sprintf("core: unknown bound kind %d", int(b.kind)))
}

// binaryCount validates that values are all 0/1 and returns the count of
// ones. Clopper–Pearson only applies to uniform binary samples; using it
// with importance-reweighted values is a programming error.
func binaryCount(values []float64) int {
	k := 0
	for _, v := range values {
		switch v {
		case 0:
		case 1:
			k++
		default:
			panic(fmt.Sprintf("core: Clopper-Pearson bound applied to non-binary value %g; it is only valid for uniform sampling", v))
		}
	}
	return k
}
