package core

import (
	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file implements the U-NoCI baselines (Section 5.1): uniform
// sampling with the empirical cutoff and no confidence correction. This
// is the strategy of NoScope and probabilistic predicates; it provides
// no failure-probability guarantee and Figures 5/6 show it failing up
// to ~75% of the time.

// estimateUNoCIRecall implements Eq. 6: tau = max{τ : Recall_S(τ) >= γ}.
func estimateUNoCIRecall(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, ar *arena) (TauResult, error) {
	s, err := drawUniform(r, src.Scores(), o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	tau, ok := s.maxTauWithRecall(spec.Gamma, ar)
	if !ok {
		return TauResult{Tau: selectAllTau, Labeled: s.labels, OracleCalls: s.calls}, ErrNoPositives
	}
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}

// estimateUNoCIPrecision implements Eq. 5: tau = min{τ : Precision_S(τ) >= γ},
// with Precision_S the empirical precision among sampled records at or
// above τ.
func estimateUNoCIPrecision(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, ar *arena) (TauResult, error) {
	s, err := drawUniform(r, src.Scores(), o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	tau := minTauWithEmpiricalPrecision(s, spec.Gamma, ar)
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}

// minTauWithEmpiricalPrecision scans candidate thresholds (distinct
// sampled scores, ascending) and returns the smallest whose empirical
// sample precision meets gamma, or noSelectionTau when none does.
func minTauWithEmpiricalPrecision(s *labeledSample, gamma float64, ar *arena) float64 {
	n := s.len()
	// Suffix sums of positives for O(1) precision at each group start.
	sufPos := ar.floats(n + 1)
	for i := n - 1; i >= 0; i-- {
		sufPos[i] = sufPos[i+1] + s.label[i]
	}
	for _, g := range s.groupStarts() {
		above := float64(n - g)
		if above == 0 {
			continue
		}
		if sufPos[g]/above >= gamma {
			return s.score[g]
		}
	}
	return noSelectionTau()
}
