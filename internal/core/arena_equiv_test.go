package core

import (
	"math"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/oracle"
	"supg/internal/parallel"
	"supg/internal/randx"
)

// This file pins the two new execution details of the read path — the
// pooled scratch arena and intra-query parallelism — as invisible:
// byte-identical Results at every query-parallelism level, every
// segmentation, quantized and float, and between the arena'd Select
// path and the nil-arena public estimator path.

// TestSelectParallelismByteIdentical is the acceptance sweep: Indices,
// Tau, and OracleCalls must be identical across query-parallelism
// 1/2/8 at all four estimator configs and segment sizes 1/7/1024/n,
// quantized and float. n and the segment sizes are chosen so the
// parallel count (>= 32 segments) and parallel gather (>= 16Ki ids)
// fast paths genuinely engage for the sub-monolithic layouts.
func TestSelectParallelismByteIdentical(t *testing.T) {
	const n, budget = 40000, 400
	d := dataset.Beta(randx.New(9090), n, 0.01, 2)
	configs := map[string]Config{
		"SUPG":   DefaultSUPG(),
		"UCI":    DefaultUCI(),
		"UNoCI":  DefaultUNoCI(),
		"Finite": DefaultFinite(),
	}
	for _, segSize := range segmentSizes(n) {
		for _, quantize := range []bool{false, true} {
			mk := func(par int) *index.ScoreIndex {
				ix, err := index.NewWithOptions(d.Scores(), index.Options{
					SegmentSize: segSize,
					Quantize:    quantize,
					QueryPool:   parallel.NewPool(par),
				})
				if err != nil {
					t.Fatal(err)
				}
				return ix
			}
			ref := mk(1)
			for name, cfg := range configs {
				for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
					spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: budget}
					seed := uint64(segSize)*31 + 7
					want, err := SelectFrom(randx.New(seed), ref, oracle.NewSimulated(d), spec, cfg)
					if err != nil {
						t.Fatalf("segSize=%d quant=%v %s/%v sequential: %v", segSize, quantize, name, kind, err)
					}
					for _, par := range []int{2, 8} {
						got, err := SelectFrom(randx.New(seed), mk(par), oracle.NewSimulated(d), spec, cfg)
						if err != nil {
							t.Fatalf("segSize=%d quant=%v %s/%v par=%d: %v", segSize, quantize, name, kind, par, err)
						}
						assertResultsEqual(t, name, want, got)
					}
				}
			}
		}
	}
}

// TestSelectArenaMatchesPublicPath pins that routing scratch through
// the pooled arena changes nothing observable: Select (arena'd) must
// equal EstimateTauFrom (nil arena, caller-owned memory) + assemble,
// and repeated Selects — which reuse dirtied slabs and recycled label
// maps — must keep producing the identical Result.
func TestSelectArenaMatchesPublicPath(t *testing.T) {
	const n = 8000
	d := dataset.Beta(randx.New(5151), n, 0.01, 2)
	for name, cfg := range map[string]Config{"SUPG": DefaultSUPG(), "UCI": DefaultUCI()} {
		for _, kind := range []TargetKind{RecallTarget, PrecisionTarget} {
			spec := Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: 250}

			tr, err := EstimateTauFrom(randx.New(77), newRawSource(d.Scores()),
				oracle.NewBudgeted(oracle.NewSimulated(d), spec.Budget), spec, cfg)
			if err != nil && err != ErrNoPositives {
				t.Fatalf("%s/%v estimate: %v", name, kind, err)
			}
			if err == ErrNoPositives && kind == PrecisionTarget {
				tr.Tau = math.Inf(1)
			}
			want := assemble(d.Scores(), tr)

			for round := 0; round < 3; round++ {
				got, err := Select(randx.New(77), d.Scores(), oracle.NewSimulated(d), spec, cfg)
				if err != nil {
					t.Fatalf("%s/%v round %d: %v", name, kind, round, err)
				}
				assertResultsEqual(t, name, want, got)
			}
		}
	}
}
