package core

import (
	"supg/internal/oracle"
	"supg/internal/randx"
	"supg/internal/stats"
)

// Finite-sample recall-target estimation — an extension beyond the
// paper, whose guarantees are asymptotic (Section 8 calls out
// finite-sample analysis as future work).
//
// The construction uses an exact order-statistics argument. Sample
// records uniformly and keep the k positives. Each sampled positive
// lands below the (1-gamma) quantile of the positive-score
// distribution independently with probability exactly 1-gamma, so the
// number of sampled positives below that quantile is
// X ~ Binomial(k, 1-gamma). Setting tau to the j-th smallest sampled
// positive score fails (RecallD(tau) < gamma) exactly when X <= j-1.
// Choosing the largest j with P(X <= j-1) <= delta therefore yields a
// non-asymptotic guarantee:
//
//	Pr[RecallD(tau_j) >= gamma] >= 1 - delta
//
// at every sample size, with no normal approximation and no plug-in
// variance. When even j=1 is too risky (k too small), the estimator
// falls back to selecting the entire dataset, which is always valid.
//
// The price of exactness is conservatism: tau_j sits below the
// threshold the CLT-based Algorithm 2 picks, so precision (result
// quality) is lower. The ablation-finite experiment quantifies the
// trade.

// estimateFiniteRecall implements the exact finite-sample RT estimator
// over a uniform sample.
func estimateFiniteRecall(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, ar *arena) (TauResult, error) {
	s, err := drawUniform(r, src.Scores(), o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}

	// Collect the sampled positive scores in ascending order (the
	// sample is already score-sorted).
	var posScores []float64
	for i := 0; i < s.len(); i++ {
		if s.label[i] > 0 {
			posScores = append(posScores, s.score[i])
		}
	}
	if len(posScores) == 0 {
		return TauResult{Tau: selectAllTau, Labeled: s.labels, OracleCalls: s.calls}, ErrNoPositives
	}

	j := stats.BinomialTailQuantile(len(posScores), 1-spec.Gamma, spec.Delta)
	if j == 0 {
		// Even the lowest sampled positive is not a safe threshold.
		return TauResult{Tau: selectAllTau, Labeled: s.labels, OracleCalls: s.calls}, nil
	}
	return TauResult{Tau: posScores[j-1], Labeled: s.labels, OracleCalls: s.calls}, nil
}
