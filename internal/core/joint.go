package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"supg/internal/oracle"
	"supg/internal/randx"
)

// JointSpec specifies an appendix JT query: simultaneous recall and
// precision targets with no oracle budget (Figure 14). StageBudget is
// the optimistic budget allocated to the stage-2 recall subroutine.
type JointSpec struct {
	GammaRecall    float64
	GammaPrecision float64
	Delta          float64
	StageBudget    int
}

// Validate reports whether the joint spec is well-formed.
func (s JointSpec) Validate() error {
	if s.GammaRecall <= 0 || s.GammaRecall > 1 {
		return fmt.Errorf("core: recall target %g outside (0, 1]", s.GammaRecall)
	}
	if s.GammaPrecision <= 0 || s.GammaPrecision > 1 {
		return fmt.Errorf("core: precision target %g outside (0, 1]", s.GammaPrecision)
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		return fmt.Errorf("core: failure probability %g outside (0, 1)", s.Delta)
	}
	if s.StageBudget < 2 {
		return fmt.Errorf("core: stage budget %d too small", s.StageBudget)
	}
	return nil
}

// JointResult is the outcome of a JT query.
type JointResult struct {
	// Indices is the sorted final result set (all oracle-verified
	// positives, so its precision is 1).
	Indices []int
	// OracleCalls is the total number of oracle invocations across all
	// three stages — the Figure 15 cost metric.
	OracleCalls int
	// CachedLabels is the number of labels served from the cross-query
	// label store instead of the inner oracle (0 without a store).
	CachedLabels int
	// Tau is the recall-stage threshold.
	Tau float64
	// CandidateSize is |R| before false-positive filtering.
	CandidateSize int
}

// SelectJoint runs the appendix three-stage JT algorithm:
//
//  1. allocate StageBudget optimistically,
//  2. run a recall-target subroutine (cfg selects U-CI or IS-CI) to
//     reach GammaRecall with failure probability Delta,
//  3. exhaustively filter false positives from the candidate set with
//     further oracle calls.
//
// The final set retains every verified positive, so the recall
// guarantee carries over from stage 2 and precision is 1 (>= any
// GammaPrecision). The oracle is unbudgeted by JT semantics.
func SelectJoint(r *randx.Rand, scores []float64, orc oracle.Oracle, spec JointSpec, cfg Config) (JointResult, error) {
	return SelectJointFrom(r, newRawSource(scores), orc, spec, cfg)
}

// SelectJointFrom is SelectJoint over any ScoreSource (see SelectFrom).
func SelectJointFrom(r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec JointSpec, cfg Config) (JointResult, error) {
	return SelectJointFromContext(context.Background(), r, src, orc, spec, cfg)
}

// SelectJointFromContext is SelectJointFrom with cancellation (see
// SelectFromContext). The stage-3 exhaustive filter — by far the most
// oracle-hungry phase of a JT query — labels the whole candidate set
// through one batch call, so a batch-capable oracle verifies candidates
// with bounded parallelism.
func SelectJointFromContext(ctx context.Context, r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec JointSpec, cfg Config) (JointResult, error) {
	return SelectJointFromContextOptions(ctx, r, src, orc, spec, cfg, SelectOptions{})
}

// SelectJointFromContextOptions is SelectJointFromContext with a
// label-store tier. The store attaches to the innermost (unlimited)
// budget wrapper, which every stage's labeling flows through, so in
// charged mode the reported OracleCalls stay byte-identical to a
// storeless run while the inner oracle's call count drops.
func SelectJointFromContextOptions(ctx context.Context, r *randx.Rand, src ScoreSource, orc oracle.Oracle, spec JointSpec, cfg Config, sopts SelectOptions) (JointResult, error) {
	if err := spec.Validate(); err != nil {
		return JointResult{}, err
	}
	rtSpec := Spec{
		Kind:   RecallTarget,
		Gamma:  spec.GammaRecall,
		Delta:  spec.Delta,
		Budget: spec.StageBudget,
	}
	// The stage-3 exhaustive filter needs unrestricted oracle access;
	// wrap with an effectively unlimited budget so call accounting
	// still flows through the same path.
	budgeted := oracle.NewBudgeted(orc, math.MaxInt/2).WithContext(ctx).
		WithStore(sopts.Store, sopts.FreeReuse).WithChargeHook(sopts.OnCachedCharge)
	stageBudgeted := oracle.NewBudgeted(budgeted, spec.StageBudget).WithContext(ctx)

	// Arena scratch is safe here: candidate.Indices is a fresh heap
	// slice and nothing else from the estimate outlives this call.
	ar := acquireArena()
	defer ar.release()
	tr, err := estimateTau(r, src, stageBudgeted, rtSpec, cfg, ar)
	if err != nil {
		if err != ErrNoPositives {
			// Surface the labels-folded-so-far diagnostic on oracle
			// unavailability (see SelectFromContextOptions).
			oracle.NoteLabelsFolded(err, budgeted.Used())
			return JointResult{}, err
		}
		tr.Tau = selectAllTau // recall-safe fallback: verify everything
	}
	candidate := assembleFrom(src, tr, ar)

	// Stage 3: verify every candidate record; keep true positives.
	labs, err := budgeted.LabelAll(candidate.Indices)
	if err != nil {
		err = fmt.Errorf("core: joint filter stage: %w", err)
		oracle.NoteLabelsFolded(err, budgeted.Used())
		return JointResult{}, err
	}
	var final []int
	for pos, i := range candidate.Indices {
		if labs[pos] {
			final = append(final, i)
		}
	}
	sort.Ints(final)
	return JointResult{
		Indices:       final,
		OracleCalls:   budgeted.Used(),
		CachedLabels:  budgeted.StoreHits(),
		Tau:           tr.Tau,
		CandidateSize: len(candidate.Indices),
	}, nil
}
