package core

import (
	"fmt"
	"sort"

	"supg/internal/oracle"
	"supg/internal/randx"
	"supg/internal/sampling"
)

// labeledSample is a set of oracle-labeled draws together with the
// importance reweighting factors m(x) = u(x)/w(x). Uniform samples have
// all m == 1. Draws are kept sorted by ascending proxy score.
type labeledSample struct {
	idx    []int     // record indices (possibly repeated for weighted draws)
	score  []float64 // proxy score per draw
	label  []float64 // oracle label per draw (0 or 1)
	m      []float64 // reweighting factor per draw
	maxM   float64   // max m over the sample (Hoeffding range hint)
	calls  int       // budget-consuming oracle calls spent collecting it
	labels map[int]bool
}

func (s *labeledSample) len() int { return len(s.idx) }

// drawUniform collects k uniform-without-replacement labeled draws.
func drawUniform(r *randx.Rand, scores []float64, o *oracle.Budgeted, k int, ar *arena) (*labeledSample, error) {
	idx := sampling.UniformWithoutReplacement(r, len(scores), k)
	m := ar.floats(len(idx))
	for i := range m {
		m[i] = 1
	}
	return labelDraws(scores, o, idx, m, ar)
}

// drawWeighted collects k with-replacement draws from the defensive
// mixture over the given weights (already normalized to sum 1), with
// m(x) = (1/n) / w(x). It builds a fresh alias table; hot paths with a
// cached table use drawWeightedAlias instead.
func drawWeighted(r *randx.Rand, scores []float64, weights []float64, o *oracle.Budgeted, k int, ar *arena) (*labeledSample, error) {
	return drawWeightedAlias(r, scores, weights, sampling.NewAlias(weights), o, k, ar)
}

// drawWeightedAlias is drawWeighted with a prebuilt alias table for the
// same weights (from ScoreSource.Mixture). Draw sequences are identical
// to drawWeighted's for the same random stream, since an alias table is
// a deterministic function of its weights.
func drawWeightedAlias(r *randx.Rand, scores []float64, weights []float64, alias *sampling.Alias, o *oracle.Budgeted, k int, ar *arena) (*labeledSample, error) {
	if len(weights) != len(scores) {
		return nil, fmt.Errorf("core: %d weights for %d scores", len(weights), len(scores))
	}
	if alias == nil || k <= 0 {
		return nil, fmt.Errorf("core: weighted sampling produced no draws")
	}
	idx := alias.DrawNInto(r, ar.ints(k))
	u := 1.0 / float64(len(scores))
	m := ar.floats(len(idx))
	for i, j := range idx {
		m[i] = u / weights[j]
	}
	return labelDraws(scores, o, idx, m, ar)
}

// drawWeightedSubset draws k records from the subset of record indices
// subset, with weights proportional to weightOf over the subset, and
// m(x) = (1/|subset|) / w'(x) where w' is normalized within the subset.
func drawWeightedSubset(r *randx.Rand, scores []float64, subset []int, weightOf []float64, o *oracle.Budgeted, k int, ar *arena) (*labeledSample, error) {
	if len(subset) == 0 {
		return nil, fmt.Errorf("core: empty subset for weighted sampling")
	}
	w := ar.floats(len(subset))
	total := 0.0
	for i, j := range subset {
		w[i] = weightOf[j]
		total += w[i]
	}
	if total <= 0 {
		for i := range w {
			w[i] = 1
		}
		total = float64(len(w))
	}
	local := sampling.WeightedWithReplacement(r, w, k)
	if local == nil {
		return nil, fmt.Errorf("core: weighted subset sampling produced no draws")
	}
	u := 1.0 / float64(len(subset))
	idx := ar.ints(len(local))
	m := ar.floats(len(local))
	for i, li := range local {
		idx[i] = subset[li]
		m[i] = u / (w[li] / total)
	}
	return labelDraws(scores, o, idx, m, ar)
}

// labelDraws queries the oracle for each draw and assembles the sample,
// sorted by ascending proxy score. The whole draw set is handed to the
// oracle in one LabelAll call, so a batch-capable oracle (one wrapped
// in an oracle.Dispatcher) fetches the labels with bounded parallelism;
// the labels come back in draw order and the budget accounting matches
// the sequential loop exactly, so results are identical either way.
func labelDraws(scores []float64, o *oracle.Budgeted, idx []int, m []float64, ar *arena) (*labeledSample, error) {
	before := o.Used()
	s := &labeledSample{
		idx:    ar.ints(len(idx)),
		score:  ar.floats(len(idx)),
		label:  ar.floats(len(idx)),
		m:      ar.floats(len(idx)),
		labels: ar.labelMap(len(idx)),
	}
	order := ar.ints(len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[idx[order[a]]] < scores[idx[order[b]]] })

	sorted := ar.ints(len(idx))
	for pos, oi := range order {
		sorted[pos] = idx[oi]
	}
	labs, err := o.LabelAll(sorted)
	if err != nil {
		return nil, fmt.Errorf("core: labeling draws: %w", err)
	}

	for pos, oi := range order {
		j := sorted[pos]
		s.idx[pos] = j
		s.score[pos] = scores[j]
		if labs[pos] {
			s.label[pos] = 1
		}
		s.m[pos] = m[oi]
		if s.m[pos] > s.maxM {
			s.maxM = s.m[pos]
		}
		s.labels[j] = labs[pos]
	}
	s.calls = o.Used() - before
	return s, nil
}

// weightedPositiveTotal returns Σ O(x)·m(x) over the sample — the
// denominator of the reweighted recall estimate (Eq. 11).
func (s *labeledSample) weightedPositiveTotal() float64 {
	total := 0.0
	for i := range s.label {
		total += s.label[i] * s.m[i]
	}
	return total
}

// suffixPositive returns the array suf where suf[k] = Σ_{i>=k} O·m,
// with one extra trailing 0 entry, so recall at threshold score[k]
// (inclusive of ties handled by the caller) is suf[k]/total.
func (s *labeledSample) suffixPositive(ar *arena) []float64 {
	n := s.len()
	suf := ar.floats(n + 1)
	for i := n - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + s.label[i]*s.m[i]
	}
	return suf
}

// maxTauWithRecall returns the largest sampled score tau such that the
// (reweighted) empirical recall of {A >= tau} is at least gamma — the
// max{τ : Recall_S(τ) >= γ} primitive of Algorithms 2 and 4. The second
// return is false when the sample has no positive mass.
func (s *labeledSample) maxTauWithRecall(gamma float64, ar *arena) (float64, bool) {
	total := s.weightedPositiveTotal()
	if total <= 0 {
		return 0, false
	}
	suf := s.suffixPositive(ar)
	n := s.len()
	// Walk distinct score groups from the highest score downward; the
	// first (largest) threshold whose suffix recall reaches gamma wins.
	k := n
	for k > 0 {
		// Find the start of the tie group ending at k-1.
		start := k - 1
		for start > 0 && s.score[start-1] == s.score[k-1] {
			start--
		}
		recall := suf[start] / total
		if recall >= gamma {
			return s.score[start], true
		}
		k = start
	}
	// Even including every sampled record the recall is < gamma, which
	// cannot happen since suffix(0) == total; defensive fallback.
	return s.score[0], true
}

// groupStarts returns the index of the first draw of each distinct
// score-tie group, ascending.
func (s *labeledSample) groupStarts() []int {
	var starts []int
	for i := 0; i < s.len(); i++ {
		if i == 0 || s.score[i] != s.score[i-1] {
			starts = append(starts, i)
		}
	}
	return starts
}
