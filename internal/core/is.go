package core

import (
	"maps"
	"math"
	"sort"

	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file implements the SUPG importance-sampling estimators:
// Algorithm 4 (IS-CI-R) and Algorithm 5 (IS-CI-P, two-stage) plus the
// one-stage precision variant evaluated in Figure 7. Sampling weights
// are proxy scores raised to cfg.WeightExponent (paper optimum: 0.5,
// Theorem 1) defensively mixed with the uniform distribution; the
// weights and their alias table come from the ScoreSource, which caches
// them per (exponent, mix) on the indexed hot path.

// estimateISRecall implements Algorithm 4. It reuses the Algorithm 2
// body on an importance-weighted sample: the reweighted indicators
// O(x)·m(x) make the UB/LB machinery estimate dataset-level recall.
func estimateISRecall(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	weights, alias := src.Mixture(cfg.WeightExponent, cfg.Mix)
	s, err := drawWeightedAlias(r, src.Scores(), weights, alias, o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	b := newBounder(cfg, r.Stream(0xc0))
	tau, err := recallThresholdWithCI(s, spec, b, ar)
	if err != nil {
		return TauResult{Tau: selectAllTau, Labeled: s.labels, OracleCalls: s.calls}, err
	}
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}

// scoreIndex supports O(log n) exact |D(τ)| counts via a sorted copy of
// the proxy-score column. It backs rawSource for one-shot queries; the
// engine path uses the persistent index.ScoreIndex instead.
type scoreIndex struct {
	sorted []float64
}

func newScoreIndex(scores []float64) *scoreIndex {
	s := make([]float64, len(scores))
	copy(s, scores)
	sort.Float64s(s)
	return &scoreIndex{sorted: s}
}

// countAtLeast returns |{x : A(x) >= tau}| exactly.
func (ix *scoreIndex) countAtLeast(tau float64) int {
	return len(ix.sorted) - sort.SearchFloat64s(ix.sorted, tau)
}

// kthHighest returns the k-th highest score (k is 0-based); k beyond the
// data returns the minimum score.
func (ix *scoreIndex) kthHighest(k int) float64 {
	n := len(ix.sorted)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return ix.sorted[n-1-k]
}

// estimateISPrecision implements Algorithm 5 (two-stage) or its
// one-stage variant, per cfg.TwoStage.
//
// Implementation note (documented in DESIGN.md): for candidate
// certification we lower-bound the positive count Σ_D 1[A>=τ]·O by
// importance sampling and divide by the exactly known |D(τ)|. This
// keeps the estimator unbiased under weighted sampling, whereas the
// plain subset-mean of Algorithm 3 is only unbiased for uniform draws.
func estimateISPrecision(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	if cfg.TwoStage {
		return estimateISPrecisionTwoStage(r, src, o, spec, cfg, ar)
	}
	return estimateISPrecisionOneStage(r, src, o, spec, cfg, ar)
}

func estimateISPrecisionOneStage(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	weights, alias := src.Mixture(cfg.WeightExponent, cfg.Mix)
	s, err := drawWeightedAlias(r, src.Scores(), weights, alias, o, spec.Budget, ar)
	if err != nil {
		return TauResult{}, err
	}
	b := newBounder(cfg, r.Stream(0xc1))
	tau := certifyMinPrecisionTau(s, src, float64(src.Len()), spec, cfg, b, spec.Delta, ar)
	return TauResult{Tau: tau, Labeled: s.labels, OracleCalls: s.calls}, nil
}

func estimateISPrecisionTwoStage(r *randx.Rand, src ScoreSource, o *oracle.Budgeted, spec Spec, cfg Config, ar *arena) (TauResult, error) {
	scores := src.Scores()
	n := len(scores)
	weights, alias := src.Mixture(cfg.WeightExponent, cfg.Mix)
	b := newBounder(cfg, r.Stream(0xc2))

	// Stage 1: estimate an upper bound on the number of matches with
	// half the budget, spending half the failure probability.
	half := spec.Budget / 2
	s0, err := drawWeightedAlias(r.Stream(1), scores, weights, alias, o, half, ar)
	if err != nil {
		return TauResult{}, err
	}
	z := ar.floats(s0.len())
	for i := range z {
		z[i] = s0.label[i] * s0.m[i]
	}
	nMatchUB := float64(n) * b.upper(z, spec.Delta/2, math.Max(s0.maxM, 1))
	if nMatchUB < 0 {
		nMatchUB = 0
	}

	// Restrict stage 2 to D' — the records whose score is at least the
	// (nMatch/γ)-th highest: no lower threshold can reach precision γ.
	cut := int(nMatchUB / spec.Gamma)
	aCut := src.KthHighest(cut)
	subset := src.AppendAtLeast(make([]int, 0, src.CountAtLeast(aCut)), aCut)
	if len(subset) == 0 {
		// Degenerate: no plausible matches anywhere.
		return TauResult{Tau: noSelectionTau(), Labeled: s0.labels, OracleCalls: s0.calls}, nil
	}

	// Stage 2: weighted sampling within D', candidate certification with
	// the remaining half of the budget and failure probability.
	s1, err := drawWeightedSubset(r.Stream(2), scores, subset, weights, o, spec.Budget-half, ar)
	if err != nil {
		return TauResult{}, err
	}
	tau := certifyMinPrecisionTau(s1, src, float64(len(subset)), spec, cfg, b, spec.Delta/2, ar)

	labels := ar.labelMap(len(s0.labels) + len(s1.labels))
	maps.Copy(labels, s0.labels)
	maps.Copy(labels, s1.labels)
	return TauResult{Tau: tau, Labeled: labels, OracleCalls: s0.calls + s1.calls}, nil
}

// certifyMinPrecisionTau scans every MinStep-th sampled score ascending
// and returns the smallest candidate whose dataset precision is
// certified above gamma with the given total failure probability split
// across candidates by union bound. domainSize is the number of records
// the sample's m(x) factors normalize over (|D| or |D'|).
func certifyMinPrecisionTau(s *labeledSample, src ScoreSource, domainSize float64, spec Spec, cfg Config, b bounder, delta float64, ar *arena) float64 {
	n := s.len()
	// Clamp the stride to the sample size so a budget below MinStep
	// still yields one candidate (the full sample) instead of none —
	// the uniform variant in uci.go applies the same clamp.
	step := cfg.MinStep
	if step > n {
		step = n
	}
	numCandidates := n / step
	deltaEach := delta / float64(numCandidates)
	rangeHint := math.Max(s.maxM, 1)

	y := ar.floats(n)
	prev := math.Inf(-1)
	for i := step; i <= n; i += step {
		cand := s.score[i-1]
		if cand == prev {
			continue
		}
		prev = cand
		for j := 0; j < n; j++ {
			if s.score[j] >= cand {
				y[j] = s.label[j] * s.m[j]
			} else {
				y[j] = 0
			}
		}
		posLB := domainSize * b.lower(y, deltaEach, rangeHint)
		sel := src.CountAtLeast(cand)
		if sel == 0 {
			continue
		}
		if posLB/float64(sel) > spec.Gamma {
			return cand
		}
	}
	return noSelectionTau()
}
