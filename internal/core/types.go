// Package core implements the SUPG threshold-estimation and selection
// algorithms from "Approximate Selection with Guarantees using Proxies"
// (Kang et al., PVLDB 2020):
//
//   - U-NoCI   — the no-guarantee baselines used by prior systems
//     (NoScope, probabilistic predicates): pick the empirical cutoff.
//   - U-CI     — uniform sampling with confidence intervals
//     (Algorithms 2 and 3).
//   - IS-CI    — importance sampling with sqrt-proxy weights and
//     defensive mixing (Algorithms 4 and 5; 5 is two-stage). This is
//     the SUPG method.
//   - Joint    — the appendix algorithm satisfying recall and precision
//     targets simultaneously with an unbounded oracle.
//
// All estimators consume a proxy-score column, an oracle, and a Spec,
// and produce a proxy threshold tau such that returning
// R = {labeled positives} ∪ {x : A(x) >= tau} meets the target metric
// with probability at least 1-delta (for the CI methods).
package core

import (
	"errors"
	"fmt"
	"math"
)

// TargetKind distinguishes recall-target (RT) from precision-target (PT)
// queries.
type TargetKind int

const (
	// RecallTarget queries guarantee Recall(R) >= Gamma.
	RecallTarget TargetKind = iota
	// PrecisionTarget queries guarantee Precision(R) >= Gamma.
	PrecisionTarget
)

// String implements fmt.Stringer.
func (k TargetKind) String() string {
	switch k {
	case RecallTarget:
		return "recall"
	case PrecisionTarget:
		return "precision"
	}
	return fmt.Sprintf("TargetKind(%d)", int(k))
}

// Spec is a SUPG query specification: the target metric and level, the
// failure probability, and the oracle budget (Figure 3's clauses).
type Spec struct {
	Kind   TargetKind
	Gamma  float64 // target recall or precision, in (0, 1]
	Delta  float64 // failure probability, in (0, 1)
	Budget int     // oracle call budget s
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	if s.Gamma <= 0 || s.Gamma > 1 {
		return fmt.Errorf("core: target %g outside (0, 1]", s.Gamma)
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		return fmt.Errorf("core: failure probability %g outside (0, 1)", s.Delta)
	}
	if s.Budget < 2 {
		return fmt.Errorf("core: oracle budget %d too small (need >= 2)", s.Budget)
	}
	return nil
}

// Method identifies a threshold-estimation algorithm family.
type Method int

const (
	// MethodUNoCI is uniform sampling without confidence intervals —
	// the empirical-cutoff strategy of prior work; no guarantees.
	MethodUNoCI Method = iota
	// MethodUCI is uniform sampling with confidence intervals
	// (Algorithms 2 and 3).
	MethodUCI
	// MethodISCI is importance sampling with confidence intervals
	// (Algorithms 4 and 5) — the SUPG method.
	MethodISCI
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodUNoCI:
		return "U-NoCI"
	case MethodUCI:
		return "U-CI"
	case MethodISCI:
		return "IS-CI"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// BoundKind selects the confidence-interval construction (Figure 13).
type BoundKind int

const (
	// BoundNormal is the paper's default Lemma 1 normal approximation.
	BoundNormal BoundKind = iota
	// BoundHoeffding is the distribution-free Hoeffding inequality.
	BoundHoeffding
	// BoundBootstrap is the percentile bootstrap.
	BoundBootstrap
	// BoundClopperPearson is the exact binomial interval; valid only for
	// uniform sampling of binary outcomes (U-CI).
	BoundClopperPearson
	// BoundBernstein is the empirical-Bernstein bound: finite-sample
	// valid like Hoeffding but variance-adaptive like the normal
	// approximation. An extension beyond the paper (its Section 8 lists
	// finite-sample analysis as future work).
	BoundBernstein
)

// String implements fmt.Stringer.
func (b BoundKind) String() string {
	switch b {
	case BoundNormal:
		return "normal"
	case BoundHoeffding:
		return "hoeffding"
	case BoundBootstrap:
		return "bootstrap"
	case BoundClopperPearson:
		return "clopper-pearson"
	case BoundBernstein:
		return "bernstein"
	}
	return fmt.Sprintf("BoundKind(%d)", int(b))
}

// Config selects and parameterizes an estimation algorithm. The zero
// value is not useful; start from DefaultSUPG, DefaultUCI, or
// DefaultUNoCI and adjust.
type Config struct {
	Method Method
	// TwoStage enables the Algorithm 5 two-stage sampling for
	// precision-target IS-CI queries. Ignored otherwise.
	TwoStage bool
	// WeightExponent is the power applied to proxy scores when forming
	// importance weights. The paper proves 0.5 optimal for calibrated
	// proxies (Theorem 1); 0 degenerates to uniform and 1 to
	// proportional sampling.
	WeightExponent float64
	// Mix is the defensive uniform-mixing ratio in [0,1) guarding
	// against adversarial proxies (Owen & Zhou); the paper uses 0.1.
	Mix float64
	// MinStep is the candidate-threshold stride m for PT queries
	// (Algorithms 3/5); the paper uses 100.
	MinStep int
	// Bound selects the CI construction; BoundNormal is the default.
	Bound BoundKind
	// BootstrapResamples overrides the bootstrap resample count
	// (0 = stats.DefaultBootstrapResamples).
	BootstrapResamples int
	// FiniteSample switches to estimators whose guarantees hold at
	// every sample size rather than asymptotically: an exact
	// order-statistics construction for recall targets and
	// Clopper-Pearson-certified candidates for precision targets. Both
	// require uniform sampling, so Method is forced to MethodUCI.
	// This extends the paper, which analyzes only the asymptotic
	// regime. Results are more conservative (lower quality) than the
	// default CLT-based estimators.
	FiniteSample bool
}

// DefaultFinite returns the finite-sample configuration: uniform
// sampling with non-asymptotic certificates.
func DefaultFinite() Config {
	return Config{Method: MethodUCI, MinStep: 100, Bound: BoundClopperPearson, FiniteSample: true}
}

// DefaultSUPG returns the paper's recommended configuration: importance
// sampling with sqrt weights, 0.1 defensive mixing, two-stage PT
// estimation, and normal-approximation bounds.
func DefaultSUPG() Config {
	return Config{
		Method:         MethodISCI,
		TwoStage:       true,
		WeightExponent: 0.5,
		Mix:            0.1,
		MinStep:        100,
		Bound:          BoundNormal,
	}
}

// DefaultUCI returns the uniform-sampling-with-guarantees baseline.
func DefaultUCI() Config {
	return Config{Method: MethodUCI, MinStep: 100, Bound: BoundNormal}
}

// DefaultUNoCI returns the prior-work baseline without guarantees.
func DefaultUNoCI() Config {
	return Config{Method: MethodUNoCI, MinStep: 100}
}

// normalize fills unset fields with defaults.
func (c Config) normalize() Config {
	if c.MinStep <= 0 {
		c.MinStep = 100
	}
	if c.Method == MethodISCI && c.WeightExponent == 0 && c.Mix == 0 {
		// A fully-zero IS config is almost certainly an uninitialized
		// struct; use the paper defaults rather than degenerate uniform.
		c.WeightExponent = 0.5
		c.Mix = 0.1
	}
	return c
}

// TauResult is the outcome of threshold estimation.
type TauResult struct {
	// Tau is the selection threshold. math.Inf(1) means no threshold
	// was certifiable and only labeled positives should be returned.
	Tau float64
	// Labeled maps each oracle-labeled record index to its label.
	Labeled map[int]bool
	// OracleCalls is the number of budget-consuming oracle invocations.
	OracleCalls int
}

// Result is a complete SUPG query answer (Algorithm 1's R1 ∪ R2).
type Result struct {
	// Indices is the sorted set of returned record indices.
	Indices []int
	// Tau is the proxy threshold used for the R2 component.
	Tau float64
	// OracleCalls is the number of budget-consuming oracle calls made.
	OracleCalls int
	// SampledPositives is the number of returned records that came from
	// oracle labels (the R1 component) rather than the threshold.
	SampledPositives int
	// CachedLabels is the number of labels served from the cross-query
	// label store instead of the inner oracle (0 without a store). In
	// charged mode these still count in OracleCalls.
	CachedLabels int
}

// ErrNoPositives is returned by recall-target estimation when the
// sample contains no positive labels, in which case no data-driven
// threshold exists. Select treats it by returning the whole dataset
// (the only recall-safe answer).
var ErrNoPositives = errors.New("core: no positive oracle labels in sample")

// selectAllTau is the threshold that admits every record.
const selectAllTau = 0.0

// noSelectionTau admits no records (R2 empty).
func noSelectionTau() float64 { return math.Inf(1) }
