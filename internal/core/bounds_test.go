package core

import (
	"math"
	"testing"

	"supg/internal/randx"
	"supg/internal/stats"
)

func TestBounderNormalMatchesStats(t *testing.T) {
	values := []float64{0, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	b := bounder{kind: BoundNormal}
	m := stats.Summarize(values)
	wantU := stats.UB(m.Mean(), m.StdDev(), len(values), 0.05)
	wantL := stats.LB(m.Mean(), m.StdDev(), len(values), 0.05)
	if got := b.upper(values, 0.05, 1); got != wantU {
		t.Errorf("upper %v want %v", got, wantU)
	}
	if got := b.lower(values, 0.05, 1); got != wantL {
		t.Errorf("lower %v want %v", got, wantL)
	}
}

func TestBounderHoeffdingUsesRangeHint(t *testing.T) {
	values := []float64{0, 5, 5, 0}
	b := bounder{kind: BoundHoeffding}
	narrow := b.upper(values, 0.05, 5)
	wide := b.upper(values, 0.05, 50)
	if wide <= narrow {
		t.Error("larger range hint should widen the Hoeffding bound")
	}
}

func TestBounderBootstrap(t *testing.T) {
	r := randx.New(1)
	values := make([]float64, 400)
	for i := range values {
		values[i] = r.Float64()
	}
	b := bounder{kind: BoundBootstrap, rng: randx.New(2), resamples: 300}
	lo := b.lower(values, 0.05, 1)
	hi := b.upper(values, 0.05, 1)
	mean := stats.Mean(values)
	if !(lo <= mean && mean <= hi) {
		t.Errorf("bootstrap bounds [%v,%v] should bracket mean %v", lo, hi, mean)
	}
}

func TestBounderClopperPearsonBinary(t *testing.T) {
	values := []float64{1, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	b := bounder{kind: BoundClopperPearson}
	lo := b.lower(values, 0.05, 1)
	hi := b.upper(values, 0.05, 1)
	if !(lo < 0.2 && 0.2 < hi) {
		t.Errorf("CP bounds [%v,%v] should bracket 0.2", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Error("CP bounds must stay in [0,1]")
	}
}

func TestBounderClopperPearsonPanicsOnNonBinary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CP on weighted values must panic")
		}
	}()
	b := bounder{kind: BoundClopperPearson}
	b.lower([]float64{0.5, 1}, 0.05, 1)
}

func TestBounderEmptyValues(t *testing.T) {
	for _, kind := range []BoundKind{BoundNormal, BoundHoeffding, BoundBootstrap, BoundClopperPearson} {
		b := bounder{kind: kind, rng: randx.New(3)}
		if !math.IsInf(b.upper(nil, 0.05, 1), 1) {
			t.Errorf("%v: empty upper should be +Inf", kind)
		}
		if !math.IsInf(b.lower(nil, 0.05, 1), -1) {
			t.Errorf("%v: empty lower should be -Inf", kind)
		}
	}
}

func TestBoundKindStrings(t *testing.T) {
	names := map[BoundKind]string{
		BoundNormal:         "normal",
		BoundHoeffding:      "hoeffding",
		BoundBootstrap:      "bootstrap",
		BoundClopperPearson: "clopper-pearson",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
