package core

import (
	"testing"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

func TestFiniteRecallValidityAtSmallSamples(t *testing.T) {
	// The regime where CLT-based estimators are shaky: a small budget
	// with a handful of positives. The exact construction must hold.
	d := dataset.Beta(randx.New(1), 40000, 0.05, 1) // ~4.7% positives
	spec := Spec{Kind: RecallTarget, Gamma: 0.8, Delta: 0.05, Budget: 400}
	fail, _ := trialStats(t, d, spec, DefaultFinite(), 80, 50)
	if fail > 0.1 {
		t.Fatalf("finite-sample RT failure rate %v exceeds delta 0.05", fail)
	}
}

func TestFinitePrecisionValidity(t *testing.T) {
	d := dataset.Beta(randx.New(2), 40000, 0.05, 1)
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.8, Delta: 0.05, Budget: 1000}
	fail, _ := trialStats(t, d, spec, DefaultFinite(), 60, 51)
	if fail > 0.1 {
		t.Fatalf("finite-sample PT failure rate %v exceeds delta 0.05", fail)
	}
}

func TestFiniteTauIsSampledPositiveScore(t *testing.T) {
	// The exact construction picks the j-th smallest sampled positive
	// score: the returned threshold must be the score of a record the
	// oracle labeled positive.
	d := dataset.Beta(randx.New(3), 60000, 0.05, 1)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	budgeted := oracle.NewBudgeted(oracle.NewSimulated(d), spec.Budget)
	fin, err := EstimateTau(randx.New(99), d.Scores(), budgeted, spec, DefaultFinite())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for idx, lab := range fin.Labeled {
		if lab && d.Score(idx) == fin.Tau {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("tau %v is not the score of any labeled positive", fin.Tau)
	}
	// Same seed reproduces.
	budgeted2 := oracle.NewBudgeted(oracle.NewSimulated(d), spec.Budget)
	fin2, err := EstimateTau(randx.New(99), d.Scores(), budgeted2, spec, DefaultFinite())
	if err != nil {
		t.Fatal(err)
	}
	if fin2.Tau != fin.Tau {
		t.Fatal("finite estimator not deterministic under a fixed seed")
	}
}

func TestFiniteFallsBackToSelectAll(t *testing.T) {
	// With almost no positives the exact construction cannot certify
	// any in-sample threshold and must select everything.
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = float64(i) / float64(n)
	}
	// 10 positives at arbitrary scores.
	for i := 0; i < 10; i++ {
		labels[i*1000] = true
	}
	d := dataset.MustNew("sparse", scores, labels)
	spec := Spec{Kind: RecallTarget, Gamma: 0.95, Delta: 0.05, Budget: 2000}
	res, err := Select(randx.New(4), d.Scores(), oracle.NewSimulated(d), spec, DefaultFinite())
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Evaluate(d, res.Indices).Recall < 0.95 {
		t.Fatal("fallback did not preserve the recall target")
	}
}

func TestFiniteNoPositives(t *testing.T) {
	n := 5000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = 0.5
	}
	labels[0] = true // unreachable by most samples
	d := dataset.MustNew("rare", scores, labels)
	spec := Spec{Kind: RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 50}
	res, err := Select(randx.New(5), d.Scores(), oracle.NewSimulated(d), spec, DefaultFinite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != n {
		t.Fatalf("no-positive fallback returned %d of %d records", len(res.Indices), n)
	}
}

func TestBernsteinBoundUsableInEstimators(t *testing.T) {
	d := dataset.Beta(randx.New(6), 30000, 0.05, 1)
	cfg := DefaultUCI()
	cfg.Bound = BoundBernstein
	spec := Spec{Kind: PrecisionTarget, Gamma: 0.8, Delta: 0.05, Budget: 1500}
	fail, _ := trialStats(t, d, spec, cfg, 40, 52)
	if fail > 0.1 {
		t.Fatalf("Bernstein-certified PT failure rate %v", fail)
	}
}
