package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// resultPathPackages are the packages whose outputs must be a pure
// function of (data, seed): every byte-identical-results guarantee —
// segmented vs monolithic, quantized vs float, warm vs cold, retried
// vs fault-free — is proved by tests that assume it.
var resultPathPackages = []string{
	"internal/core",
	"internal/index",
	"internal/parallel",
	"internal/sampling",
	"internal/dist",
	"internal/multiproxy",
	"internal/stats",
}

// Determinism flags nondeterminism sources in result-path packages:
// wall-clock reads, the global math/rand stream, map iteration, and
// goroutine-order-dependent channel fan-in. Sites where ordering
// provably does not reach the result carry a
// //supg:nondeterminism-ok <reason> annotation.
var Determinism = &Analyzer{
	Name:       "determinism",
	Doc:        "flag wall-clock, global rand, map iteration, and channel-order dependence in result-path packages",
	Annotation: "nondeterminism",
	Packages:   resultPathPackages,
	Run:        runDeterminism,
}

// rngConstructors are the math/rand functions that build an explicitly
// seeded generator rather than touching the global stream.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	pass.InspectFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Report(n.Pos(),
						"map iteration order is randomized per run; it must not reach a result or an on-disk byte",
						"iterate a sorted key slice (sort + index), or annotate with //supg:nondeterminism-ok <reason> if order provably cannot escape")
				case *types.Chan:
					pass.Report(n.Pos(),
						"range over a channel yields values in goroutine completion order",
						"collect results into an index-addressed slice and iterate by position")
				}
			case *ast.SelectStmt:
				recvs := 0
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					if isRecvComm(cc.Comm) {
						recvs++
					}
				}
				if recvs >= 2 {
					pass.Report(n.Pos(),
						"select over multiple ready receives picks a case pseudo-randomly; fan-in order is not deterministic",
						"drain channels in a fixed order, or merge by index after all sends complete")
				}
			}
			return true
		})
	})
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Report(call.Pos(),
				fmt.Sprintf("time.%s in result-path code: results must be a pure function of (data, seed)", fn.Name()),
				"inject a clock (see oracle.Clock) or move the timing out of the result path")
		}
	case "math/rand", "math/rand/v2":
		if !rngConstructors[fn.Name()] {
			pass.Report(call.Pos(),
				fmt.Sprintf("global %s.%s bypasses the seeded per-query random stream", fn.Pkg().Name(), fn.Name()),
				"derive a generator from the query's seeded stream (internal/randx) and thread it explicitly")
		}
	}
}

func isRecvComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op.String() == "<-"
		}
	}
	return false
}
