package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked unit: a directory's library files plus
// its in-package test files (or, for XTest, the external _test
// package's files alone).
type Package struct {
	// Path is the import path ("<module>/_test"-suffixed for external
	// test packages).
	Path string
	// Dir is the absolute directory.
	Dir string
	// XTest marks the external test package variant.
	XTest bool
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Module is a loaded, fully type-checked module tree.
type Module struct {
	Root     string
	Path     string
	Fset     *token.FileSet
	Packages []*Package
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load parses and type-checks every package under the module rooted at
// root, for the host build configuration (GOOS/GOARCH of this
// process, cgo off). Imports — stdlib and module-internal alike — are
// resolved from gc export data produced by `go list -export`, so the
// loader works without network access or a vendored x/tools.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	m := moduleLineRE.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	modPath := string(m[1])

	fset := token.NewFileSet()
	type dirFiles struct {
		rel        string
		lib, xtest []*ast.File
	}
	var dirs []*dirFiles
	imports := map[string]bool{}

	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || !includeFileName(filepath.Base(path)) {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		if !buildConstraintsMatch(f) {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		var df *dirFiles
		for _, d := range dirs {
			if d.rel == rel {
				df = d
				break
			}
		}
		if df == nil {
			df = &dirFiles{rel: rel}
			dirs = append(dirs, df)
		}
		if strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(path, "_test.go") {
			df.xtest = append(df.xtest, f)
		} else {
			df.lib = append(df.lib, f)
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" && p != "C" {
				imports[p] = true
			}
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}

	exp := newExportCache(root)
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if err := exp.preload(paths); err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", exp.open)

	mod := &Module{Root: root, Path: modPath, Fset: fset}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].rel < dirs[j].rel })
	for _, df := range dirs {
		ipath := modPath
		if df.rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(df.rel)
		}
		if len(df.lib) > 0 {
			pkg, err := checkUnit(fset, imp, ipath, filepath.Join(root, df.rel), df.lib, false)
			if err != nil {
				return nil, err
			}
			mod.Packages = append(mod.Packages, pkg)
		}
		if len(df.xtest) > 0 {
			pkg, err := checkUnit(fset, imp, ipath+"_test", filepath.Join(root, df.rel), df.xtest, true)
			if err != nil {
				return nil, err
			}
			mod.Packages = append(mod.Packages, pkg)
		}
	}
	return mod, nil
}

// NewStdImporter returns an importer over gc export data rooted at
// dir's module, for type-checking standalone fixture packages.
func NewStdImporter(fset *token.FileSet, dir string) types.Importer {
	exp := newExportCache(dir)
	return importer.ForCompiler(fset, "gc", exp.open)
}

func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File, xtest bool) (*Package, error) {
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(terrs) > 0 {
		max := len(terrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range terrs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-check %s: %s", path, strings.Join(msgs, "; "))
	}
	return &Package{Path: path, Dir: dir, XTest: xtest, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// exportCache maps import paths to gc export-data files via
// `go list -export`, batching the initial known set into one call.
type exportCache struct {
	dir   string
	mu    sync.Mutex
	files map[string]string
}

func newExportCache(dir string) *exportCache {
	return &exportCache{dir: dir, files: map[string]string{}}
}

func (c *exportCache) preload(paths []string) error {
	if len(paths) == 0 {
		return nil
	}
	args := append([]string{"list", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = c.dir
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return fmt.Errorf("lint: go list -export failed%s (%v)", detail, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			c.files[ip] = file
		}
	}
	return nil
}

// open serves gc export data for path, falling back to a one-off
// `go list -export` for transitively referenced packages that were
// not in the preloaded set.
func (c *exportCache) open(path string) (io.ReadCloser, error) {
	c.mu.Lock()
	file, ok := c.files[path]
	c.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = c.dir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list -export %s: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %s", path)
		}
		c.mu.Lock()
		c.files[path] = file
		c.mu.Unlock()
	}
	return os.Open(file)
}

// includeFileName applies the toolchain's file-name rules for the host
// configuration: no leading _ or ., and any _GOOS/_GOARCH suffix must
// match this process's GOOS/GOARCH.
func includeFileName(name string) bool {
	if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	// Check the last one or two _-separated tokens against the known
	// OS/arch lists, mirroring go/build's goodOSArchFile.
	n := len(parts)
	if n >= 3 && knownOS[parts[n-2]] && knownArch[parts[n-1]] {
		return parts[n-2] == runtime.GOOS && parts[n-1] == runtime.GOARCH
	}
	if n >= 2 {
		last := parts[n-1]
		if knownOS[last] {
			return last == runtime.GOOS
		}
		if knownArch[last] {
			return last == runtime.GOARCH
		}
	}
	return true
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// buildConstraintsMatch evaluates a //go:build line (above the package
// clause) against the host configuration with cgo off.
func buildConstraintsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed constraint: let the real build complain
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				case "unix":
					return unixOS[runtime.GOOS]
				case "cgo", "gccgo":
					return false
				}
				if v, ok := strings.CutPrefix(tag, "go1."); ok {
					if n, err := strconv.Atoi(v); err == nil {
						return n <= goMinorVersion()
					}
				}
				return false
			})
		}
	}
	return true
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

func goMinorVersion() int {
	v := runtime.Version() // e.g. "go1.24.0"
	v = strings.TrimPrefix(v, "go1.")
	if i := strings.IndexByte(v, '.'); i >= 0 {
		v = v[:i]
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 99 // devel builds: assume newest
	}
	return n
}
