// Package lint is supglint: a suite of static analyzers that enforce
// the repository's cross-cutting invariants — determinism of the
// result path, the oracle error taxonomy, the storage tier's
// tmp→fsync→rename commit discipline, and benchmark hygiene — on
// every diff instead of in reviewer memory.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// contract (Analyzer, Pass, Diagnostic, an analysistest-style golden
// runner in linttest) but is self-contained on the standard library:
// the build is hermetic, so import resolution goes through the gc
// compiler's export data via `go list -export` rather than a vendored
// x/tools.
//
// # Annotations
//
// A finding that is deliberate is suppressed in place with an
// annotation comment on the flagged line or the line directly above:
//
//	//supg:<check>-ok <reason>
//
// where <check> is the analyzer's annotation key (nondeterminism,
// errtaxonomy, atomiccommit, benchhygiene) and <reason> is mandatory
// free text explaining why the invariant holds anyway. Annotations are
// themselves checked: an unknown key, a missing reason, an annotation
// in a package or file its analyzer never inspects, or an annotation
// that suppresses nothing are all diagnostics — so stale suppressions
// fail the build exactly like fresh violations.
//
// # Adding a new analyzer
//
// Write a `func(*Pass)` that walks pass.Package.Files and calls
// pass.Report, wrap it in an Analyzer literal (Name, Doc, Annotation
// key, Packages scope, TestFiles orientation), register it in All,
// and add a fixture directory under testdata/ driven by linttest.Run
// with `// want "regexp"` expectations. The driver picks up scope
// filtering, annotation suppression, and the unused-annotation check
// automatically.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors the x/tools analysis.Analyzer
// shape: a documented Run function invoked once per package in scope.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers flags.
	Name string
	// Doc is the one-paragraph description shown by supglint -list.
	Doc string
	// Annotation is the suppression key: a diagnostic from this analyzer
	// at line L is suppressed by a `//supg:<Annotation>-ok <reason>`
	// comment on line L or L-1.
	Annotation string
	// Packages scopes the analyzer to module-relative package dirs
	// (e.g. "internal/core"). Nil means every package.
	Packages []string
	// TestFiles selects which files the analyzer inspects: false = only
	// non-test files, true = only _test.go files.
	TestFiles bool
	// Run reports diagnostics for one package.
	Run func(*Pass)
}

// Diagnostic is one finding, with its position resolved to a concrete
// file:line:col so it can be printed and sorted without a FileSet.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suggestion string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	ModulePath string
	Package    *Package

	diags []Diagnostic
}

// Report records a diagnostic at pos. The suggestion is surfaced by
// `supglint -suggest` (and `make lint-fix`); keep it actionable.
func (p *Pass) Report(pos token.Pos, msg, suggestion string) {
	p.diags = append(p.diags, Diagnostic{
		Pos:        p.Package.Fset.Position(pos),
		Analyzer:   p.Analyzer.Name,
		Message:    msg,
		Suggestion: suggestion,
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Package.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// CalleeFunc resolves the called function or method of call, or nil
// for calls through function values, builtins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Package.Info.Uses[id].(*types.Func)
	return fn
}

// CalleeIsPkgFunc reports whether call invokes the package-level
// function pkgpath.name.
func (p *Pass) CalleeIsPkgFunc(call *ast.CallExpr, pkgpath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgpath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// InspectFiles walks every file the analyzer is oriented at (test vs
// non-test per Analyzer.TestFiles), calling walk on each.
func (p *Pass) InspectFiles(walk func(f *ast.File)) {
	for _, f := range p.Package.Files {
		if p.Package.IsTestFile(f) == p.Analyzer.TestFiles {
			walk(f)
		}
	}
}

// annotationRE parses `//supg:<key>-ok <reason>`; a trailing
// `// want ...` clause (linttest fixtures) is stripped first.
var annotationRE = regexp.MustCompile(`^//supg:([a-zA-Z0-9_-]*?)-ok(?:[ \t]+(.*))?$`)

type annotation struct {
	key    string
	reason string
	pos    token.Position
	used   bool
}

// collectAnnotations extracts //supg: annotations from the package,
// keyed by (filename, line). Malformed //supg: comments are reported
// immediately as diagnostics.
func collectAnnotations(pkg *Package, report func(Diagnostic)) map[string][]*annotation {
	anns := make(map[string][]*annotation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//supg:") {
					continue
				}
				if i := strings.Index(text, "// want"); i > 0 {
					text = strings.TrimSpace(text[:i])
				}
				pos := pkg.Fset.Position(c.Pos())
				m := annotationRE.FindStringSubmatch(text)
				if m == nil {
					report(Diagnostic{
						Pos:        pos,
						Analyzer:   "annotations",
						Message:    fmt.Sprintf("malformed supg annotation %q; the grammar is //supg:<check>-ok <reason>", text),
						Suggestion: "use //supg:<check>-ok <reason> with <check> one of the analyzer annotation keys",
					})
					continue
				}
				a := &annotation{key: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
				k := lineKey(pos.Filename, pos.Line)
				anns[k] = append(anns[k], a)
			}
		}
	}
	return anns
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// scopeInPackages reports whether the module-relative package dir rel
// is in the analyzer's scope.
func (a *Analyzer) scopeInPackages(rel string) bool {
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if rel == p {
			return true
		}
	}
	return false
}

// relPath returns pkg's module-relative dir ("" for the module root).
// The _test suffix of an external test package maps to its directory.
func relPath(modulePath, pkgPath string) string {
	p := strings.TrimSuffix(pkgPath, "_test")
	if p == modulePath {
		return ""
	}
	return strings.TrimPrefix(p, modulePath+"/")
}

// RunPackage runs every in-scope analyzer from run over pkg, applies
// annotation suppression, and validates the annotations themselves.
// registry must be the full analyzer set (All()) so unknown annotation
// keys are distinguished from keys of analyzers not requested.
func RunPackage(modulePath string, pkg *Package, run []*Analyzer, registry []*Analyzer) []Diagnostic {
	var out []Diagnostic
	anns := collectAnnotations(pkg, func(d Diagnostic) { out = append(out, d) })

	byKey := make(map[string]*Analyzer, len(registry))
	for _, a := range registry {
		byKey[a.Annotation] = a
	}
	requested := make(map[string]bool, len(run))
	rel := relPath(modulePath, pkg.Path)

	for _, a := range run {
		requested[a.Annotation] = true
		if !a.scopeInPackages(rel) {
			continue
		}
		pass := &Pass{Analyzer: a, ModulePath: modulePath, Package: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if suppress(anns, a.Annotation, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}

	// Validate the annotations: unknown key, missing reason, annotation
	// that can never fire here, annotation that suppressed nothing.
	for _, list := range anns {
		for _, a := range list {
			owner := byKey[a.key]
			if owner == nil {
				out = append(out, Diagnostic{
					Pos:        a.pos,
					Analyzer:   "annotations",
					Message:    fmt.Sprintf("unknown supg annotation key %q", a.key),
					Suggestion: "use one of the registered analyzer annotation keys (supglint -list)",
				})
				continue
			}
			if !requested[a.key] {
				continue // its analyzer did not run; nothing to judge
			}
			switch {
			case a.reason == "":
				out = append(out, Diagnostic{
					Pos:        a.pos,
					Analyzer:   owner.Name,
					Message:    fmt.Sprintf("//supg:%s-ok annotation without a reason", a.key),
					Suggestion: "state why the invariant holds at this site: //supg:" + a.key + "-ok <reason>",
				})
			case !owner.scopeInPackages(rel) || !annotationOriented(pkg, a, owner):
				out = append(out, Diagnostic{
					Pos:        a.pos,
					Analyzer:   owner.Name,
					Message:    fmt.Sprintf("//supg:%s-ok annotation where the %s analyzer never reports; delete it", a.key, owner.Name),
					Suggestion: "remove the annotation",
				})
			case !a.used:
				out = append(out, Diagnostic{
					Pos:        a.pos,
					Analyzer:   owner.Name,
					Message:    fmt.Sprintf("unused //supg:%s-ok annotation: it suppresses no %s finding; delete it", a.key, owner.Name),
					Suggestion: "remove the annotation (or move it onto the line of the finding it should suppress)",
				})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// annotationOriented reports whether the annotation sits in a file of
// the kind (test vs non-test) its analyzer inspects.
func annotationOriented(pkg *Package, a *annotation, owner *Analyzer) bool {
	return strings.HasSuffix(a.pos.Filename, "_test.go") == owner.TestFiles
}

// suppress consumes an annotation with the given key on the
// diagnostic's line or the line directly above, if present.
func suppress(anns map[string][]*annotation, key string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range anns[lineKey(pos.Filename, line)] {
			if a.key == key && a.reason != "" {
				a.used = true
				return true
			}
		}
	}
	return false
}

// Run executes the analyzers over every package of the module and
// returns the surviving diagnostics in file/line order.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Packages {
		out = append(out, RunPackage(m.Path, pkg, analyzers, All())...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// All returns the registered analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ErrTaxonomy,
		AtomicCommit,
		BenchHygiene,
	}
}

// ByNames resolves a comma-separated analyzer name list against All.
func ByNames(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
