// Package linttest is the analysistest-style golden runner for
// supglint analyzers: it loads a fixture directory as one type-checked
// package, runs an analyzer through the same driver path as the real
// sweep (annotation suppression and validation included), and matches
// the produced diagnostics against `// want "regexp"` expectations.
//
// Fixture grammar:
//
//   - every fixture file may carry `//supglinttest:path <import path>`
//     declaring the package path the fixture pretends to be, so
//     analyzer package scoping behaves exactly as in the real module
//     (e.g. `//supglinttest:path supg/internal/core`).
//   - a line expecting diagnostics ends with `// want "re1" "re2" ...`
//     (double-quoted or backquoted regexps); each must match one
//     diagnostic message reported on that line, and every diagnostic
//     must be expected.
//   - files named *_test.go are presented to the analyzer as test
//     files (benchhygiene fixtures use this).
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"supg/internal/lint"
)

var pathDirectiveRE = regexp.MustCompile(`(?m)^//supglinttest:path[ \t]+(\S+)`)
var wantRE = regexp.MustCompile("// want((?:[ \t]+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads fixtureDir as one package and checks analyzer a against
// its `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, fixtureDir string) {
	t.Helper()
	diags, fset, files := analyze(t, a, fixtureDir)

	type want struct {
		re      *regexp.Regexp
		raw     string
		pos     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range files {
		filename := fset.Position(f.Package).Filename
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("re-read fixture: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := filename + ":" + strconv.Itoa(i+1)
			for _, q := range wantArgRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re, raw: pat, pos: key})
			}
		}
	}

	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.raw)
			}
		}
	}
}

// analyze loads and type-checks the fixture and runs the analyzer via
// lint.RunPackage (so suppression and annotation validation apply).
func analyze(t *testing.T, a *lint.Analyzer, fixtureDir string) ([]lint.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	pkgPath := "fixture/" + filepath.Base(fixtureDir)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(fixtureDir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		if m := pathDirectiveRE.FindSubmatch(src); m != nil {
			pkgPath = string(m[1])
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", full, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixtureDir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: lint.NewStdImporter(fset, fixtureDir),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", fixtureDir, err)
	}
	pkg := &lint.Package{Path: pkgPath, Dir: fixtureDir, Fset: fset, Files: files, Types: tpkg, Info: info}

	const modulePath = "supg"
	diags := lint.RunPackage(modulePath, pkg, []*lint.Analyzer{a}, lint.All())
	return diags, fset, files
}
