package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"runtime"
	"testing"
)

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%d", []verb{{0, 'd'}}},
		{"%d %s", []verb{{0, 'd'}, {1, 's'}}},
		{"%%v", nil},
		{"a %w b", []verb{{0, 'w'}}},
		{"%+v", []verb{{0, 'v'}}},
		{"%*d %v", []verb{{1, 'd'}, {2, 'v'}}},
		{"%.*f %v", []verb{{1, 'f'}, {2, 'v'}}},
		{"%[2]d %[1]w", []verb{{1, 'd'}, {0, 'w'}}},
		{"%6.2f %w", []verb{{0, 'f'}, {1, 'w'}}},
		{"trailing %", nil},
	}
	for _, c := range cases {
		if got := parseVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestIncludeFileName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"plain_test.go", true},
		{"_hidden.go", false},
		{".dot.go", false},
		{"mmap_linux.go", runtime.GOOS == "linux"},
		{"mmap_windows.go", runtime.GOOS == "windows"},
		{"asm_amd64.go", runtime.GOARCH == "amd64"},
		{"x_linux_amd64.go", runtime.GOOS == "linux" && runtime.GOARCH == "amd64"},
		{"x_windows_arm64.go", false},
		{"strings_util.go", true}, // "util" is neither an OS nor an arch
	}
	for _, c := range cases {
		if got := includeFileName(c.name); got != c.want {
			t.Errorf("includeFileName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBuildConstraintsMatch(t *testing.T) {
	parse := func(src string) *ast.File {
		f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return f
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"package x\n", true},
		{"//go:build " + runtime.GOOS + "\n\npackage x\n", true},
		{"//go:build !" + runtime.GOOS + "\n\npackage x\n", false},
		{"//go:build cgo\n\npackage x\n", false},
		{"//go:build go1.21\n\npackage x\n", true},
		{"//go:build go1.99\n\npackage x\n", false},
		{"//go:build " + runtime.GOOS + " && " + runtime.GOARCH + "\n\npackage x\n", true},
	}
	for _, c := range cases {
		if got := buildConstraintsMatch(parse(c.src)); got != c.want {
			t.Errorf("buildConstraintsMatch(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestRelPath(t *testing.T) {
	cases := []struct {
		pkg, want string
	}{
		{"supg", ""},
		{"supg/internal/core", "internal/core"},
		{"supg/internal/core_test", "internal/core"},
	}
	for _, c := range cases {
		if got := relPath("supg", c.pkg); got != c.want {
			t.Errorf("relPath(supg, %q) = %q, want %q", c.pkg, got, c.want)
		}
	}
}

func TestByNames(t *testing.T) {
	all, err := ByNames("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByNames(\"\") = %v, %v; want the full suite", all, err)
	}
	two, err := ByNames("determinism, atomiccommit")
	if err != nil || len(two) != 2 || two[0] != Determinism || two[1] != AtomicCommit {
		t.Fatalf("ByNames(determinism, atomiccommit) = %v, %v", two, err)
	}
	if _, err := ByNames("nope"); err == nil {
		t.Fatal("ByNames(nope) succeeded, want error")
	}
}

func TestFindModuleRootFails(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("FindModuleRoot(tempdir) succeeded, want error")
	}
}
