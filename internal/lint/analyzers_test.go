package lint_test

import (
	"testing"

	"supg/internal/lint"
	"supg/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism")
}

func TestErrTaxonomy(t *testing.T) {
	linttest.Run(t, lint.ErrTaxonomy, "testdata/errtaxonomy")
}

// TestErrTaxonomyCallerScope proves the Label-boundary rule is
// oracle-only while the wrap and routing rules follow callers.
func TestErrTaxonomyCallerScope(t *testing.T) {
	linttest.Run(t, lint.ErrTaxonomy, "testdata/errtaxonomy_caller")
}

func TestAtomicCommit(t *testing.T) {
	linttest.Run(t, lint.AtomicCommit, "testdata/atomiccommit")
}

func TestBenchHygiene(t *testing.T) {
	linttest.Run(t, lint.BenchHygiene, "testdata/benchhygiene")
}

// TestBenchHygieneUngated proves ReportAllocs is only required inside
// the CI-gated benchmark batteries.
func TestBenchHygieneUngated(t *testing.T) {
	linttest.Run(t, lint.BenchHygiene, "testdata/benchhygiene_ungated")
}
