package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrTaxonomy guards the oracle error taxonomy (oracle.Classify and
// its Transient/Permanent markers) across the pipeline and its
// callers:
//
//   - fmt.Errorf must wrap error operands with %w, never flatten them
//     with %v/%s — flattening severs the Unwrap chain, so Classify,
//     errors.Is(ErrOracleUnavailable), and the HTTP status mapping all
//     stop seeing the original class.
//   - inside internal/oracle, the Label/LabelBatch/LabelAll boundary
//     must not mint unclassified errors: a bare errors.New or a
//     fmt.Errorf without %w defaults to ClassTransient and gets
//     retried, even when retrying is provably useless.
//   - errors must not be routed by message text (err.Error()
//     substring or equality checks): messages are not API.
var ErrTaxonomy = &Analyzer{
	Name:       "errtaxonomy",
	Doc:        "enforce Transient/Permanent classification and %w wrapping across the oracle pipeline boundary",
	Annotation: "errtaxonomy",
	Packages: []string{
		"internal/oracle",
		"internal/core",
		"internal/engine",
		"internal/server",
		"internal/jobs",
		"internal/labelstore",
	},
	Run: runErrTaxonomy,
}

// labelBoundary names the oracle-pipeline entry points whose returned
// errors feed oracle.Classify.
var labelBoundary = map[string]bool{"Label": true, "LabelBatch": true, "LabelAll": true}

func runErrTaxonomy(pass *Pass) {
	inOracle := strings.HasSuffix(strings.TrimSuffix(pass.Package.Path, "_test"), "internal/oracle")
	pass.InspectFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
				checkMessageRouting(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if isErrErrorCall(pass, n.X) || isErrErrorCall(pass, n.Y) {
						pass.Report(n.Pos(),
							"error routed by comparing err.Error() text; messages are not API and bypass the taxonomy",
							"define a sentinel (errors.New) or typed error and match with errors.Is / errors.As")
					}
				}
			case *ast.FuncDecl:
				if inOracle && n.Body != nil && labelBoundary[n.Name.Name] {
					checkBoundaryReturns(pass, n)
				}
			}
			return true
		})
	})
}

// checkErrorfWrap flags fmt.Errorf operands of type error formatted
// with a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !pass.CalleeIsPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constStringArg(pass, call.Args[0])
	if !ok {
		return
	}
	for _, v := range parseVerbs(format) {
		argIdx := 1 + v.arg
		if v.verb == 'w' || argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		if implementsError(pass.TypeOf(arg)) {
			pass.Report(arg.Pos(),
				"error operand formatted with %"+string(v.verb)+" severs the unwrap chain oracle.Classify walks",
				"use %w so the Transient/Permanent class and sentinels survive wrapping")
		}
	}
}

// checkMessageRouting flags strings.* predicates applied to
// err.Error() output.
func checkMessageRouting(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrErrorCall(pass, arg) {
			pass.Report(call.Pos(),
				"error routed by err.Error() message text; messages are not API and bypass the taxonomy",
				"define a sentinel (errors.New) or typed error and match with errors.Is / errors.As")
			return
		}
	}
}

// checkBoundaryReturns flags newly minted unclassified errors returned
// from a Label pipeline boundary function. Nested function literals
// are skipped: only the boundary function's own returns are judged.
func checkBoundaryReturns(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkBoundaryResult(pass, res)
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkBoundaryResult(pass *Pass, res ast.Expr) {
	call, ok := ast.Unparen(res).(*ast.CallExpr)
	if !ok {
		return
	}
	if pass.CalleeIsPkgFunc(call, "errors", "New") {
		pass.Report(res.Pos(),
			"unclassified errors.New at the Label boundary: Classify defaults it to transient and retries it",
			"wrap with oracle.Permanent / oracle.Transient, or chain a classified sentinel with %w")
		return
	}
	if pass.CalleeIsPkgFunc(call, "fmt", "Errorf") && len(call.Args) > 0 {
		if format, ok := constStringArg(pass, call.Args[0]); ok && !formatWraps(format) {
			pass.Report(res.Pos(),
				"unclassified fmt.Errorf at the Label boundary: no %w chain for Classify to walk, so it defaults to transient",
				"wrap with oracle.Permanent / oracle.Transient, or chain a classified sentinel with %w")
		}
	}
}

func formatWraps(format string) bool {
	for _, v := range parseVerbs(format) {
		if v.verb == 'w' {
			return true
		}
	}
	return false
}

// isErrErrorCall reports whether e is a zero-argument .Error() call on
// a value of (an implementation of) the error interface.
func isErrErrorCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return implementsError(pass.TypeOf(sel.X))
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// constStringArg resolves e to a compile-time string constant.
func constStringArg(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Package.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one conversion in a format string: the zero-based operand
// index it consumes and its verb character.
type verb struct {
	arg  int
	verb byte
}

// parseVerbs scans a fmt format string, tracking '*' width/precision
// operands and explicit [n] argument indexes.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		// explicit argument index [n]
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				break
			}
			if n, err := strconv.Atoi(format[i+1 : i+j]); err == nil {
				arg = n - 1
			}
			i += j + 1
		}
		// width
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{arg: arg, verb: format[i]})
		arg++
	}
	return out
}
