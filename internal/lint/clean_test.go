package lint_test

import (
	"testing"

	"supg/internal/lint"
)

// TestRepoIsLintClean pins `supglint ./...` green at HEAD: the whole
// module is loaded and swept with the full analyzer suite, and any
// surviving diagnostic fails the build. Deleting an annotation at a
// deliberately-suppressed site (e.g. the storage commit helpers) makes
// this test fail, as does introducing a fresh violation.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	m, err := lint.Load(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(m.Packages) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, d := range lint.Run(m, lint.All()) {
		t.Errorf("%s", d)
	}
}
