package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// gatedBenchPackages hold the benchmark batteries whose allocs/op and
// bytes/op are CI-gated against committed baselines (BENCH_hotpath.json
// via make bench-check, BENCH_storage.json): their benchmarks must
// report allocations explicitly instead of relying on -benchmem.
var gatedBenchPackages = map[string]bool{
	"internal/engine":  true,
	"internal/index":   true,
	"internal/storage": true,
}

// BenchHygiene enforces benchmark mechanics that silently corrupt the
// committed benchmark trajectory when violated:
//
//   - b.ReportMetric before b.ResetTimer is dropped entirely —
//     ResetTimer deletes user-reported metrics (the PR 8
//     scan-bytes/rec bug a reviewer missed and a machine catches).
//   - unbalanced b.StopTimer/b.StartTimer leaks timer state across
//     iterations and benchmarks.
//   - benchmarks in the gated batteries must call b.ReportAllocs so
//     allocs/op is present no matter how the benchmark is invoked.
//   - setup/warmup work (index builds, arena priming, warm queries)
//     before the first b.N loop with no intervening b.ResetTimer is
//     charged to the timed region, skewing every committed ns/op.
var BenchHygiene = &Analyzer{
	Name:       "benchhygiene",
	Doc:        "flag ReportMetric-before-ResetTimer, timer imbalance, warmup in the timed region, and missing ReportAllocs in gated benchmarks",
	Annotation: "benchhygiene",
	TestFiles:  true,
	Run:        runBenchHygiene,
}

func runBenchHygiene(pass *Pass) {
	gated := gatedBenchPackages[relPath(pass.ModulePath, pass.Package.Path)]
	pass.InspectFiles(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "Benchmark") || !hasTestingBParam(pass, fd) {
				continue
			}
			checkBenchScope(pass, fd.Name.Name, fd.Name.Pos(), fd.Body, gated)
		}
	})
}

func hasTestingBParam(pass *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return false
	}
	return namedTypeIs(pass.TypeOf(params.List[0].Type), "testing", "B")
}

// benchEvents are the testing.B calls in one benchmark scope, in
// source order, excluding nested b.Run sub-benchmark literals (which
// are analyzed as their own scopes).
type benchEvents struct {
	resetTimer   []token.Pos
	reportMetric []token.Pos
	reportAllocs int
	stopTimer    int
	startTimer   int
	runs         []*ast.FuncLit
	hasRun       bool
	// firstLoop is the position of the first b.N-bounded loop directly
	// in this scope (NoPos if the scope has none), and setupCalls are
	// the non-testing.B function calls that precede it in source order
	// — warmup work that b.ResetTimer must discharge.
	firstLoop  token.Pos
	setupCalls []token.Pos
}

func checkBenchScope(pass *Pass, name string, pos token.Pos, body *ast.BlockStmt, gated bool) {
	ev := collectBenchEvents(pass, body)

	for _, rm := range ev.reportMetric {
		for _, rt := range ev.resetTimer {
			if rt > rm {
				pass.Report(rm,
					"b.ReportMetric before b.ResetTimer: ResetTimer deletes user-reported metrics, so this one vanishes from the output",
					"move the ReportMetric call after the final ResetTimer")
				break
			}
		}
	}
	if ev.stopTimer != ev.startTimer {
		pass.Report(pos,
			fmt.Sprintf("unbalanced b.StopTimer/b.StartTimer (%d stop, %d start): timer state leaks across iterations", ev.stopTimer, ev.startTimer),
			"pair every StopTimer with a StartTimer in the same scope")
	}
	if gated && !ev.hasRun && ev.reportAllocs == 0 {
		pass.Report(pos,
			name+" is in a CI-gated benchmark battery but never calls b.ReportAllocs: allocs/op silently disappears without -benchmem",
			"call b.ReportAllocs() before the measured loop")
	}
	if ev.firstLoop.IsValid() {
		var offending token.Pos
		for _, c := range ev.setupCalls {
			discharged := false
			for _, rt := range ev.resetTimer {
				if rt > c && rt < ev.firstLoop {
					discharged = true
					break
				}
			}
			if !discharged {
				offending = c
			}
		}
		if offending.IsValid() {
			pass.Report(offending,
				"setup/warmup call inside the timed region: it precedes the first b.N loop with no intervening b.ResetTimer, so its cost is charged to every committed ns/op",
				"call b.ResetTimer() after the setup work and before the measured loop")
		}
	}

	for _, lit := range ev.runs {
		checkBenchScope(pass, name+" sub-benchmark", lit.Pos(), lit.Body, gated)
	}
}

func collectBenchEvents(pass *Pass, body *ast.BlockStmt) *benchEvents {
	ev := &benchEvents{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // sub-scopes handled separately (via b.Run) or ignored
		}
		if !ev.firstLoop.IsValid() && isBenchNLoop(pass, n) {
			ev.firstLoop = n.Pos()
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !namedTypeIs(pass.TypeOf(sel.X), "testing", "B") {
			// A resolvable non-testing.B function or method call ahead of
			// the b.N loop is setup work (conversions and builtins, which
			// CalleeFunc cannot resolve, are free and skipped).
			if !ev.firstLoop.IsValid() && pass.CalleeFunc(call) != nil {
				ev.setupCalls = append(ev.setupCalls, call.Pos())
			}
			return true
		}
		switch sel.Sel.Name {
		case "ResetTimer":
			ev.resetTimer = append(ev.resetTimer, call.Pos())
		case "ReportMetric":
			ev.reportMetric = append(ev.reportMetric, call.Pos())
		case "ReportAllocs":
			ev.reportAllocs++
		case "StopTimer":
			ev.stopTimer++
		case "StartTimer":
			ev.startTimer++
		case "Run":
			ev.hasRun = true
			if len(call.Args) == 2 {
				if lit, ok := call.Args[1].(*ast.FuncLit); ok {
					ev.runs = append(ev.runs, lit)
				}
			}
		}
		return true
	})
	return ev
}

// isBenchNLoop reports whether n is a loop bounded by b.N — either the
// classic three-clause form or a Go 1.22 range-over-int.
func isBenchNLoop(pass *Pass, n ast.Node) bool {
	var header ast.Node
	switch loop := n.(type) {
	case *ast.ForStmt:
		if loop.Cond == nil {
			return false
		}
		header = loop.Cond
	case *ast.RangeStmt:
		header = loop.X
	default:
		return false
	}
	found := false
	ast.Inspect(header, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "N" && namedTypeIs(pass.TypeOf(sel.X), "testing", "B") {
			found = true
		}
		return !found
	})
	return found
}
