//supglinttest:path supg/internal/engine

// Package fixture simulates a CI-gated benchmark battery
// (internal/engine): missing b.ReportAllocs is an error here.
package fixture

import "testing"

func BenchmarkMetricBeforeReset(b *testing.B) {
	b.ReportAllocs()
	n := 0
	b.ReportMetric(float64(n), "rows/op") // want `b\.ReportMetric before b\.ResetTimer: ResetTimer deletes user-reported metrics`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n++
	}
}

func BenchmarkImbalanced(b *testing.B) { // want `unbalanced b\.StopTimer/b\.StartTimer \(1 stop, 0 start\)`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
	}
	b.StopTimer()
}

func BenchmarkMissingAllocs(b *testing.B) { // want `BenchmarkMissingAllocs is in a CI-gated benchmark battery but never calls b\.ReportAllocs`
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkClean(b *testing.B) {
	b.ReportAllocs()
	b.StopTimer()
	n := prepare()
	b.StartTimer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n++
	}
	b.ReportMetric(float64(n), "rows/op")
}

func BenchmarkSubs(b *testing.B) {
	b.Run("missing", func(b *testing.B) { // want `BenchmarkSubs sub-benchmark is in a CI-gated benchmark battery but never calls b\.ReportAllocs`
		for i := 0; i < b.N; i++ {
		}
	})
	b.Run("clean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
		}
	})
}

func BenchmarkAnnotated(b *testing.B) {
	b.ReportAllocs()
	//supg:benchhygiene-ok deliberate for the fixture: the metric is re-reported after the loop below
	b.ReportMetric(1, "configs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(1, "configs")
}

func BenchmarkWarmupInTimedRegion(b *testing.B) {
	b.ReportAllocs()
	n := prepare() // want `setup/warmup call inside the timed region`
	for i := 0; i < b.N; i++ {
		n++
	}
}

func BenchmarkWarmupDischarged(b *testing.B) {
	b.ReportAllocs()
	n := prepare()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n++
	}
}

func BenchmarkWarmupAnnotated(b *testing.B) {
	b.ReportAllocs()
	//supg:benchhygiene-ok fixture: the prepared value is the measured input and must be charged
	n := prepare()
	for i := 0; i < b.N; i++ {
		n++
	}
}

func BenchmarkWarmupSubs(b *testing.B) {
	scores := prepare()
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		n := prepare() // want `setup/warmup call inside the timed region`
		for i := 0; i < b.N; i++ {
			n += scores
		}
	})
	b.Run("discharged", func(b *testing.B) {
		b.ReportAllocs()
		n := prepare()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n += scores
		}
	})
}

// BenchmarkShaped is not a real benchmark (wrong signature): ignored.
func BenchmarkShaped(n int) int { return n }

func prepare() int { return 0 }
