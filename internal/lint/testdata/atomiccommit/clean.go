package fixture

import "os"

// opensExisting appends to a file that must already exist (the WAL
// reopen path): no O_CREATE, no finding.
func opensExisting(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
}

// commitHelper is the commit path itself: the annotation states why
// the raw rename is legitimate here and suppresses the finding.
func commitHelper(tmp, final string) error {
	//supg:atomiccommit-ok this IS the tmp→rename commit step; the tmp file was fsynced by the caller
	return os.Rename(tmp, final)
}

func readsOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size())
	_, err = f.Read(buf)
	return buf, err
}
