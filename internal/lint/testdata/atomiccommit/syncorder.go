package fixture

import "os"

// manifestLog stands in for the storage manifest: append* methods on
// it are durable-log appends.
type manifestLog struct{ f *os.File }

func (m *manifestLog) appendRecord(rec []byte) error {
	if _, err := m.f.Write(rec); err != nil {
		return err
	}
	return m.f.Sync()
}

func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// unsyncedAppend writes segment bytes and appends the manifest record
// without an fsync in between: a crash can commit metadata for bytes
// that were never made durable.
func unsyncedAppend(m *manifestLog, data *os.File, rec []byte) error {
	if _, err := data.Write(rec); err != nil {
		return err
	}
	return m.appendRecord(rec) // want `raw file write can reach this manifest/WAL append without an fsync`
}

// syncedAppend fsyncs the data file first: clean.
func syncedAppend(m *manifestLog, data *os.File, rec []byte) error {
	if _, err := data.Write(rec); err != nil {
		return err
	}
	if err := data.Sync(); err != nil {
		return err
	}
	return m.appendRecord(rec)
}

// helperSynced flushes durability through a sync helper function:
// also clean.
func helperSynced(m *manifestLog, data *os.File, dir string, rec []byte) error {
	if _, err := data.Write(rec); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return m.appendRecord(rec)
}
