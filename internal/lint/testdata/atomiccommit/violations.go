//supglinttest:path supg/internal/storage

// Package fixture seeds raw file operations that bypass the fsync'd
// tmp→rename commit path.
package fixture

import "os"

func renames(dir string) error {
	return os.Rename(dir+"/seg.tmp", dir+"/seg.supg") // want `direct os\.Rename bypasses the fsync'd tmp→rename commit path`
}

func writesWhole(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `direct os\.WriteFile bypasses the fsync'd tmp→rename commit path`
}

func creates(path string) (*os.File, error) {
	return os.Create(path) // want `direct os\.Create bypasses the fsync'd tmp→rename commit path`
}

func opensForCreate(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want `direct os\.OpenFile with O_CREATE bypasses the fsync'd tmp→rename commit path`
}
