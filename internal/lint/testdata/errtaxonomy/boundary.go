//supglinttest:path supg/internal/oracle

// Package fixture stands in for internal/oracle: the Label boundary
// rule only applies under this package path.
package fixture

import (
	"errors"
	"fmt"
)

// Transient and Permanent mirror the real oracle markers; the
// analyzer resolves them by package path, so these count.
func Transient(err error) error { return err }
func Permanent(err error) error { return err }

var errBudget = errors.New("budget exhausted")

type backend struct{}

// Label is a pipeline boundary: minted errors must carry a class.
func (backend) Label(i int) (bool, error) {
	if i < 0 {
		return false, errors.New("negative index") // want `unclassified errors\.New at the Label boundary`
	}
	if i > 1<<20 {
		return false, fmt.Errorf("record %d out of range", i) // want `unclassified fmt\.Errorf at the Label boundary`
	}
	return true, nil
}

// LabelBatch shows the clean patterns: classified wraps and %w chains
// pass.
func (backend) LabelBatch(idx []int) ([]bool, error) {
	if len(idx) == 0 {
		return nil, Permanent(errors.New("empty batch"))
	}
	if len(idx) > 1<<20 {
		return nil, Transient(fmt.Errorf("batch of %d too large", len(idx)))
	}
	if idx[0] < 0 {
		return nil, fmt.Errorf("%w (batch)", errBudget)
	}
	return make([]bool, len(idx)), nil
}

// helper is not a boundary function: minted errors here are judged at
// the call site that returns them across the boundary, not flagged.
func helper() error {
	return errors.New("internal detail")
}

// LabelAll returning a nested literal's error is outside the rule:
// function literals are separate scopes.
func (backend) LabelAll(idx []int) error {
	run := func() error {
		return errors.New("inner closure error")
	}
	if err := run(); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	return nil
}
