package fixture

import (
	"errors"
	"fmt"
)

type walError struct{ msg string }

func (e *walError) Error() string { return e.msg }

func flattens(err error) error {
	return fmt.Errorf("oracle failed: %v", err) // want `error operand formatted with %v severs the unwrap chain`
}

func flattensString(err error) error {
	return fmt.Errorf("oracle failed: %s", err) // want `error operand formatted with %s severs the unwrap chain`
}

func flattensTyped(e *walError) error {
	return fmt.Errorf("wal: %v", e) // want `error operand formatted with %v severs the unwrap chain`
}

func flattensWithStar(err error, width int) error {
	return fmt.Errorf("pad %*d: %v", width, 7, err) // want `error operand formatted with %v severs the unwrap chain`
}

func wraps(err error) error {
	return fmt.Errorf("oracle failed: %w", err)
}

func wrapsIndexed(err error) error {
	return fmt.Errorf("attempt %[2]d: %[1]w", err, 3)
}

func nonErrorOperands(n int, s string) error {
	return fmt.Errorf("n=%v s=%s literal=%%v", n, s)
}

func messageOnly(err error) string {
	return fmt.Sprintf("display: %v", err) // Sprintf builds text, not an error chain: allowed
}

func suppressedFlatten(err error) error {
	//supg:errtaxonomy-ok diagnostic string for humans; the classified error is returned separately
	return fmt.Errorf("summary: %v", err)
}

var errSentinel = errors.New("sentinel")

func wrapsSentinel(i int) error {
	return fmt.Errorf("%w (record %d)", errSentinel, i)
}
