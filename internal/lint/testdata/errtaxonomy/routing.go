package fixture

import (
	"errors"
	"strings"
)

func routesBySubstring(err error) bool {
	return strings.Contains(err.Error(), "unknown table") // want `error routed by err\.Error\(\) message text`
}

func routesByPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "oracle:") // want `error routed by err\.Error\(\) message text`
}

func routesByEquality(err error) bool {
	return err.Error() == "oracle: unavailable" // want `error routed by comparing err\.Error\(\) text`
}

func routesBySentinel(err error) bool {
	return errors.Is(err, errSentinel)
}

func plainStrings(s string) bool {
	return strings.Contains(s, "unknown table")
}

// logsMessage just surfaces the text without routing on it: allowed.
func logsMessage(err error) string {
	return "failed: " + err.Error()
}
