//supglinttest:path supg/internal/sampling

// Package fixture simulates a package outside the gated benchmark
// batteries: ReportAllocs is optional, the mechanics rules still hold.
package fixture

import "testing"

func BenchmarkNoAllocsFine(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkMetricStillChecked(b *testing.B) {
	b.ReportMetric(1, "x/op") // want `b\.ReportMetric before b\.ResetTimer`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
	}
}
