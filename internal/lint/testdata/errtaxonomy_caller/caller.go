//supglinttest:path supg/internal/server

// Package fixture simulates a caller package (internal/server): the
// wrap and message-routing rules apply, the Label boundary rule does
// not — it is oracle-only.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

// Label here is just a method name collision, not the oracle boundary:
// minting a plain error is fine outside internal/oracle.
type notAnOracle struct{}

func (notAnOracle) Label(i int) (bool, error) {
	if i < 0 {
		return false, errors.New("bad request")
	}
	return true, nil
}

func flattensInCaller(err error) error {
	return fmt.Errorf("handler: %v", err) // want `error operand formatted with %v severs the unwrap chain`
}

func routesInCaller(err error) bool {
	return strings.Contains(err.Error(), "unknown table") // want `error routed by err\.Error\(\) message text`
}
