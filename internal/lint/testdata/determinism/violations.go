//supglinttest:path supg/internal/core

// Package fixture seeds one deliberate violation of every determinism
// rule; the `// want` comments pin the exact diagnostics.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in result-path code`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in result-path code`
}

func globalRand() float64 {
	return rand.Float64() // want `global rand\.Float64 bypasses the seeded per-query random stream`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle bypasses`
}

func mapOrder(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration order is randomized per run`
		out = append(out, v)
	}
	return out
}

func chanFanIn(ch chan int) []int {
	var out []int
	for v := range ch { // want `range over a channel yields values in goroutine completion order`
		out = append(out, v)
	}
	return out
}

func selectFanIn(a, b chan int) int {
	select { // want `select over multiple ready receives picks a case pseudo-randomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
