package fixture

import "sort"

// suppressed iterates a map but restores determinism by sorting; the
// annotation documents that and silences the finding. Removing the
// annotation makes the identical site in violations.go-style fail.
func suppressed(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	//supg:nondeterminism-ok iteration feeds a set; order is restored by the sort below
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// suppressedSameLine carries the annotation on the flagged line.
func suppressedSameLine(m map[int]struct{}) int {
	n := 0
	for range m { //supg:nondeterminism-ok pure count; order cannot escape
		n++
	}
	return n
}

//supg:nondeterminism-ok nothing on the next line is flagged // want `unused //supg:nondeterminism-ok annotation`
func unusedAnnotation() {}

//supg:nondeterminism-ok // want `annotation without a reason`
func missingReason(m map[string]int) int {
	n := 0
	for range m { // want `map iteration order is randomized per run`
		n++
	}
	return n
}

//supg:frobnicate-ok some reason // want `unknown supg annotation key "frobnicate"`
func unknownKey() {}
