package fixture

import "math/rand"

// seededRand builds an explicitly seeded generator: allowed — the
// stream is a pure function of the seed.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// sliceOrder iterates a slice: deterministic, not flagged.
func sliceOrder(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// mapWrite only writes into a map — no iteration, not flagged.
func mapWrite(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// singleRecvSelect has one receive plus a default: no fan-in
// ordering, not flagged.
func singleRecvSelect(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
