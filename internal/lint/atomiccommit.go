package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AtomicCommit enforces the durable-storage commit discipline in
// internal/storage and internal/labelstore:
//
//   - file creation and renames must flow through the fsync'd
//     tmp→rename commit helpers (atomicWriter, the WAL/manifest
//     appenders). Direct os.Rename / os.WriteFile / os.Create /
//     os.OpenFile(O_CREATE) sites are flagged — the helpers
//     themselves carry //supg:atomiccommit-ok annotations stating why
//     they are the commit path.
//   - a raw file write must not reach a manifest/WAL append without
//     an intervening fsync: the manifest records a file's size+CRC,
//     so appending before the data is durable can commit metadata for
//     bytes that a crash then loses.
var AtomicCommit = &Analyzer{
	Name:       "atomiccommit",
	Doc:        "require the fsync'd tmp→rename commit path for storage and WAL writes",
	Annotation: "atomiccommit",
	Packages: []string{
		"internal/storage",
		"internal/labelstore",
	},
	Run: runAtomicCommit,
}

func runAtomicCommit(pass *Pass) {
	pass.InspectFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkRawFileOp(pass, call)
			}
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSyncBeforeAppend(pass, fd)
			}
			return true
		})
	})
}

// checkRawFileOp flags direct file-creating / renaming os calls.
func checkRawFileOp(pass *Pass, call *ast.CallExpr) {
	for _, name := range []string{"Rename", "WriteFile", "Create"} {
		if pass.CalleeIsPkgFunc(call, "os", name) {
			pass.Report(call.Pos(),
				fmt.Sprintf("direct os.%s bypasses the fsync'd tmp→rename commit path", name),
				"route the write through the commit helpers (atomicWriter / the WAL appenders); if this call IS the commit helper, annotate it with //supg:atomiccommit-ok <reason>")
			return
		}
	}
	if pass.CalleeIsPkgFunc(call, "os", "OpenFile") && len(call.Args) >= 2 && mentionsOCreate(pass, call.Args[1]) {
		pass.Report(call.Pos(),
			"direct os.OpenFile with O_CREATE bypasses the fsync'd tmp→rename commit path",
			"route the write through the commit helpers (atomicWriter / the WAL appenders); if this call IS the commit helper, annotate it with //supg:atomiccommit-ok <reason>")
	}
}

func mentionsOCreate(pass *Pass, flags ast.Expr) bool {
	found := false
	ast.Inspect(flags, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
			if obj := pass.Package.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSyncBeforeAppend walks one function body in source order and
// flags a manifest/WAL append that follows a raw file write with no
// fsync in between. Nested function literals are separate scopes and
// are skipped.
func checkSyncBeforeAppend(pass *Pass, fd *ast.FuncDecl) {
	pendingWrite := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if strings.Contains(strings.ToLower(id.Name), "sync") {
				pendingWrite = false
			}
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch {
		case isFileWrite(pass, sel):
			pendingWrite = true
		case name == "Sync" || name == "Flush" || strings.Contains(strings.ToLower(name), "sync"):
			pendingWrite = false
		case strings.HasPrefix(name, "append") && isDurableLogRecv(pass, sel):
			if pendingWrite {
				pass.Report(call.Pos(),
					"raw file write can reach this manifest/WAL append without an fsync: a crash could commit metadata for lost bytes",
					"Sync the written file (or go through atomicWriter.Commit) before appending the record")
			}
		}
		return true
	})
}

// isFileWrite reports whether sel names a Write method on an *os.File
// or *bufio.Writer receiver.
func isFileWrite(pass *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteAt", "WriteByte":
	default:
		return false
	}
	t := pass.TypeOf(sel.X)
	return namedTypeIs(t, "os", "File") || namedTypeIs(t, "bufio", "Writer")
}

// isDurableLogRecv reports whether sel's receiver is a named type
// whose name marks it as the manifest or WAL.
func isDurableLogRecv(pass *Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := strings.ToLower(named.Obj().Name())
	return strings.Contains(n, "manifest") || strings.Contains(n, "wal")
}

// namedTypeIs reports whether t is pkg.Name or *pkg.Name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
