//go:build linux && (amd64 || arm64)

package storage

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported gates the zero-copy load path: read-only shared
// mappings with little-endian 64-bit word aliasing. Other platforms
// fall back to heap loads with portable decoding (mmap_off.go).
const mmapSupported = true

// mapFile maps the whole file at path read-only and shared. The file
// descriptor is closed immediately — the mapping survives it. Mappings
// are intentionally never unmapped: indexes and datasets alias the
// memory for unbounded lifetimes (queries may hold them mid-flight
// across an invalidation), and a stray read of an unmapped page is a
// SIGSEGV, not an error. The residency cost of a superseded mapping is
// bounded by operator actions (re-registrations), and the kernel
// reclaims clean pages under pressure anyway.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("storage: empty file %s", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("storage: file %s too large to map", path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return b, nil
}

// madviseBytes applies the configured residency hint to a mapping.
func madviseBytes(b []byte, advice int) error {
	var sys int
	switch advice {
	case adviseNone:
		return nil
	case adviseNormal:
		sys = syscall.MADV_NORMAL
	case adviseRandom:
		sys = syscall.MADV_RANDOM
	case adviseSequential:
		sys = syscall.MADV_SEQUENTIAL
	case adviseWillneed:
		sys = syscall.MADV_WILLNEED
	default:
		return fmt.Errorf("storage: unknown madvise %d", advice)
	}
	return syscall.Madvise(b, sys)
}

// aliasFloat64s reinterprets little-endian IEEE 754 bytes as a float64
// slice without copying. Safe here because the build tag pins a
// little-endian platform, the caller guarantees 8-byte in-file
// alignment (mappings are page-aligned, sections sit at multiples of
// 8), and len(b) is a multiple of 8.
func aliasFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// aliasUint16s reinterprets little-endian uint16 bytes as a uint16
// slice without copying. Sections sit at even in-file offsets, which is
// all a 2-byte load requires.
func aliasUint16s(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// aliasInts reinterprets little-endian uint64 bytes as an int slice
// (int is 64-bit on the gated platforms). Values with the high bit set
// surface as negative ints and are rejected by the bounds checks every
// consumer performs.
func aliasInts(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
}
