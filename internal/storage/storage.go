// Package storage is the durable tier under the query engine: a
// write-once, CRC-verified on-disk format for datasets, index score
// columns, and per-segment (score, id) permutations, plus an
// append-only MANIFEST log that records which files are live for each
// (table, score source). The contract is zero-rescan recovery with
// byte-identical results: Open mmaps the persisted files back into
// index segment views, re-proving (not re-computing) each permutation,
// so a restarted process answers queries bit-for-bit the same as
// before the crash while invoking zero proxy UDFs and performing zero
// permutation sorts.
//
// Crash discipline, in order of commit:
//
//  1. data files are written to *.tmp, fsynced, renamed into place,
//     and the directory fsynced;
//  2. only then is a manifest record referencing them appended (and
//     fsynced).
//
// A crash between (1) and (2) leaves orphan files that boot-time
// cleanup removes; a crash during (1) leaves *.tmp litter, also
// removed; a crash mid-append leaves a torn manifest tail, truncated
// at the last whole record. Any file whose size or CRC32 disagrees
// with its manifest record — and any permutation that fails the O(n)
// ascent proof — causes that table or index to be dropped (durably
// tombstoned) rather than served: the engine falls back to a rebuild.
package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/metrics"
)

// Options configures a Store.
type Options struct {
	// Dir is the persistence directory (created if absent).
	Dir string
	// NoMmap forces heap loads with portable decoding even on
	// platforms that support zero-copy mapping.
	NoMmap bool
	// Madvise optionally hints residency for mapped files: "",
	// "normal", "random", "sequential", or "willneed".
	Madvise string
	// Index supplies the segment size and parallelism recovered
	// indexes use for verification and future appends.
	Index index.Options
}

// Residency hints (resolved from Options.Madvise).
const (
	adviseNone = iota
	adviseNormal
	adviseRandom
	adviseSequential
	adviseWillneed
)

func parseMadvise(s string) (int, error) {
	switch s {
	case "", "none":
		return adviseNone, nil
	case "normal":
		return adviseNormal, nil
	case "random":
		return adviseRandom, nil
	case "sequential":
		return adviseSequential, nil
	case "willneed":
		return adviseWillneed, nil
	default:
		return 0, fmt.Errorf("storage: unknown madvise hint %q (want normal, random, sequential, or willneed)", s)
	}
}

// ErrSuperseded reports that a SaveIndex was abandoned because the
// table's epoch advanced (a drop or re-registration happened) between
// the snapshot and the commit. Not an error condition: the caller's
// state was intentionally invalidated and must not be resurrected.
var ErrSuperseded = fmt.Errorf("storage: index flush superseded by invalidation")

// IndexMeta is the provenance of a persisted index: enough for the
// engine to re-adopt it after a restart, and to invalidate it when a
// constituent is re-registered.
type IndexMeta struct {
	Table       string
	Source      string // ScoreSource cache key
	Fusion      string // query.FusionKind string form
	CalibOracle string // calibration oracle name, "" if uncalibrated
	Proxies     []string
}

// RecoveredTable is a dataset restored from disk at Open.
type RecoveredTable struct {
	Name    string
	Dataset *dataset.Dataset
	CRC     uint32 // CRC32 (Castagnoli) of the dataset's binary form
}

// RecoveredIndex is a segmented index restored from disk at Open —
// verified, never re-sorted.
type RecoveredIndex struct {
	IndexMeta
	Index *index.ScoreIndex
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	TablesLive   int
	IndexesLive  int
	SegmentsLive int

	TablesRecovered   int
	IndexesRecovered  int
	SegmentsRecovered int

	MappedBytes     int64
	RecoveryElapsed time.Duration
	ManifestRecords int64
	Compactions     int64

	// Degraded lists human-readable notes about state that was present
	// in the manifest but could not be served (corrupt or torn files)
	// and was dropped in favor of a rebuild.
	Degraded []string
}

// Store owns a persistence directory: the MANIFEST log plus write-once
// dataset/column/segment files.
type Store struct {
	dir    string
	opts   Options
	advise int

	mu     sync.Mutex
	man    *manifest
	st     manifestState
	epochs map[string]uint64
	seq    uint64
	closed bool

	counters *metrics.Counters

	segmentsPersisted int64
	mappedBytes       int64
	compactions       int64

	// Recovery products, immutable after Open.
	recTables   []RecoveredTable
	recIndexes  []RecoveredIndex
	recSegments int
	degraded    []string
	recElapsed  time.Duration
}

// Open replays dir's manifest, loads and verifies every live table and
// index (mmap'd when the platform allows), removes crash litter and
// orphan files, and returns the store ready for appends. Corrupt state
// is dropped — durably tombstoned and reported via Stats().Degraded —
// never served.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("storage: no directory configured")
	}
	advise, err := parseMadvise(opts.Madvise)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", opts.Dir, err)
	}
	start := time.Now()
	removeCrashLitter(opts.Dir)
	man, st, err := openManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    opts.Dir,
		opts:   opts,
		advise: advise,
		man:    man,
		st:     st,
		epochs: make(map[string]uint64),
	}
	s.loadCatalog()
	s.initSeq()
	s.sweepOrphans()
	if s.man.shouldCompact(s.st.live()) {
		if err := s.man.compact(s.st); err == nil {
			s.compactions++
		}
	}
	s.recElapsed = time.Since(start)
	return s, nil
}

// removeCrashLitter deletes temp files a crash may have left behind:
// half-written *.tmp data files and an uncommitted MANIFEST.compact.
func removeCrashLitter(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") || name == manifestName+".compact" {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// loadCatalog materializes every live manifest entry, dropping (with a
// durable tombstone) anything that fails verification.
func (s *Store) loadCatalog() {
	names := make([]string, 0, len(s.st.tables))
	for name := range s.st.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := s.st.tables[name]
		d, err := s.loadDataset(rec)
		if err != nil {
			s.degrade(fmt.Sprintf("table %s: %v", name, err))
			s.tombstone(encodeDropTable(name), recDropTable, name)
			continue
		}
		s.recTables = append(s.recTables, RecoveredTable{Name: name, Dataset: d, CRC: rec.crc})
	}
	keys := make([]ixKey, 0, len(s.st.indexes))
	for k := range s.st.indexes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].source < keys[j].source
	})
	for _, k := range keys {
		rec := s.st.indexes[k]
		tbl, ok := s.st.tables[k.table]
		if !ok {
			// Table was dropped (possibly just above); the index goes
			// with it — recDropTable already covers it in the catalog.
			continue
		}
		ix, err := s.loadIndex(rec, tbl.records)
		if err != nil {
			s.degrade(fmt.Sprintf("index %s/%s: %v", k.table, k.source, err))
			s.tombstone(encodeDropIndex(k), recDropIndex, k)
			continue
		}
		s.recIndexes = append(s.recIndexes, RecoveredIndex{
			IndexMeta: IndexMeta{
				Table:       rec.table,
				Source:      rec.source,
				Fusion:      rec.fusion,
				CalibOracle: rec.calibOracle,
				Proxies:     rec.proxies,
			},
			Index: ix,
		})
		s.recSegments += len(rec.segs)
	}
}

func (s *Store) degrade(note string) {
	s.degraded = append(s.degraded, note)
}

// tombstone durably records a drop discovered during recovery. File
// removal is left to the orphan sweep that follows catalog loading.
func (s *Store) tombstone(payload []byte, rtype byte, rec any) {
	if err := s.man.appendRecord(payload); err != nil {
		// The drop still applies in memory; a re-crash just rediscovers
		// the same corruption on the next boot.
		s.degrade(fmt.Sprintf("tombstone append failed: %v", err))
	}
	s.st.apply(rtype, rec)
}

// loadDataset maps (or reads) and verifies one table's dataset file.
func (s *Store) loadDataset(rec datasetRec) (*dataset.Dataset, error) {
	data, mapped, err := s.loadVerified(rec.file, rec.size, rec.crc)
	if err != nil {
		return nil, err
	}
	df, err := parseDatasetFile(data)
	if err != nil {
		return nil, err
	}
	if df.count != rec.records {
		return nil, fmt.Errorf("dataset file holds %d records, manifest says %d", df.count, rec.records)
	}
	var scores []float64
	if mapped {
		scores = aliasFloat64s(df.scores)
	} else {
		scores = decodeFloat64s(df.scores)
	}
	// Labels are always decoded to the heap (bit-unpacking is required
	// either way); scores ride the mapping zero-copy. The CRC check
	// above stands in for New's per-record range scan.
	return dataset.FromColumns(rec.name, scores, decodeLabelBits(df.labelBits, df.count))
}

// loadIndex maps (or reads) one index's column and segment files and
// reconstructs the ScoreIndex via FromExternal's verification — zero
// sorts, zero proxy calls, byte-identical or rejected.
func (s *Store) loadIndex(rec indexRec, tableRecords int) (*index.ScoreIndex, error) {
	if rec.n > tableRecords {
		return nil, fmt.Errorf("index covers %d rows but table has %d", rec.n, tableRecords)
	}
	colData, colMapped, err := s.loadVerified(rec.colFile, rec.colSize, rec.colCRC)
	if err != nil {
		return nil, fmt.Errorf("column %s: %w", rec.colFile, err)
	}
	cf, err := parseColumnFile(colData)
	if err != nil {
		return nil, err
	}
	if cf.count != rec.n {
		return nil, fmt.Errorf("column file holds %d scores, manifest says %d", cf.count, rec.n)
	}
	var column []float64
	if colMapped {
		column = aliasFloat64s(cf.scores)
	} else {
		column = decodeFloat64s(cf.scores)
	}
	segs := make([]index.SegmentData, len(rec.segs))
	backing := make([]any, 0, len(rec.segs)+1)
	if colMapped {
		backing = append(backing, colData)
	}
	for i, sr := range rec.segs {
		data, mapped, err := s.loadVerified(sr.file, sr.size, sr.crc)
		if err != nil {
			return nil, fmt.Errorf("segment %s: %w", sr.file, err)
		}
		sf, err := parseSegmentFile(data)
		if err != nil {
			return nil, fmt.Errorf("segment %s: %w", sr.file, err)
		}
		if sf.base != sr.base || sf.count != sr.count {
			return nil, fmt.Errorf("segment %s header (%d,%d) disagrees with manifest (%d,%d)",
				sr.file, sf.base, sf.count, sr.base, sr.count)
		}
		if mapped {
			segs[i] = index.SegmentData{Base: sf.base, Perm: aliasInts(sf.perm), Sorted: aliasFloat64s(sf.sorted)}
			backing = append(backing, data)
		} else {
			segs[i] = index.SegmentData{Base: sf.base, Perm: decodeInts(sf.perm), Sorted: decodeFloat64s(sf.sorted)}
		}
		if sr.codeFile == "" {
			continue
		}
		// Quantized index: map the segment's .qcv sibling too. The codes
		// are structurally validated here and semantically verified
		// against the mmap'd float column inside FromExternal's O(n)
		// pass, exactly like the permutation.
		cdata, cmapped, err := s.loadVerified(sr.codeFile, sr.codeSize, sr.codeCRC)
		if err != nil {
			return nil, fmt.Errorf("codes %s: %w", sr.codeFile, err)
		}
		qf, err := parseCodeFile(cdata)
		if err != nil {
			return nil, fmt.Errorf("codes %s: %w", sr.codeFile, err)
		}
		if qf.base != sr.base || qf.count != sr.count {
			return nil, fmt.Errorf("codes %s header (%d,%d) disagrees with manifest (%d,%d)",
				sr.codeFile, qf.base, qf.count, sr.base, sr.count)
		}
		if cmapped {
			segs[i].Codes = aliasUint16s(qf.codes)
			segs[i].SortedCodes = aliasUint16s(qf.sortedCodes)
			backing = append(backing, cdata)
		} else {
			segs[i].Codes = decodeUint16s(qf.codes)
			segs[i].SortedCodes = decodeUint16s(qf.sortedCodes)
		}
	}
	return index.FromExternal(index.External{Column: column, Segments: segs, Backing: backing}, s.opts.Index)
}

// loadVerified loads one named file and checks its exact size and
// CRC32 against the manifest record before any byte is trusted. The
// second return reports whether the bytes are a shared mapping (alias,
// never copy) or heap (decode).
func (s *Store) loadVerified(name string, wantSize int64, wantCRC uint32) ([]byte, bool, error) {
	if err := checkFileName(name); err != nil {
		return nil, false, err
	}
	path := filepath.Join(s.dir, name)
	mapped := false
	var data []byte
	if mmapSupported && !s.opts.NoMmap {
		if b, err := mapFile(path); err == nil {
			data, mapped = b, true
		}
	}
	if !mapped {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, false, err
		}
		data = b
	}
	if int64(len(data)) != wantSize {
		return nil, false, fmt.Errorf("file is %d bytes, manifest says %d", len(data), wantSize)
	}
	if got := crc32.Checksum(data, castagnoli); got != wantCRC {
		return nil, false, fmt.Errorf("CRC mismatch (got %08x, manifest says %08x)", got, wantCRC)
	}
	if mapped {
		madviseBytes(data, s.advise)
		s.mappedBytes += int64(len(data))
	}
	return data, mapped, nil
}

// checkFileName rejects manifest-supplied file names that could escape
// the persistence directory.
func checkFileName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("invalid file name %q", name)
	}
	return nil
}

// initSeq seeds the file-name sequence above every number in use.
func (s *Store) initSeq() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		dot := strings.IndexByte(name, '.')
		if dot <= 0 {
			continue
		}
		if n, err := strconv.ParseUint(name[:dot], 10, 64); err == nil && n > s.seq {
			s.seq = n
		}
	}
}

// sweepOrphans removes data files the live catalog no longer (or never
// did) reference — the residue of crashes between file commit and
// manifest append, and of drops whose removal was interrupted.
func (s *Store) sweepOrphans() {
	referenced := make(map[string]bool)
	for _, rec := range s.st.tables {
		referenced[rec.file] = true
	}
	for _, rec := range s.st.indexes {
		referenced[rec.colFile] = true
		for _, sr := range rec.segs {
			referenced[sr.file] = true
			if sr.codeFile != "" {
				referenced[sr.codeFile] = true
			}
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if referenced[name] {
			continue
		}
		switch filepath.Ext(name) {
		case ".ds", ".col", ".seg", ".qcv":
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

func (s *Store) nextFileLocked(ext string) string {
	s.seq++
	return fmt.Sprintf("%06d%s", s.seq, ext)
}

// RecoveredTables returns the datasets restored at Open, sorted by name.
func (s *Store) RecoveredTables() []RecoveredTable { return s.recTables }

// RecoveredIndexes returns the verified indexes restored at Open.
func (s *Store) RecoveredIndexes() []RecoveredIndex { return s.recIndexes }

// Epoch returns the table's invalidation epoch. Capture it before
// building an index; pass it to SaveIndex so a drop that raced the
// build cannot be overwritten by a stale flush.
func (s *Store) Epoch(table string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs[table]
}

// WithCounters attaches service metrics, retroactively adding the
// recovery outcome (the store is opened before counters exist).
func (s *Store) WithCounters(c *metrics.Counters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = c
	c.StorageRecovered(int64(len(s.recTables)), int64(len(s.recIndexes)), int64(s.recSegments))
	c.StorageMappedBytes(s.mappedBytes)
	c.StorageRecoveryMillis(s.recElapsed.Milliseconds())
	c.StorageSegmentsPersisted(s.segmentsPersisted)
	c.StorageManifestRecords(s.man.frames)
	c.StorageManifestCompactions(s.compactions)
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := 0
	for _, rec := range s.st.indexes {
		segs += len(rec.segs)
	}
	return Stats{
		TablesLive:        len(s.st.tables),
		IndexesLive:       len(s.st.indexes),
		SegmentsLive:      segs,
		TablesRecovered:   len(s.recTables),
		IndexesRecovered:  len(s.recIndexes),
		SegmentsRecovered: s.recSegments,
		MappedBytes:       s.mappedBytes,
		RecoveryElapsed:   s.recElapsed,
		ManifestRecords:   s.man.frames,
		Compactions:       s.compactions,
		Degraded:          append([]string(nil), s.degraded...),
	}
}

// DatasetCRC computes the CRC32 (Castagnoli) of d's binary interchange
// form without materializing it — the identity the manifest records for
// a persisted dataset, usable to recognize a re-registration of
// identical content.
func DatasetCRC(d *dataset.Dataset) uint32 {
	h := crc32.New(castagnoli)
	dataset.WriteBinary(h, d) // hash writers cannot fail
	return h.Sum32()
}

// SaveDataset persists a table's dataset and commits it to the
// manifest, superseding (and deleting) any previous dataset file for
// the name. Index records for the table are left alone — an append
// grows the dataset without invalidating index lineages.
func (s *Store) SaveDataset(name string, d *dataset.Dataset) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("storage: store closed")
	}
	file := s.nextFileLocked(".ds")
	s.mu.Unlock()

	crc, size, err := writeDatasetFile(filepath.Join(s.dir, file), d)
	if err != nil {
		return fmt.Errorf("storage: persist dataset %s: %w", name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		os.Remove(filepath.Join(s.dir, file))
		return fmt.Errorf("storage: store closed")
	}
	rec := datasetRec{name: name, file: file, records: d.Len(), crc: crc, size: size}
	before := s.man.frames
	if err := s.man.appendRecord(encodeDataset(rec)); err != nil {
		os.Remove(filepath.Join(s.dir, file))
		return err
	}
	old, had := s.st.tables[name]
	s.st.apply(recDataset, rec)
	if had && old.file != file {
		os.Remove(filepath.Join(s.dir, old.file))
	}
	s.maybeCompactLocked(before)
	return nil
}

// SaveIndex persists an index built for meta's (table, source) at the
// given epoch: the contiguous score column plus one file per segment,
// committed as a single manifest record. Segment files from a previous
// flush of the same lineage are reused by (base, count) — segments are
// immutable, so an append-grown index rewrites only its new tail.
// Returns ErrSuperseded (after deleting anything it wrote) if the
// table's epoch advanced, i.e. an invalidation raced the build.
func (s *Store) SaveIndex(meta IndexMeta, ix *index.ScoreIndex, epoch uint64) error {
	key := ixKey{meta.Table, meta.Source}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("storage: store closed")
	}
	if s.epochs[meta.Table] != epoch {
		s.mu.Unlock()
		return ErrSuperseded
	}
	old, hadOld := s.st.indexes[key]
	reuse := make(map[[2]int]segRec, len(old.segs))
	if hadOld {
		for _, sr := range old.segs {
			reuse[[2]int{sr.base, sr.count}] = sr
		}
	}
	quantized := ix.Quantized()
	type pending struct {
		file     string // .seg to write, "" when only codes are missing
		codeFile string // .qcv to write, "" when unquantized or reused
		view     index.SegmentData
	}
	segs := make([]segRec, ix.Segments())
	var writes []pending
	for i := 0; i < ix.Segments(); i++ {
		sd := ix.SegmentView(i)
		if sr, ok := reuse[[2]int{sd.Base, len(sd.Perm)}]; ok {
			// The immutable .seg file is reusable; the .qcv sibling is
			// reusable only if the previous flush's quantization matches.
			// Quantize turned on since: write just the missing code file.
			// Turned off: drop the reference (the superseded-file sweep
			// below deletes the .qcv once the new record commits).
			switch {
			case quantized && sr.codeFile == "":
				sr.codeFile = s.nextFileLocked(".qcv")
				sr.codeCRC, sr.codeSize = 0, 0
				writes = append(writes, pending{codeFile: sr.codeFile, view: sd})
			case !quantized && sr.codeFile != "":
				sr.codeFile, sr.codeCRC, sr.codeSize = "", 0, 0
			}
			segs[i] = sr
			continue
		}
		file := s.nextFileLocked(".seg")
		segs[i] = segRec{file: file, base: sd.Base, count: len(sd.Perm)}
		p := pending{file: file, view: sd}
		if quantized {
			segs[i].codeFile = s.nextFileLocked(".qcv")
			p.codeFile = segs[i].codeFile
		}
		writes = append(writes, p)
	}
	colFile := old.colFile
	colCRC, colSize := old.colCRC, old.colSize
	writeCol := !hadOld || old.n != ix.Len()
	if writeCol {
		colFile = s.nextFileLocked(".col")
	}
	s.mu.Unlock()

	// File IO happens outside the lock; the epoch re-check below
	// catches any invalidation that lands meanwhile.
	written := make([]string, 0, len(writes)+1)
	abort := func() {
		for _, f := range written {
			os.Remove(filepath.Join(s.dir, f))
		}
	}
	if writeCol {
		crc, size, err := writeColumnFile(filepath.Join(s.dir, colFile), ix.Scores())
		if err != nil {
			abort()
			return fmt.Errorf("storage: persist column for %s/%s: %w", meta.Table, meta.Source, err)
		}
		colCRC, colSize = crc, size
		written = append(written, colFile)
	}
	for _, p := range writes {
		if p.file != "" {
			crc, size, err := writeSegmentFile(filepath.Join(s.dir, p.file), p.view)
			if err != nil {
				abort()
				return fmt.Errorf("storage: persist segment for %s/%s: %w", meta.Table, meta.Source, err)
			}
			written = append(written, p.file)
			for i := range segs {
				if segs[i].file == p.file {
					segs[i].crc, segs[i].size = crc, size
				}
			}
		}
		if p.codeFile != "" {
			crc, size, err := writeCodeFile(filepath.Join(s.dir, p.codeFile), p.view)
			if err != nil {
				abort()
				return fmt.Errorf("storage: persist segment codes for %s/%s: %w", meta.Table, meta.Source, err)
			}
			written = append(written, p.codeFile)
			for i := range segs {
				if segs[i].codeFile == p.codeFile {
					segs[i].codeCRC, segs[i].codeSize = crc, size
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.epochs[meta.Table] != epoch {
		abort()
		if s.closed {
			return fmt.Errorf("storage: store closed")
		}
		return ErrSuperseded
	}
	rec := indexRec{
		table:       meta.Table,
		source:      meta.Source,
		fusion:      meta.Fusion,
		calibOracle: meta.CalibOracle,
		proxies:     append([]string(nil), meta.Proxies...),
		n:           ix.Len(),
		colFile:     colFile,
		colCRC:      colCRC,
		colSize:     colSize,
		segs:        segs,
		quantized:   quantized,
	}
	before := s.man.frames
	if err := s.man.appendRecord(encodeIndex(rec)); err != nil {
		abort()
		return err
	}
	// Catalog state may have shifted while we wrote (another flush of
	// the same key): re-snapshot to delete exactly the files the new
	// record supersedes.
	cur, hadCur := s.st.indexes[key]
	s.st.apply(recIndex, rec)
	if hadCur {
		keep := make(map[string]bool, 2*len(segs)+1)
		keep[colFile] = true
		for _, sr := range segs {
			keep[sr.file] = true
			if sr.codeFile != "" {
				keep[sr.codeFile] = true
			}
		}
		if !keep[cur.colFile] {
			os.Remove(filepath.Join(s.dir, cur.colFile))
		}
		for _, sr := range cur.segs {
			if !keep[sr.file] {
				os.Remove(filepath.Join(s.dir, sr.file))
			}
			if sr.codeFile != "" && !keep[sr.codeFile] {
				os.Remove(filepath.Join(s.dir, sr.codeFile))
			}
		}
	}
	// Count .seg files only: a code-only write (quantize turned on over
	// reused segments) persists no segment.
	var segWrites int64
	for _, p := range writes {
		if p.file != "" {
			segWrites++
		}
	}
	s.segmentsPersisted += segWrites
	s.counters.StorageSegmentsPersisted(segWrites)
	s.maybeCompactLocked(before)
	return nil
}

// DropTable durably tombstones a table, its dataset file, and every
// index built over it, and advances the table's epoch so in-flight
// index flushes abandon themselves.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store closed")
	}
	s.epochs[name]++
	_, hadTable := s.st.tables[name]
	hasIx := false
	for k := range s.st.indexes {
		if k.table == name {
			hasIx = true
			break
		}
	}
	if !hadTable && !hasIx {
		return nil
	}
	before := s.man.frames
	if err := s.man.appendRecord(encodeDropTable(name)); err != nil {
		return err
	}
	if rec, ok := s.st.tables[name]; ok {
		os.Remove(filepath.Join(s.dir, rec.file))
	}
	for k, rec := range s.st.indexes {
		if k.table != name {
			continue
		}
		os.Remove(filepath.Join(s.dir, rec.colFile))
		for _, sr := range rec.segs {
			os.Remove(filepath.Join(s.dir, sr.file))
			if sr.codeFile != "" {
				os.Remove(filepath.Join(s.dir, sr.codeFile))
			}
		}
	}
	s.st.apply(recDropTable, name)
	s.maybeCompactLocked(before)
	return nil
}

// DropIndex durably tombstones one (table, source) index and advances
// the table's epoch. The epoch is per table, so a concurrent flush of a
// sibling source on the same table is also abandoned — it simply stays
// memory-only until its next rebuild, which is safe (never wrong, at
// worst re-done).
func (s *Store) DropIndex(table, source string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store closed")
	}
	s.epochs[table]++
	key := ixKey{table, source}
	rec, ok := s.st.indexes[key]
	if !ok {
		return nil
	}
	before := s.man.frames
	if err := s.man.appendRecord(encodeDropIndex(key)); err != nil {
		return err
	}
	os.Remove(filepath.Join(s.dir, rec.colFile))
	for _, sr := range rec.segs {
		os.Remove(filepath.Join(s.dir, sr.file))
		if sr.codeFile != "" {
			os.Remove(filepath.Join(s.dir, sr.codeFile))
		}
	}
	s.st.apply(recDropIndex, key)
	s.maybeCompactLocked(before)
	return nil
}

// maybeCompactLocked folds manifest bookkeeping after an append and
// compacts when dead records dominate. Called with s.mu held; before is
// the frame count prior to the append(s) being accounted.
func (s *Store) maybeCompactLocked(before int64) {
	if s.man.shouldCompact(s.st.live()) {
		if err := s.man.compact(s.st); err == nil {
			s.compactions++
			s.counters.StorageManifestCompactions(1)
		}
	}
	if delta := s.man.frames - before; delta != 0 {
		s.counters.StorageManifestRecords(delta)
	}
}

// Close releases the manifest handle. Mapped files are deliberately
// left mapped: recovered datasets and indexes alias them and may still
// be referenced by in-flight queries.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.man.Close()
}
