package storage

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"supg/internal/index"
)

// Persistence tests for the quantized index's .qcv code-vector files:
// zero-rescan recovery of the codes, CRC rejection of corrupted or
// torn code files, and segment reuse across quantize-on/off saves of
// the same column.

// seedQuantizedStore persists one table and one quantized index into
// dir and returns the original index.
func seedQuantizedStore(t testing.TB, dir string, segSize int) *index.ScoreIndex {
	t.Helper()
	d := testDataset(t, 3, 5000)
	ix, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: segSize, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := s.SaveIndex(meta, ix, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestQuantizedRoundTripRecovery pins the tentpole's persistence
// claim: a quantized index recovers from disk with zero permutation
// sorts, keeps its codes (scans stay 2-byte), and answers every
// threshold query bit-identically — on both the mmap and the
// heap-decode path.
func TestQuantizedRoundTripRecovery(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		t.Run(fmt.Sprintf("noMmap=%v", noMmap), func(t *testing.T) {
			dir := t.TempDir()
			ix := seedQuantizedStore(t, dir, 700)

			if got, _ := filepath.Glob(filepath.Join(dir, "*.qcv")); len(got) != ix.Segments() {
				t.Fatalf("%d .qcv files on disk, want one per segment (%d)", len(got), ix.Segments())
			}

			sortsBefore := index.BuildSortsTotal()
			s := openStore(t, Options{Dir: dir, NoMmap: noMmap})
			if got := index.BuildSortsTotal() - sortsBefore; got != 0 {
				t.Fatalf("recovery performed %d permutation sorts, want 0", got)
			}
			st := s.Stats()
			if st.IndexesRecovered != 1 || len(st.Degraded) != 0 {
				t.Fatalf("recovery stats: %+v", st)
			}
			got := s.RecoveredIndexes()[0].Index
			if !got.Quantized() {
				t.Fatal("recovered index lost its code vectors")
			}
			if got.ScanBytesPerRecord() != 2 {
				t.Fatalf("recovered scan width %d bytes/record, want 2", got.ScanBytesPerRecord())
			}
			assertIndexEquivalent(t, ix, got)
		})
	}
}

// TestCorruptCodeFileDegradesIndexOnly: a bit-flipped .qcv must fail
// its CRC at boot and degrade the index — never serve wrong codes, and
// never take the table down with it. The tombstone is durable, so a
// second boot sees a clean catalog.
func TestCorruptCodeFileDegradesIndexOnly(t *testing.T) {
	for _, truncate := range []bool{false, true} {
		t.Run(fmt.Sprintf("truncate=%v", truncate), func(t *testing.T) {
			dir := t.TempDir()
			seedQuantizedStore(t, dir, 700)
			corruptFile(t, findFile(t, dir, ".qcv"), truncate)

			s := openStore(t, Options{Dir: dir})
			st := s.Stats()
			if st.TablesRecovered != 1 {
				t.Fatalf("table lost with the code file: %+v", st)
			}
			if st.IndexesRecovered != 0 || st.IndexesLive != 0 {
				t.Fatalf("corrupt code file served: %+v", st)
			}
			if len(st.Degraded) == 0 || !strings.Contains(st.Degraded[0], "index t/p") {
				t.Fatalf("degradation note missing: %v", st.Degraded)
			}
			s.Close()
			s2 := openStore(t, Options{Dir: dir})
			if st2 := s2.Stats(); len(st2.Degraded) != 0 || st2.TablesRecovered != 1 {
				t.Fatalf("second boot re-discovered the corruption: %+v", st2)
			}
		})
	}
}

// TestQuantizeTransitionCorruptsNothing covers the on/off transitions
// over one column: turning quantization on must reuse the immutable
// .seg files and write only the missing .qcv siblings; turning it off
// must drop the code references (and eventually the files) while the
// recovered index stays float-correct throughout.
func TestQuantizeTransitionCorruptsNothing(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t, 7, 2000)
	ref := buildIndex(t, d, 500) // 4 segments, float
	quant, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: 500, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}

	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex(meta, ref, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	floatWrites := s.segmentsPersisted
	oldRec := s.st.indexes[ixKey{"t", "p"}]

	// On: same column, quantized. Segment files must be reused.
	if err := s.SaveIndex(meta, quant, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	if got := s.segmentsPersisted - floatWrites; got != 0 {
		t.Fatalf("quantize-on rewrote %d unchanged segment files", got)
	}
	qRec := s.st.indexes[ixKey{"t", "p"}]
	for i, sr := range qRec.segs {
		if sr.file != oldRec.segs[i].file {
			t.Fatalf("segment %d rewritten on quantize-on (%s -> %s)", i, oldRec.segs[i].file, sr.file)
		}
		if sr.codeFile == "" || sr.codeSize == 0 {
			t.Fatalf("segment %d missing its code file after quantize-on: %+v", i, sr)
		}
	}
	if !qRec.quantized {
		t.Fatal("manifest record not marked quantized")
	}

	// Off again: the code references must clear; recovery serves the
	// float index.
	if err := s.SaveIndex(meta, ref, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	offRec := s.st.indexes[ixKey{"t", "p"}]
	if offRec.quantized {
		t.Fatal("manifest record still quantized after float save")
	}
	for i, sr := range offRec.segs {
		if sr.codeFile != "" {
			t.Fatalf("segment %d kept a code reference after quantize-off: %+v", i, sr)
		}
	}
	s.Close()

	s2 := openStore(t, Options{Dir: dir})
	got := s2.RecoveredIndexes()[0].Index
	if got.Quantized() {
		t.Fatal("float save recovered quantized")
	}
	assertIndexEquivalent(t, ref, got)
	// The superseded sweep removed the unreferenced .qcv files.
	if left, _ := filepath.Glob(filepath.Join(dir, "*.qcv")); len(left) != 0 {
		t.Fatalf("%d orphaned .qcv files survived quantize-off: %v", len(left), left)
	}
}

// TestQuantizedManifestReplayPreservesOldRecords: an unquantized index
// record must encode byte-identically with the quantization fields
// absent (recIndex, not recIndexQ), so pre-quantization manifests
// replay unchanged — covered indirectly by every float test, pinned
// here via a record round-trip of both flavors.
func TestQuantizedManifestRecordRoundTrip(t *testing.T) {
	recs := []indexRec{
		{
			table: "t", source: "p", fusion: "none", proxies: []string{"p"},
			n: 9, colFile: "000001.col", colCRC: 7, colSize: 100,
			segs: []segRec{{file: "000002.seg", base: 0, count: 9, crc: 9, size: 160}},
		},
		{
			table: "t", source: "q", fusion: "none", proxies: []string{"q"},
			n: 9, colFile: "000003.col", colCRC: 8, colSize: 100, quantized: true,
			segs: []segRec{{file: "000004.seg", base: 0, count: 9, crc: 3, size: 160,
				codeFile: "000005.qcv", codeCRC: 5, codeSize: 64}},
		},
	}
	for _, rec := range recs {
		wantType := byte(recIndex)
		if rec.quantized {
			wantType = recIndexQ
		}
		rtype, got, err := decodeRecord(encodeIndex(rec))
		if err != nil {
			t.Fatalf("quantized=%v: %v", rec.quantized, err)
		}
		if rtype != wantType {
			t.Fatalf("quantized=%v encoded as record type %d, want %d", rec.quantized, rtype, wantType)
		}
		gr, ok := got.(indexRec)
		if !ok {
			t.Fatalf("decoded %T", got)
		}
		if gr.quantized != rec.quantized || gr.segs[0].codeFile != rec.segs[0].codeFile ||
			gr.segs[0].codeCRC != rec.segs[0].codeCRC || gr.segs[0].codeSize != rec.segs[0].codeSize {
			t.Fatalf("round trip diverged: %+v vs %+v", gr, rec)
		}
	}
}
