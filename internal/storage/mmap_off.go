//go:build !(linux && (amd64 || arm64))

package storage

import "fmt"

// mmapSupported is false off linux/{amd64,arm64}: loads go through the
// heap with portable little-endian decoding instead of zero-copy
// aliasing, which requires a known-little-endian 64-bit platform.
const mmapSupported = false

func mapFile(path string) ([]byte, error) {
	return nil, fmt.Errorf("storage: mmap unsupported on this platform")
}

func madviseBytes(b []byte, advice int) error { return nil }

// The alias helpers are unreachable when mmapSupported is false (every
// load decodes instead); they exist so the package compiles.
func aliasFloat64s(b []byte) []float64 { panic("storage: aliasFloat64s without mmap support") }

func aliasInts(b []byte) []int { panic("storage: aliasInts without mmap support") }

func aliasUint16s(b []byte) []uint16 { panic("storage: aliasUint16s without mmap support") }
