package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The MANIFEST is an append-only log of catalog records, using the same
// frame discipline as the label store's WAL: each record is
//
//	[4B LE payload length][4B LE CRC32(Castagnoli) of payload][payload]
//
// with payload[0] a record-type byte. A torn or corrupt tail — short
// frame, bad CRC, or a well-framed payload that fails to decode — marks
// the end of the usable log: everything before it is applied, the tail
// is truncated on open. Replay folds records last-wins into the live
// catalog:
//
//	recDataset   — a table's dataset file (name, file, records, crc, size)
//	recIndex     — a segmented index for (table, score source): its
//	               column file, segment files, and provenance (proxies,
//	               fusion kind, calibration oracle)
//	recDropTable — tombstone: the table and all its indexes are gone
//	recDropIndex — tombstone for one (table, score source) index
//	recIndexQ    — recIndex for a quantized index: each segment entry
//	               additionally names its .qcv code-vector file with CRC
//	               and size. A distinct type (not new recIndex fields)
//	               keeps the recIndex encoding byte-identical, so
//	               manifests written before quantization existed replay
//	               unchanged.
//
// Data files referenced by a record are fully written, fsynced, and
// renamed into place BEFORE the record is appended, so a record in the
// manifest implies its files are durable; a crash between file commit
// and record append leaves an orphan file that boot-time cleanup
// removes. When dead records outnumber live ones the log is compacted
// by rewriting live records to MANIFEST.compact and renaming over.

const (
	recDataset   byte = 1
	recIndex     byte = 2
	recDropTable byte = 3
	recDropIndex byte = 4
	recIndexQ    byte = 5

	manifestName = "MANIFEST"

	// manMaxFrame bounds a single record (an index record lists every
	// segment file name; 8 MiB covers ~10^5 segments).
	manMaxFrame = 8 << 20

	// maxManifestList bounds decoded list lengths (segments, proxies).
	maxManifestList = 1 << 20

	// compactMinFrames: don't bother compacting tiny logs.
	compactMinFrames = 64
)

// datasetRec describes a table's persisted dataset file.
type datasetRec struct {
	name    string
	file    string
	records int
	crc     uint32
	size    int64
}

// segRec describes one persisted segment file of an index, plus — on
// quantized indexes only — its .qcv code-vector sibling (codeFile ==
// "" otherwise).
type segRec struct {
	file  string
	base  int
	count int
	crc   uint32
	size  int64

	codeFile string
	codeCRC  uint32
	codeSize int64
}

// indexRec describes a persisted segmented index and its provenance.
type indexRec struct {
	table       string
	source      string // ScoreSource cache key
	fusion      string // query.FusionKind string form
	calibOracle string // oracle name for calibrated fusion, else ""
	proxies     []string
	n           int // rows covered (== column length)
	colFile     string
	colCRC      uint32
	colSize     int64
	segs        []segRec
	quantized   bool // segments carry .qcv code files (recIndexQ)
}

// ixKey identifies an index in the catalog.
type ixKey struct {
	table  string
	source string
}

// manifestState is the fold of a manifest replay: the live catalog.
type manifestState struct {
	tables  map[string]datasetRec
	indexes map[ixKey]indexRec
	frames  int64 // frames applied (live + dead)
}

func newManifestState() manifestState {
	return manifestState{
		tables:  make(map[string]datasetRec),
		indexes: make(map[ixKey]indexRec),
	}
}

func (st *manifestState) live() int64 {
	return int64(len(st.tables) + len(st.indexes))
}

func (st *manifestState) apply(rtype byte, rec any) {
	switch rtype {
	case recDataset:
		st.tables[rec.(datasetRec).name] = rec.(datasetRec)
	case recIndex, recIndexQ:
		ir := rec.(indexRec)
		st.indexes[ixKey{ir.table, ir.source}] = ir
	case recDropTable:
		name := rec.(string)
		delete(st.tables, name)
		for k := range st.indexes {
			if k.table == name {
				delete(st.indexes, k)
			}
		}
	case recDropIndex:
		delete(st.indexes, rec.(ixKey))
	}
}

// replayManifest folds the manifest bytes into the live catalog. It
// never fails: corruption at offset X means the log is valid up to the
// last whole, decodable frame before X, and goodOff reports where that
// prefix ends so the caller can truncate the tail.
func replayManifest(data []byte) (manifestState, int64) {
	st := newManifestState()
	off := int64(0)
	for int64(len(data))-off >= 8 {
		length := binary.LittleEndian.Uint32(data[off:])
		if length == 0 || length > manMaxFrame {
			break
		}
		end := off + 8 + int64(length)
		if end > int64(len(data)) {
			break
		}
		payload := data[off+8 : end]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			break
		}
		rtype, rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		st.apply(rtype, rec)
		st.frames++
		off = end
	}
	return st, off
}

// decodeRecord parses one frame payload into its typed record.
func decodeRecord(payload []byte) (byte, any, error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("manifest: empty record")
	}
	d := decoder{b: payload[1:]}
	switch rtype := payload[0]; rtype {
	case recDataset:
		rec := datasetRec{
			name:    d.str(),
			file:    d.str(),
			records: d.count(maxFileRecords),
			crc:     uint32(d.uvarint()),
			size:    int64(d.uvarint()),
		}
		return rtype, rec, d.finish("dataset")
	case recIndex, recIndexQ:
		rec := indexRec{
			table:       d.str(),
			source:      d.str(),
			fusion:      d.str(),
			calibOracle: d.str(),
			quantized:   rtype == recIndexQ,
		}
		rec.proxies = make([]string, d.count(maxManifestList))
		for i := range rec.proxies {
			rec.proxies[i] = d.str()
		}
		rec.n = d.count(maxFileRecords)
		rec.colFile = d.str()
		rec.colCRC = uint32(d.uvarint())
		rec.colSize = int64(d.uvarint())
		nsegs := d.count(maxManifestList)
		if d.err != nil {
			return 0, nil, d.finish("index")
		}
		rec.segs = make([]segRec, nsegs)
		for i := range rec.segs {
			rec.segs[i] = segRec{
				file:  d.str(),
				base:  d.count(maxFileRecords),
				count: d.count(maxFileRecords),
				crc:   uint32(d.uvarint()),
				size:  int64(d.uvarint()),
			}
			if rec.quantized {
				rec.segs[i].codeFile = d.str()
				rec.segs[i].codeCRC = uint32(d.uvarint())
				rec.segs[i].codeSize = int64(d.uvarint())
			}
		}
		return rtype, rec, d.finish("index")
	case recDropTable:
		name := d.str()
		return rtype, name, d.finish("drop-table")
	case recDropIndex:
		k := ixKey{table: d.str(), source: d.str()}
		return rtype, k, d.finish("drop-index")
	default:
		return 0, nil, fmt.Errorf("manifest: unknown record type %d", rtype)
	}
}

func encodeDataset(rec datasetRec) []byte {
	b := []byte{recDataset}
	b = appendString(b, rec.name)
	b = appendString(b, rec.file)
	b = binary.AppendUvarint(b, uint64(rec.records))
	b = binary.AppendUvarint(b, uint64(rec.crc))
	b = binary.AppendUvarint(b, uint64(rec.size))
	return b
}

func encodeIndex(rec indexRec) []byte {
	rtype := recIndex
	if rec.quantized {
		rtype = recIndexQ
	}
	b := []byte{rtype}
	b = appendString(b, rec.table)
	b = appendString(b, rec.source)
	b = appendString(b, rec.fusion)
	b = appendString(b, rec.calibOracle)
	b = binary.AppendUvarint(b, uint64(len(rec.proxies)))
	for _, p := range rec.proxies {
		b = appendString(b, p)
	}
	b = binary.AppendUvarint(b, uint64(rec.n))
	b = appendString(b, rec.colFile)
	b = binary.AppendUvarint(b, uint64(rec.colCRC))
	b = binary.AppendUvarint(b, uint64(rec.colSize))
	b = binary.AppendUvarint(b, uint64(len(rec.segs)))
	for _, s := range rec.segs {
		b = appendString(b, s.file)
		b = binary.AppendUvarint(b, uint64(s.base))
		b = binary.AppendUvarint(b, uint64(s.count))
		b = binary.AppendUvarint(b, uint64(s.crc))
		b = binary.AppendUvarint(b, uint64(s.size))
		if rec.quantized {
			b = appendString(b, s.codeFile)
			b = binary.AppendUvarint(b, uint64(s.codeCRC))
			b = binary.AppendUvarint(b, uint64(s.codeSize))
		}
	}
	return b
}

func encodeDropTable(name string) []byte {
	return appendString([]byte{recDropTable}, name)
}

func encodeDropIndex(k ixKey) []byte {
	b := appendString([]byte{recDropIndex}, k.table)
	return appendString(b, k.source)
}

// decoder is a cursor over a record payload; the first error sticks and
// poisons all later reads (which return zero values).
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a uvarint bounded by limit, for counts used to size
// allocations or index files.
func (d *decoder) count(limit uint64) int {
	v := d.uvarint()
	if d.err == nil && v > limit {
		d.err = fmt.Errorf("count %d exceeds limit %d", v, limit)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// finish requires the payload to be fully consumed with no error.
func (d *decoder) finish(kind string) error {
	if d.err != nil {
		return fmt.Errorf("manifest: %s record: %w", kind, d.err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("manifest: %s record: %d trailing bytes", kind, len(d.b))
	}
	return nil
}

// manifest is the open append handle on the MANIFEST file.
type manifest struct {
	path   string
	f      *os.File
	frames int64 // frames currently in the file
}

// openManifest replays dir/MANIFEST (creating it if absent), truncates
// any torn tail, and returns an append handle plus the live catalog.
func openManifest(dir string) (*manifest, manifestState, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, manifestState{}, fmt.Errorf("storage: read manifest: %w", err)
	}
	st, goodOff := replayManifest(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) //supg:atomiccommit-ok the manifest log is the commit path: records are CRC-framed, fsynced per append, and replay stops at the first torn record
	if err != nil {
		return nil, manifestState{}, fmt.Errorf("storage: open manifest: %w", err)
	}
	if goodOff < int64(len(data)) {
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, manifestState{}, fmt.Errorf("storage: truncate torn manifest tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, manifestState{}, fmt.Errorf("storage: sync manifest: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, 0); err != nil {
		f.Close()
		return nil, manifestState{}, fmt.Errorf("storage: seek manifest: %w", err)
	}
	return &manifest{path: path, f: f, frames: st.frames}, st, nil
}

// appendRecord frames, writes, and fsyncs one record payload. Catalog
// mutations are rare (registrations, flushes, invalidations), so every
// append is synced — a record present in the catalog is durable.
func (m *manifest) appendRecord(payload []byte) error {
	if len(payload) == 0 || len(payload) > manMaxFrame {
		return fmt.Errorf("storage: manifest record of %d bytes", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	if _, err := m.f.Write(frame); err != nil {
		return fmt.Errorf("storage: append manifest record: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	m.frames++
	return nil
}

// shouldCompact reports whether dead records dominate the log.
func (m *manifest) shouldCompact(live int64) bool {
	return m.frames >= compactMinFrames && m.frames > 2*live
}

// compact rewrites the live catalog to a fresh log and atomically
// renames it over the old one. Deterministic record order (sorted
// names/keys) keeps compacted logs reproducible.
func (m *manifest) compact(st manifestState) error {
	tmp := m.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644) //supg:atomiccommit-ok compaction's tmp log; fsynced below, then renamed over the manifest
	if err != nil {
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	var buf []byte
	appendFrame := func(payload []byte) {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	names := make([]string, 0, len(st.tables))
	for name := range st.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		appendFrame(encodeDataset(st.tables[name]))
	}
	keys := make([]ixKey, 0, len(st.indexes))
	for k := range st.indexes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].source < keys[j].source
	})
	for _, k := range keys {
		appendFrame(encodeIndex(st.indexes[k]))
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil { //supg:atomiccommit-ok this IS the compaction commit point: tmp was fsynced above and the directory is synced after
		os.Remove(tmp)
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	if err := syncDir(filepath.Dir(m.path)); err != nil {
		return fmt.Errorf("storage: compact manifest: %w", err)
	}
	old := m.f
	nf, err := os.OpenFile(m.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopen compacted manifest: %w", err)
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return fmt.Errorf("storage: reopen compacted manifest: %w", err)
	}
	old.Close()
	m.f = nf
	m.frames = st.live()
	return nil
}

func (m *manifest) Close() error { return m.f.Close() }

// appendString appends a uvarint length prefix followed by the bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
