package storage

import (
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

// BenchmarkStorageBoot prices the two ways a server can come up with a
// warm index over an n=10^6 table. Run with:
//
//	go test ./internal/storage -bench StorageBoot -benchmem -run '^$'
//
// "recover" is the durable-storage path: Open replays the manifest,
// CRC-verifies every file, mmaps the column and segment permutations,
// and hands back a ready index after an O(n) ascent check — zero proxy
// UDF calls, zero sorts. "rebuild" is the only alternative without the
// storage tier: re-invoke the proxy for all n records and re-sort every
// segment. The proxy here is a trivial slice lookup, so the rebuild
// number is its floor — any real model inference widens the gap by
// orders of magnitude, which is exactly the cost the paper's setting
// makes unaffordable to pay twice.
const benchBootN = 1_000_000

func BenchmarkStorageBoot(b *testing.B) {
	d := dataset.Beta(randx.New(99), benchBootN, 0.01, 2)
	ixOpts := index.Options{SegmentSize: 128 << 10}
	dir := b.TempDir()
	seed, err := Open(Options{Dir: dir, Index: ixOpts})
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.SaveDataset("t", d); err != nil {
		b.Fatal(err)
	}
	ix, err := index.NewWithOptions(d.Scores(), ixOpts)
	if err != nil {
		b.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := seed.SaveIndex(meta, ix, seed.Epoch("t")); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("recover", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := Open(Options{Dir: dir, Index: ixOpts})
			if err != nil {
				b.Fatal(err)
			}
			rec := s.RecoveredIndexes()
			if len(rec) != 1 || rec[0].Index.Len() != benchBootN {
				b.Fatalf("recovery incomplete: %d indexes", len(rec))
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		proxy := func(i int) float64 { return d.Score(i) }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores := make([]float64, benchBootN)
			for j := range scores {
				scores[j] = proxy(j)
			}
			ix, err := index.NewWithOptions(scores, ixOpts)
			if err != nil {
				b.Fatal(err)
			}
			if ix.Len() != benchBootN {
				b.Fatal("bad rebuild")
			}
		}
	})
}
