package storage

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

func testDataset(t testing.TB, seed uint64, n int) *dataset.Dataset {
	t.Helper()
	return dataset.Beta(randx.New(seed), n, 0.05, 2)
}

func buildIndex(t testing.TB, d *dataset.Dataset, segSize int) *index.ScoreIndex {
	t.Helper()
	ix, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func openStore(t testing.TB, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedStore persists one table and one index into dir and returns the
// originals for comparison.
func seedStore(t testing.TB, dir string, segSize int) (*dataset.Dataset, *index.ScoreIndex) {
	t.Helper()
	d := testDataset(t, 3, 5000)
	ix := buildIndex(t, d, segSize)
	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := s.SaveIndex(meta, ix, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return d, ix
}

// assertIndexEquivalent checks that got answers threshold queries
// bit-for-bit identically to want.
func assertIndexEquivalent(t *testing.T, want, got *index.ScoreIndex) {
	t.Helper()
	if got.Len() != want.Len() || got.Segments() != want.Segments() {
		t.Fatalf("shape diverged: %d/%d records, %d/%d segments",
			got.Len(), want.Len(), got.Segments(), want.Segments())
	}
	for _, tau := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.999, 1} {
		if g, w := got.CountAtLeast(tau), want.CountAtLeast(tau); g != w {
			t.Fatalf("CountAtLeast(%g) = %d, want %d", tau, g, w)
		}
		g := got.AppendAtLeast(nil, tau)
		w := want.AppendAtLeast(nil, tau)
		if len(g) != len(w) {
			t.Fatalf("AppendAtLeast(%g) returned %d ids, want %d", tau, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("AppendAtLeast(%g)[%d] = %d, want %d", tau, i, g[i], w[i])
			}
		}
	}
	for _, k := range []int{1, 7, want.Len() / 2, want.Len()} {
		gb := math.Float64bits(got.KthHighest(k))
		wb := math.Float64bits(want.KthHighest(k))
		if gb != wb {
			t.Fatalf("KthHighest(%d) bits %016x, want %016x", k, gb, wb)
		}
	}
}

func TestRoundTripRecovery(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		t.Run(fmt.Sprintf("noMmap=%v", noMmap), func(t *testing.T) {
			dir := t.TempDir()
			d, ix := seedStore(t, dir, 700)

			sortsBefore := index.BuildSortsTotal()
			s := openStore(t, Options{Dir: dir, NoMmap: noMmap})
			if got := index.BuildSortsTotal() - sortsBefore; got != 0 {
				t.Fatalf("recovery performed %d permutation sorts, want 0", got)
			}
			st := s.Stats()
			if st.TablesRecovered != 1 || st.IndexesRecovered != 1 {
				t.Fatalf("recovered %d tables / %d indexes, want 1/1 (degraded: %v)",
					st.TablesRecovered, st.IndexesRecovered, st.Degraded)
			}
			if st.SegmentsRecovered != ix.Segments() {
				t.Fatalf("recovered %d segments, want %d", st.SegmentsRecovered, ix.Segments())
			}
			if len(st.Degraded) != 0 {
				t.Fatalf("unexpected degradation: %v", st.Degraded)
			}
			if !noMmap && mmapSupported && st.MappedBytes == 0 {
				t.Fatal("mmap platform recovered without mapping any bytes")
			}
			if noMmap && st.MappedBytes != 0 {
				t.Fatalf("NoMmap recovery reports %d mapped bytes", st.MappedBytes)
			}

			rt := s.RecoveredTables()
			if len(rt) != 1 || rt[0].Name != "t" {
				t.Fatalf("recovered tables = %+v", rt)
			}
			rd := rt[0].Dataset
			if rd.Len() != d.Len() {
				t.Fatalf("dataset length %d, want %d", rd.Len(), d.Len())
			}
			for i := 0; i < d.Len(); i++ {
				if math.Float64bits(rd.Score(i)) != math.Float64bits(d.Score(i)) {
					t.Fatalf("score %d diverged", i)
				}
				if rd.TrueLabel(i) != d.TrueLabel(i) {
					t.Fatalf("label %d diverged", i)
				}
			}
			if rt[0].CRC != DatasetCRC(d) {
				t.Fatal("recovered CRC disagrees with DatasetCRC")
			}

			ri := s.RecoveredIndexes()
			if len(ri) != 1 || ri[0].Table != "t" || ri[0].Source != "p" {
				t.Fatalf("recovered indexes = %+v", ri)
			}
			if len(ri[0].Proxies) != 1 || ri[0].Proxies[0] != "p" || ri[0].Fusion != "none" {
				t.Fatalf("provenance diverged: %+v", ri[0].IndexMeta)
			}
			assertIndexEquivalent(t, ix, ri[0].Index)
		})
	}
}

// TestRecoveredIndexAppends pins that an index recovered over mapped
// memory can still grow: Append must not write through the read-only
// mapping.
func TestRecoveredIndexAppends(t *testing.T) {
	dir := t.TempDir()
	d, ix := seedStore(t, dir, 700)
	// Matching index options make the recovered index tile its appended
	// tail exactly like the original would.
	s := openStore(t, Options{Dir: dir, Index: index.Options{SegmentSize: 700}})
	ri := s.RecoveredIndexes()
	if len(ri) != 1 {
		t.Fatalf("recovered %d indexes", len(ri))
	}
	extra := testDataset(t, 9, 1200).Scores()
	grown, err := ri[0].Index.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEquivalent(t, want, grown)
	// The original rows must still read back identically after the grow.
	for i := 0; i < d.Len(); i++ {
		if math.Float64bits(grown.Score(i)) != math.Float64bits(d.Score(i)) {
			t.Fatalf("append mutated recovered score %d", i)
		}
	}
}

func corruptFile(t *testing.T, path string, truncate bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncate {
		data = data[:len(data)/2]
	} else {
		data[len(data)/2] ^= 0x40
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// findFile returns the lone file in dir with the extension.
func findFile(t *testing.T, dir, ext string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+ext))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no %s file in %s (%v)", ext, dir, err)
	}
	return matches[0]
}

func TestTornSegmentFileDegradesIndexOnly(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	corruptFile(t, findFile(t, dir, ".seg"), true)

	s := openStore(t, Options{Dir: dir})
	st := s.Stats()
	if st.TablesRecovered != 1 {
		t.Fatalf("table lost with the segment: %+v", st)
	}
	if st.IndexesRecovered != 0 || st.IndexesLive != 0 {
		t.Fatalf("torn segment served: %+v", st)
	}
	if len(st.Degraded) == 0 || !strings.Contains(st.Degraded[0], "index t/p") {
		t.Fatalf("degradation note missing: %v", st.Degraded)
	}
	// The tombstone is durable: a second boot sees a clean catalog, not
	// the same corruption again.
	s.Close()
	s2 := openStore(t, Options{Dir: dir})
	if st2 := s2.Stats(); len(st2.Degraded) != 0 || st2.TablesRecovered != 1 {
		t.Fatalf("second boot re-discovered the corruption: %+v", st2)
	}
}

func TestCorruptColumnCRCDegradesIndexOnly(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	corruptFile(t, findFile(t, dir, ".col"), false)

	s := openStore(t, Options{Dir: dir})
	st := s.Stats()
	if st.TablesRecovered != 1 || st.IndexesRecovered != 0 {
		t.Fatalf("bit-flipped column: recovered %d tables / %d indexes", st.TablesRecovered, st.IndexesRecovered)
	}
	if len(st.Degraded) == 0 || !strings.Contains(st.Degraded[0], "CRC mismatch") {
		t.Fatalf("degradation note missing: %v", st.Degraded)
	}
}

func TestCorruptDatasetDropsTableAndIndexes(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	corruptFile(t, findFile(t, dir, ".ds"), false)

	s := openStore(t, Options{Dir: dir})
	st := s.Stats()
	if st.TablesRecovered != 0 || st.IndexesRecovered != 0 {
		t.Fatalf("corrupt dataset served: %+v", st)
	}
	if st.TablesLive != 0 || st.IndexesLive != 0 {
		t.Fatalf("corrupt catalog entries still live: %+v", st)
	}
}

func TestTornManifestTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, ix := seedStore(t, dir, 700)

	// Simulate a crash mid-append: a partial frame at the tail.
	path := filepath.Join(dir, manifestName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, good...), 0xEE, 0x01, 0x00, 0x00, 0xde, 0xad)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, Options{Dir: dir})
	st := s.Stats()
	if st.TablesRecovered != 1 || st.IndexesRecovered != 1 {
		t.Fatalf("torn tail lost committed state: %+v", st)
	}
	assertIndexEquivalent(t, ix, s.RecoveredIndexes()[0].Index)
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(good)) {
		t.Fatalf("tail not truncated: %d bytes, want %d (%v)", fi.Size(), len(good), err)
	}
	// The handle appends after the truncated prefix, not after the tear.
	if err := s.SaveDataset("u", d); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, Options{Dir: dir})
	if st := s2.Stats(); st.TablesRecovered != 2 {
		t.Fatalf("post-truncation append lost: %+v", st)
	}
}

func TestCorruptManifestFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST frame: its CRC fails, so the whole
	// log (dataset and index records both) is unusable — recovery must
	// come up empty but functional, never serve the poisoned records.
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, Options{Dir: dir})
	if st := s.Stats(); st.TablesRecovered != 0 || st.IndexesRecovered != 0 {
		t.Fatalf("poisoned manifest served records: %+v", st)
	}
	// Still usable for writes.
	if err := s.SaveDataset("t", testDataset(t, 4, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMidCompactionLitterRemoved(t *testing.T) {
	dir := t.TempDir()
	_, ix := seedStore(t, dir, 700)
	// A crash between writing MANIFEST.compact and the rename leaves the
	// temp file; the real MANIFEST is still authoritative.
	litter := filepath.Join(dir, manifestName+".compact")
	if err := os.WriteFile(litter, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, Options{Dir: dir})
	if st := s.Stats(); st.TablesRecovered != 1 || st.IndexesRecovered != 1 {
		t.Fatalf("compaction litter broke recovery: %+v", st)
	}
	assertIndexEquivalent(t, ix, s.RecoveredIndexes()[0].Index)
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("MANIFEST.compact litter survived Open")
	}
}

func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	for _, name := range []string{"999990.ds", "999991.col", "999992.seg", "999993.col.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := openStore(t, Options{Dir: dir})
	for _, name := range []string{"999990.ds", "999991.col", "999992.seg", "999993.col.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived Open", name)
		}
	}
	// Referenced files are untouched and the sequence stays above every
	// number seen on disk, so new files never collide with swept names.
	if st := s.Stats(); st.TablesRecovered != 1 || st.IndexesRecovered != 1 {
		t.Fatalf("sweep removed referenced files: %+v", st)
	}
	// (*.tmp litter is removed before the sequence scan, so only the
	// data-file orphans constrain it.)
	if s.seq < 999992 {
		t.Fatalf("seq %d not advanced past swept orphans", s.seq)
	}
}

func TestSaveIndexSuperseded(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t, 5, 2000)
	ix := buildIndex(t, d, 600)
	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	epoch := s.Epoch("t")
	// DropIndex always advances the epoch, even with nothing live: the
	// invalidation outranks any in-flight flush.
	s.DropIndex("t", "p")
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := s.SaveIndex(meta, ix, epoch); err != ErrSuperseded {
		t.Fatalf("stale flush: %v, want ErrSuperseded", err)
	}
	if st := s.Stats(); st.IndexesLive != 0 {
		t.Fatal("superseded flush landed in the catalog")
	}
	// No file litter either.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.seg")); len(m) != 0 {
		t.Fatalf("superseded flush left segment files: %v", m)
	}
	// The current epoch flushes fine.
	if err := s.SaveIndex(meta, ix, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
}

func TestDropTableCascades(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 700)
	s := openStore(t, Options{Dir: dir})
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TablesLive != 0 || st.IndexesLive != 0 {
		t.Fatalf("drop left live state: %+v", st)
	}
	for _, ext := range []string{".ds", ".col", ".seg"} {
		if m, _ := filepath.Glob(filepath.Join(dir, "*"+ext)); len(m) != 0 {
			t.Fatalf("drop left %s files: %v", ext, m)
		}
	}
	s.Close()
	s2 := openStore(t, Options{Dir: dir})
	if st := s2.Stats(); st.TablesRecovered != 0 || st.IndexesRecovered != 0 {
		t.Fatalf("dropped table resurrected: %+v", st)
	}
}

func TestManifestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{Dir: dir})
	d := testDataset(t, 6, 64)
	// Re-saving the same table makes every prior record dead; once the
	// log crosses compactMinFrames with 1 live record it must compact.
	for i := 0; i < compactMinFrames+4; i++ {
		if err := s.SaveDataset("t", d); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d dead appends", compactMinFrames+3)
	}
	if st.ManifestRecords >= compactMinFrames {
		t.Fatalf("manifest still has %d frames after compaction", st.ManifestRecords)
	}
	s.Close()
	s2 := openStore(t, Options{Dir: dir})
	rt := s2.RecoveredTables()
	if len(rt) != 1 || rt[0].Dataset.Len() != d.Len() {
		t.Fatalf("compacted catalog lost the live table: %+v", s2.Stats())
	}
}

func TestSaveIndexReusesUnchangedSegments(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t, 7, 2000)
	ix := buildIndex(t, d, 500) // 4 segments
	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := s.SaveIndex(meta, ix, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	firstWrites := s.segmentsPersisted
	if firstWrites != int64(ix.Segments()) {
		t.Fatalf("first flush wrote %d segments, want %d", firstWrites, ix.Segments())
	}
	oldRec := s.st.indexes[ixKey{"t", "p"}]

	extra := testDataset(t, 8, 1000)
	grown, err := ix.Append(extra.Scores())
	if err != nil {
		t.Fatal(err)
	}
	// The table grows first (AppendTable's order); SaveDataset leaves
	// index records and the epoch alone.
	if err := s.SaveDataset("t", d.Append(extra)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex(meta, grown, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	newSegs := int64(grown.Segments() - ix.Segments())
	if got := s.segmentsPersisted - firstWrites; got != newSegs {
		t.Fatalf("append flush wrote %d segment files, want only the %d new ones", got, newSegs)
	}
	newRec := s.st.indexes[ixKey{"t", "p"}]
	for i, sr := range oldRec.segs {
		if newRec.segs[i].file != sr.file {
			t.Fatalf("unchanged segment %d was rewritten (%s -> %s)", i, sr.file, newRec.segs[i].file)
		}
	}
	s.Close()

	s2 := openStore(t, Options{Dir: dir})
	assertIndexEquivalent(t, grown, s2.RecoveredIndexes()[0].Index)
}

func TestIndexLongerThanTableRejected(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t, 10, 1000)
	ix := buildIndex(t, d, 400)
	s := openStore(t, Options{Dir: dir})
	// Persist a SHORTER dataset than the index covers (a crash between a
	// table shrink-rewrite and the index drop could leave this shape).
	if err := s.SaveDataset("t", testDataset(t, 11, 600)); err != nil {
		t.Fatal(err)
	}
	meta := IndexMeta{Table: "t", Source: "p", Fusion: "none", Proxies: []string{"p"}}
	if err := s.SaveIndex(meta, ix, s.Epoch("t")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, Options{Dir: dir})
	st := s2.Stats()
	if st.IndexesRecovered != 0 {
		t.Fatal("index covering more rows than its table was served")
	}
	if len(st.Degraded) == 0 {
		t.Fatal("over-long index dropped silently")
	}
}

func TestParseMadvise(t *testing.T) {
	for s, want := range map[string]int{
		"": adviseNone, "none": adviseNone, "normal": adviseNormal,
		"random": adviseRandom, "sequential": adviseSequential, "willneed": adviseWillneed,
	} {
		got, err := parseMadvise(s)
		if err != nil || got != want {
			t.Fatalf("parseMadvise(%q) = %d, %v", s, got, err)
		}
	}
	if _, err := parseMadvise("aggressive"); err == nil {
		t.Fatal("unknown hint accepted")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Madvise: "aggressive"}); err == nil {
		t.Fatal("Open accepted an unknown madvise hint")
	}
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}

func TestMadviseHintRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ix := seedStore(t, dir, 700)
	s := openStore(t, Options{Dir: dir, Madvise: "random"})
	if st := s.Stats(); st.IndexesRecovered != 1 {
		t.Fatalf("madvise=random recovery failed: %+v", st)
	}
	assertIndexEquivalent(t, ix, s.RecoveredIndexes()[0].Index)
}

func TestCheckFileName(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "../evil", "a/b", `a\b`} {
		if err := checkFileName(bad); err == nil {
			t.Fatalf("checkFileName(%q) accepted", bad)
		}
	}
	if err := checkFileName("000001.seg"); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRecordRoundTrip(t *testing.T) {
	ds := datasetRec{name: "t", file: "000001.ds", records: 42, crc: 0xdeadbeef, size: 999}
	rtype, rec, err := decodeRecord(encodeDataset(ds))
	if err != nil || rtype != recDataset || rec.(datasetRec) != ds {
		t.Fatalf("dataset round trip: %v %v %v", rtype, rec, err)
	}
	ir := indexRec{
		table: "t", source: "fuse(mean,a,b)", fusion: "mean", calibOracle: "o",
		proxies: []string{"a", "b"}, n: 7, colFile: "000002.col", colCRC: 1, colSize: 88,
		segs: []segRec{{file: "000003.seg", base: 0, count: 4, crc: 2, size: 104}},
	}
	rtype, rec, err = decodeRecord(encodeIndex(ir))
	if err != nil || rtype != recIndex {
		t.Fatalf("index round trip: %v %v", rtype, err)
	}
	got := rec.(indexRec)
	if got.table != ir.table || got.source != ir.source || got.fusion != ir.fusion ||
		got.calibOracle != ir.calibOracle || len(got.proxies) != 2 || got.proxies[1] != "b" ||
		got.n != ir.n || got.colFile != ir.colFile || len(got.segs) != 1 || got.segs[0] != ir.segs[0] {
		t.Fatalf("index record diverged: %+v", got)
	}
	rtype, rec, err = decodeRecord(encodeDropTable("t"))
	if err != nil || rtype != recDropTable || rec.(string) != "t" {
		t.Fatalf("drop-table round trip: %v %v %v", rtype, rec, err)
	}
	rtype, rec, err = decodeRecord(encodeDropIndex(ixKey{"t", "p"}))
	if err != nil || rtype != recDropIndex || rec.(ixKey) != (ixKey{"t", "p"}) {
		t.Fatalf("drop-index round trip: %v %v %v", rtype, rec, err)
	}
	if _, _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty record decoded")
	}
	if _, _, err := decodeRecord([]byte{99}); err == nil {
		t.Fatal("unknown record type decoded")
	}
	if _, _, err := decodeRecord(append(encodeDropTable("t"), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDatasetCRCMatchesPersistedFile(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t, 12, 333)
	s := openStore(t, Options{Dir: dir})
	if err := s.SaveDataset("t", d); err != nil {
		t.Fatal(err)
	}
	if got := s.st.tables["t"].crc; got != DatasetCRC(d) {
		t.Fatalf("manifest CRC %08x, DatasetCRC %08x", got, DatasetCRC(d))
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s := openStore(t, Options{Dir: t.TempDir()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	d := testDataset(t, 13, 10)
	if err := s.SaveDataset("t", d); err == nil {
		t.Fatal("SaveDataset on a closed store")
	}
	ix := buildIndex(t, d, 0)
	if err := s.SaveIndex(IndexMeta{Table: "t", Source: "p"}, ix, 0); err == nil {
		t.Fatal("SaveIndex on a closed store")
	}
	if err := s.DropTable("t"); err == nil {
		t.Fatal("DropTable on a closed store")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}
