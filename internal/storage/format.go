package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"supg/internal/dataset"
	"supg/internal/index"
)

// On-disk file formats. Three write-once file kinds live next to the
// MANIFEST log, all little-endian, all with every section starting at a
// multiple of 8 bytes so page-aligned mappings can alias float64/uint64
// words directly:
//
//	dataset (.ds)  — the dataset binary interchange format verbatim
//	                 (magic "SUPGDS1\n" + count + scores + label bits);
//	                 scores start at offset 16, already 8-aligned.
//	column  (.col) — "SUPGCOL1" magic, u32 version, u32 pad, u64 count,
//	                 u64 reserved (32-byte header), then count float64
//	                 proxy scores: the contiguous score column an index
//	                 was built over (post-fusion, -0 normalized).
//	segment (.seg) — "SUPGSEG1" magic, u32 version, u32 pad, u64 base,
//	                 u64 count, u64 reserved (40-byte header), then the
//	                 permutation (count u64 local ids) and the sorted
//	                 scores (count float64).
//	codes   (.qcv) — "SUPGQCV1" magic, u32 version, u32 pad, u64 base,
//	                 u64 count, u64 reserved (40-byte header), then the
//	                 record-order 16-bit score codes (count uint16) and
//	                 the sorted-order codes (count uint16), each section
//	                 zero-padded to the next multiple of 8. Optional
//	                 sibling of a .seg file — present only for quantized
//	                 indexes (index.Options.Quantize).
//
// None of the files embed their own checksum: the CRC32 (Castagnoli)
// and exact byte size of each file are recorded in the manifest entry
// that references it, so a file and its integrity metadata commit
// atomically and a truncated or bit-flipped file is detected before
// any of its bytes are trusted. Parsers here do structural validation
// only (magic, version, counts, exact length); semantic validation of
// segment contents is index.FromExternal's O(n) proof.

const (
	formatVersion = 1

	colHeaderSize = 32
	segHeaderSize = 40
	qcvHeaderSize = 40

	// maxFileRecords caps declared counts, mirroring dataset.maxRecords.
	maxFileRecords = 1 << 33
)

var (
	colMagic = [8]byte{'S', 'U', 'P', 'G', 'C', 'O', 'L', '1'}
	segMagic = [8]byte{'S', 'U', 'P', 'G', 'S', 'E', 'G', '1'}
	qcvMagic = [8]byte{'S', 'U', 'P', 'G', 'Q', 'C', 'V', '1'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// columnFile is the parsed structural view of a .col file.
type columnFile struct {
	count  int
	scores []byte // count*8 bytes of little-endian float64
}

func parseColumnFile(data []byte) (columnFile, error) {
	if len(data) < colHeaderSize {
		return columnFile{}, fmt.Errorf("column file: %d bytes, shorter than the %d-byte header", len(data), colHeaderSize)
	}
	if [8]byte(data[:8]) != colMagic {
		return columnFile{}, fmt.Errorf("column file: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return columnFile{}, fmt.Errorf("column file: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(data[16:])
	if count == 0 || count > maxFileRecords {
		return columnFile{}, fmt.Errorf("column file: implausible score count %d", count)
	}
	if want := colHeaderSize + 8*int64(count); int64(len(data)) != want {
		return columnFile{}, fmt.Errorf("column file: %d bytes, want %d for %d scores", len(data), want, count)
	}
	return columnFile{count: int(count), scores: data[colHeaderSize:]}, nil
}

// segmentFile is the parsed structural view of a .seg file.
type segmentFile struct {
	base   int
	count  int
	perm   []byte // count*8 bytes of little-endian uint64 local ids
	sorted []byte // count*8 bytes of little-endian float64
}

func parseSegmentFile(data []byte) (segmentFile, error) {
	if len(data) < segHeaderSize {
		return segmentFile{}, fmt.Errorf("segment file: %d bytes, shorter than the %d-byte header", len(data), segHeaderSize)
	}
	if [8]byte(data[:8]) != segMagic {
		return segmentFile{}, fmt.Errorf("segment file: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return segmentFile{}, fmt.Errorf("segment file: unsupported version %d", v)
	}
	base := binary.LittleEndian.Uint64(data[16:])
	count := binary.LittleEndian.Uint64(data[24:])
	if count == 0 || count > maxFileRecords || base > maxFileRecords {
		return segmentFile{}, fmt.Errorf("segment file: implausible base %d / count %d", base, count)
	}
	if want := segHeaderSize + 16*int64(count); int64(len(data)) != want {
		return segmentFile{}, fmt.Errorf("segment file: %d bytes, want %d for %d entries", len(data), want, count)
	}
	permEnd := segHeaderSize + 8*int(count)
	return segmentFile{
		base:   int(base),
		count:  int(count),
		perm:   data[segHeaderSize:permEnd],
		sorted: data[permEnd:],
	}, nil
}

// codeSectionSize is one code section's on-disk size: count uint16
// values zero-padded to the next multiple of 8, so both sections (and
// anything after the file) keep the 8-aligned section discipline.
func codeSectionSize(count int) int {
	return (2*count + 7) &^ 7
}

// codeFile is the parsed structural view of a .qcv file.
type codeFile struct {
	base        int
	count       int
	codes       []byte // count*2 bytes of little-endian uint16, record order
	sortedCodes []byte // count*2 bytes of little-endian uint16, sorted order
}

func parseCodeFile(data []byte) (codeFile, error) {
	if len(data) < qcvHeaderSize {
		return codeFile{}, fmt.Errorf("code file: %d bytes, shorter than the %d-byte header", len(data), qcvHeaderSize)
	}
	if [8]byte(data[:8]) != qcvMagic {
		return codeFile{}, fmt.Errorf("code file: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return codeFile{}, fmt.Errorf("code file: unsupported version %d", v)
	}
	base := binary.LittleEndian.Uint64(data[16:])
	count := binary.LittleEndian.Uint64(data[24:])
	if count == 0 || count > maxFileRecords || base > maxFileRecords {
		return codeFile{}, fmt.Errorf("code file: implausible base %d / count %d", base, count)
	}
	section := codeSectionSize(int(count))
	if want := int64(qcvHeaderSize + 2*section); int64(len(data)) != want {
		return codeFile{}, fmt.Errorf("code file: %d bytes, want %d for %d entries", len(data), want, count)
	}
	n := int(count)
	return codeFile{
		base:        int(base),
		count:       n,
		codes:       data[qcvHeaderSize : qcvHeaderSize+2*n],
		sortedCodes: data[qcvHeaderSize+section : qcvHeaderSize+section+2*n],
	}, nil
}

// datasetFile is the parsed structural view of a .ds file (the dataset
// binary interchange format: magic "SUPGDS1\n", u64 count, scores,
// LSB-first label bits).
type datasetFile struct {
	count     int
	scores    []byte // count*8 bytes of little-endian float64
	labelBits []byte // ceil(count/8) bytes
}

var dsMagic = [8]byte{'S', 'U', 'P', 'G', 'D', 'S', '1', '\n'}

func parseDatasetFile(data []byte) (datasetFile, error) {
	if len(data) < 16 {
		return datasetFile{}, fmt.Errorf("dataset file: %d bytes, shorter than the 16-byte header", len(data))
	}
	if [8]byte(data[:8]) != dsMagic {
		return datasetFile{}, fmt.Errorf("dataset file: bad magic %q", data[:8])
	}
	count := binary.LittleEndian.Uint64(data[8:])
	if count == 0 || count > maxFileRecords {
		return datasetFile{}, fmt.Errorf("dataset file: implausible record count %d", count)
	}
	n := int(count)
	if want := dataset.BinarySize(n); int64(len(data)) != want {
		return datasetFile{}, fmt.Errorf("dataset file: %d bytes, want %d for %d records", len(data), want, count)
	}
	scoresEnd := 16 + 8*n
	return datasetFile{
		count:     n,
		scores:    data[16:scoresEnd],
		labelBits: data[scoresEnd:],
	}, nil
}

// decodeLabelBits expands LSB-first label bits into a []bool column.
func decodeLabelBits(bits []byte, n int) []bool {
	labels := make([]bool, n)
	for i := range labels {
		labels[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return labels
}

// decodeFloat64s is the portable (copying) alternative to aliasFloat64s.
func decodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// decodeUint16s is the portable (copying) alternative to aliasUint16s.
func decodeUint16s(b []byte) []uint16 {
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

// decodeInts is the portable (copying) alternative to aliasInts.
// Out-of-range values become negative ints, rejected downstream by
// index.FromExternal's bounds checks just like aliased ones.
func decodeInts(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// atomicWriter streams a file body through a buffered writer and a
// running CRC, then commits it with fsync + atomic rename. Callers
// write everything, then Commit.
type atomicWriter struct {
	path string
	tmp  string
	f    *os.File
	bw   *bufio.Writer
	crc  hash.Hash32
	size int64
	w    io.Writer
}

func newAtomicWriter(path string) (*atomicWriter, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644) //supg:atomiccommit-ok atomicWriter IS the tmp→fsync→rename helper; this opens its tmp side
	if err != nil {
		return nil, err
	}
	aw := &atomicWriter{path: path, tmp: tmp, f: f, bw: bufio.NewWriterSize(f, 1<<16), crc: crc32.New(castagnoli)}
	aw.w = io.MultiWriter(aw.bw, aw.crc)
	return aw, nil
}

func (aw *atomicWriter) Write(p []byte) (int, error) {
	n, err := aw.w.Write(p)
	aw.size += int64(n)
	return n, err
}

// Commit flushes, fsyncs, and renames the temp file into place, then
// fsyncs the directory so the rename itself is durable. On any error
// the temp file is removed.
func (aw *atomicWriter) Commit() (crc uint32, size int64, err error) {
	defer func() {
		if err != nil {
			aw.f.Close()
			os.Remove(aw.tmp)
		}
	}()
	if err = aw.bw.Flush(); err != nil {
		return 0, 0, err
	}
	if err = aw.f.Sync(); err != nil {
		return 0, 0, err
	}
	if err = aw.f.Close(); err != nil {
		return 0, 0, err
	}
	if err = os.Rename(aw.tmp, aw.path); err != nil { //supg:atomiccommit-ok atomicWriter.Commit's rename: the tmp file was flushed, fsynced, and closed above
		return 0, 0, err
	}
	if err = syncDir(filepath.Dir(aw.path)); err != nil {
		return 0, 0, err
	}
	return aw.crc.Sum32(), aw.size, nil
}

// Abort discards the temp file (no-op after a successful Commit).
func (aw *atomicWriter) Abort() {
	aw.f.Close()
	os.Remove(aw.tmp)
}

// syncDir fsyncs a directory so that renames/creates within it are
// durable before dependent manifest records are appended.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// writeDatasetFile persists d in the dataset binary interchange format.
func writeDatasetFile(path string, d *dataset.Dataset) (crc uint32, size int64, err error) {
	aw, err := newAtomicWriter(path)
	if err != nil {
		return 0, 0, err
	}
	if err := dataset.WriteBinary(aw, d); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	return aw.Commit()
}

// writeColumnFile persists an index's contiguous score column.
func writeColumnFile(path string, scores []float64) (crc uint32, size int64, err error) {
	aw, err := newAtomicWriter(path)
	if err != nil {
		return 0, 0, err
	}
	var hdr [colHeaderSize]byte
	copy(hdr[:8], colMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(scores)))
	if _, err := aw.Write(hdr[:]); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	if err := writeFloat64s(aw, scores); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	return aw.Commit()
}

// writeSegmentFile persists one immutable segment view: its base, the
// sorting permutation, and the sorted scores.
func writeSegmentFile(path string, sd index.SegmentData) (crc uint32, size int64, err error) {
	aw, err := newAtomicWriter(path)
	if err != nil {
		return 0, 0, err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(sd.Base))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(sd.Perm)))
	if _, err := aw.Write(hdr[:]); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	if err := writeInts(aw, sd.Perm); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	if err := writeFloat64s(aw, sd.Sorted); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	return aw.Commit()
}

// writeCodeFile persists one segment's 16-bit score-code vectors
// (record order, then sorted order) as the .qcv sibling of its .seg
// file.
func writeCodeFile(path string, sd index.SegmentData) (crc uint32, size int64, err error) {
	aw, err := newAtomicWriter(path)
	if err != nil {
		return 0, 0, err
	}
	var hdr [qcvHeaderSize]byte
	copy(hdr[:8], qcvMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(sd.Base))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(sd.Codes)))
	if _, err := aw.Write(hdr[:]); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	if err := writeUint16s(aw, sd.Codes); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	if err := writeUint16s(aw, sd.SortedCodes); err != nil {
		aw.Abort()
		return 0, 0, err
	}
	return aw.Commit()
}

// encodeChunk is the scratch granularity for bulk encoding (64 KiB).
const encodeChunk = 1 << 13

func writeFloat64s(w io.Writer, vals []float64) error {
	buf := make([]byte, 8*min(len(vals), encodeChunk))
	for len(vals) > 0 {
		n := min(len(vals), encodeChunk)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// writeUint16s writes one code section: the values plus zero padding to
// the next multiple of 8 (see codeSectionSize).
func writeUint16s(w io.Writer, vals []uint16) error {
	section := codeSectionSize(len(vals))
	buf := make([]byte, min(section, 2*encodeChunk))
	written := 0
	for len(vals) > 0 {
		n := min(len(vals), encodeChunk)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint16(buf[2*i:], v)
		}
		if _, err := w.Write(buf[:2*n]); err != nil {
			return err
		}
		written += 2 * n
		vals = vals[n:]
	}
	if pad := section - written; pad > 0 {
		var zero [8]byte
		if _, err := w.Write(zero[:pad]); err != nil {
			return err
		}
	}
	return nil
}

func writeInts(w io.Writer, vals []int) error {
	buf := make([]byte, 8*min(len(vals), encodeChunk))
	for len(vals) > 0 {
		n := min(len(vals), encodeChunk)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}
