package storage

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

// Native fuzz targets for the on-disk parsers. These parsers consume
// bytes a crash (or an attacker with filesystem access) may have
// mangled arbitrarily, so the contract under fuzzing is: any input
// produces either a structurally-valid view or an error — never a
// panic, never a view whose sections disagree with its declared
// counts, and for the manifest never a replay that reads past the
// reported good offset.

// frame wraps a payload in the manifest's [len][crc][payload] framing.
func frame(payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
	copy(b[8:], payload)
	return b
}

// validManifest returns a well-formed multi-record log for the corpus.
func validManifest() []byte {
	var b []byte
	b = append(b, frame(encodeDataset(datasetRec{name: "t", file: "000001.ds", records: 10, crc: 7, size: 100}))...)
	b = append(b, frame(encodeIndex(indexRec{
		table: "t", source: "p", fusion: "none", proxies: []string{"p"},
		n: 10, colFile: "000002.col", colCRC: 8, colSize: 112,
		segs: []segRec{{file: "000003.seg", base: 0, count: 10, crc: 9, size: 200}},
	}))...)
	b = append(b, frame(encodeDropIndex(ixKey{"t", "p"}))...)
	b = append(b, frame(encodeDropTable("t"))...)
	return b
}

func FuzzManifestReplay(f *testing.F) {
	f.Add(validManifest())
	f.Add(frame(encodeDropTable("t")))
	f.Add(validManifest()[:13])                   // torn mid-frame
	f.Add([]byte{})                               // empty log
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})         // zero-length frame
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3, 4}) // absurd length
	corrupt := validManifest()
	corrupt[9] ^= 0xFF // payload bit flip -> CRC mismatch
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, goodOff := replayManifest(data)
		if goodOff < 0 || goodOff > int64(len(data)) {
			t.Fatalf("goodOff %d outside [0, %d]", goodOff, len(data))
		}
		// Replaying the good prefix alone must reproduce the fold exactly
		// (this is what Open commits to after truncating the tail).
		st2, off2 := replayManifest(data[:goodOff])
		if off2 != goodOff || st2.frames != st.frames ||
			len(st2.tables) != len(st.tables) || len(st2.indexes) != len(st.indexes) {
			t.Fatalf("replay of the good prefix diverged: %d/%d frames, off %d/%d",
				st2.frames, st.frames, off2, goodOff)
		}
		// Every surviving catalog file name must be safe to join.
		for _, rec := range st.tables {
			if err := checkFileName(rec.file); err == nil != (rec.file != "" && !containsSep(rec.file)) {
				t.Fatalf("file name check inconsistent for %q", rec.file)
			}
		}
	})
}

func containsSep(s string) bool {
	for _, c := range s {
		if c == '/' || c == '\\' {
			return true
		}
	}
	return s == "." || s == ".."
}

// validColumn/validSegment/validDS produce well-formed files via the
// production writers (routed through a temp dir).
func validColumn(f *testing.F) []byte {
	dir := f.TempDir()
	path := dir + "/c.col"
	if _, _, err := writeColumnFile(path, []float64{0.25, 0.5, 1}); err != nil {
		f.Fatal(err)
	}
	return readAll(f, path)
}

func validSegment(f *testing.F) []byte {
	dir := f.TempDir()
	path := dir + "/s.seg"
	sd := index.SegmentData{Base: 0, Perm: []int{0, 2, 1}, Sorted: []float64{0.1, 0.2, 0.9}}
	if _, _, err := writeSegmentFile(path, sd); err != nil {
		f.Fatal(err)
	}
	return readAll(f, path)
}

func validDS(f *testing.F) []byte {
	dir := f.TempDir()
	path := dir + "/d.ds"
	d := dataset.Beta(randx.New(2), 20, 0.5, 1)
	if _, _, err := writeDatasetFile(path, d); err != nil {
		f.Fatal(err)
	}
	return readAll(f, path)
}

func readAll(f *testing.F, path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return b
}

func FuzzColumnFile(f *testing.F) {
	valid := validColumn(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated body
	f.Add(valid[:colHeaderSize])
	lying := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(lying[16:], 1<<40) // count lies
	f.Add(lying)
	f.Add([]byte("SUPGCOL1 but far too short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := parseColumnFile(data)
		if err != nil {
			return
		}
		if cf.count <= 0 || len(cf.scores) != 8*cf.count {
			t.Fatalf("accepted view disagrees with count: %d scores bytes for count %d", len(cf.scores), cf.count)
		}
	})
}

func FuzzSegmentFile(f *testing.F) {
	valid := validSegment(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:segHeaderSize])
	swapped := append([]byte{}, valid...)
	copy(swapped[:8], colMagic[:]) // wrong magic
	f.Add(swapped)
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := parseSegmentFile(data)
		if err != nil {
			return
		}
		if sf.count <= 0 || sf.base < 0 ||
			len(sf.perm) != 8*sf.count || len(sf.sorted) != 8*sf.count {
			t.Fatalf("accepted view disagrees with header: base %d count %d perm %d sorted %d",
				sf.base, sf.count, len(sf.perm), len(sf.sorted))
		}
	})
}

func FuzzDatasetFile(f *testing.F) {
	valid := validDS(f)
	f.Add(valid)
	f.Add(valid[:15]) // shorter than the header
	f.Add(valid[:len(valid)-1])
	lying := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(lying[8:], 1<<50)
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		df, err := parseDatasetFile(data)
		if err != nil {
			return
		}
		if df.count <= 0 || len(df.scores) != 8*df.count || len(df.labelBits) != (df.count+7)/8 {
			t.Fatalf("accepted view disagrees with count %d: %d score bytes, %d label bytes",
				df.count, len(df.scores), len(df.labelBits))
		}
	})
}
