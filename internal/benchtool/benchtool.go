// Package benchtool holds the pieces of the benchmark-trajectory
// harness shared between test files and the bench-gate command: the
// SUPG_BENCH_N scale override, the parser for `go test -bench
// -benchmem` output, and the baseline comparison the CI gate runs.
//
// The harness exists so hot-path regressions are caught mechanically
// rather than anecdotally (ROADMAP item 5): `make bench-json` records
// full-scale and smoke-scale runs into BENCH_hotpath.json, committed
// per PR, and CI re-runs the smoke benchmarks and fails when allocs/op
// or bytes/op grow beyond tolerance. ns/op is recorded and reported but
// never gated — wall time on shared CI VMs is too noisy to block on.
package benchtool

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// N returns the benchmark scale: def, unless the SUPG_BENCH_N
// environment variable names a positive integer. The Makefile's smoke
// targets shrink n so the CI gate diffs a run against a committed
// baseline of the same scale.
func N(def int) int {
	if s := os.Getenv("SUPG_BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is "<package>:<benchmark>" with the -GOMAXPROCS suffix
	// stripped, so runs from machines with different core counts (and
	// streams covering several packages, which may reuse benchmark
	// names) compare like against like.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any extra testing.B.ReportMetric pairs (e.g. the
	// index resident-bytes and scan-bytes/rec the quantized benchmarks
	// report).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is a parsed `go test -bench` stream: its environment header plus
// every benchmark line, in order.
type Run struct {
	Goos    string
	Goarch  string
	CPU     string
	Results []Result
}

// Parse reads `go test -bench -benchmem` output (one or more packages
// concatenated) into a Run. Unrecognized lines are skipped; a line
// starting with "Benchmark" that fails to parse is an error, so a
// malformed stream cannot silently gate nothing.
func Parse(r io.Reader) (Run, error) {
	var run Run
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line, pkg)
			if err != nil {
				return Run{}, err
			}
			run.Results = append(run.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return Run{}, err
	}
	return run, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-8  55  21210042 ns/op  35112 B/op  35 allocs/op  123 extra-metric
func parseLine(line, pkg string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("benchtool: short benchmark line %q", line)
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to every name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: pkg + ":" + name}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchtool: bad iteration count in %q", line)
	}
	res.Iterations = iters
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("benchtool: bad metric value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}

// Tolerance bounds how far a candidate may drift above its baseline
// before Compare fails: value > base*(1+Rel) + Abs. The absolute slack
// absorbs size-class rounding and goroutine-stack jitter on tiny
// baselines where a pure percentage would be meaninglessly tight.
type Tolerance struct {
	Rel float64
	Abs float64
}

func (t Tolerance) exceeded(base, cand float64) bool {
	return cand > base*(1+t.Rel)+t.Abs
}

// DefaultAllocTolerance and DefaultBytesTolerance are the CI gate's
// bounds. allocs/op is near-deterministic (slack covers worker
// goroutine jitter); bytes/op wobbles with allocator size classes.
var (
	DefaultAllocTolerance = Tolerance{Rel: 0.10, Abs: 4}
	DefaultBytesTolerance = Tolerance{Rel: 0.15, Abs: 1024}
)

// Compare checks every baseline result against the candidate run.
// allocs/op and bytes/op regressions beyond tolerance are failures;
// ns/op is reported in the returned summary lines but never fails. A
// baseline benchmark missing from the candidate is a failure — a gate
// that silently checks nothing is worse than no gate.
func Compare(baseline []Result, cand Run, allocTol, bytesTol Tolerance) (summary []string, failures []string) {
	byName := make(map[string]Result, len(cand.Results))
	for _, r := range cand.Results {
		byName[r.Name] = r
	}
	names := make([]string, 0, len(baseline))
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		names = append(names, r.Name)
		base[r.Name] = r
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from candidate run", name))
			continue
		}
		summary = append(summary, fmt.Sprintf(
			"%s: ns/op %.0f -> %.0f (not gated), B/op %.0f -> %.0f, allocs/op %.0f -> %.0f",
			name, b.NsPerOp, c.NsPerOp, b.BytesPerOp, c.BytesPerOp, b.AllocsPerOp, c.AllocsPerOp))
		if allocTol.exceeded(b.AllocsPerOp, c.AllocsPerOp) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f (tolerance %.0f%% + %.0f)",
				name, b.AllocsPerOp, c.AllocsPerOp, allocTol.Rel*100, allocTol.Abs))
		}
		if bytesTol.exceeded(b.BytesPerOp, c.BytesPerOp) {
			failures = append(failures, fmt.Sprintf("%s: B/op regressed %.0f -> %.0f (tolerance %.0f%% + %.0f)",
				name, b.BytesPerOp, c.BytesPerOp, bytesTol.Rel*100, bytesTol.Abs))
		}
	}
	return summary, failures
}
