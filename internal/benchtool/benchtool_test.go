package benchtool

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: supg/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSelectHotPath-8   	      55	  21210042 ns/op	   35112 B/op	      35 allocs/op
PASS
ok  	supg/internal/engine	2.1s
goos: linux
goarch: amd64
pkg: supg/internal/index
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPermScan/float-8        	     222	   5012345 ns/op	 8000064 resident-bytes	       8 scan-bytes/rec	       0 B/op	       0 allocs/op
BenchmarkPermScan/quantized-8    	     444	   2512345 ns/op	10500064 resident-bytes	       2 scan-bytes/rec	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	run, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("bad header: %+v", run)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	hot := run.Results[0]
	if hot.Name != "supg/internal/engine:BenchmarkSelectHotPath" {
		t.Fatalf("name %q not package-qualified and GOMAXPROCS-stripped", hot.Name)
	}
	if hot.Iterations != 55 || hot.NsPerOp != 21210042 || hot.BytesPerOp != 35112 || hot.AllocsPerOp != 35 {
		t.Fatalf("bad hot-path result: %+v", hot)
	}
	quant := run.Results[2]
	if quant.Name != "supg/internal/index:BenchmarkPermScan/quantized" {
		t.Fatalf("bad sub-benchmark name %q", quant.Name)
	}
	if quant.Metrics["scan-bytes/rec"] != 2 || quant.Metrics["resident-bytes"] != 10500064 {
		t.Fatalf("custom metrics not captured: %+v", quant.Metrics)
	}
	// The same benchmark name in two packages must not collide.
	if run.Results[0].Name == run.Results[1].Name {
		t.Fatal("package qualification failed to disambiguate")
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line parsed without error")
	}
}

func baselineResults() []Result {
	return []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 21000000, BytesPerOp: 35000, AllocsPerOp: 35},
		{Name: "p:BenchmarkPermScan/quantized", NsPerOp: 2500000, BytesPerOp: 0, AllocsPerOp: 0},
	}
}

// TestCompareFailsSyntheticAllocRegression pins the gate's purpose: a
// run whose allocs/op grew past tolerance must fail, even when every
// other metric improved.
func TestCompareFailsSyntheticAllocRegression(t *testing.T) {
	cand := Run{Results: []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 15000000, BytesPerOp: 35000, AllocsPerOp: 70},
		{Name: "p:BenchmarkPermScan/quantized", NsPerOp: 2500000, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	_, failures := Compare(baselineResults(), cand, DefaultAllocTolerance, DefaultBytesTolerance)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op regressed 35 -> 70") {
		t.Fatalf("synthetic allocs/op regression not caught: %v", failures)
	}
}

func TestCompareFailsSyntheticBytesRegression(t *testing.T) {
	cand := Run{Results: []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 21000000, BytesPerOp: 70000, AllocsPerOp: 35},
		{Name: "p:BenchmarkPermScan/quantized", NsPerOp: 2500000, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	_, failures := Compare(baselineResults(), cand, DefaultAllocTolerance, DefaultBytesTolerance)
	if len(failures) != 1 || !strings.Contains(failures[0], "B/op regressed") {
		t.Fatalf("synthetic bytes/op regression not caught: %v", failures)
	}
}

func TestCompareIgnoresNsRegression(t *testing.T) {
	cand := Run{Results: []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 210000000, BytesPerOp: 35000, AllocsPerOp: 35},
		{Name: "p:BenchmarkPermScan/quantized", NsPerOp: 250000000, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	summary, failures := Compare(baselineResults(), cand, DefaultAllocTolerance, DefaultBytesTolerance)
	if len(failures) != 0 {
		t.Fatalf("ns/op must not gate, got failures: %v", failures)
	}
	if len(summary) != 2 || !strings.Contains(summary[0], "not gated") {
		t.Fatalf("summary should still report ns/op: %v", summary)
	}
}

func TestCompareFailsMissingBenchmark(t *testing.T) {
	cand := Run{Results: []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 21000000, BytesPerOp: 35000, AllocsPerOp: 35},
	}}
	_, failures := Compare(baselineResults(), cand, DefaultAllocTolerance, DefaultBytesTolerance)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing baselined benchmark must fail the gate: %v", failures)
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	cand := Run{Results: []Result{
		{Name: "p:BenchmarkSelectHotPath", NsPerOp: 22000000, BytesPerOp: 35900, AllocsPerOp: 37},
		{Name: "p:BenchmarkPermScan/quantized", NsPerOp: 2600000, BytesPerOp: 16, AllocsPerOp: 1},
	}}
	_, failures := Compare(baselineResults(), cand, DefaultAllocTolerance, DefaultBytesTolerance)
	if len(failures) != 0 {
		t.Fatalf("in-tolerance run failed: %v", failures)
	}
}

func TestNEnvOverride(t *testing.T) {
	t.Setenv("SUPG_BENCH_N", "4096")
	if got := N(1_000_000); got != 4096 {
		t.Fatalf("N = %d with SUPG_BENCH_N=4096", got)
	}
	t.Setenv("SUPG_BENCH_N", "not-a-number")
	if got := N(1_000_000); got != 1_000_000 {
		t.Fatalf("N = %d with garbage SUPG_BENCH_N, want default", got)
	}
}
