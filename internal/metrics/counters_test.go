package metrics

import (
	"sync"
	"testing"
)

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.JobSubmitted()
	c.JobDone()
	c.JobFailed()
	c.JobCancelled()
	c.QueryExecuted()
	c.DispatchBatch(5)
	if snap := c.Snapshot(); snap != (CounterSnapshot{}) {
		t.Errorf("nil counters snapshot = %+v", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 100
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.JobSubmitted()
				c.JobDone()
				c.QueryExecuted()
				c.DispatchBatch(3)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	want := int64(workers * per)
	if snap.JobsSubmitted != want || snap.JobsDone != want || snap.Queries != want {
		t.Errorf("snapshot = %+v, want %d each", snap, want)
	}
	if snap.DispatchBatches != want || snap.DispatchCalls != 3*want {
		t.Errorf("dispatch counters = %+v", snap)
	}
}
