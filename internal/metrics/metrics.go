// Package metrics evaluates SUPG query results against ground truth and
// aggregates repeated trials the way the paper's evaluation does:
// achieved precision/recall per trial, empirical failure rates against a
// target, and box-plot summaries for the Figure 1/5/6 style plots.
package metrics

import (
	"fmt"
	"strings"

	"supg/internal/dataset"
	"supg/internal/stats"
)

// Eval holds the quality of one returned set against ground truth.
type Eval struct {
	Precision float64
	Recall    float64
	F1        float64
	Returned  int
	TruePos   int
}

// Evaluate computes precision and recall of the returned indices against
// the dataset's ground-truth labels. An empty result has precision 1
// (vacuously correct) and recall 0 (unless there are no positives, in
// which case recall is 1).
func Evaluate(d *dataset.Dataset, indices []int) Eval {
	tp := 0
	for _, i := range indices {
		if d.TrueLabel(i) {
			tp++
		}
	}
	totalPos := d.PositiveCount()
	e := Eval{Returned: len(indices), TruePos: tp}
	if len(indices) == 0 {
		e.Precision = 1
	} else {
		e.Precision = float64(tp) / float64(len(indices))
	}
	if totalPos == 0 {
		e.Recall = 1
	} else {
		e.Recall = float64(tp) / float64(totalPos)
	}
	if e.Precision+e.Recall > 0 {
		e.F1 = 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
	}
	return e
}

// TrialSet aggregates the evaluations of repeated independent runs.
type TrialSet struct {
	Precisions []float64
	Recalls    []float64
	Sizes      []float64
	Oracle     []float64
}

// Add records one trial's evaluation.
func (t *TrialSet) Add(e Eval, oracleCalls int) {
	t.Precisions = append(t.Precisions, e.Precision)
	t.Recalls = append(t.Recalls, e.Recall)
	t.Sizes = append(t.Sizes, float64(e.Returned))
	t.Oracle = append(t.Oracle, float64(oracleCalls))
}

// N returns the number of trials recorded.
func (t *TrialSet) N() int { return len(t.Precisions) }

// FailureRate returns the fraction of trials whose target metric fell
// strictly below target.
func (t *TrialSet) FailureRate(kind TargetMetric, target float64) float64 {
	return stats.FractionBelow(t.metric(kind), target)
}

// MeanMetric returns the mean of the chosen metric across trials.
func (t *TrialSet) MeanMetric(kind TargetMetric) float64 {
	return stats.Mean(t.metric(kind))
}

// Box returns box-plot statistics of the chosen metric.
func (t *TrialSet) Box(kind TargetMetric) stats.BoxStats {
	return stats.NewBoxStats(t.metric(kind))
}

// MeanOracleCalls returns the mean oracle usage across trials.
func (t *TrialSet) MeanOracleCalls() float64 { return stats.Mean(t.Oracle) }

// MeanSize returns the mean returned-set size across trials.
func (t *TrialSet) MeanSize() float64 { return stats.Mean(t.Sizes) }

func (t *TrialSet) metric(kind TargetMetric) []float64 {
	switch kind {
	case MetricPrecision:
		return t.Precisions
	case MetricRecall:
		return t.Recalls
	}
	panic(fmt.Sprintf("metrics: unknown metric %d", int(kind)))
}

// TargetMetric names the metric a trial set is judged on.
type TargetMetric int

const (
	// MetricPrecision judges trials on achieved precision.
	MetricPrecision TargetMetric = iota
	// MetricRecall judges trials on achieved recall.
	MetricRecall
)

// String implements fmt.Stringer.
func (m TargetMetric) String() string {
	if m == MetricPrecision {
		return "precision"
	}
	return "recall"
}

// FormatBox renders box statistics as a compact single-line summary,
// values scaled to percent.
func FormatBox(b stats.BoxStats) string {
	return fmt.Sprintf("min=%5.1f%% q1=%5.1f%% med=%5.1f%% q3=%5.1f%% max=%5.1f%%",
		100*b.Min, 100*b.Q1, 100*b.Median, 100*b.Q3, 100*b.Max)
}

// Table is a minimal aligned ASCII table builder used for experiment
// reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
