package metrics

import "sync/atomic"

// Counters aggregates service-level activity: async job lifecycle
// transitions and batch-oracle dispatch volume. All methods are
// goroutine-safe and nil-safe — a nil *Counters records nothing, so
// instrumented code never needs a nil check at the call site.
type Counters struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64

	queries atomic.Int64

	dispatchBatches atomic.Int64
	dispatchCalls   atomic.Int64

	labelCacheHits          atomic.Int64
	labelCacheMisses        atomic.Int64
	labelCacheEvictions     atomic.Int64
	labelCacheInvalidations atomic.Int64

	oracleRetries  atomic.Int64
	oracleTimeouts atomic.Int64
	// breakerState is a gauge: the number of circuit breakers currently
	// not closed (open or half-open). 0 means every oracle backend is
	// considered healthy.
	breakerState atomic.Int64

	walRecords  atomic.Int64
	walReplayed atomic.Int64
}

// JobSubmitted records a job accepted into the queue.
func (c *Counters) JobSubmitted() {
	if c != nil {
		c.jobsSubmitted.Add(1)
	}
}

// JobDone records a job that finished successfully.
func (c *Counters) JobDone() {
	if c != nil {
		c.jobsDone.Add(1)
	}
}

// JobFailed records a job that finished with an error.
func (c *Counters) JobFailed() {
	if c != nil {
		c.jobsFailed.Add(1)
	}
}

// JobCancelled records a job cancelled before or during execution.
func (c *Counters) JobCancelled() {
	if c != nil {
		c.jobsCancelled.Add(1)
	}
}

// QueryExecuted records one engine query execution (sync or async).
func (c *Counters) QueryExecuted() {
	if c != nil {
		c.queries.Add(1)
	}
}

// DispatchBatch records one batch-oracle dispatch of n label fetches.
func (c *Counters) DispatchBatch(n int) {
	if c != nil {
		c.dispatchBatches.Add(1)
		c.dispatchCalls.Add(int64(n))
	}
}

// LabelCacheHits records n label reads served from the cross-query
// label store.
func (c *Counters) LabelCacheHits(n int64) {
	if c != nil {
		c.labelCacheHits.Add(n)
	}
}

// LabelCacheMisses records n label-store lookups that missed.
func (c *Counters) LabelCacheMisses(n int64) {
	if c != nil {
		c.labelCacheMisses.Add(n)
	}
}

// LabelCacheEvictions records n labels evicted to stay under the
// store's byte budget.
func (c *Counters) LabelCacheEvictions(n int64) {
	if c != nil {
		c.labelCacheEvictions.Add(n)
	}
}

// LabelCacheInvalidations records n label caches dropped because their
// table or oracle UDF was re-registered.
func (c *Counters) LabelCacheInvalidations(n int64) {
	if c != nil {
		c.labelCacheInvalidations.Add(n)
	}
}

// OracleRetries records n transient oracle failures that were retried
// by the resilience layer.
func (c *Counters) OracleRetries(n int64) {
	if c != nil {
		c.oracleRetries.Add(n)
	}
}

// OracleTimeouts records n oracle attempts abandoned by the per-call
// timeout.
func (c *Counters) OracleTimeouts(n int64) {
	if c != nil {
		c.oracleTimeouts.Add(n)
	}
}

// BreakerOpened records a circuit breaker leaving the closed state
// (the breaker-state gauge goes up by one).
func (c *Counters) BreakerOpened() {
	if c != nil {
		c.breakerState.Add(1)
	}
}

// BreakerClosed records a circuit breaker returning to the closed
// state after a successful half-open probe.
func (c *Counters) BreakerClosed() {
	if c != nil {
		c.breakerState.Add(-1)
	}
}

// WALRecords records n records appended to (or, at attach time, already
// present in) the label store's write-ahead log.
func (c *Counters) WALRecords(n int64) {
	if c != nil {
		c.walRecords.Add(n)
	}
}

// WALReplayed records n labels restored from the write-ahead log on
// boot.
func (c *Counters) WALReplayed(n int64) {
	if c != nil {
		c.walReplayed.Add(n)
	}
}

// CounterSnapshot is a point-in-time copy of all counters, shaped for
// the /v1/stats endpoint.
type CounterSnapshot struct {
	JobsSubmitted   int64 `json:"jobs_submitted"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	Queries         int64 `json:"queries"`
	DispatchBatches int64 `json:"oracle_dispatch_batches"`
	DispatchCalls   int64 `json:"oracle_dispatch_calls"`

	LabelCacheHits          int64 `json:"label_cache_hits"`
	LabelCacheMisses        int64 `json:"label_cache_misses"`
	LabelCacheEvictions     int64 `json:"label_cache_evictions"`
	LabelCacheInvalidations int64 `json:"label_cache_invalidations"`

	OracleRetries  int64 `json:"oracle_retries"`
	OracleTimeouts int64 `json:"oracle_timeouts"`
	// BreakerState is the number of circuit breakers currently not
	// closed (0 = all oracle backends healthy).
	BreakerState int64 `json:"breaker_state"`

	WALRecords  int64 `json:"wal_records"`
	WALReplayed int64 `json:"wal_replayed"`
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; cross-field skew is acceptable for monitoring).
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		JobsSubmitted:   c.jobsSubmitted.Load(),
		JobsDone:        c.jobsDone.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		JobsCancelled:   c.jobsCancelled.Load(),
		Queries:         c.queries.Load(),
		DispatchBatches: c.dispatchBatches.Load(),
		DispatchCalls:   c.dispatchCalls.Load(),

		LabelCacheHits:          c.labelCacheHits.Load(),
		LabelCacheMisses:        c.labelCacheMisses.Load(),
		LabelCacheEvictions:     c.labelCacheEvictions.Load(),
		LabelCacheInvalidations: c.labelCacheInvalidations.Load(),

		OracleRetries:  c.oracleRetries.Load(),
		OracleTimeouts: c.oracleTimeouts.Load(),
		BreakerState:   c.breakerState.Load(),

		WALRecords:  c.walRecords.Load(),
		WALReplayed: c.walReplayed.Load(),
	}
}
