package metrics

import "sync/atomic"

// Counters aggregates service-level activity: async job lifecycle
// transitions and batch-oracle dispatch volume. All methods are
// goroutine-safe and nil-safe — a nil *Counters records nothing, so
// instrumented code never needs a nil check at the call site.
type Counters struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64

	queries atomic.Int64

	dispatchBatches atomic.Int64
	dispatchCalls   atomic.Int64
}

// JobSubmitted records a job accepted into the queue.
func (c *Counters) JobSubmitted() {
	if c != nil {
		c.jobsSubmitted.Add(1)
	}
}

// JobDone records a job that finished successfully.
func (c *Counters) JobDone() {
	if c != nil {
		c.jobsDone.Add(1)
	}
}

// JobFailed records a job that finished with an error.
func (c *Counters) JobFailed() {
	if c != nil {
		c.jobsFailed.Add(1)
	}
}

// JobCancelled records a job cancelled before or during execution.
func (c *Counters) JobCancelled() {
	if c != nil {
		c.jobsCancelled.Add(1)
	}
}

// QueryExecuted records one engine query execution (sync or async).
func (c *Counters) QueryExecuted() {
	if c != nil {
		c.queries.Add(1)
	}
}

// DispatchBatch records one batch-oracle dispatch of n label fetches.
func (c *Counters) DispatchBatch(n int) {
	if c != nil {
		c.dispatchBatches.Add(1)
		c.dispatchCalls.Add(int64(n))
	}
}

// CounterSnapshot is a point-in-time copy of all counters, shaped for
// the /v1/stats endpoint.
type CounterSnapshot struct {
	JobsSubmitted   int64 `json:"jobs_submitted"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	Queries         int64 `json:"queries"`
	DispatchBatches int64 `json:"oracle_dispatch_batches"`
	DispatchCalls   int64 `json:"oracle_dispatch_calls"`
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; cross-field skew is acceptable for monitoring).
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		JobsSubmitted:   c.jobsSubmitted.Load(),
		JobsDone:        c.jobsDone.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		JobsCancelled:   c.jobsCancelled.Load(),
		Queries:         c.queries.Load(),
		DispatchBatches: c.dispatchBatches.Load(),
		DispatchCalls:   c.dispatchCalls.Load(),
	}
}
