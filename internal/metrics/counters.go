package metrics

import "sync/atomic"

// Counters aggregates service-level activity: async job lifecycle
// transitions and batch-oracle dispatch volume. All methods are
// goroutine-safe and nil-safe — a nil *Counters records nothing, so
// instrumented code never needs a nil check at the call site.
type Counters struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64

	queries atomic.Int64

	dispatchBatches atomic.Int64
	dispatchCalls   atomic.Int64

	labelCacheHits          atomic.Int64
	labelCacheMisses        atomic.Int64
	labelCacheEvictions     atomic.Int64
	labelCacheInvalidations atomic.Int64

	oracleRetries  atomic.Int64
	oracleTimeouts atomic.Int64
	// breakerState is a gauge: the number of circuit breakers currently
	// not closed (open or half-open). 0 means every oracle backend is
	// considered healthy.
	breakerState atomic.Int64

	walRecords  atomic.Int64
	walReplayed atomic.Int64

	storageSegmentsPersisted atomic.Int64
	storageTablesRecovered   atomic.Int64
	storageIndexesRecovered  atomic.Int64
	storageSegmentsRecovered atomic.Int64
	// storageMappedBytes is a gauge: bytes of persisted files currently
	// mmap'd into the process.
	storageMappedBytes atomic.Int64
	// storageRecoveryMillis is a gauge: wall-clock milliseconds the last
	// storage recovery took.
	storageRecoveryMillis atomic.Int64
	// storageManifestRecords is a gauge: frames currently in the storage
	// manifest (drops after a compaction).
	storageManifestRecords     atomic.Int64
	storageManifestCompactions atomic.Int64
}

// JobSubmitted records a job accepted into the queue.
func (c *Counters) JobSubmitted() {
	if c != nil {
		c.jobsSubmitted.Add(1)
	}
}

// JobDone records a job that finished successfully.
func (c *Counters) JobDone() {
	if c != nil {
		c.jobsDone.Add(1)
	}
}

// JobFailed records a job that finished with an error.
func (c *Counters) JobFailed() {
	if c != nil {
		c.jobsFailed.Add(1)
	}
}

// JobCancelled records a job cancelled before or during execution.
func (c *Counters) JobCancelled() {
	if c != nil {
		c.jobsCancelled.Add(1)
	}
}

// QueryExecuted records one engine query execution (sync or async).
func (c *Counters) QueryExecuted() {
	if c != nil {
		c.queries.Add(1)
	}
}

// DispatchBatch records one batch-oracle dispatch of n label fetches.
func (c *Counters) DispatchBatch(n int) {
	if c != nil {
		c.dispatchBatches.Add(1)
		c.dispatchCalls.Add(int64(n))
	}
}

// LabelCacheHits records n label reads served from the cross-query
// label store.
func (c *Counters) LabelCacheHits(n int64) {
	if c != nil {
		c.labelCacheHits.Add(n)
	}
}

// LabelCacheMisses records n label-store lookups that missed.
func (c *Counters) LabelCacheMisses(n int64) {
	if c != nil {
		c.labelCacheMisses.Add(n)
	}
}

// LabelCacheEvictions records n labels evicted to stay under the
// store's byte budget.
func (c *Counters) LabelCacheEvictions(n int64) {
	if c != nil {
		c.labelCacheEvictions.Add(n)
	}
}

// LabelCacheInvalidations records n label caches dropped because their
// table or oracle UDF was re-registered.
func (c *Counters) LabelCacheInvalidations(n int64) {
	if c != nil {
		c.labelCacheInvalidations.Add(n)
	}
}

// OracleRetries records n transient oracle failures that were retried
// by the resilience layer.
func (c *Counters) OracleRetries(n int64) {
	if c != nil {
		c.oracleRetries.Add(n)
	}
}

// OracleTimeouts records n oracle attempts abandoned by the per-call
// timeout.
func (c *Counters) OracleTimeouts(n int64) {
	if c != nil {
		c.oracleTimeouts.Add(n)
	}
}

// BreakerOpened records a circuit breaker leaving the closed state
// (the breaker-state gauge goes up by one).
func (c *Counters) BreakerOpened() {
	if c != nil {
		c.breakerState.Add(1)
	}
}

// BreakerClosed records a circuit breaker returning to the closed
// state after a successful half-open probe.
func (c *Counters) BreakerClosed() {
	if c != nil {
		c.breakerState.Add(-1)
	}
}

// WALRecords records n records appended to (or, at attach time, already
// present in) the label store's write-ahead log.
func (c *Counters) WALRecords(n int64) {
	if c != nil {
		c.walRecords.Add(n)
	}
}

// WALReplayed records n labels restored from the write-ahead log on
// boot.
func (c *Counters) WALReplayed(n int64) {
	if c != nil {
		c.walReplayed.Add(n)
	}
}

// StorageSegmentsPersisted records n segment files flushed to the
// durable storage tier.
func (c *Counters) StorageSegmentsPersisted(n int64) {
	if c != nil {
		c.storageSegmentsPersisted.Add(n)
	}
}

// StorageRecovered records the boot-time recovery outcome: tables,
// segmented indexes, and segment files restored from the storage tier
// without rebuilding.
func (c *Counters) StorageRecovered(tables, indexes, segments int64) {
	if c != nil {
		c.storageTablesRecovered.Add(tables)
		c.storageIndexesRecovered.Add(indexes)
		c.storageSegmentsRecovered.Add(segments)
	}
}

// StorageMappedBytes moves the mapped-bytes gauge by n.
func (c *Counters) StorageMappedBytes(n int64) {
	if c != nil {
		c.storageMappedBytes.Add(n)
	}
}

// StorageRecoveryMillis moves the recovery-time gauge by n milliseconds
// (attached once after recovery, so the gauge reads as the last
// recovery's duration).
func (c *Counters) StorageRecoveryMillis(n int64) {
	if c != nil {
		c.storageRecoveryMillis.Add(n)
	}
}

// StorageManifestRecords moves the manifest-frames gauge by n (negative
// after a compaction shrinks the log).
func (c *Counters) StorageManifestRecords(n int64) {
	if c != nil {
		c.storageManifestRecords.Add(n)
	}
}

// StorageManifestCompactions records n manifest compactions.
func (c *Counters) StorageManifestCompactions(n int64) {
	if c != nil {
		c.storageManifestCompactions.Add(n)
	}
}

// CounterSnapshot is a point-in-time copy of all counters, shaped for
// the /v1/stats endpoint.
type CounterSnapshot struct {
	JobsSubmitted   int64 `json:"jobs_submitted"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	Queries         int64 `json:"queries"`
	DispatchBatches int64 `json:"oracle_dispatch_batches"`
	DispatchCalls   int64 `json:"oracle_dispatch_calls"`

	LabelCacheHits          int64 `json:"label_cache_hits"`
	LabelCacheMisses        int64 `json:"label_cache_misses"`
	LabelCacheEvictions     int64 `json:"label_cache_evictions"`
	LabelCacheInvalidations int64 `json:"label_cache_invalidations"`

	OracleRetries  int64 `json:"oracle_retries"`
	OracleTimeouts int64 `json:"oracle_timeouts"`
	// BreakerState is the number of circuit breakers currently not
	// closed (0 = all oracle backends healthy).
	BreakerState int64 `json:"breaker_state"`

	WALRecords  int64 `json:"wal_records"`
	WALReplayed int64 `json:"wal_replayed"`

	StorageSegmentsPersisted int64 `json:"storage_segments_persisted"`
	StorageTablesRecovered   int64 `json:"storage_tables_recovered"`
	StorageIndexesRecovered  int64 `json:"storage_indexes_recovered"`
	StorageSegmentsRecovered int64 `json:"storage_segments_recovered"`
	// StorageMappedBytes is a gauge: persisted bytes currently mmap'd.
	StorageMappedBytes int64 `json:"storage_mapped_bytes"`
	// StorageRecoveryMillis is a gauge: duration of the last recovery.
	StorageRecoveryMillis int64 `json:"storage_recovery_ms"`
	// StorageManifestRecords is a gauge: frames in the manifest log.
	StorageManifestRecords     int64 `json:"storage_manifest_records"`
	StorageManifestCompactions int64 `json:"storage_manifest_compactions"`
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; cross-field skew is acceptable for monitoring).
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		JobsSubmitted:   c.jobsSubmitted.Load(),
		JobsDone:        c.jobsDone.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		JobsCancelled:   c.jobsCancelled.Load(),
		Queries:         c.queries.Load(),
		DispatchBatches: c.dispatchBatches.Load(),
		DispatchCalls:   c.dispatchCalls.Load(),

		LabelCacheHits:          c.labelCacheHits.Load(),
		LabelCacheMisses:        c.labelCacheMisses.Load(),
		LabelCacheEvictions:     c.labelCacheEvictions.Load(),
		LabelCacheInvalidations: c.labelCacheInvalidations.Load(),

		OracleRetries:  c.oracleRetries.Load(),
		OracleTimeouts: c.oracleTimeouts.Load(),
		BreakerState:   c.breakerState.Load(),

		WALRecords:  c.walRecords.Load(),
		WALReplayed: c.walReplayed.Load(),

		StorageSegmentsPersisted:   c.storageSegmentsPersisted.Load(),
		StorageTablesRecovered:     c.storageTablesRecovered.Load(),
		StorageIndexesRecovered:    c.storageIndexesRecovered.Load(),
		StorageSegmentsRecovered:   c.storageSegmentsRecovered.Load(),
		StorageMappedBytes:         c.storageMappedBytes.Load(),
		StorageRecoveryMillis:      c.storageRecoveryMillis.Load(),
		StorageManifestRecords:     c.storageManifestRecords.Load(),
		StorageManifestCompactions: c.storageManifestCompactions.Load(),
	}
}
