package metrics

import (
	"math"
	"strings"
	"testing"

	"supg/internal/dataset"
)

func evalDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	// positives at indices 1, 3, 4.
	return dataset.MustNew("m",
		[]float64{0.1, 0.9, 0.2, 0.8, 0.7},
		[]bool{false, true, false, true, true})
}

func TestEvaluateBasic(t *testing.T) {
	d := evalDataset(t)
	e := Evaluate(d, []int{1, 3, 0}) // 2 of 3 returned are true; 2 of 3 positives found
	if math.Abs(e.Precision-2.0/3) > 1e-12 {
		t.Errorf("precision %v", e.Precision)
	}
	if math.Abs(e.Recall-2.0/3) > 1e-12 {
		t.Errorf("recall %v", e.Recall)
	}
	if e.Returned != 3 || e.TruePos != 2 {
		t.Errorf("counts %+v", e)
	}
	if e.F1 <= 0 || e.F1 > 1 {
		t.Errorf("F1 %v", e.F1)
	}
}

func TestEvaluateEmptyResult(t *testing.T) {
	d := evalDataset(t)
	e := Evaluate(d, nil)
	if e.Precision != 1 {
		t.Errorf("empty result precision %v, want vacuous 1", e.Precision)
	}
	if e.Recall != 0 {
		t.Errorf("empty result recall %v", e.Recall)
	}
}

func TestEvaluateNoPositivesInData(t *testing.T) {
	d := dataset.MustNew("none", []float64{0.5, 0.6}, []bool{false, false})
	e := Evaluate(d, []int{0})
	if e.Recall != 1 {
		t.Errorf("recall with no positives should be 1, got %v", e.Recall)
	}
	if e.Precision != 0 {
		t.Errorf("precision %v", e.Precision)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	d := evalDataset(t)
	e := Evaluate(d, []int{1, 3, 4})
	if e.Precision != 1 || e.Recall != 1 || e.F1 != 1 {
		t.Errorf("perfect result scored %+v", e)
	}
}

func TestTrialSet(t *testing.T) {
	var ts TrialSet
	ts.Add(Eval{Precision: 0.95, Recall: 0.5, Returned: 10}, 100)
	ts.Add(Eval{Precision: 0.85, Recall: 0.7, Returned: 30}, 200)
	ts.Add(Eval{Precision: 0.80, Recall: 0.9, Returned: 20}, 300)
	if ts.N() != 3 {
		t.Fatalf("N = %d", ts.N())
	}
	if got := ts.FailureRate(MetricPrecision, 0.9); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("failure rate %v", got)
	}
	if got := ts.MeanMetric(MetricRecall); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("mean recall %v", got)
	}
	if got := ts.MeanOracleCalls(); got != 200 {
		t.Errorf("mean oracle %v", got)
	}
	if got := ts.MeanSize(); got != 20 {
		t.Errorf("mean size %v", got)
	}
	box := ts.Box(MetricPrecision)
	if box.Median != 0.85 {
		t.Errorf("median %v", box.Median)
	}
}

func TestTargetMetricString(t *testing.T) {
	if MetricPrecision.String() != "precision" || MetricRecall.String() != "recall" {
		t.Error("metric strings")
	}
}

func TestFormatBox(t *testing.T) {
	s := FormatBox(ts(0.5, 0.6, 0.7).Box(MetricPrecision))
	if !strings.Contains(s, "med=") || !strings.Contains(s, "%") {
		t.Errorf("FormatBox output %q", s)
	}
}

func ts(ps ...float64) *TrialSet {
	var t TrialSet
	for _, p := range ps {
		t.Add(Eval{Precision: p}, 0)
	}
	return &t
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"col", "value"}}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-cell", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	// Aligned: the second column should start at the same offset.
	idx1 := strings.Index(lines[2], "1")
	idx2 := strings.Index(lines[3], "2")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}
