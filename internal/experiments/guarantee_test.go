package experiments

import (
	"testing"
	"time"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/metrics"
	"supg/internal/randx"
)

// TestSegmentedGuaranteeFailureRate is the statistical-guarantee
// regression test for the segmented index: a deterministic-seed
// Monte-Carlo harness (the Figure 5/6 failure-rate machinery at
// reduced scale) over the segmented hot path, asserting the empirical
// failure rate stays within delta plus a slack term.
//
// Every quantity here is a deterministic function of the seeds, so the
// assertion cannot flake: if it ever fails, either the sampling
// distribution drifted (a real guarantee regression) or the seeds
// changed. The slack absorbs Monte-Carlo noise at the reduced trial
// count: with trials=60 and a true failure probability of at most
// delta=0.05, the empirical rate exceeding 0.15 has probability below
// 1e-3 even at the guarantee boundary — and the observed rates sit
// well under delta because the paper's bounds are conservative.
func TestSegmentedGuaranteeFailureRate(t *testing.T) {
	const (
		trials    = 60
		gamma     = 0.9
		delta     = 0.05
		tolerance = 0.10
		budget    = 500
	)
	start := time.Now()
	d := dataset.Beta(randx.New(0xFA11), 20000, 0.01, 2)
	seg, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: 1024, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		kind   core.TargetKind
		metric metrics.TargetMetric
	}{
		{core.RecallTarget, metrics.MetricRecall},
		{core.PrecisionTarget, metrics.MetricPrecision},
	} {
		spec := core.Spec{Kind: tc.kind, Gamma: gamma, Delta: delta, Budget: budget}
		ts, err := runTrialsFrom(randx.New(0x5E6), d, seg, spec, core.DefaultSUPG(), trials, 4)
		if err != nil {
			t.Fatalf("%v trials: %v", tc.kind, err)
		}
		if ts.N() != trials {
			t.Fatalf("%v: ran %d trials, want %d", tc.kind, ts.N(), trials)
		}
		fail := ts.FailureRate(tc.metric, gamma)
		t.Logf("%v-target: empirical failure rate %.3f (delta %.2f + tolerance %.2f)", tc.kind, fail, delta, tolerance)
		if fail > delta+tolerance {
			t.Errorf("%v-target: empirical failure rate %.3f exceeds delta %.2f + tolerance %.2f",
				tc.kind, fail, delta, tolerance)
		}
	}
	// The satellite contract pins this harness to a CI-friendly budget.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("guarantee harness took %v, want < 30s", elapsed)
	}
}

// TestSegmentedTrialsMatchRawTrials pins the Monte-Carlo harness
// itself: the segmented-path trial set must be draw-for-draw identical
// to the raw-path trial set for the same seeds, so the failure-rate
// regression above is measuring the exact distribution the paper's
// machinery measures.
func TestSegmentedTrialsMatchRawTrials(t *testing.T) {
	d := dataset.Beta(randx.New(0xFA12), 8000, 0.01, 2)
	seg, err := index.NewWithOptions(d.Scores(), index.Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 300}
	raw, err := runTrials(randx.New(3), d, spec, core.DefaultSUPG(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := runTrialsFrom(randx.New(3), d, seg, spec, core.DefaultSUPG(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Recalls) != len(idx.Recalls) {
		t.Fatalf("trial counts differ: %d vs %d", len(raw.Recalls), len(idx.Recalls))
	}
	for i := range raw.Recalls {
		if raw.Recalls[i] != idx.Recalls[i] || raw.Precisions[i] != idx.Precisions[i] || raw.Oracle[i] != idx.Oracle[i] {
			t.Fatalf("trial %d diverged: raw (r=%v p=%v o=%v) vs segmented (r=%v p=%v o=%v)",
				i, raw.Recalls[i], raw.Precisions[i], raw.Oracle[i],
				idx.Recalls[i], idx.Precisions[i], idx.Oracle[i])
		}
	}
}
