package experiments

import (
	"fmt"
	"strconv"
	"time"

	"supg/internal/core"
	"supg/internal/costmodel"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/proxy"
	"supg/internal/randx"
)

// This file implements the paper's Tables 2-5.

func init() {
	register(Experiment{
		ID:          "table2",
		Title:       "Dataset summary (records, positives, TPR, proxy calibration)",
		Description: "Reproduces Table 2's dataset inventory with measured true-positive rates.",
		Run:         runTable2,
	})
	register(Experiment{
		ID:          "table3",
		Title:       "Distributionally shifted dataset summary",
		Description: "Reproduces Table 3: the train -> shifted-test pairs used for the drift study.",
		Run:         runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Accuracy under model drift: fixed empirical cutoff vs SUPG (target 95%)",
		Description: "The naive method fixes a threshold on fully-labeled training data and\n" +
			"applies it to the shifted test set; SUPG samples the shifted set under\n" +
			"the usual budget. Reproduces Table 4.",
		Run: runTable4,
	})
	register(Experiment{
		ID:          "table5",
		Title:       "Cost of SUPG query processing vs proxy, oracle, and exhaustive labeling",
		Description: "Reproduces Table 5 using Scale API label pricing and AWS p3.2xlarge GPU pricing.",
		Run:         runTable5,
	})
}

func runTable2(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	rep := &Report{
		ID:    "table2",
		Title: "Table 2: dataset, oracle, proxy, true positive rate",
		Table: metrics.Table{Header: []string{"dataset", "oracle", "proxy", "records", "positives", "TPR", "proxy ECE"}},
	}
	meta := []struct{ oracle, proxy string }{
		{"Human labels (sim)", "ResNet-50 (sim)"},
		{"Mask R-CNN (sim)", "ResNet-50 (sim)"},
		{"Human labels (sim)", "LSTM baseline (sim)"},
		{"Human labels (sim)", "SpanBERT (sim)"},
		{"True values", "Probabilities"},
		{"True values", "Probabilities"},
	}
	for i, ed := range evalDatasets(o, r.Stream(7)) {
		s := ed.d.Summarize()
		rep.Table.AddRow(s.Name, meta[i].oracle, meta[i].proxy,
			strconv.Itoa(s.Records), strconv.Itoa(s.Positives),
			fmt.Sprintf("%.2f%%", 100*s.TPR),
			f3(proxy.ECE(ed.d, 20)))
	}
	return rep, nil
}

// driftScale returns the per-dataset record count used by the drift
// experiments (paper-scale 100k keeps table4 affordable).
func (o Options) driftScale() int { return o.scaled(100_000) }

func runTable3(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	rep := &Report{
		ID:    "table3",
		Title: "Table 3: distributionally shifted datasets",
		Table: metrics.Table{Header: []string{"dataset", "shifted dataset", "train TPR", "test TPR", "train ECE", "test ECE"}},
	}
	for _, pair := range dataset.StandardDriftPairs(r.Stream(8), o.driftScale()) {
		rep.Table.AddRow(pair.Train.Name(), pair.Test.Name(),
			fmt.Sprintf("%.2f%%", 100*pair.Train.PositiveRate()),
			fmt.Sprintf("%.2f%%", 100*pair.Test.PositiveRate()),
			f3(proxy.ECE(pair.Train, 20)),
			f3(proxy.ECE(pair.Test, 20)))
	}
	return rep, nil
}

func runTable4(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	rep := &Report{
		ID:    "table4",
		Title: "Table 4: achieved accuracy under drift, target 95% (delta=0.05)",
		Table: metrics.Table{Header: []string{
			"dataset", "query type", "target", "naive accuracy", "SUPG accuracy", "SUPG success rate",
		}},
	}
	const gamma = 0.95
	pairs := dataset.StandardDriftPairs(r.Stream(8), o.driftScale())
	budget := o.scaledBudget(10_000)
	trials := o.Trials
	if trials > 25 {
		trials = 25 // the paper reports means; 25 trials suffice and keep drift runs fast
	}
	for pi, pair := range pairs {
		for _, kind := range []core.TargetKind{core.PrecisionTarget, core.RecallTarget} {
			metric := metrics.MetricPrecision
			if kind == core.RecallTarget {
				metric = metrics.MetricRecall
			}
			// Naive: empirical cutoff fitted on the fully-labeled
			// training set, applied verbatim to the shifted test set.
			naive := naiveFixedThresholdAccuracy(r.Stream(uint64(300+pi)), pair, kind, gamma)

			spec := core.Spec{Kind: kind, Gamma: gamma, Delta: 0.05, Budget: budget}
			ts, err := runTrials(r.Stream(uint64(400+10*pi+int(kind))), pair.Test, spec, core.DefaultSUPG(), trials, o.Parallelism)
			if err != nil {
				return nil, err
			}
			rep.Table.AddRow(pair.Description, kind.String(), pct(gamma),
				pct(naive), pct(ts.MeanMetric(metric)),
				pct(1-ts.FailureRate(metric, gamma)))
		}
	}
	rep.Notes = append(rep.Notes,
		"naive accuracy is deterministic given the training labels; SUPG columns average "+strconv.Itoa(trials)+" runs")
	return rep, nil
}

// naiveFixedThresholdAccuracy fits the empirical cutoff for the target
// on the entire labeled training set (as NoScope/probabilistic
// predicates do) and measures the achieved metric on the shifted test
// set.
func naiveFixedThresholdAccuracy(r *randx.Rand, pair dataset.DriftPair, kind core.TargetKind, gamma float64) float64 {
	train := pair.Train
	// "Oracle labels on the entire training dataset": budget = |train|.
	spec := core.Spec{Kind: kind, Gamma: gamma, Delta: 0.05, Budget: train.Len()}
	budgeted := oracle.NewBudgeted(oracle.NewSimulated(train), train.Len())
	tr, err := core.EstimateTau(r, train.Scores(), budgeted, spec, core.DefaultUNoCI())
	if err != nil && err != core.ErrNoPositives {
		return 0
	}
	tau := tr.Tau

	// Apply the fixed threshold to the shifted test set (no new labels).
	test := pair.Test
	var selected []int
	for i := 0; i < test.Len(); i++ {
		if test.Score(i) >= tau {
			selected = append(selected, i)
		}
	}
	e := metrics.Evaluate(test, selected)
	if kind == core.PrecisionTarget {
		return e.Precision
	}
	return e.Recall
}

func runTable5(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	rep := &Report{
		ID:    "table5",
		Title: "Table 5: cost breakdown (USD)",
		Table: metrics.Table{Header: []string{
			"dataset", "SUPG sampling", "proxy", "oracle", "SUPG total", "exhaustive oracle",
		}},
	}

	// Measure real threshold-estimation wall time on a scaled dataset,
	// then price the paper-scale dataset with the published constants.
	gen := map[string]func(*randx.Rand) *dataset.Dataset{
		"night":     func(rr *randx.Rand) *dataset.Dataset { return nightStreetAt(o, rr) },
		"ImageNet":  func(rr *randx.Rand) *dataset.Dataset { return imageNetAt(o, rr) },
		"OntoNotes": func(rr *randx.Rand) *dataset.Dataset { return ontoNotesAt(o, rr) },
		"TACRED":    func(rr *randx.Rand) *dataset.Dataset { return tacredAt(o, rr) },
	}
	for i, c := range costmodel.StandardCosts() {
		d := gen[c.Name](r.Stream(uint64(20 + i)))
		budget := c.Budget
		if budget > d.Len()/2 {
			budget = d.Len() / 2
		}
		spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: budget}
		start := time.Now()
		res, err := core.Select(r.Stream(uint64(40+i)), d.Scores(), oracle.NewSimulated(d), spec, core.DefaultSUPG())
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		b := costmodel.Compute(c, elapsed, c.Budget)
		_ = res
		rep.Table.AddRow(b.Dataset,
			fmt.Sprintf("$%.1e", b.Sampling),
			fmt.Sprintf("$%.2f", b.Proxy),
			fmt.Sprintf("$%.2f", b.Oracle),
			fmt.Sprintf("$%.2f", b.Total),
			fmt.Sprintf("$%.0f", b.Exhaustive))
	}
	rep.Notes = append(rep.Notes,
		"sampling cost prices measured wall time at $3.06/hr (AWS p3.2xlarge); oracle/proxy columns use the paper's published rates")
	return rep, nil
}
