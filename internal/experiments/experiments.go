// Package experiments reproduces every table and figure in the paper's
// evaluation (Section 6 and the appendix). Each experiment is registered
// under the id used in DESIGN.md's experiment index (fig1, fig5, ...,
// table5, fig15), producing a textual Report with the same rows/series
// the paper plots. cmd/supg-bench runs them from the command line and
// the repository-root benchmarks exercise them at reduced scale.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// Options control experiment scale so the same code serves the paper's
// full configuration (CLI) and fast CI runs (tests, benchmarks).
type Options struct {
	// Seed drives all randomness; equal seeds give identical reports.
	Seed uint64
	// Trials is the number of repeated runs per configuration
	// (paper: 100).
	Trials int
	// Scale multiplies dataset sizes and budgets (1.0 = paper scale).
	Scale float64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
}

// withDefaults fills unset fields with the paper's configuration.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0x5069 // arbitrary fixed default for reproducibility
	}
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// scaled applies the scale factor to a paper-sized count with a floor
// that keeps the statistics meaningful.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 2000 {
		v = 2000
	}
	if v > n && o.Scale <= 1 {
		v = n
	}
	return v
}

// scaledBudget applies the scale factor to an oracle budget with a
// smaller floor.
func (o Options) scaledBudget(b int) int {
	v := int(float64(b) * o.Scale)
	if v < 500 {
		v = 500
	}
	if v > b && o.Scale <= 1 {
		v = b
	}
	return v
}

// Report is the textual result of one experiment.
type Report struct {
	ID          string
	Title       string
	Description string
	Table       metrics.Table
	Notes       []string
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Description != "" {
		fmt.Fprintf(&sb, "%s\n", r.Description)
	}
	sb.WriteByte('\n')
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Options) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all registered ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// runTrials executes `trials` independent SUPG selections of (spec, cfg)
// over d and aggregates per-trial quality. Trials run in parallel but
// each consumes a deterministic random stream, so results are
// reproducible regardless of scheduling.
func runTrials(r *randx.Rand, d *dataset.Dataset, spec core.Spec, cfg core.Config, trials, parallelism int) (*metrics.TrialSet, error) {
	return runTrialsVia(r, d, trials, parallelism,
		func(rt *randx.Rand) (core.Result, error) {
			return core.Select(rt, d.Scores(), oracle.NewSimulated(d), spec, cfg)
		})
}

// runTrialsFrom is runTrials over a prebuilt ScoreSource (e.g. a
// segmented index.ScoreIndex shared across trials) — the harness the
// guarantee regression tests use to Monte-Carlo the indexed hot path
// rather than the raw-slice path.
func runTrialsFrom(r *randx.Rand, d *dataset.Dataset, src core.ScoreSource, spec core.Spec, cfg core.Config, trials, parallelism int) (*metrics.TrialSet, error) {
	return runTrialsVia(r, d, trials, parallelism,
		func(rt *randx.Rand) (core.Result, error) {
			return core.SelectFrom(rt, src, oracle.NewSimulated(d), spec, cfg)
		})
}

// runTrialsVia is the shared trial loop: one deterministic stream per
// trial, bounded parallelism, quality evaluated against ground truth.
func runTrialsVia(r *randx.Rand, d *dataset.Dataset, trials, parallelism int,
	run func(*randx.Rand) (core.Result, error)) (*metrics.TrialSet, error) {
	type outcome struct {
		eval  metrics.Eval
		calls int
		err   error
	}
	results := make([]outcome, trials)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rt := r.Stream(uint64(t) + 1)
			res, err := run(rt)
			if err != nil {
				results[t] = outcome{err: err}
				return
			}
			results[t] = outcome{eval: metrics.Evaluate(d, res.Indices), calls: res.OracleCalls}
		}(t)
	}
	wg.Wait()

	ts := &metrics.TrialSet{}
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		ts.Add(o.eval, o.calls)
	}
	return ts, nil
}

// pct formats a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// f3 formats a float with three significant decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
