package experiments

import (
	"fmt"

	"supg/internal/core"
	"supg/internal/metrics"
	"supg/internal/randx"
)

// This file implements the target sweeps of Figures 7 and 8.

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Precision target vs achieved recall: U-CI vs one-stage vs two-stage importance",
		Description: "For each dataset and precision target in {0.75, 0.8, 0.9, 0.95, 0.99},\n" +
			"the mean achieved recall of the returned set. Reproduces Figure 7.",
		Run: runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Recall target vs achieved precision: U-CI vs proportional vs sqrt importance",
		Description: "For each dataset and recall target in {0.5 ... 0.95}, the mean achieved\n" +
			"precision of the returned set. Reproduces Figure 8.",
		Run: runFig8,
	})
}

// sweepTrials bounds per-point trials for the sweep figures (the paper
// plots means, so fewer trials than the failure-rate experiments are
// needed per point).
func sweepTrials(o Options) int {
	t := o.Trials / 2
	if t < 5 {
		t = 5
	}
	if t > 50 {
		t = 50
	}
	return t
}

func runFig7(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	targets := []float64{0.75, 0.8, 0.9, 0.95, 0.99}
	oneStage := core.DefaultSUPG()
	oneStage.TwoStage = false
	methods := []struct {
		name string
		cfg  core.Config
	}{
		{"U-CI", core.DefaultUCI()},
		{"Importance(one-stage)", oneStage},
		{"SUPG(two-stage)", core.DefaultSUPG()},
	}
	rep := &Report{
		ID:    "fig7",
		Title: "Figure 7: precision target vs achieved recall (mean over trials)",
		Table: metrics.Table{Header: []string{"dataset", "method", "target", "achieved recall", "achieved precision", "fail rate"}},
	}
	trials := sweepTrials(o)
	for di, ed := range evalDatasets(o, r.Stream(7)) {
		for mi, m := range methods {
			for ti, gamma := range targets {
				spec := core.Spec{Kind: core.PrecisionTarget, Gamma: gamma, Delta: 0.05, Budget: ed.budget}
				ts, err := runTrials(r.Stream(uint64(1000+100*di+10*mi+ti)), ed.d, spec, m.cfg, trials, o.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s/%s: %w", ed.d.Name(), m.name, err)
				}
				rep.Table.AddRow(ed.d.Name(), m.name, pct(gamma),
					pct(ts.MeanMetric(metrics.MetricRecall)),
					pct(ts.MeanMetric(metrics.MetricPrecision)),
					pct(ts.FailureRate(metrics.MetricPrecision, gamma)))
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("trials per point=%d, delta=0.05", trials))
	return rep, nil
}

func runFig8(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	targets := []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95}
	prop := core.DefaultSUPG()
	prop.WeightExponent = 1.0
	methods := []struct {
		name string
		cfg  core.Config
	}{
		{"U-CI", core.DefaultUCI()},
		{"Importance(prop)", prop},
		{"SUPG(sqrt)", core.DefaultSUPG()},
	}
	rep := &Report{
		ID:    "fig8",
		Title: "Figure 8: recall target vs achieved precision (mean over trials)",
		Table: metrics.Table{Header: []string{"dataset", "method", "target", "achieved precision", "achieved recall", "fail rate"}},
	}
	trials := sweepTrials(o)
	for di, ed := range evalDatasets(o, r.Stream(7)) {
		for mi, m := range methods {
			for ti, gamma := range targets {
				spec := core.Spec{Kind: core.RecallTarget, Gamma: gamma, Delta: 0.05, Budget: ed.budget}
				ts, err := runTrials(r.Stream(uint64(2000+100*di+10*mi+ti)), ed.d, spec, m.cfg, trials, o.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/%s: %w", ed.d.Name(), m.name, err)
				}
				rep.Table.AddRow(ed.d.Name(), m.name, pct(gamma),
					pct(ts.MeanMetric(metrics.MetricPrecision)),
					pct(ts.MeanMetric(metrics.MetricRecall)),
					pct(ts.FailureRate(metrics.MetricRecall, gamma)))
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("trials per point=%d, delta=0.05", trials))
	return rep, nil
}
