package experiments

import (
	"fmt"
	"sync"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/proxy"
	"supg/internal/randx"
	"supg/internal/stats"
)

// This file implements Figure 15 (appendix): joint recall+precision
// target queries, comparing U-CI and SUPG recall subroutines by the
// number of oracle queries consumed.

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Joint-target queries: oracle usage, U-CI vs SUPG subroutine",
		Description: "The three-stage JT algorithm with recall/precision targets in\n" +
			"{0.5, 0.6, 0.7, 0.75, 0.8, 0.9}; lower oracle counts are better.\n" +
			"Reproduces Figure 15 on the four figure datasets.",
		Run: runFig15,
	})
	register(Experiment{
		ID:    "ablation-multiproxy",
		Title: "Extension: multiple proxies (Section 8 future work)",
		Description: "Two independently-noisy proxies, fused label-free (mean/max) or with\n" +
			"an oracle-calibrated logistic stacker, vs the best single proxy.\n" +
			"Recall target 90%; quality is achieved precision.",
		Run: runAblationMultiproxy,
	})
	register(Experiment{
		ID:    "ablation-finite",
		Title: "Extension: finite-sample certificates vs the paper's CLT bounds",
		Description: "The exact order-statistics RT estimator and Clopper-Pearson PT\n" +
			"certificates against the asymptotic defaults, at a small budget where\n" +
			"asymptotics are strained.",
		Run: runAblationFinite,
	})
	register(Experiment{
		ID:    "ablation-defensive",
		Title: "Ablation: defensive mixing under an adversarial (inverted) proxy",
		Description: "Extra ablation called out in DESIGN.md: with the proxy scores\n" +
			"inverted (anti-correlated), defensive mixing keeps the recall\n" +
			"guarantee while mixing=0 fails.",
		Run: runAblationDefensive,
	})
}

func runFig15(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	targets := []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.9}
	trials := sweepTrials(o)

	sets := []evalDataset{
		{imageNetAt(o, r.Stream(1)), o.scaledBudget(1000)},
		{nightStreetAt(o, r.Stream(2)), o.scaledBudget(10000)},
		{betaAt(o, r.Stream(5), 0.01, 1), o.scaledBudget(10000)},
		{betaAt(o, r.Stream(6), 0.01, 2), o.scaledBudget(10000)},
	}
	methods := []struct {
		name string
		cfg  core.Config
	}{
		{"U-CI", core.DefaultUCI()},
		{"SUPG", core.DefaultSUPG()},
	}

	rep := &Report{
		ID:    "fig15",
		Title: "Figure 15: joint targets vs oracle queries (mean over trials)",
		Table: metrics.Table{Header: []string{"dataset", "method", "target", "oracle queries", "recall ok"}},
	}
	for di, ed := range sets {
		for mi, m := range methods {
			for ti, gamma := range targets {
				spec := core.JointSpec{
					GammaRecall:    gamma,
					GammaPrecision: gamma,
					Delta:          0.05,
					StageBudget:    ed.budget,
				}
				calls, recallOK, err := runJointTrials(r.Stream(uint64(4000+100*di+10*mi+ti)), ed.d, spec, m.cfg, trials, o.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("fig15 %s/%s: %w", ed.d.Name(), m.name, err)
				}
				rep.Table.AddRow(ed.d.Name(), m.name, pct(gamma),
					fmt.Sprintf("%.0f", calls), pct(recallOK))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("stage-2 budget per dataset as in Section 6.3; trials per point=%d; precision is 1 by construction (exhaustive filter)", trials))
	return rep, nil
}

// runJointTrials returns the mean oracle-call count and the fraction of
// trials meeting the recall target.
func runJointTrials(r *randx.Rand, d *dataset.Dataset, spec core.JointSpec, cfg core.Config, trials, parallelism int) (meanCalls, recallOK float64, err error) {
	type outcome struct {
		calls  int
		recall float64
		err    error
	}
	results := make([]outcome, trials)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rt := r.Stream(uint64(t) + 1)
			res, err := core.SelectJoint(rt, d.Scores(), oracle.NewSimulated(d), spec, cfg)
			if err != nil {
				results[t] = outcome{err: err}
				return
			}
			e := metrics.Evaluate(d, res.Indices)
			results[t] = outcome{calls: res.OracleCalls, recall: e.Recall}
		}(t)
	}
	wg.Wait()

	var calls, ok []float64
	for _, o := range results {
		if o.err != nil {
			return 0, 0, o.err
		}
		calls = append(calls, float64(o.calls))
		if o.recall >= spec.GammaRecall {
			ok = append(ok, 1)
		} else {
			ok = append(ok, 0)
		}
	}
	return stats.Mean(calls), stats.Mean(ok), nil
}

func runAblationDefensive(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	base := betaAt(o, r.Stream(5), 0.01, 2)
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)

	// Invert the scores so the proxy actively points away from positives.
	inverted := proxy.Invert(base).WithName(base.Name() + " (inverted proxy)")

	rep := &Report{
		ID:    "ablation-defensive",
		Title: "Defensive mixing under an adversarial proxy (recall target 90%)",
		Table: metrics.Table{Header: []string{"proxy", "mixing", "fail rate", "mean recall"}},
	}
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.90, Delta: 0.05, Budget: budget}
	for di, d := range []*dataset.Dataset{base, inverted} {
		for xi, mix := range []float64{0, 0.1, 0.3} {
			cfg := core.DefaultSUPG()
			cfg.Mix = mix
			ts, err := runTrials(r.Stream(uint64(4500+10*di+xi)), d, spec, cfg, trials, o.Parallelism)
			if err != nil {
				return nil, err
			}
			name := "calibrated"
			if di == 1 {
				name = "adversarial"
			}
			rep.Table.AddRow(name, fmt.Sprintf("%.1f", mix),
				pct(ts.FailureRate(metrics.MetricRecall, spec.Gamma)),
				pct(ts.MeanMetric(metrics.MetricRecall)))
		}
	}
	return rep, nil
}
