package experiments

import (
	"fmt"
	"sync"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/multiproxy"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file implements the extension experiments that go beyond the
// paper: the multiple-proxy fusion of Section 8's future work and the
// finite-sample certificate ablation.

func runAblationMultiproxy(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	n := o.scaled(200_000)
	base := dataset.Beta(r.Stream(1), n, 0.1, 1)
	budget := o.scaledBudget(4_000)
	trials := sweepTrials(o)

	// Three independently-noisy proxy views.
	noisy := func(stream uint64) []float64 {
		rs := r.Stream(stream)
		out := make([]float64, base.Len())
		for i := range out {
			v := base.Score(i) + 0.3*rs.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[i] = v
		}
		return out
	}
	cols := [][]float64{noisy(10), noisy(11), noisy(12)}

	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: budget}
	rep := &Report{
		ID:    "ablation-multiproxy",
		Title: "Multiple proxies: fusion strategy vs quality (recall target 90%)",
		Table: metrics.Table{Header: []string{"proxies", "fusion", "fail rate", "mean precision"}},
	}

	type variant struct {
		name   string
		cols   [][]float64
		fusion multiproxy.Fusion
	}
	variants := []variant{
		{"single (proxy 1)", cols[:1], multiproxy.FuseMean},
		{"all 3", cols, multiproxy.FuseMean},
		{"all 3", cols, multiproxy.FuseMax},
		{"all 3", cols, multiproxy.FuseLogistic},
	}
	for vi, v := range variants {
		fail, prec, err := runMultiTrials(r.Stream(uint64(5000+vi)), base, v.cols, spec, v.fusion, trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow(v.name, v.fusion.String(), pct(fail), pct(prec))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("n=%d, budget=%d, per-proxy noise sd=0.3, trials per point=%d", n, budget, trials))
	return rep, nil
}

func runMultiTrials(r *randx.Rand, d *dataset.Dataset, cols [][]float64, spec core.Spec, fusion multiproxy.Fusion, trials, parallelism int) (failRate, meanPrecision float64, err error) {
	type outcome struct {
		fail bool
		prec float64
		err  error
	}
	results := make([]outcome, trials)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := multiproxy.Select(r.Stream(uint64(t)+1), cols, oracle.NewSimulated(d), spec, core.DefaultSUPG(), fusion)
			if err != nil {
				results[t] = outcome{err: err}
				return
			}
			e := metrics.Evaluate(d, res.Indices)
			results[t] = outcome{fail: e.Recall < spec.Gamma, prec: e.Precision}
		}(t)
	}
	wg.Wait()
	fails, precSum := 0, 0.0
	for _, oc := range results {
		if oc.err != nil {
			return 0, 0, oc.err
		}
		if oc.fail {
			fails++
		}
		precSum += oc.prec
	}
	return float64(fails) / float64(trials), precSum / float64(trials), nil
}

func runAblationFinite(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	d := dataset.Beta(r.Stream(1), o.scaled(200_000), 0.05, 1)
	trials := sweepTrials(o)

	rep := &Report{
		ID:    "ablation-finite",
		Title: "Finite-sample certificates vs CLT bounds",
		Table: metrics.Table{Header: []string{"setting", "budget", "estimator", "fail rate", "quality"}},
	}
	for _, budget := range []int{o.scaledBudget(500), o.scaledBudget(5000)} {
		for _, setting := range []struct {
			kind  core.TargetKind
			gamma float64
			other metrics.TargetMetric
		}{
			{core.RecallTarget, 0.9, metrics.MetricPrecision},
			{core.PrecisionTarget, 0.9, metrics.MetricRecall},
		} {
			metric := metrics.MetricRecall
			if setting.kind == core.PrecisionTarget {
				metric = metrics.MetricPrecision
			}
			spec := core.Spec{Kind: setting.kind, Gamma: setting.gamma, Delta: 0.05, Budget: budget}
			for vi, v := range []struct {
				name string
				cfg  core.Config
			}{
				{"CLT (paper)", core.DefaultUCI()},
				{"finite-sample", core.DefaultFinite()},
			} {
				ts, err := runTrials(r.Stream(uint64(6000+budget+10*int(setting.kind)+vi)), d, spec, v.cfg, trials, o.Parallelism)
				if err != nil {
					return nil, err
				}
				rep.Table.AddRow(setting.kind.String()+" target", fmt.Sprintf("%d", budget), v.name,
					pct(ts.FailureRate(metric, setting.gamma)),
					pct(ts.MeanMetric(setting.other)))
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("Beta(0.05,1) (~4.8%% positives), trials per point=%d", trials))
	return rep, nil
}
