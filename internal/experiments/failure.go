package experiments

import (
	"fmt"

	"supg/internal/core"
	"supg/internal/metrics"
	"supg/internal/randx"
)

// This file implements Figures 1, 5, and 6: the distribution of achieved
// precision/recall over repeated trials for the no-guarantee baseline
// (U-NoCI, as used by NoScope and probabilistic predicates) versus SUPG.

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Achieved precision of naive sampling vs SUPG on ImageNet (box plot, target 90%)",
		Description: "100-run box plots for a precision-target query at 90%. The naive\n" +
			"algorithm returns precisions far below target for most runs; SUPG\n" +
			"respects the target with high probability.",
		Run: runFig1,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Precision of U-NoCI vs SUPG across all datasets (precision target 90%)",
		Description: "Box plots of achieved precision over repeated trials with a 90%\n" +
			"precision target and delta=0.05 on all six datasets.",
		Run: func(o Options) (*Report, error) {
			return runFailureDistribution(o, "fig5", core.PrecisionTarget, metrics.MetricPrecision)
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Recall of U-NoCI vs SUPG across all datasets (recall target 90%)",
		Description: "Box plots of achieved recall over repeated trials with a 90% recall\n" +
			"target and delta=0.05 on all six datasets.",
		Run: func(o Options) (*Report, error) {
			return runFailureDistribution(o, "fig6", core.RecallTarget, metrics.MetricRecall)
		},
	})
}

func runFig1(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	d := imageNetAt(o, r.Stream(1))
	budget := o.scaledBudget(1000)
	spec := core.Spec{Kind: core.PrecisionTarget, Gamma: 0.9, Delta: 0.05, Budget: budget}

	rep := &Report{
		ID:    "fig1",
		Title: "Figure 1: achieved precision, naive vs SUPG (ImageNet, target 90%)",
		Table: metrics.Table{Header: []string{"method", "fail rate", "box (achieved precision)"}},
	}
	for _, m := range []struct {
		name string
		cfg  core.Config
	}{
		{"Naive (U-NoCI)", core.DefaultUNoCI()},
		{"SUPG", core.DefaultSUPG()},
	} {
		ts, err := runTrials(r.Stream(99), d, spec, m.cfg, o.Trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow(m.name,
			pct(ts.FailureRate(metrics.MetricPrecision, spec.Gamma)),
			metrics.FormatBox(ts.Box(metrics.MetricPrecision)))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("dataset n=%d, positives=%d, budget=%d, trials=%d", d.Len(), d.PositiveCount(), budget, o.Trials))
	return rep, nil
}

func runFailureDistribution(o Options, id string, kind core.TargetKind, metric metrics.TargetMetric) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	rep := &Report{
		ID:    id,
		Title: fmt.Sprintf("%s-target 90%% across datasets: U-NoCI vs SUPG", metric),
		Table: metrics.Table{Header: []string{
			"dataset", "method", "fail rate", "box (achieved " + metric.String() + ")",
		}},
	}
	for di, ed := range evalDatasets(o, r.Stream(7)) {
		spec := core.Spec{Kind: kind, Gamma: 0.9, Delta: 0.05, Budget: ed.budget}
		for mi, m := range []struct {
			name string
			cfg  core.Config
		}{
			{"U-NoCI", core.DefaultUNoCI()},
			{"SUPG", core.DefaultSUPG()},
		} {
			ts, err := runTrials(r.Stream(uint64(100+10*di+mi)), ed.d, spec, m.cfg, o.Trials, o.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.name, ed.d.Name(), err)
			}
			rep.Table.AddRow(ed.d.Name(), m.name,
				pct(ts.FailureRate(metric, spec.Gamma)),
				metrics.FormatBox(ts.Box(metric)))
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("delta=0.05, trials=%d, scale=%g", o.Trials, o.Scale))
	return rep, nil
}
