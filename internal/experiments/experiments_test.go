package experiments

import (
	"strconv"
	"strings"
	"testing"

	"supg/internal/randx"
)

// tinyOpts shrinks datasets and trials so every experiment's full code
// path runs in CI while still producing meaningful shapes.
func tinyOpts() Options {
	return Options{Seed: 7, Trials: 8, Scale: 0.01, Parallelism: 4}
}

func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig15",
		"table2", "table3", "table4", "table5",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q from DESIGN.md not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Error("Find should reject unknown ids")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 100 || o.Scale != 1 || o.Parallelism <= 0 || o.Seed == 0 {
		t.Errorf("defaults %+v", o)
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.01}.withDefaults()
	if got := o.scaled(1_000_000); got != 10_000 {
		t.Errorf("scaled(1M) = %d", got)
	}
	if got := o.scaled(50_000); got != 2000 {
		t.Errorf("scaled(50k) should hit the 2000 floor, got %d", got)
	}
	if got := o.scaledBudget(10_000); got != 500 {
		t.Errorf("scaledBudget floor: %d", got)
	}
	full := Options{Scale: 1}.withDefaults()
	if full.scaled(50_000) != 50_000 || full.scaledBudget(1000) != 1000 {
		t.Error("scale 1 should be identity")
	}
}

func TestEvalDatasetsSuite(t *testing.T) {
	o := tinyOpts().withDefaults()
	sets := evalDatasets(o, newTestRand())
	if len(sets) != 6 {
		t.Fatalf("suite has %d datasets, want 6 (Table 2)", len(sets))
	}
	names := []string{"ImageNet", "night-street", "OntoNotes", "TACRED", "Beta(0.01, 1)", "Beta(0.01, 2)"}
	for i, ed := range sets {
		if ed.d.Name() != names[i] {
			t.Errorf("dataset %d is %q, want %q", i, ed.d.Name(), names[i])
		}
		if ed.budget <= 0 {
			t.Errorf("%s has budget %d", ed.d.Name(), ed.budget)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	rep, err := runFig1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 2 {
		t.Fatalf("fig1 rows %d", len(rep.Table.Rows))
	}
	naiveFail := parsePct(t, rep.Table.Rows[0][1])
	supgFail := parsePct(t, rep.Table.Rows[1][1])
	if supgFail > naiveFail+1e-9 && supgFail > 0.25 {
		t.Errorf("SUPG fail rate %v should not exceed naive %v", supgFail, naiveFail)
	}
}

func TestFig5Fig6Shape(t *testing.T) {
	for _, id := range []string{"fig5", "fig6"} {
		exp, _ := Find(id)
		rep, err := exp.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Table.Rows) != 12 { // 6 datasets x 2 methods
			t.Fatalf("%s rows %d, want 12", id, len(rep.Table.Rows))
		}
		// Aggregate failure rates: SUPG must not fail more than U-NoCI
		// overall (per-dataset noise is fine at tiny scale).
		var naive, supg float64
		for _, row := range rep.Table.Rows {
			f := parsePct(t, row[2])
			if row[1] == "U-NoCI" {
				naive += f
			} else {
				supg += f
			}
		}
		if supg > naive+0.5 {
			t.Errorf("%s: aggregate SUPG failures %v vs naive %v", id, supg, naive)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rep, err := runTable2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 6 {
		t.Fatalf("table2 rows %d", len(rep.Table.Rows))
	}
	for _, row := range rep.Table.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil || n < 2000 {
			t.Errorf("row %v has bad record count", row)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rep, err := runTable3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 3 {
		t.Fatalf("table3 rows %d, want 3 drift pairs", len(rep.Table.Rows))
	}
}

func TestTable4DriftShape(t *testing.T) {
	rep, err := runTable4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 6 { // 3 pairs x {PT, RT}
		t.Fatalf("table4 rows %d", len(rep.Table.Rows))
	}
	// SUPG's success rate should beat the naive fixed threshold's
	// achieved accuracy on the fog pair's recall row (fog attenuates
	// positive scores, so a frozen threshold must lose recall; the
	// precision row can be vacuously 1 at tiny scale via an empty
	// selection).
	for _, row := range rep.Table.Rows {
		if !strings.Contains(row[0], "fog") || row[1] != "recall" {
			continue
		}
		naive := parsePct(t, row[3])
		success := parsePct(t, row[5])
		if success < 0.5 {
			t.Errorf("SUPG success rate %v under fog too low: %v", success, row)
		}
		if naive >= 0.95 {
			t.Errorf("naive recall %v did not degrade under fog", naive)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rep, err := runTable5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 4 {
		t.Fatalf("table5 rows %d", len(rep.Table.Rows))
	}
	for _, row := range rep.Table.Rows {
		if !strings.HasPrefix(row[1], "$") || !strings.HasPrefix(row[5], "$") {
			t.Errorf("row %v missing dollar formatting", row)
		}
	}
}

func TestFig12ExponentShape(t *testing.T) {
	o := tinyOpts()
	o.Scale = 0.02
	rep, err := runFig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 11 {
		t.Fatalf("fig12 rows %d", len(rep.Table.Rows))
	}
}

func TestFig13CIShape(t *testing.T) {
	rep, err := runFig13(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 7 { // 4 uniform + 3 SUPG variants
		t.Fatalf("fig13 rows %d", len(rep.Table.Rows))
	}
	// Hoeffding should never beat the normal approximation on quality.
	quality := map[string]float64{}
	for _, row := range rep.Table.Rows {
		if row[0] == "SUPG" {
			quality[row[1]] = parsePct(t, row[2])
		}
	}
	if quality["hoeffding"] > quality["normal"]+0.1 {
		t.Errorf("Hoeffding quality %v should not beat normal %v", quality["hoeffding"], quality["normal"])
	}
}

func TestFig15JointShape(t *testing.T) {
	rep, err := runFig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 4*2*6 {
		t.Fatalf("fig15 rows %d", len(rep.Table.Rows))
	}
}

func TestAblationDefensive(t *testing.T) {
	rep, err := runAblationDefensive(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 6 {
		t.Fatalf("ablation rows %d", len(rep.Table.Rows))
	}
	// With defensive mixing, the adversarial proxy must keep the
	// guarantee.
	for _, row := range rep.Table.Rows {
		if row[0] == "adversarial" && row[1] == "0.3" {
			if f := parsePct(t, row[2]); f > 0.3 {
				t.Errorf("adversarial mixing=0.3 fail rate %v", f)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	rep, err := runTable2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "table2") || !strings.Contains(s, "dataset") {
		t.Errorf("report rendering:\n%s", s)
	}
}

// parsePct parses the "12.3%" strings the report tables use.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v / 100
}

func newTestRand() *randx.Rand { return randx.New(7) }
