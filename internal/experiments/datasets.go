package experiments

import (
	"supg/internal/dataset"
	"supg/internal/randx"
)

// evalDataset couples one of the paper's six evaluation datasets with
// the oracle budget the paper uses for it (Section 6.3: 1,000 for
// ImageNet, 10,000 for night-street and the synthetic datasets; the
// text datasets use the human-label budget of 1,000).
type evalDataset struct {
	d      *dataset.Dataset
	budget int
}

// paper-scale record counts (see DESIGN.md for derivations).
const (
	imageNetN    = 50_000
	nightStreetN = 972_000
	ontoNotesN   = 11_165
	tacredN      = 22_631
	betaN        = 1_000_000
)

// evalDatasets realizes the Table 2 suite at the requested scale. The
// mixture profiles mirror dataset.ImageNetSim etc. but with scaled
// record counts.
func evalDatasets(o Options, r *randx.Rand) []evalDataset {
	return []evalDataset{
		{imageNetAt(o, r.Stream(1)), o.scaledBudget(1000)},
		{nightStreetAt(o, r.Stream(2)), o.scaledBudget(10000)},
		{ontoNotesAt(o, r.Stream(3)), o.scaledBudget(1000)},
		{tacredAt(o, r.Stream(4)), o.scaledBudget(1000)},
		{betaAt(o, r.Stream(5), 0.01, 1), o.scaledBudget(10000)},
		{betaAt(o, r.Stream(6), 0.01, 2), o.scaledBudget(10000)},
	}
}

func imageNetAt(o Options, r *randx.Rand) *dataset.Dataset {
	return dataset.MixtureProfile{
		Name: "ImageNet", N: o.scaled(imageNetN), TPR: 0.001,
		PosAlpha: 6, PosBeta: 1.2,
		NegAlpha: 0.03, NegBeta: 6,
		HardPos: 0.04, HardNeg: 0.0006,
	}.Generate(r)
}

func nightStreetAt(o Options, r *randx.Rand) *dataset.Dataset {
	return dataset.NightStreetSimN(r, o.scaled(nightStreetN))
}

func ontoNotesAt(o Options, r *randx.Rand) *dataset.Dataset {
	return dataset.MixtureProfile{
		Name: "OntoNotes", N: o.scaled(ontoNotesN), TPR: 0.025,
		PosAlpha: 1.6, PosBeta: 1.4,
		NegAlpha: 0.25, NegBeta: 3,
		HardPos: 0.15, HardNeg: 0.03,
	}.Generate(r)
}

func tacredAt(o Options, r *randx.Rand) *dataset.Dataset {
	return dataset.MixtureProfile{
		Name: "TACRED", N: o.scaled(tacredN), TPR: 0.024,
		PosAlpha: 4, PosBeta: 1.2,
		NegAlpha: 0.08, NegBeta: 5,
		HardPos: 0.06, HardNeg: 0.004,
	}.Generate(r)
}

func betaAt(o Options, r *randx.Rand, alpha, beta float64) *dataset.Dataset {
	return dataset.Beta(r, o.scaled(betaN), alpha, beta)
}
