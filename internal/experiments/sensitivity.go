package experiments

import (
	"fmt"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/randx"
)

// This file implements the Section 6.4 sensitivity analyses:
// Figure 9  — proxy noise,
// Figure 10 — class imbalance,
// Figure 11 — parameter settings (m and defensive mixing),
// Figure 12 — importance weight exponent,
// Figure 13 — confidence-interval method.

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Proxy noise vs result quality (Beta(0.01,2))",
		Description: "Gaussian noise at {25, 50, 75, 100}% of the proxy-score standard\n" +
			"deviation; precision target 95% and recall target 90%. Reproduces Figure 9.",
		Run: runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Class imbalance vs result quality (Beta(0.01, beta) sweep)",
		Description: "beta in {0.125, 0.25, 0.5, 1.0, 2.0} varies the true positive rate;\n" +
			"SUPG's advantage grows with imbalance. Reproduces Figure 10.",
		Run: runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Parameter sensitivity: candidate stride m and defensive mixing ratio",
		Description: "m in {100..500} for the precision target; mixing in {0.1..0.5} for the\n" +
			"recall target. Flat curves mean the parameters are easy to set.\n" +
			"Reproduces Figure 11.",
		Run: runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Importance-weight exponent vs precision (recall target, Beta(0.01,2))",
		Description: "Exponent 0 is uniform sampling, 1 is proportional; the paper proves\n" +
			"0.5 optimal for calibrated proxies. Reproduces Figure 12.",
		Run: runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Confidence-interval method comparison (recall target, Beta(0.01,1))",
		Description: "Normal approximation vs Clopper-Pearson vs bootstrap vs Hoeffding for\n" +
			"U-CI-R and IS-CI-R. Hoeffding ignores variance and is vacuous.\n" +
			"Reproduces Figure 13.",
		Run: runFig13,
	})
}

func runFig9(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	base := betaAt(o, r.Stream(5), 0.01, 2)
	sd := base.ScoreStdDev()
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)

	rep := &Report{
		ID:    "fig9",
		Title: "Figure 9: noise level vs recall/precision",
		Table: metrics.Table{Header: []string{"noise (% of sd)", "setting", "method", "quality"}},
	}
	for ni, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		noisy := base
		if frac > 0 {
			noisy = dataset.AddProxyNoise(r.Stream(uint64(3000+ni)), base, frac*sd)
		}
		for _, setting := range []struct {
			kind   core.TargetKind
			gamma  float64
			metric metrics.TargetMetric
			other  metrics.TargetMetric
		}{
			{core.PrecisionTarget, 0.95, metrics.MetricPrecision, metrics.MetricRecall},
			{core.RecallTarget, 0.90, metrics.MetricRecall, metrics.MetricPrecision},
		} {
			spec := core.Spec{Kind: setting.kind, Gamma: setting.gamma, Delta: 0.05, Budget: budget}
			for mi, m := range []struct {
				name string
				cfg  core.Config
			}{
				{"U-CI", core.DefaultUCI()},
				{"SUPG", core.DefaultSUPG()},
			} {
				ts, err := runTrials(r.Stream(uint64(3100+100*ni+10*int(setting.kind)+mi)), noisy, spec, m.cfg, trials, o.Parallelism)
				if err != nil {
					return nil, err
				}
				rep.Table.AddRow(fmt.Sprintf("%.0f%%", 100*frac),
					setting.kind.String()+" target", m.name,
					pct(ts.MeanMetric(setting.other)))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("score sd=%.4f; quality = precision for RT, recall for PT; trials per point=%d", sd, trials))
	return rep, nil
}

func runFig10(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)
	n := o.scaled(betaN)

	rep := &Report{
		ID:    "fig10",
		Title: "Figure 10: true positive rate vs recall/precision",
		Table: metrics.Table{Header: []string{"beta", "TPR", "setting", "U-CI quality", "SUPG quality", "SUPG/U-CI"}},
	}
	for bi, beta := range []float64{0.125, 0.25, 0.5, 1.0, 2.0} {
		d := dataset.Beta(r.Stream(uint64(3200+bi)), n, 0.01, beta)
		for _, setting := range []struct {
			kind  core.TargetKind
			gamma float64
			other metrics.TargetMetric
		}{
			{core.PrecisionTarget, 0.95, metrics.MetricRecall},
			{core.RecallTarget, 0.90, metrics.MetricPrecision},
		} {
			spec := core.Spec{Kind: setting.kind, Gamma: setting.gamma, Delta: 0.05, Budget: budget}
			quality := make([]float64, 2)
			for mi, cfg := range []core.Config{core.DefaultUCI(), core.DefaultSUPG()} {
				ts, err := runTrials(r.Stream(uint64(3300+100*bi+10*int(setting.kind)+mi)), d, spec, cfg, trials, o.Parallelism)
				if err != nil {
					return nil, err
				}
				quality[mi] = ts.MeanMetric(setting.other)
			}
			ratio := "inf"
			if quality[0] > 0 {
				ratio = fmt.Sprintf("%.1fx", quality[1]/quality[0])
			}
			rep.Table.AddRow(fmt.Sprintf("%g", beta), pct(d.PositiveRate()),
				setting.kind.String()+" target", pct(quality[0]), pct(quality[1]), ratio)
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d, trials per point=%d", n, trials))
	return rep, nil
}

func runFig11(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	d := betaAt(o, r.Stream(5), 0.01, 2)
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)

	rep := &Report{
		ID:    "fig11",
		Title: "Figure 11: parameter settings vs performance (Beta(0.01,2))",
		Table: metrics.Table{Header: []string{"parameter", "value", "setting", "SUPG quality"}},
	}
	// (a) candidate stride m, precision target.
	for mi, m := range []int{100, 200, 300, 400, 500} {
		cfg := core.DefaultSUPG()
		cfg.MinStep = m
		spec := core.Spec{Kind: core.PrecisionTarget, Gamma: 0.95, Delta: 0.05, Budget: budget}
		ts, err := runTrials(r.Stream(uint64(3400+mi)), d, spec, cfg, trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow("m", fmt.Sprintf("%d", m), "precision target", pct(ts.MeanMetric(metrics.MetricRecall)))
	}
	// (b) defensive mixing ratio, recall target.
	for xi, mix := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		cfg := core.DefaultSUPG()
		cfg.Mix = mix
		spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.90, Delta: 0.05, Budget: budget}
		ts, err := runTrials(r.Stream(uint64(3500+xi)), d, spec, cfg, trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow("mixing", fmt.Sprintf("%.1f", mix), "recall target", pct(ts.MeanMetric(metrics.MetricPrecision)))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("trials per point=%d", trials))
	return rep, nil
}

func runFig12(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	d := betaAt(o, r.Stream(5), 0.01, 2)
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)

	rep := &Report{
		ID:    "fig12",
		Title: "Figure 12: importance-weight exponent vs precision (recall target 90%)",
		Table: metrics.Table{Header: []string{"exponent", "achieved precision", "achieved recall", "fail rate"}},
	}
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.90, Delta: 0.05, Budget: budget}
	for ei, exp := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		cfg := core.DefaultSUPG()
		cfg.WeightExponent = exp
		ts, err := runTrials(r.Stream(uint64(3600+ei)), d, spec, cfg, trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow(fmt.Sprintf("%.1f", exp),
			pct(ts.MeanMetric(metrics.MetricPrecision)),
			pct(ts.MeanMetric(metrics.MetricRecall)),
			pct(ts.FailureRate(metrics.MetricRecall, spec.Gamma)))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("trials per point=%d", trials))
	return rep, nil
}

func runFig13(o Options) (*Report, error) {
	o = o.withDefaults()
	r := randx.New(o.Seed)
	d := betaAt(o, r.Stream(5), 0.01, 1)
	budget := o.scaledBudget(10_000)
	trials := sweepTrials(o)

	rep := &Report{
		ID:    "fig13",
		Title: "Figure 13: CI method vs precision (recall target 90%, Beta(0.01,1))",
		Table: metrics.Table{Header: []string{"sampling", "CI method", "achieved precision", "fail rate"}},
	}
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.90, Delta: 0.05, Budget: budget}

	type variant struct {
		sampling string
		cfg      core.Config
	}
	var variants []variant
	for _, bk := range []core.BoundKind{core.BoundNormal, core.BoundClopperPearson, core.BoundBootstrap, core.BoundHoeffding} {
		cfg := core.DefaultUCI()
		cfg.Bound = bk
		variants = append(variants, variant{"uniform", cfg})
	}
	for _, bk := range []core.BoundKind{core.BoundNormal, core.BoundBootstrap, core.BoundHoeffding} {
		// Clopper-Pearson applies only to uniform binary samples, per the paper.
		cfg := core.DefaultSUPG()
		cfg.Bound = bk
		variants = append(variants, variant{"SUPG", cfg})
	}
	for vi, v := range variants {
		ts, err := runTrials(r.Stream(uint64(3700+vi)), d, spec, v.cfg, trials, o.Parallelism)
		if err != nil {
			return nil, err
		}
		rep.Table.AddRow(v.sampling, v.cfg.Bound.String(),
			pct(ts.MeanMetric(metrics.MetricPrecision)),
			pct(ts.FailureRate(metrics.MetricRecall, spec.Gamma)))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("trials per point=%d", trials))
	return rep, nil
}
