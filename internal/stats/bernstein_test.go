package stats

import (
	"math"
	"testing"

	"supg/internal/randx"
)

func TestBernsteinSymmetry(t *testing.T) {
	mu, v, r := 0.3, 0.04, 1.0
	ub := BernsteinUB(mu, v, r, 200, 0.05)
	lb := BernsteinLB(mu, v, r, 200, 0.05)
	if !almostEqual(ub-mu, mu-lb, 1e-12) {
		t.Error("Bernstein bounds not symmetric")
	}
	if ub <= mu {
		t.Error("UB should exceed the mean")
	}
}

func TestBernsteinVarianceAdaptive(t *testing.T) {
	// Low variance should give a much tighter bound than Hoeffding.
	mu, n, delta := 0.02, 1000, 0.05
	v := mu * (1 - mu) // Bernoulli variance
	bern := BernsteinUB(mu, v, 1, n, delta)
	hoef := HoeffdingUB(mu, 1, n, delta)
	if bern >= hoef {
		t.Errorf("Bernstein %v should beat Hoeffding %v for rare events", bern, hoef)
	}
}

func TestBernsteinWiderThanNormal(t *testing.T) {
	// Finite-sample validity costs something relative to the CLT bound.
	mu, sd, n, delta := 0.3, 0.458, 500, 0.05
	bern := BernsteinUB(mu, sd*sd, 1, n, delta)
	norm := UB(mu, sd, n, delta)
	if bern <= norm {
		t.Errorf("Bernstein %v should be at least as wide as normal %v", bern, norm)
	}
}

func TestBernsteinDegenerate(t *testing.T) {
	if !math.IsInf(BernsteinUB(0.5, 0.1, 1, 1, 0.05), 1) {
		t.Error("n < 2 should give +Inf")
	}
	if !math.IsInf(BernsteinUB(0.5, 0.1, 1, 100, 0), 1) {
		t.Error("delta = 0 should give +Inf")
	}
	if BernsteinUB(0.5, 0.1, 1, 100, 1) != 0.5 {
		t.Error("delta = 1 should give zero radius")
	}
}

func TestBernsteinCoverage(t *testing.T) {
	// Finite-sample bound: the miss rate must stay below delta even at
	// modest n.
	r := randx.New(13)
	const (
		p      = 0.2
		n      = 80
		delta  = 0.1
		trials = 1500
	)
	misses := 0
	for trial := 0; trial < trials; trial++ {
		rt := r.Stream(uint64(trial))
		var m Moments
		for i := 0; i < n; i++ {
			if rt.Bernoulli(p) {
				m.Add(1)
			} else {
				m.Add(0)
			}
		}
		if BernsteinUB(m.Mean(), m.Variance(), 1, n, delta) < p {
			misses++
		}
	}
	if rate := float64(misses) / float64(trials); rate > delta {
		t.Fatalf("Bernstein miss rate %v exceeds delta %v", rate, delta)
	}
}

func TestBinomialCDFKnownValues(t *testing.T) {
	// Binomial(10, 0.5): P(X <= 5) = 0.623046875.
	if got := BinomialCDF(5, 10, 0.5); !almostEqual(got, 0.623046875, 1e-9) {
		t.Errorf("BinomialCDF(5,10,0.5) = %v", got)
	}
	// P(X <= 0) = 0.5^10.
	if got := BinomialCDF(0, 10, 0.5); !almostEqual(got, math.Pow(0.5, 10), 1e-12) {
		t.Errorf("BinomialCDF(0,10,0.5) = %v", got)
	}
	// Binomial(20, 0.1): P(X <= 2) = 0.676927...
	if got := BinomialCDF(2, 20, 0.1); !almostEqual(got, 0.6769268, 1e-6) {
		t.Errorf("BinomialCDF(2,20,0.1) = %v", got)
	}
}

func TestBinomialCDFEdges(t *testing.T) {
	if BinomialCDF(-1, 10, 0.5) != 0 {
		t.Error("k<0")
	}
	if BinomialCDF(10, 10, 0.5) != 1 {
		t.Error("k=n")
	}
	if BinomialCDF(3, 10, 0) != 1 {
		t.Error("p=0")
	}
	if BinomialCDF(3, 10, 1) != 0 {
		t.Error("p=1")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 30; k++ {
		cur := BinomialCDF(k, 30, 0.3)
		if cur < prev-1e-12 {
			t.Fatalf("CDF decreased at k=%d", k)
		}
		prev = cur
	}
}

func TestBinomialTailQuantile(t *testing.T) {
	// k=30 positives, p=0.1 (gamma=0.9), delta=0.05: the largest j with
	// P(Bin(30,0.1) <= j-1) <= 0.05. P(X=0)=0.9^30=0.0424 <= 0.05;
	// P(X<=1)=0.1837 > 0.05 -> j=1.
	if got := BinomialTailQuantile(30, 0.1, 0.05); got != 1 {
		t.Errorf("BinomialTailQuantile(30,0.1,0.05) = %d, want 1", got)
	}
	// Too few positives: P(X=0) = 0.9^10 = 0.349 > 0.05 -> j=0.
	if got := BinomialTailQuantile(10, 0.1, 0.05); got != 0 {
		t.Errorf("BinomialTailQuantile(10,0.1,0.05) = %d, want 0", got)
	}
	// Plenty of positives: j grows.
	big := BinomialTailQuantile(1000, 0.1, 0.05)
	if big < 70 || big > 100 {
		t.Errorf("BinomialTailQuantile(1000,0.1,0.05) = %d, want ~85", big)
	}
	// Verify the defining property exactly.
	if BinomialCDF(big-1, 1000, 0.1) > 0.05 {
		t.Error("returned j violates the tail constraint")
	}
	if big < 1000 && BinomialCDF(big, 1000, 0.1) <= 0.05 {
		t.Error("returned j is not maximal")
	}
}
