package stats

import (
	"math"
	"testing"
	"testing/quick"

	"supg/internal/randx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMomentsMatchNaive(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	m := Summarize(xs)
	// Naive mean and unbiased variance.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - mean) * (x - mean)
	}
	wantVar := varsum / float64(len(xs)-1)
	if !almostEqual(m.Mean(), mean, 1e-12) {
		t.Errorf("mean %v want %v", m.Mean(), mean)
	}
	if !almostEqual(m.Variance(), wantVar, 1e-12) {
		t.Errorf("variance %v want %v", m.Variance(), wantVar)
	}
	if m.Count() != len(xs) {
		t.Errorf("count %d", m.Count())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.Count() != 0 {
		t.Error("empty moments should be zero")
	}
	m.Add(5)
	if m.Mean() != 5 || m.Variance() != 0 {
		t.Error("single observation: mean 5, variance 0")
	}
}

// Property: Welford agrees with two-pass computation on random data.
func TestMomentsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		m := Summarize(xs)
		mean := Mean(xs)
		if !almostEqual(m.Mean(), mean, 1e-6*(1+math.Abs(mean))) {
			return false
		}
		return m.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUBLBSymmetry(t *testing.T) {
	mu, sigma := 0.4, 0.2
	ub := UB(mu, sigma, 100, 0.05)
	lb := LB(mu, sigma, 100, 0.05)
	if !almostEqual(ub-mu, mu-lb, 1e-12) {
		t.Error("UB/LB not symmetric around the mean")
	}
	if ub <= mu || lb >= mu {
		t.Error("bounds should bracket the mean strictly")
	}
}

func TestUBLBFormula(t *testing.T) {
	// Eq. 7: mu + sigma/sqrt(s) * sqrt(2 ln(1/delta)).
	want := 0.5 + 0.1/math.Sqrt(400)*math.Sqrt(2*math.Log(1/0.05))
	if got := UB(0.5, 0.1, 400, 0.05); !almostEqual(got, want, 1e-12) {
		t.Errorf("UB = %v, want %v", got, want)
	}
}

func TestUBLBShrinkWithSamples(t *testing.T) {
	if UB(0.5, 0.1, 100, 0.05) <= UB(0.5, 0.1, 10000, 0.05) {
		t.Error("UB should shrink with more samples")
	}
	if UB(0.5, 0.1, 100, 0.01) <= UB(0.5, 0.1, 100, 0.1) {
		t.Error("UB should grow as delta shrinks")
	}
}

func TestUBLBDegenerate(t *testing.T) {
	if !math.IsInf(UB(0.5, 0.1, 0, 0.05), 1) {
		t.Error("zero samples should give +Inf UB")
	}
	if !math.IsInf(LB(0.5, 0.1, 100, 0), -1) {
		t.Error("delta=0 should give -Inf LB")
	}
	if UB(0.5, 0.1, 100, 1) != 0.5 {
		t.Error("delta=1 should give zero radius")
	}
	if UB(0.5, 0, 100, 0.05) != 0.5 {
		t.Error("zero variance should give zero radius")
	}
}

// Property: the one-sided normal bound has at least its nominal
// coverage on Bernoulli data (the paper's Lemma 1 usage).
func TestNormalBoundCoverage(t *testing.T) {
	r := randx.New(42)
	const (
		p      = 0.3
		n      = 400
		delta  = 0.1
		trials = 2000
	)
	misses := 0
	for trial := 0; trial < trials; trial++ {
		rt := r.Stream(uint64(trial))
		var m Moments
		for i := 0; i < n; i++ {
			if rt.Bernoulli(p) {
				m.Add(1)
			} else {
				m.Add(0)
			}
		}
		// One-sided: the true mean should be below the UB of the
		// sample mean with probability >= 1-delta.
		if UB(m.Mean(), m.StdDev(), n, delta) < p {
			misses++
		}
	}
	rate := float64(misses) / float64(trials)
	if rate > delta+0.03 {
		t.Fatalf("UB coverage miss rate %v exceeds delta %v", rate, delta)
	}
}

func TestNormalInterval(t *testing.T) {
	iv := NormalInterval(0.5, 0.1, 100, 0.1)
	if iv.Lo >= 0.5 || iv.Hi <= 0.5 {
		t.Error("interval should contain the mean")
	}
	c := iv.Clamp(0.49, 0.51)
	if c.Lo != 0.49 || c.Hi != 0.51 {
		t.Errorf("clamp failed: %+v", c)
	}
}

func TestHoeffdingWiderThanNormalOnBinary(t *testing.T) {
	// With low variance, the variance-aware normal bound is tighter.
	mu, sigma := 0.02, 0.14 // Bernoulli(0.02)
	n := 1000
	delta := 0.05
	hoef := HoeffdingUB(mu, 1, n, delta)
	norm := UB(mu, sigma, n, delta)
	if hoef <= norm {
		t.Errorf("expected Hoeffding (%v) to be looser than normal (%v) for rare events", hoef, norm)
	}
}

func TestHoeffdingCoverage(t *testing.T) {
	r := randx.New(7)
	const (
		p      = 0.5
		n      = 200
		delta  = 0.1
		trials = 1000
	)
	misses := 0
	for trial := 0; trial < trials; trial++ {
		rt := r.Stream(uint64(trial))
		hits := 0
		for i := 0; i < n; i++ {
			if rt.Bernoulli(p) {
				hits++
			}
		}
		mu := float64(hits) / float64(n)
		if HoeffdingUB(mu, 1, n, delta) < p {
			misses++
		}
	}
	rate := float64(misses) / float64(trials)
	if rate > delta {
		t.Fatalf("Hoeffding miss rate %v exceeds delta %v (it should be conservative)", rate, delta)
	}
}

func TestHoeffdingDegenerate(t *testing.T) {
	if !math.IsInf(HoeffdingUB(0.5, 1, 0, 0.05), 1) {
		t.Error("zero samples should give +Inf")
	}
	if !math.IsInf(HoeffdingLB(0.5, 1, 100, 0), -1) {
		t.Error("delta=0 should give -Inf")
	}
}

func TestClopperPearsonKnownValues(t *testing.T) {
	// Reference values from the standard beta characterization
	// (two-sided 95% interval at k=5, n=20 is [0.0866, 0.4910]).
	lo := ClopperPearsonLB(5, 20, 0.025)
	hi := ClopperPearsonUB(5, 20, 0.025)
	if !almostEqual(lo, 0.0866, 5e-4) {
		t.Errorf("CP lower %v, want ~0.0866", lo)
	}
	if !almostEqual(hi, 0.4910, 5e-4) {
		t.Errorf("CP upper %v, want ~0.4910", hi)
	}
}

func TestClopperPearsonEdges(t *testing.T) {
	if ClopperPearsonLB(0, 50, 0.05) != 0 {
		t.Error("k=0 lower bound should be 0")
	}
	if ClopperPearsonUB(50, 50, 0.05) != 1 {
		t.Error("k=n upper bound should be 1")
	}
	// k=n lower bound: delta^(1/n).
	want := math.Pow(0.05, 1.0/20)
	if got := ClopperPearsonLB(20, 20, 0.05); !almostEqual(got, want, 1e-9) {
		t.Errorf("CP lower at k=n: %v, want %v", got, want)
	}
	// k=0 upper bound: 1 - delta^(1/n).
	wantU := 1 - math.Pow(0.05, 1.0/20)
	if got := ClopperPearsonUB(0, 20, 0.05); !almostEqual(got, wantU, 1e-9) {
		t.Errorf("CP upper at k=0: %v, want %v", got, wantU)
	}
}

func TestClopperPearsonCoverageProperty(t *testing.T) {
	r := randx.New(9)
	const (
		p      = 0.15
		n      = 60
		delta  = 0.1
		trials = 1500
	)
	misses := 0
	for trial := 0; trial < trials; trial++ {
		rt := r.Stream(uint64(trial))
		k := 0
		for i := 0; i < n; i++ {
			if rt.Bernoulli(p) {
				k++
			}
		}
		if ClopperPearsonLB(k, n, delta) > p {
			misses++
		}
	}
	rate := float64(misses) / float64(trials)
	if rate > delta {
		t.Fatalf("Clopper-Pearson miss rate %v exceeds delta %v (exact interval must be conservative)", rate, delta)
	}
}

func TestBootstrapBoundsOrder(t *testing.T) {
	r := randx.New(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	lb := BootstrapLB(r, xs, 0.05, 500)
	ub := BootstrapUB(r, xs, 0.05, 500)
	mean := Mean(xs)
	if !(lb <= mean && mean <= ub) {
		t.Errorf("bootstrap bounds [%v, %v] should bracket mean %v", lb, ub, mean)
	}
	if ub-lb > 0.1 {
		t.Errorf("bootstrap interval %v too wide for n=500 uniforms", ub-lb)
	}
}

func TestBootstrapEmpty(t *testing.T) {
	r := randx.New(1)
	if BootstrapLB(r, nil, 0.05, 100) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxStats(xs)
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 9 {
		t.Errorf("box stats wrong: %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles wrong: %+v", b)
	}
	if b.WhiskerLo > b.Q1 || b.WhiskerHi < b.Q3 {
		t.Errorf("whiskers inverted: %+v", b)
	}
}

func TestBoxStatsOutlier(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b := NewBoxStats(xs)
	if b.WhiskerHi == 100 {
		t.Error("outlier 100 should be outside the upper whisker")
	}
	if b.Max != 100 {
		t.Error("max should still be 100")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 0.9}
	if got := FractionBelow(xs, 0.9); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5 (strict)", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Error("empty should be 0")
	}
}

func TestSum(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum")
	}
	if StdDev([]float64{2, 2, 2}) != 0 {
		t.Error("StdDev of constants should be 0")
	}
}
