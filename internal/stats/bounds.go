package stats

import (
	"math"

	"supg/internal/dist"
)

// UB returns the paper's Eq. 7 upper confidence bound
//
//	UB(mu, sigma, s, delta) = mu + sigma/sqrt(s) * sqrt(2 ln(1/delta))
//
// on a sample mean of s i.i.d. draws: asymptotically the sample mean
// exceeds UB of the population mean with probability at most delta
// (Lemma 1, via the CLT with a sub-Gaussian-style radius).
func UB(mu, sigma float64, s int, delta float64) float64 {
	return mu + deviation(sigma, s, delta)
}

// LB returns the paper's Eq. 8 lower confidence bound, the mirror of UB.
func LB(mu, sigma float64, s int, delta float64) float64 {
	return mu - deviation(sigma, s, delta)
}

// deviation is the shared radius sigma/sqrt(s) * sqrt(2 ln(1/delta)).
func deviation(sigma float64, s int, delta float64) float64 {
	if s <= 0 {
		return math.Inf(1)
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	if delta >= 1 {
		return 0
	}
	return sigma / math.Sqrt(float64(s)) * math.Sqrt(2*math.Log(1/delta))
}

// Interval is a two-sided confidence interval on a mean.
type Interval struct {
	Lo, Hi float64
}

// Clamp restricts the interval to [lo, hi] (useful for proportions).
func (iv Interval) Clamp(lo, hi float64) Interval {
	return Interval{Lo: math.Max(iv.Lo, lo), Hi: math.Min(iv.Hi, hi)}
}

// NormalInterval returns the Lemma 1 two-sided interval at failure
// probability delta split evenly across the two tails.
func NormalInterval(mu, sigma float64, s int, delta float64) Interval {
	return Interval{
		Lo: LB(mu, sigma, s, delta/2),
		Hi: UB(mu, sigma, s, delta/2),
	}
}

// HoeffdingLB returns the distribution-free Hoeffding lower bound for a
// mean of s i.i.d. values confined to an interval of width rangeWidth:
// mu - rangeWidth * sqrt(ln(1/delta) / (2 s)). It uses no variance
// information, which is why Figure 13 shows it returning vacuous bounds.
func HoeffdingLB(mu float64, rangeWidth float64, s int, delta float64) float64 {
	if s <= 0 || delta <= 0 {
		return math.Inf(-1)
	}
	return mu - rangeWidth*math.Sqrt(math.Log(1/delta)/(2*float64(s)))
}

// HoeffdingUB is the mirror upper bound of HoeffdingLB.
func HoeffdingUB(mu float64, rangeWidth float64, s int, delta float64) float64 {
	if s <= 0 || delta <= 0 {
		return math.Inf(1)
	}
	return mu + rangeWidth*math.Sqrt(math.Log(1/delta)/(2*float64(s)))
}

// ClopperPearsonLB returns the exact one-sided lower confidence bound at
// level 1-delta for a binomial proportion with k successes out of n
// trials, via the beta-quantile characterization:
//
//	lower = BetaQuantile(delta; k, n-k+1)
//
// It applies only to uniform (unweighted) binary samples.
func ClopperPearsonLB(k, n int, delta float64) float64 {
	if n <= 0 {
		return 0
	}
	if k <= 0 {
		return 0
	}
	if k >= n {
		return dist.BetaQuantile(delta, float64(n), 1)
	}
	return dist.BetaQuantile(delta, float64(k), float64(n-k+1))
}

// ClopperPearsonUB returns the exact one-sided upper confidence bound at
// level 1-delta for a binomial proportion with k successes of n trials.
func ClopperPearsonUB(k, n int, delta float64) float64 {
	if n <= 0 {
		return 1
	}
	if k >= n {
		return 1
	}
	if k <= 0 {
		return dist.BetaQuantile(1-delta, 1, float64(n))
	}
	return dist.BetaQuantile(1-delta, float64(k+1), float64(n-k))
}
