package stats

import (
	"math"

	"supg/internal/dist"
)

// regIncBeta is the regularized incomplete beta function I_x(a, b).
func regIncBeta(x, a, b float64) float64 { return dist.RegIncBeta(x, a, b) }

// Empirical-Bernstein bounds (Maurer & Pontil, 2009). Unlike the
// paper's Lemma 1 normal approximation these hold at finite sample
// sizes with no asymptotics, while still adapting to the observed
// variance (unlike Hoeffding). They are the backing for the library's
// finite-sample extension of the SUPG estimators — the paper's
// Section 8 lists finite-sample bounds as future work.
//
// For n i.i.d. observations confined to an interval of width R with
// sample mean mu and sample variance v, with probability at least
// 1 - delta:
//
//	population mean <= mu + sqrt(2 v ln(2/delta) / n) + 7 R ln(2/delta) / (3 (n-1))

// BernsteinUB returns the one-sided empirical-Bernstein upper bound at
// failure probability delta.
func BernsteinUB(mu, sampleVar, rangeWidth float64, n int, delta float64) float64 {
	return mu + bernsteinRadius(sampleVar, rangeWidth, n, delta)
}

// BernsteinLB returns the mirror lower bound.
func BernsteinLB(mu, sampleVar, rangeWidth float64, n int, delta float64) float64 {
	return mu - bernsteinRadius(sampleVar, rangeWidth, n, delta)
}

func bernsteinRadius(sampleVar, rangeWidth float64, n int, delta float64) float64 {
	if n < 2 || delta <= 0 {
		return math.Inf(1)
	}
	if delta >= 1 {
		return 0
	}
	logTerm := math.Log(2 / delta)
	return math.Sqrt(2*sampleVar*logTerm/float64(n)) +
		7*rangeWidth*logTerm/(3*float64(n-1))
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p), computed
// exactly through the regularized incomplete beta identity
// P(X <= k) = I_{1-p}(n-k, k+1). It underpins the finite-sample
// recall-threshold selection.
func BinomialCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return regIncBeta(1-p, float64(n-k), float64(k+1))
}

// BinomialTailQuantile returns the largest j in [0, k] such that
// P(Binomial(k, p) <= j-1) <= delta, i.e. the most aggressive
// order-statistic index whose lower tail stays within the failure
// budget. It returns 0 when even j=1 overshoots (P(X = 0) > delta).
func BinomialTailQuantile(k int, p, delta float64) int {
	lo, hi := 0, k
	// Invariant: BinomialCDF(lo-1) <= delta; find the largest such lo.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if BinomialCDF(mid-1, k, p) <= delta {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
