// Package stats provides the estimators and confidence bounds the SUPG
// algorithms are built on: streaming moments (Welford), the paper's
// normal-approximation UB/LB helper bounds (Lemma 1, Eqs 7–8), and the
// alternative confidence-interval constructions compared in Figure 13
// (Hoeffding, Clopper–Pearson, bootstrap percentile).
package stats

import "math"

// Moments accumulates count, mean, and variance of a stream of values
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddAll incorporates every value in xs.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// Count returns the number of observations.
func (m *Moments) Count() int { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Summarize computes the moments of xs in one call.
func Summarize(xs []float64) Moments {
	var m Moments
	m.AddAll(xs)
	return m
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	m := Summarize(xs)
	return m.Variance()
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
