package stats

import (
	"sort"

	"supg/internal/randx"
)

// DefaultBootstrapResamples is the number of resamples used by the
// bootstrap confidence bounds when the caller does not override it.
const DefaultBootstrapResamples = 200

// BootstrapLB returns the percentile-bootstrap one-sided lower bound at
// level 1-delta for the mean of xs: the delta-quantile of the resampled
// means. resamples <= 0 selects DefaultBootstrapResamples.
func BootstrapLB(r *randx.Rand, xs []float64, delta float64, resamples int) float64 {
	means := bootstrapMeans(r, xs, resamples)
	if len(means) == 0 {
		return 0
	}
	return Quantile(means, delta)
}

// BootstrapUB returns the percentile-bootstrap one-sided upper bound at
// level 1-delta for the mean of xs.
func BootstrapUB(r *randx.Rand, xs []float64, delta float64, resamples int) float64 {
	means := bootstrapMeans(r, xs, resamples)
	if len(means) == 0 {
		return 0
	}
	return Quantile(means, 1-delta)
}

func bootstrapMeans(r *randx.Rand, xs []float64, resamples int) []float64 {
	if len(xs) == 0 {
		return nil
	}
	if resamples <= 0 {
		resamples = DefaultBootstrapResamples
	}
	n := len(xs)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[r.IntN(n)]
		}
		means[b] = sum / float64(n)
	}
	return means
}

// Quantile returns the q-th empirical quantile of xs (0 <= q <= 1) using
// linear interpolation between order statistics. It copies and sorts xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for already-sorted input, without copying.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// BoxStats summarizes a sample the way the paper's box plots do:
// quartiles plus min/max whiskers (1.5 IQR convention) and the fraction
// of values strictly below a reference line.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	N                        int
}

// NewBoxStats computes box-plot statistics for xs.
func NewBoxStats(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	b := BoxStats{
		Min:    s[0],
		Q1:     QuantileSorted(s, 0.25),
		Median: QuantileSorted(s, 0.5),
		Q3:     QuantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
	iqr := b.Q3 - b.Q1
	lo := b.Q1 - 1.5*iqr
	hi := b.Q3 + 1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, v := range s {
		if v >= lo && v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v <= hi && v > b.WhiskerHi {
			b.WhiskerHi = v
		}
	}
	return b
}

// FractionBelow returns the fraction of xs strictly less than threshold;
// this is the empirical failure rate when threshold is the target metric.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, v := range xs {
		if v < threshold {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}
