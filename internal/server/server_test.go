package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *dataset.Dataset) {
	t.Helper()
	s := New(7)
	d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
	s.RegisterDataset("beta", d)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, d
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestListDatasets(t *testing.T) {
	_, ts, d := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "beta" {
		t.Fatalf("infos %+v", infos)
	}
	if infos[0].Records != d.Len() || infos[0].OracleUDF != "beta_oracle" {
		t.Fatalf("info %+v", infos[0])
	}
}

func TestListDatasetsMethod(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func uploadCSV(t *testing.T, ts *httptest.Server, name, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/"+name, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestUploadCSVDataset(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := uploadCSV(t, ts, "tiny", "id,proxy_score,label\n0,0.9,1\n1,0.1,0\n")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Records != 2 || info.Positives != 1 {
		t.Fatalf("info %+v", info)
	}
}

func TestUploadBinaryDataset(t *testing.T) {
	_, ts, _ := newTestServer(t)
	d := dataset.Beta(randx.New(2), 500, 1, 1)
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/bin", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Records != 500 {
		t.Fatalf("info %+v", info)
	}
}

func TestUploadRejectsBadData(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := uploadCSV(t, ts, "bad", "not,a,dataset\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUploadRejectsBadName(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := uploadCSV(t, ts, "a/b", "id,proxy_score,label\n0,0.5,1\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (*http.Response, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

const serverSQL = `
	SELECT * FROM beta
	WHERE beta_oracle(x) = true
	ORACLE LIMIT 1000
	USING beta_proxy(x)
	RECALL TARGET 85%
	WITH PROBABILITY 95%`

func TestQueryEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, qr := postQuery(t, ts, QueryRequest{SQL: serverSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if qr.Returned == 0 {
		t.Fatal("no records returned")
	}
	if qr.OracleCalls > 1000 {
		t.Fatalf("oracle calls %d exceed the limit", qr.OracleCalls)
	}
	if qr.AchievedRecall < 0.5 {
		t.Fatalf("achieved recall %v implausible", qr.AchievedRecall)
	}
	if qr.Indices != nil {
		t.Fatal("indices returned without include_indices")
	}
}

func TestQueryIndicesTruncation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, qr := postQuery(t, ts, QueryRequest{SQL: serverSQL, IncludeIndices: true, MaxIndices: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(qr.Indices) != 5 || !qr.Truncated {
		t.Fatalf("indices %d truncated=%v", len(qr.Indices), qr.Truncated)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, _ := postQuery(t, ts, QueryRequest{SQL: "SELECT garbage"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status %d", resp.StatusCode)
	}
	resp, _ = postQuery(t, ts, QueryRequest{SQL: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql status %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET query status %d", resp2.StatusCode)
	}
}

func TestQueryOnUploadedDataset(t *testing.T) {
	_, ts, _ := newTestServer(t)
	d := dataset.Beta(randx.New(3), 10000, 0.05, 1)
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	resp := uploadCSV(t, ts, "fresh", buf.String())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	sql := strings.ReplaceAll(serverSQL, "beta", "fresh")
	qresp, qr := postQuery(t, ts, QueryRequest{SQL: sql})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qresp.StatusCode)
	}
	if qr.Returned == 0 {
		t.Fatal("no result from uploaded dataset")
	}
}
