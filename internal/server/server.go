// Package server exposes the SUPG engine over HTTP, turning the batch
// query system of the paper's Section 4.1 into a small network service:
// upload datasets (CSV or the binary interchange format), then submit
// SUPG statements — synchronously via /v1/query, or asynchronously via
// the /v1/jobs API, which queues the query onto a bounded worker pool,
// labels oracle draws through the concurrent batch dispatcher, and
// serves progress and results over submit/poll. All state is
// in-memory; the service is a front-end to engine.Engine.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"supg/internal/dataset"
	"supg/internal/engine"
	"supg/internal/jobs"
	"supg/internal/metrics"
	"supg/internal/oracle"
)

// Options tune the server beyond the randomness seed. The zero value
// selects the defaults noted on each field.
type Options struct {
	// Workers is the async job worker-pool size (default 4).
	Workers int
	// OracleParallelism bounds concurrent oracle UDF calls per query
	// (default 1 = sequential). Results are independent of the setting.
	OracleParallelism int
	// MaxBodyBytes caps dataset upload bodies (default 64 MiB;
	// negative disables the cap).
	MaxBodyBytes int64
	// JobQueueDepth bounds the pending job queue (default 256).
	JobQueueDepth int
	// JobRetention is how long finished jobs stay queryable
	// (default 15 minutes).
	JobRetention time.Duration
	// OracleLatency adds a per-call sleep to the oracles of datasets
	// registered through RegisterDataset, simulating an expensive
	// ground-truth backend for demos and latency tests.
	OracleLatency time.Duration
	// SegmentSize is the records-per-segment of built score indexes
	// (default index.DefaultSegmentSize). Results are identical at any
	// setting; it tunes build parallelism granularity and append cost.
	SegmentSize int
	// IndexBuildParallelism bounds concurrent segment builds per index
	// (default GOMAXPROCS).
	IndexBuildParallelism int
	// QuantizeIndex builds score indexes with 16-bit quantized score
	// codes: byte-identical results, ~4x less scan memory traffic, code
	// vectors persisted alongside segments when PersistDir is set. See
	// engine.Options.Quantize.
	QuantizeIndex bool
	// QueryParallelism bounds the intra-query parallel segment
	// reductions shared across all concurrent queries (default
	// GOMAXPROCS; 1 disables). Results are byte-identical at every
	// setting. See engine.Options.QueryParallelism.
	QueryParallelism int
	// LabelCacheBytes bounds the cross-query oracle label store shared
	// by every query and job (default 64 MiB; negative disables label
	// reuse). In the default charged mode the store changes only the
	// oracle UDF's call count, never query results.
	LabelCacheBytes int64
	// LabelCacheShards is the label store's shard count per (table,
	// oracle) pair (default 16).
	LabelCacheShards int
	// LabelWALPath, when non-empty, makes the label store crash-durable:
	// bought labels are journaled to a write-ahead log and replayed on
	// boot, so a restarted server re-buys zero labels (see
	// labelstore.Options.WALPath). Configure via Open — NewWithOptions
	// panics if the log cannot be opened.
	LabelWALPath string
	// LabelWALSyncEvery is the WAL fsync cadence (0 or 1 = every record).
	LabelWALSyncEvery int
	// OracleTimeout bounds one oracle UDF attempt (0 = unbounded);
	// timed-out attempts count as transient failures and are retried.
	OracleTimeout time.Duration
	// OracleRetries re-attempts transient oracle failures (0 = fail on
	// the first error). Retries never change query results.
	OracleRetries int
	// OracleBackoff is the base retry backoff, doubling per retry with
	// deterministic jitter (0 = 10ms).
	OracleBackoff time.Duration
	// BreakerThreshold consecutive finally-failed oracle calls trip the
	// per-oracle circuit breaker open (0 = 5); while open, queries fail
	// fast with 503 and GET /readyz reports not-ready.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening for a probe (0 = 1s). Also the Retry-After hint on
	// 503 responses.
	BreakerCooldown time.Duration
	// PersistDir, when non-empty, enables the engine's durable storage
	// tier: datasets and built score indexes are flushed there and
	// recovered on Open with zero proxy calls and zero re-sorts, and
	// recovered datasets are re-registered automatically (with
	// OracleLatency wrapping, exactly like a preload). See
	// engine.Options.PersistDir.
	PersistDir string
	// PersistMadvise optionally hints mapped-file residency ("normal",
	// "random", "sequential", "willneed"; empty = no hint).
	PersistMadvise string
	// PersistNoMmap forces heap loads of persisted files (testing and
	// portability escape hatch).
	PersistNoMmap bool
}

// defaultMaxBodyBytes caps uploads at 64 MiB unless overridden.
const defaultMaxBodyBytes = 64 << 20

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.OracleParallelism <= 0 {
		o.OracleParallelism = 1
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = defaultMaxBodyBytes
	}
	return o
}

// Server is an http.Handler serving the SUPG API:
//
//	GET    /healthz                    -> 200 "ok"
//	GET    /v1/datasets                -> JSON list of dataset summaries
//	PUT    /v1/datasets/{name}         -> upload CSV (default) or binary
//	                                      (Content-Type: application/octet-stream)
//	PUT    /v1/datasets/{name}/append  -> append records to an uploaded dataset
//	                                      (same body formats; indexes extend
//	                                      incrementally instead of rebuilding)
//	POST   /v1/query                   -> {"sql": "..."} -> query result (synchronous)
//	POST   /v1/jobs                    -> {"sql": "..."} -> 202 + job status (async)
//	GET    /v1/jobs                    -> list of job statuses, newest first
//	GET    /v1/jobs/{id}               -> job status (+ result when done)
//	DELETE /v1/jobs/{id}               -> cancel an active job / remove a finished one
//	GET    /v1/stats                   -> service counters
type Server struct {
	mu     sync.RWMutex
	engine *engine.Engine
	// summaries tracks uploads for the list endpoint; the engine holds
	// the authoritative data.
	summaries map[string]dataset.Summary
	datasets  map[string]*dataset.Dataset
	mux       *http.ServeMux
	opts      Options
	counters  *metrics.Counters
	manager   *jobs.Manager
}

// New returns a server with default options whose query randomness
// derives from seed.
func New(seed uint64) *Server { return NewWithOptions(seed, Options{}) }

// NewWithOptions returns a server with explicit tuning. Call Shutdown
// to drain the job workers when done. It panics if the configured
// label WAL cannot be opened — only reachable when Options.LabelWALPath
// is set; callers configuring a WAL should prefer Open.
func NewWithOptions(seed uint64, opts Options) *Server {
	s, err := Open(seed, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open is NewWithOptions with the label WAL's open/replay error
// surfaced instead of panicking. By the time Open returns, WAL replay
// is complete — a served request can never observe a half-recovered
// label store, which is why GET /readyz needs no replay progress state.
func Open(seed uint64, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	eng, err := engine.Open(seed, engine.Options{
		SegmentSize:       opts.SegmentSize,
		BuildParallelism:  opts.IndexBuildParallelism,
		Quantize:          opts.QuantizeIndex,
		QueryParallelism:  opts.QueryParallelism,
		LabelCacheBytes:   opts.LabelCacheBytes,
		LabelCacheShards:  opts.LabelCacheShards,
		LabelWALPath:      opts.LabelWALPath,
		LabelWALSyncEvery: opts.LabelWALSyncEvery,
		OracleTimeout:     opts.OracleTimeout,
		OracleRetries:     opts.OracleRetries,
		OracleBackoff:     opts.OracleBackoff,
		BreakerThreshold:  opts.BreakerThreshold,
		BreakerCooldown:   opts.BreakerCooldown,
		PersistDir:        opts.PersistDir,
		PersistNoMmap:     opts.PersistNoMmap,
		PersistMadvise:    opts.PersistMadvise,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		engine:    eng,
		summaries: make(map[string]dataset.Summary),
		datasets:  make(map[string]*dataset.Dataset),
		mux:       http.NewServeMux(),
		opts:      opts,
		counters:  &metrics.Counters{},
	}
	// Mirror label store activity into the service counters so
	// GET /v1/stats reports hit/miss/eviction/invalidation totals (plus
	// WAL records/replays), and breaker/retry/timeout activity likewise.
	s.engine.LabelStore().WithCounters(s.counters)
	s.engine.WithCounters(s.counters)
	// Re-register every dataset the storage tier recovered, before any
	// request can arrive. Registration passes the recovered dataset
	// pointer back, so the engine adopts the on-disk state (and its
	// staged indexes) instead of rewriting it.
	for _, d := range eng.RecoveredDatasets() {
		s.RegisterDataset(d.Name(), d)
	}
	s.manager = jobs.NewManager(s.runJob, jobs.Config{
		Workers:    opts.Workers,
		QueueDepth: opts.JobQueueDepth,
		Retention:  opts.JobRetention,
		Counters:   s.counters,
	})
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("/v1/datasets/", s.handleUploadDataset)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the async job subsystem — no new jobs are accepted,
// queued and running jobs finish unless ctx expires first (then they
// are cancelled) — and then flushes and closes the label store's
// write-ahead log. Call after the HTTP listener has stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.manager.Shutdown(ctx)
	if cerr := s.engine.Close(); err == nil {
		err = cerr
	}
	return err
}

// Engine exposes the underlying engine (for preload wiring in
// cmd/supg-server and for tests).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Counters exposes the service counters (for tests and the stats
// endpoint).
func (s *Server) Counters() *metrics.Counters { return s.counters }

// RegisterDataset adds a dataset directly (used by cmd/supg-server to
// preload data and by tests). When Options.OracleLatency is set the
// dataset's oracle UDF sleeps that long per call, standing in for an
// expensive labeling backend.
func (s *Server) RegisterDataset(name string, d *dataset.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.RegisterDatasetDefaults(name, d)
	if lat := s.opts.OracleLatency; lat > 0 {
		s.engine.WrapOracle(name+"_oracle", func(inner engine.OracleUDF) engine.OracleUDF {
			return func(i int) (bool, error) {
				time.Sleep(lat)
				return inner(i)
			}
		})
	}
	s.summaries[name] = d.Summarize()
	s.datasets[name] = d
}

// HasDataset reports whether a dataset is registered under name —
// via preload, upload, or storage-tier recovery.
func (s *Server) HasDataset(name string) bool {
	return s.Dataset(name) != nil
}

// Dataset returns the dataset registered under name (nil when absent).
func (s *Server) Dataset(name string) *dataset.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasets[name]
}

// RegisterProxy adds an extra proxy UDF to the underlying engine so
// multi-proxy FUSE queries can combine it with dataset-default proxies
// — used by cmd/supg-server's preload proxy variants and by tests. The
// UDF must be goroutine-safe and defined for every record id of the
// tables it is queried against.
func (s *Server) RegisterProxy(name string, fn func(record int) float64) {
	s.engine.RegisterProxy(name, fn)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyResponse is the GET /readyz body.
type readyResponse struct {
	Ready bool `json:"ready"`
	// BreakersOpen is the number of oracle circuit breakers currently
	// not closed; any open breaker makes the server not-ready (new
	// queries against that oracle would fail fast with 503).
	BreakersOpen int `json:"breakers_open"`
}

// handleReady serves the readiness probe: 200 once the server can
// usefully serve queries (WAL replay is complete before the server is
// constructed, see Open) and no oracle circuit breaker is open; 503
// otherwise. Liveness stays on /healthz, which never flips — an open
// breaker is a reason to drain traffic, not to restart the process.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	open := s.engine.OpenBreakers()
	resp := readyResponse{Ready: open == 0, BreakersOpen: open}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// DatasetInfo is the JSON shape of a dataset summary.
type DatasetInfo struct {
	Name      string  `json:"name"`
	Records   int     `json:"records"`
	Positives int     `json:"positives"`
	TPR       float64 `json:"tpr"`
	OracleUDF string  `json:"oracle_udf"`
	ProxyUDF  string  `json:"proxy_udf"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.summaries))
	for name, sum := range s.summaries {
		infos = append(infos, DatasetInfo{
			Name:      name,
			Records:   sum.Records,
			Positives: sum.Positives,
			TPR:       sum.TPR,
			OracleUDF: name + "_oracle",
			ProxyUDF:  name + "_proxy",
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// AppendResponse is the PUT /v1/datasets/{name}/append output: the
// combined dataset's summary plus the number of records appended.
type AppendResponse struct {
	DatasetInfo
	Appended int `json:"appended"`
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use PUT or POST")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	appendMode := false
	if base, ok := strings.CutSuffix(name, "/append"); ok {
		name, appendMode = base, true
	}
	if name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, "dataset name must be a single path segment")
		return
	}
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	defer r.Body.Close()

	var (
		d   *dataset.Dataset
		err error
	)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		// Content-Length (when present and exact) lets the decoder
		// allocate the columns once at full size instead of growing.
		d, err = dataset.ReadBinarySized(r.Body, name, r.ContentLength)
	} else {
		d, err = dataset.ReadCSV(r.Body, name)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeBodyTooLarge(w, tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if appendMode {
		s.handleAppendDataset(w, name, d)
		return
	}
	s.RegisterDataset(name, d)
	sum := d.Summarize()
	writeJSON(w, http.StatusCreated, DatasetInfo{
		Name: name, Records: sum.Records, Positives: sum.Positives, TPR: sum.TPR,
		OracleUDF: name + "_oracle", ProxyUDF: name + "_proxy",
	})
}

// handleAppendDataset extends an uploaded dataset in place. Unlike a
// re-upload, the table's cached score indexes survive: the engine
// indexes only the appended records (a fresh segment) on the next
// query instead of re-scanning and re-sorting the whole table.
func (s *Server) handleAppendDataset(w http.ResponseWriter, name string, extra *dataset.Dataset) {
	var sum dataset.Summary
	s.mu.Lock()
	combined, err := s.engine.AppendTable(name, extra)
	if err == nil {
		sum = combined.Summarize()
		s.summaries[name] = sum
		s.datasets[name] = combined
	}
	s.mu.Unlock()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, engine.ErrUnknownTable) {
			code = http.StatusNotFound
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		DatasetInfo: DatasetInfo{
			Name: name, Records: sum.Records, Positives: sum.Positives, TPR: sum.TPR,
			OracleUDF: name + "_oracle", ProxyUDF: name + "_proxy",
		},
		Appended: extra.Len(),
	})
}

// QueryRequest is the /v1/query (and /v1/jobs) input.
type QueryRequest struct {
	SQL string `json:"sql"`
	// IncludeIndices controls whether the (possibly large) id list is
	// returned; statistics are always included.
	IncludeIndices bool `json:"include_indices"`
	// MaxIndices caps the returned id list (0 = no cap).
	MaxIndices int `json:"max_indices"`
	// FreeReuse makes cross-query label store hits free instead of
	// budget-charged for this query — the HTTP form of the grammar's
	// ORACLE LIMIT ... REUSE FREE clause (either one enables it).
	FreeReuse bool `json:"free_reuse"`
}

// QueryResponse is the /v1/query output.
type QueryResponse struct {
	Returned int `json:"returned"`
	// Tau is null when no proxy threshold was certifiable (the query
	// returned labeled positives only) — the engine models that case
	// as tau = +Inf, which JSON cannot carry.
	Tau         *float64 `json:"tau"`
	OracleCalls int      `json:"oracle_calls"`
	ProxyCalls  int      `json:"proxy_calls"`
	// IndexRecovered reports that this query adopted its score index
	// from the durable storage tier (first query of the pair after a
	// restart; zero sorts, zero proxy calls unless the table grew).
	IndexRecovered bool `json:"index_recovered,omitempty"`
	// LabelCacheHits counts labels served from the cross-query label
	// store instead of the oracle UDF (included in oracle_calls unless
	// the query ran with free reuse).
	LabelCacheHits int `json:"label_cache_hits"`
	// Fusion names the score source's fusion strategy when the query
	// used a multi-proxy FUSE source ("mean", "max", "logistic");
	// omitted for classic single-proxy queries.
	Fusion string `json:"fusion,omitempty"`
	// CalibrationCalls counts oracle calls spent calibrating the fused
	// index when this query built it (charged to index construction,
	// not to the query's ORACLE LIMIT; 0 on warm cache hits).
	CalibrationCalls int `json:"calibration_calls,omitempty"`
	// CalibrationCacheHits counts the calibration labels served by the
	// cross-query label store instead of the oracle UDF.
	CalibrationCacheHits int     `json:"calibration_cache_hits,omitempty"`
	ElapsedMS            float64 `json:"elapsed_ms"`
	// Achieved metrics are computable here because uploaded datasets
	// carry ground-truth labels (this is a simulation service).
	AchievedPrecision float64 `json:"achieved_precision"`
	AchievedRecall    float64 `json:"achieved_recall"`
	Indices           []int   `json:"indices,omitempty"`
	Truncated         bool    `json:"truncated,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	req, ok := s.decodeQueryRequest(w, r)
	if !ok {
		return
	}

	// The synchronous path shares the batch-oracle dispatcher with the
	// job path and is cancelled when the client disconnects.
	res, err := s.engine.ExecuteContext(r.Context(), req.SQL, engine.ExecOptions{
		OracleParallelism: s.opts.OracleParallelism,
		Counters:          s.counters,
		FreeReuse:         req.FreeReuse,
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildQueryResponse(req, res))
}

// statusClientClosedRequest is the (nginx-convention) status for a
// query abandoned because the client went away — distinct from 504,
// where the server's own deadline expired, and from 500, which would
// page someone about a failure that was the client's choice.
const statusClientClosedRequest = 499

// writeQueryError maps a query execution error onto its HTTP status:
//
//   - context.Canceled        -> 499 (the client disconnected mid-query)
//   - context.DeadlineExceeded -> 504 (a server-side deadline expired)
//   - oracle.ErrOracleUnavailable -> 503 + Retry-After (the oracle
//     backend is down even with retries, or its breaker is open; the
//     error's labels-folded count tells the caller the paid work is
//     kept, so retrying after the hint resumes warm)
//   - anything else           -> 400 (a bad query)
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		// The client is usually gone, but the status still documents the
		// outcome for proxies and logs.
		httpError(w, statusClientClosedRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, oracle.ErrOracleUnavailable):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

// retryAfterSeconds derives the 503 Retry-After hint from the breaker
// cooldown: by then an open breaker has half-opened and a retry gets a
// probe slot. Never less than a second.
func (s *Server) retryAfterSeconds() int {
	cooldown := s.opts.BreakerCooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	secs := int(math.Ceil(cooldown.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeQueryRequest parses and validates the shared query/job request
// body, writing the HTTP error itself when invalid. The body is capped
// by the same configured Options.MaxBodyBytes the dataset endpoints
// honor (it used to be a hardcoded 1 MiB, diverging from the
// documented knob), and overflow returns the same 413 shape.
func (s *Server) decodeQueryRequest(w http.ResponseWriter, r *http.Request) (QueryRequest, bool) {
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeBodyTooLarge(w, tooBig.Limit)
			return req, false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return req, false
	}
	if strings.TrimSpace(req.SQL) == "" {
		httpError(w, http.StatusBadRequest, "missing sql")
		return req, false
	}
	return req, true
}

// writeBodyTooLarge is the single 413 shape shared by every endpoint
// that enforces Options.MaxBodyBytes.
func writeBodyTooLarge(w http.ResponseWriter, limit int64) {
	httpError(w, http.StatusRequestEntityTooLarge,
		fmt.Sprintf("request body exceeds the %d-byte limit", limit))
}

// buildQueryResponse shapes an engine result for the wire, applying the
// request's index-list controls and attaching achieved quality metrics
// (computable because uploaded datasets carry ground truth).
func (s *Server) buildQueryResponse(req QueryRequest, res *engine.QueryResult) QueryResponse {
	resp := QueryResponse{
		Returned:             len(res.Indices),
		OracleCalls:          res.OracleCalls,
		ProxyCalls:           res.ProxyCalls,
		IndexRecovered:       res.IndexRecovered,
		LabelCacheHits:       res.LabelCacheHits,
		Fusion:               res.Fusion,
		CalibrationCalls:     res.CalibrationCalls,
		CalibrationCacheHits: res.CalibrationCacheHits,
		ElapsedMS:            float64(res.Elapsed.Microseconds()) / 1000,
	}
	if !math.IsInf(res.Tau, 0) {
		tau := res.Tau
		resp.Tau = &tau
	}
	s.mu.RLock()
	if d, ok := s.datasets[res.Plan.Table]; ok {
		eval := metrics.Evaluate(d, res.Indices)
		resp.AchievedPrecision = eval.Precision
		resp.AchievedRecall = eval.Recall
	}
	s.mu.RUnlock()
	if req.IncludeIndices {
		resp.Indices = res.Indices
		if req.MaxIndices > 0 && len(resp.Indices) > req.MaxIndices {
			resp.Indices = resp.Indices[:req.MaxIndices]
			resp.Truncated = true
		}
	}
	return resp
}

// runJob is the jobs.Runner executing one queued query.
func (s *Server) runJob(ctx context.Context, payload any, progress func(int)) (any, error) {
	req, ok := payload.(QueryRequest)
	if !ok {
		return nil, fmt.Errorf("server: unexpected job payload %T", payload)
	}
	res, err := s.engine.ExecuteContext(ctx, req.SQL, engine.ExecOptions{
		OracleParallelism: s.opts.OracleParallelism,
		Progress:          progress,
		Counters:          s.counters,
		FreeReuse:         req.FreeReuse,
	})
	if err != nil {
		return nil, err
	}
	resp := s.buildQueryResponse(req, res)
	return &resp, nil
}

// JobInfo is the JSON shape of one job's status. Result is present
// only once the job is done.
type JobInfo struct {
	ID          string         `json:"id"`
	State       string         `json:"state"`
	SQL         string         `json:"sql"`
	Error       string         `json:"error,omitempty"`
	OracleCalls int            `json:"oracle_calls"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Result      *QueryResponse `json:"result,omitempty"`
}

func jobInfo(snap jobs.Snapshot) JobInfo {
	info := JobInfo{
		ID:          snap.ID,
		State:       string(snap.State),
		Error:       snap.Error,
		OracleCalls: snap.OracleCalls,
		SubmittedAt: snap.SubmittedAt,
	}
	if req, ok := snap.Payload.(QueryRequest); ok {
		info.SQL = req.SQL
	}
	if !snap.StartedAt.IsZero() {
		t := snap.StartedAt
		info.StartedAt = &t
	}
	if !snap.FinishedAt.IsZero() {
		t := snap.FinishedAt
		info.FinishedAt = &t
	}
	if resp, ok := snap.Result.(*QueryResponse); ok {
		info.Result = resp
	}
	return info
}

// handleJobs serves POST /v1/jobs (submit) and GET /v1/jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		req, ok := s.decodeQueryRequest(w, r)
		if !ok {
			return
		}
		job, err := s.manager.Submit(req)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, jobInfo(job.Snapshot()))
	case http.MethodGet:
		snaps := s.manager.List()
		infos := make([]JobInfo, 0, len(snaps))
		for _, snap := range snaps {
			snap.Result = nil // results only via GET /v1/jobs/{id}
			infos = append(infos, jobInfo(snap))
		}
		writeJSON(w, http.StatusOK, infos)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST or GET")
	}
}

// handleJobByID serves GET /v1/jobs/{id} (status + result) and
// DELETE /v1/jobs/{id} (cancel an active job, remove a finished one).
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, "job id must be a single path segment")
		return
	}
	job, ok := s.manager.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, jobInfo(job.Snapshot()))
	case http.MethodDelete:
		if job.Snapshot().State.Terminal() {
			if err := s.manager.Remove(id); err != nil {
				httpError(w, http.StatusConflict, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, jobInfo(job.Snapshot()))
			return
		}
		if _, err := s.manager.Cancel(id); err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, jobInfo(job.Snapshot()))
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// handleStats serves the service counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.counters.Snapshot())
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Printf("server: encoding response: %v\n", err)
	}
}
