// Package server exposes the SUPG engine over HTTP, turning the batch
// query system of the paper's Section 4.1 into a small network service:
// upload datasets (CSV or the binary interchange format), then submit
// SUPG statements and receive the selected record ids with execution
// statistics. All state is in-memory; the service is a front-end to
// engine.Engine.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"

	"supg/internal/dataset"
	"supg/internal/engine"
	"supg/internal/metrics"
)

// Server is an http.Handler serving the SUPG API:
//
//	GET  /healthz                      -> 200 "ok"
//	GET  /v1/datasets                  -> JSON list of dataset summaries
//	PUT  /v1/datasets/{name}           -> upload CSV (default) or binary
//	                                      (Content-Type: application/octet-stream)
//	POST /v1/query                     -> {"sql": "..."} -> query result
type Server struct {
	mu     sync.RWMutex
	engine *engine.Engine
	// summaries tracks uploads for the list endpoint; the engine holds
	// the authoritative data.
	summaries map[string]dataset.Summary
	datasets  map[string]*dataset.Dataset
	mux       *http.ServeMux
}

// New returns a server whose query randomness derives from seed.
func New(seed uint64) *Server {
	s := &Server{
		engine:    engine.New(seed),
		summaries: make(map[string]dataset.Summary),
		datasets:  make(map[string]*dataset.Dataset),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("/v1/datasets/", s.handleUploadDataset)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RegisterDataset adds a dataset directly (used by cmd/supg-server to
// preload data and by tests).
func (s *Server) RegisterDataset(name string, d *dataset.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.RegisterDatasetDefaults(name, d)
	s.summaries[name] = d.Summarize()
	s.datasets[name] = d
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// DatasetInfo is the JSON shape of a dataset summary.
type DatasetInfo struct {
	Name      string  `json:"name"`
	Records   int     `json:"records"`
	Positives int     `json:"positives"`
	TPR       float64 `json:"tpr"`
	OracleUDF string  `json:"oracle_udf"`
	ProxyUDF  string  `json:"proxy_udf"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.summaries))
	for name, sum := range s.summaries {
		infos = append(infos, DatasetInfo{
			Name:      name,
			Records:   sum.Records,
			Positives: sum.Positives,
			TPR:       sum.TPR,
			OracleUDF: name + "_oracle",
			ProxyUDF:  name + "_proxy",
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use PUT or POST")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	if name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, "dataset name must be a single path segment")
		return
	}
	defer r.Body.Close()

	var (
		d   *dataset.Dataset
		err error
	)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		d, err = dataset.ReadBinary(r.Body, name)
	} else {
		d, err = dataset.ReadCSV(r.Body, name)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.RegisterDataset(name, d)
	sum := d.Summarize()
	writeJSON(w, http.StatusCreated, DatasetInfo{
		Name: name, Records: sum.Records, Positives: sum.Positives, TPR: sum.TPR,
		OracleUDF: name + "_oracle", ProxyUDF: name + "_proxy",
	})
}

// QueryRequest is the /v1/query input.
type QueryRequest struct {
	SQL string `json:"sql"`
	// IncludeIndices controls whether the (possibly large) id list is
	// returned; statistics are always included.
	IncludeIndices bool `json:"include_indices"`
	// MaxIndices caps the returned id list (0 = no cap).
	MaxIndices int `json:"max_indices"`
}

// QueryResponse is the /v1/query output.
type QueryResponse struct {
	Returned int `json:"returned"`
	// Tau is null when no proxy threshold was certifiable (the query
	// returned labeled positives only) — the engine models that case
	// as tau = +Inf, which JSON cannot carry.
	Tau         *float64 `json:"tau"`
	OracleCalls int      `json:"oracle_calls"`
	ProxyCalls  int      `json:"proxy_calls"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	// Achieved metrics are computable here because uploaded datasets
	// carry ground-truth labels (this is a simulation service).
	AchievedPrecision float64 `json:"achieved_precision"`
	AchievedRecall    float64 `json:"achieved_recall"`
	Indices           []int   `json:"indices,omitempty"`
	Truncated         bool    `json:"truncated,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		httpError(w, http.StatusBadRequest, "missing sql")
		return
	}

	res, err := s.engine.Execute(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	resp := QueryResponse{
		Returned:    len(res.Indices),
		OracleCalls: res.OracleCalls,
		ProxyCalls:  res.ProxyCalls,
		ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1000,
	}
	if !math.IsInf(res.Tau, 0) {
		tau := res.Tau
		resp.Tau = &tau
	}
	s.mu.RLock()
	if d, ok := s.datasets[res.Plan.Table]; ok {
		eval := metrics.Evaluate(d, res.Indices)
		resp.AchievedPrecision = eval.Precision
		resp.AchievedRecall = eval.Recall
	}
	s.mu.RUnlock()
	if req.IncludeIndices {
		resp.Indices = res.Indices
		if req.MaxIndices > 0 && len(resp.Indices) > req.MaxIndices {
			resp.Indices = resp.Indices[:req.MaxIndices]
			resp.Truncated = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Printf("server: encoding response: %v\n", err)
	}
}
