package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentQueriesShareIndex hammers /v1/query from many
// goroutines against one registered table: every request must succeed,
// agree on the answer (same SQL ⇒ same random stream), and at most one
// may pay the proxy scan — the rest hit the shared ScoreIndex and
// report zero proxy calls.
func TestConcurrentQueriesShareIndex(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body := `{"sql": "SELECT * FROM beta WHERE beta_oracle(x) = true ORACLE LIMIT 500 USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%"}`

	const workers = 16
	responses := make([]QueryResponse, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString(body))
			if err != nil {
				errs[w] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("worker %d: status %d", w, resp.StatusCode)
				return
			}
			errs[w] = json.NewDecoder(resp.Body).Decode(&responses[w])
		}(w)
	}
	wg.Wait()

	scans := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if responses[w].ProxyCalls > 0 {
			scans++
		}
		if responses[w].Returned != responses[0].Returned {
			t.Fatalf("worker %d diverged: %+v vs %+v", w, responses[w], responses[0])
		}
		if (responses[w].Tau == nil) != (responses[0].Tau == nil) ||
			(responses[w].Tau != nil && *responses[w].Tau != *responses[0].Tau) {
			t.Fatalf("worker %d tau diverged", w)
		}
		if responses[w].Returned == 0 {
			t.Fatalf("worker %d returned an empty result", w)
		}
	}
	if scans > 1 {
		t.Fatalf("%d requests paid a proxy scan, want at most 1", scans)
	}
}

// TestQueryNoCertifiableThresholdEncodes: a precision query that
// cannot certify any threshold yields tau = +Inf internally, which
// JSON cannot represent; the response must still encode (tau: null)
// instead of dying mid-body.
func TestQueryNoCertifiableThresholdEncodes(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// The 20k-record Beta(0.01, 2) test dataset has ~0.5% positives:
	// with a tight budget no candidate reaches 99% certified precision.
	body := `{"sql": "SELECT * FROM beta WHERE beta_oracle(x) = true ORACLE LIMIT 300 USING beta_proxy(x) PRECISION TARGET 99% WITH PROBABILITY 95%"}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("response did not decode: %v", err)
	}
	if qr.Tau != nil {
		t.Fatalf("tau = %v, want null for an uncertifiable threshold", *qr.Tau)
	}
}
