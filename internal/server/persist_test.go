package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

// uploadBinary PUTs a dataset in the binary interchange format.
func uploadBinary(t *testing.T, ts *httptest.Server, name string, d *dataset.Dataset) {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/"+name, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: status %d", resp.StatusCode)
	}
}

// TestServerKillRestartPersistRecovery is the service-level acceptance
// test for the durable storage tier: query, kill, boot a fresh server
// on the same persist dir WITHOUT re-uploading anything — recovery
// re-registers the dataset, the first query adopts the persisted index
// (zero proxy UDF calls, zero permutation sorts), labels replay from
// the co-located WAL (zero re-buys), and the answer is byte-identical.
func TestServerKillRestartPersistRecovery(t *testing.T) {
	dir := t.TempDir()
	d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
	opts := Options{
		PersistDir:   dir,
		LabelWALPath: filepath.Join(dir, "labels.wal"),
	}

	s1, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	s1.RegisterDataset("beta", d)
	ts1 := httptest.NewServer(s1)
	resp, body := postSQL(t, ts1, resilienceRT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %d (%s)", resp.StatusCode, body)
	}
	var cold QueryResponse
	json.Unmarshal(body, &cold)
	if cold.IndexRecovered || cold.ProxyCalls != d.Len() {
		t.Fatalf("cold query did not build: %+v", cold)
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fresh server, same directory, NO RegisterDataset: the storage tier
	// must re-offer the recovered table on its own.
	sortsBefore := index.BuildSortsTotal()
	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	if !s2.HasDataset("beta") {
		t.Fatal("restarted server did not auto-register the recovered dataset")
	}
	info, ok := s2.Engine().RecoveryInfo()
	if !ok || info.Tables != 1 || info.Indexes != 1 || len(info.Degraded) != 0 {
		t.Fatalf("recovery info: %+v, %v", info, ok)
	}

	resp, body = postSQL(t, ts2, resilienceRT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d (%s)", resp.StatusCode, body)
	}
	var warm QueryResponse
	json.Unmarshal(body, &warm)
	if !warm.IndexRecovered {
		t.Fatalf("warm query did not adopt the persisted index: %+v", warm)
	}
	if warm.ProxyCalls != 0 {
		t.Fatalf("restart re-ran the proxy %d times, want 0", warm.ProxyCalls)
	}
	if sorts := index.BuildSortsTotal() - sortsBefore; sorts != 0 {
		t.Fatalf("restart performed %d permutation sorts, want 0", sorts)
	}
	if warm.Returned != cold.Returned || warm.OracleCalls != cold.OracleCalls {
		t.Fatalf("post-restart result diverged: %+v vs %+v", warm, cold)
	}
	if (warm.Tau == nil) != (cold.Tau == nil) || (warm.Tau != nil && *warm.Tau != *cold.Tau) {
		t.Fatalf("tau diverged: %v vs %v", warm.Tau, cold.Tau)
	}
	if warm.LabelCacheHits != warm.OracleCalls {
		t.Fatalf("warm run re-bought labels: %d hits vs %d calls", warm.LabelCacheHits, warm.OracleCalls)
	}

	// The stats surface reports the recovery.
	r, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(r.Body).Decode(&stats)
	r.Body.Close()
	if stats["storage_tables_recovered"].(float64) != 1 || stats["storage_indexes_recovered"].(float64) != 1 {
		t.Fatalf("stats missing recovery counters: %v", stats)
	}
	if stats["storage_segments_recovered"].(float64) == 0 {
		t.Fatal("stats report zero recovered segments")
	}
}

// TestServerPersistUploadSurvivesRestart: a dataset uploaded over HTTP
// (binary interchange) is durable — the restarted server serves it
// without any re-upload, and a second upload of different content
// replaces it durably.
func TestServerPersistUploadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{PersistDir: dir}
	d := dataset.Beta(randx.New(2), 5000, 0.05, 2)

	s1, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	uploadBinary(t, ts1, "up", d)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	got := s2.Dataset("up")
	if got == nil || got.Len() != d.Len() {
		t.Fatalf("uploaded dataset not recovered: %v", got)
	}
	for i := 0; i < d.Len(); i++ {
		if got.Score(i) != d.Score(i) || got.TrueLabel(i) != d.TrueLabel(i) {
			t.Fatalf("recovered record %d diverged", i)
		}
	}
}
