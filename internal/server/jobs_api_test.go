package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"supg/internal/dataset"
	"supg/internal/randx"
)

// newJobTestServer builds a server with explicit options, a shared
// 20k-record dataset, and a live HTTP listener.
func newJobTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWithOptions(7, opts)
	d := dataset.Beta(randx.New(1), 20_000, 0.01, 2)
	s.RegisterDataset("beta", d)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response, wantStatus int) JobInfo {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func getJob(t *testing.T, base, id string) JobInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decodeJob(t, resp, http.StatusOK)
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, base, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info := getJob(t, base, id)
		switch info.State {
		case "done", "failed", "cancelled":
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobInfo{}
}

const jobSQL = `SELECT * FROM beta WHERE beta_oracle(x) = true ` +
	`ORACLE LIMIT 500 USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

func TestJobLifecycleOverHTTP(t *testing.T) {
	_, ts := newJobTestServer(t, Options{Workers: 2, OracleParallelism: 4})

	info := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: jobSQL}), http.StatusAccepted)
	if info.ID == "" || info.SQL != jobSQL {
		t.Fatalf("submit response %+v", info)
	}

	final := waitJob(t, ts.URL, info.ID)
	if final.State != "done" {
		t.Fatalf("job state %s (err %q)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Returned == 0 {
		t.Fatalf("missing result: %+v", final)
	}
	if final.OracleCalls != final.Result.OracleCalls {
		t.Errorf("progress %d != result oracle calls %d", final.OracleCalls, final.Result.OracleCalls)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("missing timestamps: %+v", final)
	}

	// The list endpoint shows the job without its result payload.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != info.ID || list[0].Result != nil {
		t.Fatalf("list %+v", list)
	}

	// DELETE on a finished job removes its record.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", delResp.StatusCode)
	}
	gone, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete %d, want 404", gone.StatusCode)
	}
}

func TestJobUnknownAndBadRequests(t *testing.T) {
	_, ts := newJobTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", QueryRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sql status %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: "SELECT nonsense"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bad sql submit status %d", resp.StatusCode)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitJob(t, ts.URL, info.ID)
	if final.State != "failed" || final.Error == "" {
		t.Errorf("bad sql job = %+v, want failed with error", final)
	}
}

// TestQueryBodyLimit pins the query endpoints to the configured
// Options.MaxBodyBytes — the same cap the dataset endpoints honor. A
// hardcoded 1 MiB limit used to shadow the option on /v1/query and
// /v1/jobs.
func TestQueryBodyLimit(t *testing.T) {
	_, ts := newJobTestServer(t, Options{MaxBodyBytes: 4096})
	huge := `{"sql":"` + strings.Repeat("x", 8192) + `"}`
	for _, path := range []string{"/v1/query", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decoding 413 body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body status %d, want 413", path, resp.StatusCode)
		}
		// Same 413 shape as the dataset endpoints.
		if want := "request body exceeds the 4096-byte limit"; body.Error != want {
			t.Errorf("%s 413 error = %q, want %q", path, body.Error, want)
		}
	}
}

// TestQueryBodyLimitHonorsConfiguredCap is the other half of the
// regression: a statement larger than the old hardcoded 1 MiB cap must
// be accepted when the configured cap allows it (it parses as a bad
// query, not a 413).
func TestQueryBodyLimitHonorsConfiguredCap(t *testing.T) {
	_, ts := newJobTestServer(t, Options{})
	big := `{"sql":"` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("2 MiB body under the default 64 MiB cap: status %d, want 400 (bad query)", resp.StatusCode)
	}
}

func TestJobStatsEndpoint(t *testing.T) {
	_, ts := newJobTestServer(t, Options{Workers: 1, OracleParallelism: 4})
	info := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: jobSQL}), http.StatusAccepted)
	waitJob(t, ts.URL, info.ID)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		JobsSubmitted   int64 `json:"jobs_submitted"`
		JobsDone        int64 `json:"jobs_done"`
		Queries         int64 `json:"queries"`
		DispatchBatches int64 `json:"oracle_dispatch_batches"`
		DispatchCalls   int64 `json:"oracle_dispatch_calls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsSubmitted != 1 || stats.JobsDone != 1 || stats.Queries != 1 {
		t.Errorf("stats %+v", stats)
	}
	if stats.DispatchBatches == 0 || stats.DispatchCalls == 0 {
		t.Errorf("dispatch counters empty: %+v", stats)
	}
}

func TestUploadBodyLimit(t *testing.T) {
	_, ts := newJobTestServer(t, Options{MaxBodyBytes: 1024})

	big := "id,proxy_score,label\n" + strings.Repeat("1,0.5,1\n", 1000)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/big", strings.NewReader(big))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}

	small := "id,proxy_score,label\n0,0.5,1\n1,0.25,0\n"
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/small", strings.NewReader(small))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small upload status %d, want 201", resp.StatusCode)
	}
}

// TestJobAPIAcceptance is the PR acceptance test: with a 5ms-latency
// simulated oracle and budget 500, the job API with dispatcher
// parallelism 8 must complete at least 4x faster than the sequential
// path while returning byte-identical indices and tau for the same
// seed.
func TestJobAPIAcceptance(t *testing.T) {
	const latency = 5 * time.Millisecond
	_, seqTS := newJobTestServer(t, Options{OracleParallelism: 1, OracleLatency: latency})
	_, parTS := newJobTestServer(t, Options{OracleParallelism: 8, OracleLatency: latency, Workers: 2})
	req := QueryRequest{SQL: jobSQL, IncludeIndices: true}

	// Sequential reference via the synchronous endpoint.
	seqStart := time.Now()
	resp := postJSON(t, seqTS.URL+"/v1/query", req)
	seqElapsed := time.Since(seqStart)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync query status %d", resp.StatusCode)
	}
	var seq QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&seq); err != nil {
		t.Fatal(err)
	}

	// Same query through the async job API with parallel dispatch.
	parStart := time.Now()
	info := decodeJob(t, postJSON(t, parTS.URL+"/v1/jobs", req), http.StatusAccepted)
	final := waitJob(t, parTS.URL, info.ID)
	parElapsed := time.Since(parStart)
	if final.State != "done" {
		t.Fatalf("job state %s (err %q)", final.State, final.Error)
	}
	par := *final.Result

	// Byte-identical results for the same seed.
	seqJSON, _ := json.Marshal(struct {
		Indices []int    `json:"indices"`
		Tau     *float64 `json:"tau"`
	}{seq.Indices, seq.Tau})
	parJSON, _ := json.Marshal(struct {
		Indices []int    `json:"indices"`
		Tau     *float64 `json:"tau"`
	}{par.Indices, par.Tau})
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("results differ:\nsequential %d indices, tau %v\nparallel   %d indices, tau %v",
			len(seq.Indices), seq.Tau, len(par.Indices), par.Tau)
	}
	if seq.OracleCalls != par.OracleCalls {
		t.Errorf("oracle calls differ: %d vs %d", seq.OracleCalls, par.OracleCalls)
	}

	if parElapsed*4 > seqElapsed {
		t.Errorf("parallel job not >=4x faster: sequential %v, parallel %v (%.1fx)",
			seqElapsed, parElapsed, float64(seqElapsed)/float64(parElapsed))
	}
	t.Logf("sequential %v, parallel-8 job %v (%.1fx speedup, %d oracle calls)",
		seqElapsed, parElapsed, float64(seqElapsed)/float64(parElapsed), seq.OracleCalls)
}

// TestJobCancellationStopsOracle verifies DELETE on a running job stops
// oracle consumption mid-run.
func TestJobCancellationStopsOracle(t *testing.T) {
	const latency = 5 * time.Millisecond
	_, ts := newJobTestServer(t, Options{OracleParallelism: 2, OracleLatency: latency, Workers: 1})

	sql := `SELECT * FROM beta WHERE beta_oracle(x) = true ` +
		`ORACLE LIMIT 2000 USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`
	info := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: sql}), http.StatusAccepted)

	// Wait until the job is consuming oracle budget.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := getJob(t, ts.URL, info.ID)
		if cur.State == "running" && cur.OracleCalls > 0 {
			break
		}
		if cur.State != "queued" && cur.State != "running" {
			t.Fatalf("job reached %s before cancellation", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started consuming oracle calls")
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	final := waitJob(t, ts.URL, info.ID)
	if final.State != "cancelled" {
		t.Fatalf("state %s, want cancelled (err %q)", final.State, final.Error)
	}
	if final.OracleCalls == 0 || final.OracleCalls >= 2000 {
		t.Errorf("oracle calls at cancellation = %d, want mid-run (0 < n < 2000)", final.OracleCalls)
	}
	settled := final.OracleCalls
	time.Sleep(50 * time.Millisecond)
	if again := getJob(t, ts.URL, final.ID); again.OracleCalls != settled {
		t.Errorf("oracle consumption continued after cancellation: %d -> %d", settled, again.OracleCalls)
	}
	if _, err := fmt.Sscanf(final.ID, "job-%d", new(int)); err != nil {
		t.Errorf("unexpected job id shape %q", final.ID)
	}
}
