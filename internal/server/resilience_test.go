package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"supg/internal/dataset"
	"supg/internal/oracle"
	"supg/internal/randx"
)

const resilienceRT = `
	SELECT * FROM beta
	WHERE beta_oracle(x) = true
	ORACLE LIMIT 1000
	USING beta_proxy(x)
	RECALL TARGET 90%
	WITH PROBABILITY 95%`

func postSQL(t *testing.T, ts *httptest.Server, sql string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestQueryContextErrorStatuses pins the /v1/query status mapping for
// the two context failure shapes: client-gone (499) vs server-side
// deadline (504) — neither is a 500, neither is a client's bad query.
func TestQueryContextErrorStatuses(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"cancelled maps to 499", context.Canceled, statusClientClosedRequest},
		{"deadline maps to 504", context.DeadlineExceeded, http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(7)
			d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
			s.RegisterDataset("beta", d)
			// The oracle surfaces the context error mid-query, exactly as
			// the budget wrapper does when the request context fires.
			s.Engine().RegisterOracle("beta_oracle", func(i int) (bool, error) {
				return false, tc.err
			})
			ts := httptest.NewServer(s)
			defer ts.Close()
			resp, body := postSQL(t, ts, resilienceRT)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, tc.want)
			}
		})
	}
}

// TestQueryClientDisconnectMapsTo499 cancels the request context
// mid-query — the real client-gone path, not a simulated error.
func TestQueryClientDisconnectMapsTo499(t *testing.T) {
	s := New(7)
	d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
	s.RegisterDataset("beta", d)
	started := make(chan struct{})
	var once atomic.Bool
	s.Engine().RegisterOracle("beta_oracle", func(i int) (bool, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		time.Sleep(2 * time.Millisecond)
		return d.TrueLabel(i), nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	body, _ := json.Marshal(QueryRequest{SQL: resilienceRT})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d (%s), want 499", rec.Code, rec.Body.String())
	}
}

// brokenBackendServer returns a server whose oracle succeeds okCalls
// times and then fails transiently forever, under a tight breaker.
func brokenBackendServer(t *testing.T, okCalls int64, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
	s.RegisterDataset("beta", d)
	var calls atomic.Int64
	s.Engine().RegisterOracle("beta_oracle", func(i int) (bool, error) {
		if calls.Add(1) > okCalls {
			return false, oracle.Transient(errors.New("backend down"))
		}
		return d.TrueLabel(i), nil
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestOracleUnavailableMapsTo503 drives the degradation contract over
// HTTP: a dead oracle backend yields 503 with a Retry-After hint and
// the labels-folded diagnostic, the breaker opens, and GET /readyz
// flips to not-ready while /healthz stays 200.
func TestOracleUnavailableMapsTo503(t *testing.T) {
	_, ts := brokenBackendServer(t, 5, Options{
		OracleRetries:    1,
		OracleBackoff:    time.Nanosecond,
		BreakerThreshold: 1,
		BreakerCooldown:  90 * time.Second,
	})

	// Ready before any trouble.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before failure = %d", resp.StatusCode)
	}

	resp, body := postSQL(t, ts, resilienceRT)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "90" {
		t.Fatalf("Retry-After = %q, want \"90\" (the breaker cooldown)", got)
	}
	if !strings.Contains(string(body), "labels folded") {
		t.Fatalf("body %s lacks the labels-folded diagnostic", body)
	}

	// The breaker (threshold 1) is now open: not ready, but alive.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.BreakersOpen != 1 {
		t.Fatalf("readyz after breaker open: %d %+v", resp.StatusCode, ready)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz must stay 200 while the breaker is open, got %d", resp.StatusCode)
	}

	// Fail-fast path keeps the same 503 shape.
	resp, body = postSQL(t, ts, resilienceRT)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("breaker-open query: %d (%s)", resp.StatusCode, body)
	}

	// Stats expose the new counters.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	for _, key := range []string{"oracle_retries", "oracle_timeouts", "breaker_state", "wal_records", "wal_replayed"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats lack %q: %v", key, stats)
		}
	}
	if stats["breaker_state"].(float64) != 1 {
		t.Fatalf("breaker_state = %v, want 1", stats["breaker_state"])
	}
	if stats["oracle_retries"].(float64) == 0 {
		t.Fatal("oracle_retries = 0 despite retried failures")
	}
}

// TestJobFailureCarriesDiagnostic pins the async path: a job against a
// dead backend transitions to failed with the unavailability
// diagnostic (including the labels-folded count) in its error string.
func TestJobFailureCarriesDiagnostic(t *testing.T) {
	_, ts := brokenBackendServer(t, 5, Options{
		OracleRetries:    1,
		OracleBackoff:    time.Nanosecond,
		BreakerThreshold: 5,
		BreakerCooldown:  time.Hour,
	})
	body, _ := json.Marshal(QueryRequest{SQL: resilienceRT})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info JobInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&info)
		r.Body.Close()
		if info.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(info.Error, "unavailable") || !strings.Contains(info.Error, "labels folded") {
		t.Fatalf("job error %q lacks the unavailability diagnostic", info.Error)
	}
}

// TestServerKillRestartWALRecovery is the service-level durability
// acceptance test: run a query, shut the server down (simulated crash
// + clean WAL close), boot a fresh server on the same WAL, re-register
// the same dataset, and re-run — every label must come from the store
// (zero re-buys) with a byte-identical result.
func TestServerKillRestartWALRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "labels.wal")
	d := dataset.Beta(randx.New(1), 20000, 0.01, 2)
	opts := Options{LabelWALPath: walPath}

	boot := func() (*Server, *httptest.Server) {
		s, err := Open(7, opts)
		if err != nil {
			t.Fatal(err)
		}
		s.RegisterDataset("beta", d)
		ts := httptest.NewServer(s)
		return s, ts
	}

	s1, ts1 := boot()
	resp, body := postSQL(t, ts1, resilienceRT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %d (%s)", resp.StatusCode, body)
	}
	var cold QueryResponse
	json.Unmarshal(body, &cold)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := boot()
	defer ts2.Close()
	defer s2.Shutdown(context.Background())
	if got := s2.Engine().LabelStore().Stats().WALReplayed; got == 0 {
		t.Fatal("restarted server replayed nothing")
	}
	resp, body = postSQL(t, ts2, resilienceRT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d (%s)", resp.StatusCode, body)
	}
	var warm QueryResponse
	json.Unmarshal(body, &warm)
	if warm.Returned != cold.Returned || warm.OracleCalls != cold.OracleCalls {
		t.Fatalf("post-restart result diverged: %+v vs %+v", warm, cold)
	}
	if warm.LabelCacheHits != warm.OracleCalls {
		t.Fatalf("warm run re-bought labels: %d hits vs %d calls", warm.LabelCacheHits, warm.OracleCalls)
	}
}

// TestReadyzMethod pins the readiness probe's method guard.
func TestReadyzMethod(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/readyz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestBadQueryStaysBadRequest guards the default mapping: an invalid
// statement is still the client's 400, not a 5xx.
func TestBadQueryStaysBadRequest(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, _ := postSQL(t, ts, "SELECT nonsense")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
