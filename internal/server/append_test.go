package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

func tauString(tau *float64) string {
	if tau == nil {
		return "null"
	}
	return fmt.Sprintf("%x", *tau)
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func putBody(t *testing.T, srv *Server, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPut, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func csvBytes(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func queryOnce(t *testing.T, srv *Server, sql string) QueryResponse {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql, IncludeIndices: true})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAppendEndpoint covers the dataset-append API: upload, append via
// CSV and binary, summaries updated, incremental proxy cost, and
// byte-identical answers versus a server given the combined upload.
func TestAppendEndpoint(t *testing.T) {
	base := dataset.Beta(randx.New(21), 6000, 0.01, 2)
	extra := dataset.Beta(randx.New(22), 2000, 0.01, 2)
	sql := `SELECT * FROM t WHERE t_oracle(x) ORACLE LIMIT 300 USING t_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

	grown := NewWithOptions(9, Options{SegmentSize: 512})
	defer shutdownServer(t, grown)
	if w := putBody(t, grown, "/v1/datasets/t", "", csvBytes(t, base)); w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	// Warm the index so the append exercises the incremental path.
	first := queryOnce(t, grown, sql)
	if first.ProxyCalls != base.Len() {
		t.Fatalf("warmup proxy calls = %d, want %d", first.ProxyCalls, base.Len())
	}

	w := putBody(t, grown, "/v1/datasets/t/append", "", csvBytes(t, extra))
	if w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	var ar AppendResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Appended != extra.Len() || ar.Records != base.Len()+extra.Len() {
		t.Fatalf("append response %+v, want appended=%d records=%d", ar, extra.Len(), base.Len()+extra.Len())
	}

	after := queryOnce(t, grown, sql)
	if after.ProxyCalls != extra.Len() {
		t.Fatalf("post-append proxy calls = %d, want only the %d appended records", after.ProxyCalls, extra.Len())
	}

	// A fresh server uploaded with the combined dataset must agree
	// byte for byte (same seed, same SQL, same sampling stream).
	fresh := NewWithOptions(9, Options{SegmentSize: 512})
	defer shutdownServer(t, fresh)
	if w := putBody(t, fresh, "/v1/datasets/t", "", csvBytes(t, base.Append(extra))); w.Code != http.StatusCreated {
		t.Fatalf("combined upload: %d %s", w.Code, w.Body.String())
	}
	want := queryOnce(t, fresh, sql)
	// ProxyCalls legitimately differ (incremental vs full scan); the
	// answer itself must not.
	if tauString(after.Tau) != tauString(want.Tau) || after.Returned != want.Returned ||
		after.OracleCalls != want.OracleCalls || len(after.Indices) != len(want.Indices) {
		t.Fatalf("append path answer differs from combined upload:\n%+v\nvs\n%+v", after, want)
	}
	for i := range want.Indices {
		if after.Indices[i] != want.Indices[i] {
			t.Fatalf("record %d differs: %d vs %d", i, after.Indices[i], want.Indices[i])
		}
	}

	// The dataset listing reflects the combined summary.
	req := httptest.NewRequest(http.MethodGet, "/v1/datasets", nil)
	lw := httptest.NewRecorder()
	grown.ServeHTTP(lw, req)
	var infos []DatasetInfo
	if err := json.Unmarshal(lw.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Records != base.Len()+extra.Len() {
		t.Fatalf("listing %+v, want one %d-record dataset", infos, base.Len()+extra.Len())
	}
}

// TestAppendEndpointBinary appends in the binary interchange format.
func TestAppendEndpointBinary(t *testing.T) {
	base := dataset.Beta(randx.New(31), 1000, 0.5, 1)
	extra := dataset.Beta(randx.New(32), 400, 0.5, 1)
	srv := New(3)
	defer shutdownServer(t, srv)

	var baseBuf, extraBuf bytes.Buffer
	if err := dataset.WriteBinary(&baseBuf, base); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBinary(&extraBuf, extra); err != nil {
		t.Fatal(err)
	}
	if w := putBody(t, srv, "/v1/datasets/b", "application/octet-stream", baseBuf.Bytes()); w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	w := putBody(t, srv, "/v1/datasets/b/append", "application/octet-stream", extraBuf.Bytes())
	if w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	var ar AppendResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Records != base.Len()+extra.Len() {
		t.Fatalf("records = %d, want %d", ar.Records, base.Len()+extra.Len())
	}
}

// TestAppendEndpointErrors: unknown datasets 404, malformed bodies 400.
func TestAppendEndpointErrors(t *testing.T) {
	srv := New(1)
	defer shutdownServer(t, srv)
	if w := putBody(t, srv, "/v1/datasets/nope/append", "", csvBytes(t, dataset.Beta(randx.New(1), 10, 0.5, 1))); w.Code != http.StatusNotFound {
		t.Fatalf("append to unknown dataset: %d, want 404", w.Code)
	}
	srv.RegisterDataset("d", dataset.Beta(randx.New(2), 100, 0.5, 1))
	if w := putBody(t, srv, "/v1/datasets/d/append", "", []byte("not,a,valid\ncsv")); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed append body: %d, want 400", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/datasets/d/append", strings.NewReader(""))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET append: %d, want 405", w.Code)
	}
}
