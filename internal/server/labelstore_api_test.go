package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

const storeSQL = `SELECT * FROM beta WHERE beta_oracle(x) = true ORACLE LIMIT 400 ` +
	`USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

func postQueryOK(t *testing.T, url string, req QueryRequest) QueryResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/query", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLabelStoreSharedAcrossQueriesAndJobs: a synchronous query warms
// the store, an async job of the same statement is served from it, and
// /v1/stats exposes the hit/miss counters. Charged mode keeps the
// job's result identical to the cold run.
func TestLabelStoreSharedAcrossQueriesAndJobs(t *testing.T) {
	_, ts := newJobTestServer(t, Options{Workers: 1})

	cold := postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL, IncludeIndices: true})
	if cold.LabelCacheHits != 0 {
		t.Errorf("cold query reported %d cache hits", cold.LabelCacheHits)
	}

	info := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: storeSQL, IncludeIndices: true}), http.StatusAccepted)
	final := waitJob(t, ts.URL, info.ID)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("job = %+v, want done with result", final)
	}
	warm := *final.Result
	if warm.LabelCacheHits != warm.OracleCalls || warm.LabelCacheHits == 0 {
		t.Errorf("warm job: %d cache hits / %d oracle calls, want all charged calls served from store",
			warm.LabelCacheHits, warm.OracleCalls)
	}
	if warm.OracleCalls != cold.OracleCalls || warm.Returned != cold.Returned {
		t.Errorf("warm job diverged: calls %d/%d returned %d/%d",
			warm.OracleCalls, cold.OracleCalls, warm.Returned, cold.Returned)
	}
	if len(warm.Indices) != len(cold.Indices) {
		t.Fatalf("warm indices %d, cold %d", len(warm.Indices), len(cold.Indices))
	}
	for i := range warm.Indices {
		if warm.Indices[i] != cold.Indices[i] {
			t.Fatalf("index %d diverged", i)
		}
	}
	// The job's progress accounting must agree with the final call
	// count even though every label came from the store.
	if final.OracleCalls != warm.OracleCalls {
		t.Errorf("job progress %d != result oracle calls %d", final.OracleCalls, warm.OracleCalls)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Hits   int64 `json:"label_cache_hits"`
		Misses int64 `json:"label_cache_misses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Errorf("stats label cache hits/misses = %d/%d, want both > 0", stats.Hits, stats.Misses)
	}
}

// TestFreeReuseRequestField: the free_reuse request flag makes warm
// hits free, so a fully-warm query charges zero oracle calls.
func TestFreeReuseRequestField(t *testing.T) {
	_, ts := newJobTestServer(t, Options{})
	cold := postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL})
	if cold.OracleCalls == 0 {
		t.Fatal("cold query consumed no budget")
	}
	free := postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL, FreeReuse: true})
	if free.OracleCalls != 0 {
		t.Errorf("warm free_reuse query charged %d calls, want 0", free.OracleCalls)
	}
	if free.LabelCacheHits == 0 {
		t.Error("warm free_reuse query reported no cache hits")
	}
}

// TestLabelStoreDisabledOption: a negative LabelCacheBytes turns
// reuse off — repeated queries re-pay the oracle.
func TestLabelStoreDisabledOption(t *testing.T) {
	_, ts := newJobTestServer(t, Options{LabelCacheBytes: -1})
	postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL})
	warm := postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL})
	if warm.LabelCacheHits != 0 {
		t.Errorf("disabled store served %d hits", warm.LabelCacheHits)
	}
}

// TestUploadInvalidatesLabelCache: re-uploading a dataset re-registers
// its table and default UDFs, so stored labels must not carry over.
func TestUploadInvalidatesLabelCache(t *testing.T) {
	s, ts := newJobTestServer(t, Options{})
	postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL}) // warm the store
	if s.engine.LabelStore().Len() == 0 {
		t.Fatal("store empty after a query")
	}
	// Re-register the same dataset under the same name.
	s.mu.RLock()
	d := s.datasets["beta"]
	s.mu.RUnlock()
	s.RegisterDataset("beta", d)
	res := postQueryOK(t, ts.URL, QueryRequest{SQL: storeSQL})
	if res.LabelCacheHits != 0 {
		t.Errorf("query after re-registration served %d stale hits", res.LabelCacheHits)
	}
}
