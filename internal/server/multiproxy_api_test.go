package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

// newFusedTestServer is a server whose dataset has a second registered
// proxy view (sqrt of the calibrated score), so FUSE queries have two
// member columns to combine.
func newFusedTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWithOptions(7, opts)
	d := dataset.Beta(randx.New(1), 20_000, 0.01, 2)
	s.RegisterDataset("beta", d)
	s.RegisterProxy("beta_proxy_soft", func(i int) float64 { return math.Sqrt(d.Score(i)) })
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

const fusedSQL = `SELECT * FROM beta WHERE beta_oracle(x) = true ` +
	`ORACLE LIMIT 500 USING FUSE(logistic, beta_proxy(x), beta_proxy_soft(x)) CALIBRATE 100 ` +
	`RECALL TARGET 90% WITH PROBABILITY 95%`

// postFused runs the fused query through /v1/query via the shared
// postQuery helper, failing the test on a non-200.
func postFused(t *testing.T, ts *httptest.Server, req QueryRequest) QueryResponse {
	t.Helper()
	resp, qr := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	return qr
}

// TestMultiProxyQueryOverHTTP runs a fused logistic query through
// /v1/query twice: the first run builds and calibrates the fused
// index, the second is served entirely from cache (no proxy calls, no
// calibration) with identical results.
func TestMultiProxyQueryOverHTTP(t *testing.T) {
	_, ts := newFusedTestServer(t, Options{})

	cold := postFused(t, ts, QueryRequest{SQL: fusedSQL, IncludeIndices: true})
	if cold.Fusion != "logistic" {
		t.Errorf("fusion %q", cold.Fusion)
	}
	if cold.CalibrationCalls != 100 {
		t.Errorf("calibration_calls %d, want 100", cold.CalibrationCalls)
	}
	if cold.ProxyCalls != 2*20_000 {
		t.Errorf("proxy_calls %d, want %d", cold.ProxyCalls, 2*20_000)
	}
	if cold.Returned == 0 || cold.AchievedRecall == 0 {
		t.Errorf("degenerate result %+v", cold)
	}

	warm := postFused(t, ts, QueryRequest{SQL: fusedSQL, IncludeIndices: true})
	if warm.ProxyCalls != 0 || warm.CalibrationCalls != 0 {
		t.Errorf("second run rebuilt: proxy_calls=%d calibration_calls=%d", warm.ProxyCalls, warm.CalibrationCalls)
	}
	if warm.Returned != cold.Returned || warm.OracleCalls != cold.OracleCalls {
		t.Errorf("warm result drifted: %+v vs %+v", warm, cold)
	}
	if len(warm.Indices) != len(cold.Indices) {
		t.Fatalf("indices %d vs %d", len(warm.Indices), len(cold.Indices))
	}
	for i := range warm.Indices {
		if warm.Indices[i] != cold.Indices[i] {
			t.Fatalf("index %d: %d vs %d", i, warm.Indices[i], cold.Indices[i])
		}
	}
}

// TestMultiProxyJobOverHTTP submits the same fused query through the
// async job API and checks it matches the synchronous result — jobs
// and queries share one engine, one fused index, and one label store.
func TestMultiProxyJobOverHTTP(t *testing.T) {
	_, ts := newFusedTestServer(t, Options{Workers: 2})

	sync := postFused(t, ts, QueryRequest{SQL: fusedSQL, IncludeIndices: true})

	info := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", QueryRequest{SQL: fusedSQL, IncludeIndices: true}), http.StatusAccepted)
	final := waitJob(t, ts.URL, info.ID)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("job finished %q (error %q)", final.State, final.Error)
	}
	job := *final.Result
	if job.Fusion != "logistic" {
		t.Errorf("job fusion %q", job.Fusion)
	}
	// The sync run already built the fused index; the job reuses it.
	if job.ProxyCalls != 0 || job.CalibrationCalls != 0 {
		t.Errorf("job rebuilt the fused index: proxy_calls=%d calibration_calls=%d", job.ProxyCalls, job.CalibrationCalls)
	}
	if job.Returned != sync.Returned || job.OracleCalls != sync.OracleCalls {
		t.Errorf("job result drifted from sync: %+v vs %+v", job, sync)
	}
	for i := range job.Indices {
		if job.Indices[i] != sync.Indices[i] {
			t.Fatalf("index %d: %d vs %d", i, job.Indices[i], sync.Indices[i])
		}
	}
}

// TestSingleProxyResponseOmitsFusionFields pins the wire shape: classic
// queries carry no fusion keys at all.
func TestSingleProxyResponseOmitsFusionFields(t *testing.T) {
	_, ts := newFusedTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{SQL: jobSQL})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fusion", "calibration_calls", "calibration_cache_hits"} {
		if _, ok := raw[key]; ok {
			t.Errorf("single-proxy response leaked %q", key)
		}
	}
}
