package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"supg/internal/randx"
)

func TestUniformWithoutReplacementDistinct(t *testing.T) {
	r := randx.New(1)
	idx := UniformWithoutReplacement(r, 100, 40)
	if len(idx) != 40 {
		t.Fatalf("got %d indices, want 40", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestUniformWithoutReplacementExhaustive(t *testing.T) {
	r := randx.New(2)
	idx := UniformWithoutReplacement(r, 10, 25)
	if len(idx) != 10 {
		t.Fatalf("k > n should return all n, got %d", len(idx))
	}
}

func TestUniformWithoutReplacementEdge(t *testing.T) {
	r := randx.New(3)
	if UniformWithoutReplacement(r, 0, 5) != nil {
		t.Error("n=0 should return nil")
	}
	if UniformWithoutReplacement(r, 5, 0) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestUniformWithoutReplacementUniformity(t *testing.T) {
	r := randx.New(4)
	counts := make([]int, 20)
	trials := 20000
	for i := 0; i < trials; i++ {
		for _, j := range UniformWithoutReplacement(r, 20, 5) {
			counts[j]++
		}
	}
	// Each index should appear with probability 5/20 = 0.25.
	want := float64(trials) * 0.25
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("index %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestUniformWithReplacement(t *testing.T) {
	r := randx.New(5)
	idx := UniformWithReplacement(r, 10, 1000)
	if len(idx) != 1000 {
		t.Fatalf("got %d draws", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestReservoirMatchesUniform(t *testing.T) {
	r := randx.New(6)
	counts := make([]int, 30)
	trials := 20000
	for i := 0; i < trials; i++ {
		for _, j := range Reservoir(r, 30, 6) {
			counts[j]++
		}
	}
	want := float64(trials) * 6 / 30
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("reservoir index %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestReservoirDistinct(t *testing.T) {
	r := randx.New(7)
	idx := Reservoir(r, 50, 10)
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate %d", i)
		}
		seen[i] = true
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := randx.New(8)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	counts := make([]int, 4)
	trials := 100000
	for i := 0; i < trials; i++ {
		counts[a.Draw(r)]++
	}
	for i, w := range weights {
		want := w / 10 * float64(trials)
		if math.Abs(float64(counts[i])-want) > 0.05*want {
			t.Fatalf("weight %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	r := randx.New(9)
	a := NewAlias([]float64{0, 1, 0, 1})
	for i := 0; i < 10000; i++ {
		j := a.Draw(r)
		if j == 0 || j == 2 {
			t.Fatalf("zero-weight index %d drawn", j)
		}
	}
}

func TestAliasSingleElement(t *testing.T) {
	r := randx.New(10)
	a := NewAlias([]float64{3.5})
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-element alias must always draw 0")
		}
	}
}

func TestAliasNilCases(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Error("empty weights should give nil")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Error("all-zero weights should give nil")
	}
}

func TestAliasPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	NewAlias([]float64{1, -1})
}

func TestAliasPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN weight")
		}
	}()
	NewAlias([]float64{1, math.NaN()})
}

func TestAliasSkewedWeights(t *testing.T) {
	r := randx.New(11)
	// Heavily skewed: index 0 holds 99.9% of mass.
	weights := make([]float64, 100)
	weights[0] = 999
	for i := 1; i < 100; i++ {
		weights[i] = 999.0 / 99 / 1000
	}
	a := NewAlias(weights)
	hits := 0
	trials := 50000
	for i := 0; i < trials; i++ {
		if a.Draw(r) == 0 {
			hits++
		}
	}
	rate := float64(hits) / float64(trials)
	if math.Abs(rate-0.999) > 0.005 {
		t.Fatalf("skewed alias rate %v, want ~0.999", rate)
	}
}

func TestWeightedWithReplacement(t *testing.T) {
	r := randx.New(12)
	idx := WeightedWithReplacement(r, []float64{0, 0, 5}, 100)
	for _, i := range idx {
		if i != 2 {
			t.Fatalf("only index 2 has weight; drew %d", i)
		}
	}
	if WeightedWithReplacement(r, []float64{0}, 10) != nil {
		t.Error("zero-mass weights should give nil")
	}
}

func TestDefensiveWeightsSumToOne(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9, 0.0, 1.0}
	for _, exp := range []float64{0, 0.5, 1, 0.3} {
		for _, mix := range []float64{0, 0.1, 0.5, 1} {
			w := DefensiveWeights(scores, exp, mix)
			sum := 0.0
			for _, v := range w {
				if v < 0 {
					t.Fatalf("negative weight %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("exp=%v mix=%v: weights sum to %v", exp, mix, sum)
			}
		}
	}
}

func TestDefensiveWeightsMixingFloor(t *testing.T) {
	scores := []float64{0, 0, 0, 1}
	w := DefensiveWeights(scores, 0.5, 0.1)
	floor := 0.1 / 4
	for i := 0; i < 3; i++ {
		if math.Abs(w[i]-floor) > 1e-12 {
			t.Fatalf("zero-score weight %v, want mixing floor %v", w[i], floor)
		}
	}
	if w[3] <= w[0] {
		t.Fatal("high score should outweigh zero scores")
	}
}

func TestDefensiveWeightsUniformWhenExponentZero(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.4}
	w := DefensiveWeights(scores, 0, 0.1)
	for _, v := range w {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("exponent 0 should be uniform, got %v", w)
		}
	}
}

func TestDefensiveWeightsAllZeroScores(t *testing.T) {
	w := DefensiveWeights([]float64{0, 0}, 0.5, 0)
	for _, v := range w {
		if v != 0.5 {
			t.Fatalf("all-zero scores should fall back to uniform, got %v", w)
		}
	}
}

func TestDefensiveWeightsSqrtShape(t *testing.T) {
	// With mix=0, weights should be proportional to sqrt(score).
	w := DefensiveWeights([]float64{0.25, 1.0}, 0.5, 0)
	if math.Abs(w[1]/w[0]-2) > 1e-9 {
		t.Fatalf("sqrt weights ratio %v, want 2", w[1]/w[0])
	}
}

func TestDefensiveWeightsClampsMix(t *testing.T) {
	w := DefensiveWeights([]float64{0.3, 0.6}, 0.5, 2.5) // mix > 1 clamps to uniform
	if math.Abs(w[0]-0.5) > 1e-12 {
		t.Fatalf("mix>1 should clamp to uniform, got %v", w)
	}
}

// Property: every defensive weight is at least mix/n.
func TestDefensiveWeightsFloorProperty(t *testing.T) {
	f := func(raw []float64, mixRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = math.Mod(math.Abs(v), 1)
		}
		mix := math.Mod(math.Abs(mixRaw), 1)
		w := DefensiveWeights(scores, 0.5, mix)
		floor := mix / float64(len(scores))
		for _, v := range w {
			if v < floor-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: uniform sampling without replacement returns sorted-unique
// sets covering only valid indices.
func TestUniformWithoutReplacementProperty(t *testing.T) {
	r := randx.New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw % 120)
		idx := UniformWithoutReplacement(r, n, k)
		want := k
		if want > n {
			want = n
		}
		if k == 0 {
			return idx == nil
		}
		if len(idx) != want {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDrawNIntoMatchesDrawN pins the interchangeability contract: for
// a fixed seed, DrawNInto fills exactly the sequence DrawN allocates,
// including over a recycled buffer holding stale values.
func TestDrawNIntoMatchesDrawN(t *testing.T) {
	a := NewAlias([]float64{0.5, 1, 0, 2.5, 0.25})
	want := a.DrawN(randx.New(31), 100)
	got := a.DrawNInto(randx.New(31), make([]int, 100))
	dirty := make([]int, 100)
	for i := range dirty {
		dirty[i] = -1
	}
	reused := a.DrawNInto(randx.New(31), dirty)
	for i := range want {
		if got[i] != want[i] || reused[i] != want[i] {
			t.Fatalf("draw %d: into=%d reused=%d, DrawN=%d", i, got[i], reused[i], want[i])
		}
	}
	if out := a.DrawNInto(randx.New(31), nil); len(out) != 0 {
		t.Fatalf("DrawNInto(nil) returned %d draws", len(out))
	}
}
