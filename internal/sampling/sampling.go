// Package sampling implements the record-selection substrates SUPG needs:
// uniform sampling without replacement, weighted (importance) sampling
// with replacement via the Vose alias method, reservoir sampling, and
// the defensive-mixture weight construction from the paper's Algorithms
// 4 and 5.
package sampling

import (
	"math"

	"supg/internal/randx"
)

// UniformWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n) using Floyd's algorithm: O(k) memory and O(k) expected
// time, with no O(n) index table (the historical partial Fisher–Yates
// allocated and initialized all n slots per call). If k >= n it
// returns all n indices in order. Output is deterministic for a fixed
// random stream; the draw order is not uniformly shuffled, which no
// caller relies on (labeled samples are re-sorted by proxy score).
func UniformWithoutReplacement(r *randx.Rand, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// UniformWithReplacement returns k indices drawn uniformly with
// replacement from [0, n).
func UniformWithReplacement(r *randx.Rand, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	out := make([]int, k)
	for i := range out {
		out[i] = r.IntN(n)
	}
	return out
}

// Reservoir returns k indices sampled uniformly without replacement from
// a stream of n items using Vitter's Algorithm R. Unlike
// UniformWithoutReplacement (Floyd's sampler, which needs n up front)
// it processes items one at a time, so it suits single-pass streaming
// contexts where the population size is not known in advance.
func Reservoir(r *randx.Rand, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.IntN(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}

// Alias is a Walker/Vose alias table supporting O(1) draws from an
// arbitrary discrete distribution over [0, n).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. Weights need
// not be normalized. It returns nil if no weight is positive.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("sampling: alias weights must be finite and non-negative")
		}
		total += w
	}
	if n == 0 || total <= 0 {
		return nil
	}

	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1 // numerical residue
		alias[i] = i
	}
	return &Alias{prob: prob, alias: alias}
}

// Draw returns one index distributed according to the table's weights.
func (a *Alias) Draw(r *randx.Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// DrawN returns k indices drawn with replacement.
func (a *Alias) DrawN(r *randx.Rand, k int) []int {
	return a.DrawNInto(r, make([]int, k))
}

// DrawNInto fills dst with len(dst) indices drawn with replacement and
// returns it. It is the allocation-free form of DrawN for callers that
// recycle scratch buffers: the draws consume the random stream exactly
// as DrawN does, so the two are interchangeable result-wise.
func (a *Alias) DrawNInto(r *randx.Rand, dst []int) []int {
	for i := range dst {
		dst[i] = a.Draw(r)
	}
	return dst
}

// Len returns the support size of the table.
func (a *Alias) Len() int { return len(a.prob) }

// WeightedWithReplacement returns k indices drawn with replacement with
// probability proportional to weights.
func WeightedWithReplacement(r *randx.Rand, weights []float64, k int) []int {
	a := NewAlias(weights)
	if a == nil || k <= 0 {
		return nil
	}
	return a.DrawN(r, k)
}

// DefensiveWeights builds the sampling distribution of Algorithms 4/5:
// each proxy score is raised to exponent, normalized to sum 1, and mixed
// with the uniform distribution: w = (1-mix)·pow/||pow||₁ + mix·1/n.
// The paper uses exponent 0.5 and mix 0.1. The returned slice sums to 1.
// Scores are clamped at 0 before exponentiation. If every transformed
// score is zero the result is fully uniform.
func DefensiveWeights(scores []float64, exponent, mix float64) []float64 {
	n := len(scores)
	if n == 0 {
		return nil
	}
	if mix < 0 {
		mix = 0
	}
	if mix > 1 {
		mix = 1
	}
	w := make([]float64, n)
	total := 0.0
	for i, s := range scores {
		if s < 0 {
			s = 0
		}
		var v float64
		switch {
		case exponent == 0:
			v = 1
		case exponent == 1:
			v = s
		case exponent == 0.5:
			v = math.Sqrt(s)
		default:
			v = math.Pow(s, exponent)
		}
		w[i] = v
		total += v
	}
	uniform := 1.0 / float64(n)
	if total <= 0 {
		for i := range w {
			w[i] = uniform
		}
		return w
	}
	for i := range w {
		w[i] = (1-mix)*w[i]/total + mix*uniform
	}
	return w
}
