package sampling

import (
	"math"
	"testing"

	"supg/internal/randx"
)

// Tests specific to the Floyd combination sampler backing
// UniformWithoutReplacement (the general contract — distinctness,
// range, k >= n truncation — is covered in sampling_test.go).

func TestFloydDeterministicForFixedSeed(t *testing.T) {
	a := UniformWithoutReplacement(randx.New(77), 1000, 50)
	b := UniformWithoutReplacement(randx.New(77), 1000, 50)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d vs %d — same seed must reproduce", i, a[i], b[i])
		}
	}
}

func TestFloydKEqualsN(t *testing.T) {
	idx := UniformWithoutReplacement(randx.New(3), 7, 7)
	if len(idx) != 7 {
		t.Fatalf("k == n must return all %d indices, got %d", 7, len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		seen[i] = true
	}
	if len(seen) != 7 {
		t.Fatalf("k == n must cover every index, got %v", idx)
	}
}

func TestFloydNearFullSample(t *testing.T) {
	// k = n-1 exercises the duplicate-replacement branch heavily.
	idx := UniformWithoutReplacement(randx.New(9), 50, 49)
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("invalid or duplicate index %d", i)
		}
		seen[i] = true
	}
}

// TestFloydUniformityChiSquare checks per-index inclusion frequencies
// against the 5% binomial expectation with a generous chi-square-style
// tolerance; it complements the coarser 10% check on the shared
// contract test.
func TestFloydUniformityChiSquare(t *testing.T) {
	r := randx.New(123)
	n, k, trials := 40, 10, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, j := range UniformWithoutReplacement(r, n, k) {
			counts[j]++
		}
	}
	p := float64(k) / float64(n)
	want := float64(trials) * p
	sigma := math.Sqrt(float64(trials) * p * (1 - p))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Fatalf("index %d drawn %d times, want %v ± %v", i, c, want, 5*sigma)
		}
	}
}

func TestFloydAllocatesOnlyK(t *testing.T) {
	idx := UniformWithoutReplacement(randx.New(4), 1<<20, 16)
	if cap(idx) != 16 {
		t.Fatalf("Floyd sampler must allocate O(k), got capacity %d", cap(idx))
	}
}
