package proxy

import (
	"math"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

func TestReliabilityBucketsPartition(t *testing.T) {
	d := dataset.Beta(randx.New(1), 50000, 2, 2)
	rel := Reliability(d, 10)
	if len(rel) != 10 {
		t.Fatalf("got %d buckets", len(rel))
	}
	total := 0
	for i, b := range rel {
		total += b.Count
		if b.Positives > b.Count {
			t.Fatalf("bucket %d has more positives than records", i)
		}
		if b.Count > 0 && (b.MeanScore < b.Lo-1e-9 || b.MeanScore > b.Hi+1e-9) {
			t.Fatalf("bucket %d mean score %v outside [%v,%v)", i, b.MeanScore, b.Lo, b.Hi)
		}
	}
	if total != d.Len() {
		t.Fatalf("buckets cover %d of %d records", total, d.Len())
	}
}

func TestReliabilityCalibratedProxy(t *testing.T) {
	// Beta datasets are calibrated by construction: bucket match rates
	// should track bucket confidences.
	d := dataset.Beta(randx.New(2), 200000, 2, 2)
	for _, b := range Reliability(d, 10) {
		if b.Count < 500 {
			continue
		}
		if math.Abs(b.MatchRate()-b.MeanScore) > 0.05 {
			t.Errorf("bucket [%v,%v): match rate %v vs confidence %v", b.Lo, b.Hi, b.MatchRate(), b.MeanScore)
		}
	}
}

func TestReliabilityDefaultBuckets(t *testing.T) {
	d := dataset.Beta(randx.New(3), 1000, 1, 1)
	if len(Reliability(d, 0)) != 10 {
		t.Error("bucket count should default to 10")
	}
}

func TestECECalibratedIsSmall(t *testing.T) {
	d := dataset.Beta(randx.New(4), 200000, 2, 2)
	if e := ECE(d, 10); e > 0.02 {
		t.Errorf("calibrated proxy ECE %v too large", e)
	}
}

func TestECEMiscalibratedIsLarger(t *testing.T) {
	d := dataset.Beta(randx.New(5), 100000, 2, 2)
	warped := MonotoneDistort(d, 3) // scores^3: same ranking, bad calibration
	if ECE(warped, 10) <= ECE(d, 10) {
		t.Error("monotone distortion should increase ECE")
	}
}

func TestMonotoneDistortPreservesOrder(t *testing.T) {
	d := dataset.MustNew("o", []float64{0.2, 0.8, 0.5}, []bool{false, true, false})
	w := MonotoneDistort(d, 2.5)
	if !(w.Score(0) < w.Score(2) && w.Score(2) < w.Score(1)) {
		t.Error("distortion broke score ordering")
	}
	if d.Score(0) != 0.2 {
		t.Error("distortion mutated the original")
	}
}

func TestMonotoneDistortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gamma <= 0 should panic")
		}
	}()
	MonotoneDistort(dataset.MustNew("p", []float64{0.5}, []bool{true}), 0)
}

func TestInvert(t *testing.T) {
	d := dataset.MustNew("i", []float64{0.2, 0.9}, []bool{false, true})
	inv := Invert(d)
	if inv.Score(0) != 0.8 || math.Abs(inv.Score(1)-0.1) > 1e-12 {
		t.Errorf("Invert scores: %v %v", inv.Score(0), inv.Score(1))
	}
	if inv.TrueLabel(1) != true {
		t.Error("Invert must not change labels")
	}
}

func TestDatasetScorer(t *testing.T) {
	d := dataset.MustNew("s", []float64{0.3, 0.7}, []bool{false, true})
	s := DatasetScorer{D: d}
	if s.Len() != 2 || s.Score(1) != 0.7 {
		t.Error("DatasetScorer accessors")
	}
}
