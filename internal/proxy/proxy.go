// Package proxy provides proxy-model abstractions and diagnostics. The
// SUPG algorithms consume a proxy only through its scores; this package
// adds the calibration analysis the paper uses to justify thresholding
// (bucketed empirical match rates, §4.2) plus score transforms for
// building miscalibrated and adversarial proxies in tests and ablations.
package proxy

import (
	"fmt"
	"math"

	"supg/internal/dataset"
)

// Scorer exposes proxy confidence scores for records of a dataset.
type Scorer interface {
	// Score returns the proxy confidence A(x) in [0,1] for record i.
	Score(i int) float64
	// Len returns the number of scorable records.
	Len() int
}

// DatasetScorer adapts a dataset's score column to the Scorer interface.
type DatasetScorer struct{ D *dataset.Dataset }

// Score implements Scorer.
func (s DatasetScorer) Score(i int) float64 { return s.D.Score(i) }

// Len implements Scorer.
func (s DatasetScorer) Len() int { return s.D.Len() }

// ReliabilityBucket is one row of a calibration (reliability) diagram:
// records whose score falls in [Lo, Hi) with their empirical match rate.
type ReliabilityBucket struct {
	Lo, Hi    float64
	Count     int
	Positives int
	MeanScore float64
}

// MatchRate returns the empirical positive rate in the bucket.
func (b ReliabilityBucket) MatchRate() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Positives) / float64(b.Count)
}

// Reliability computes a reliability diagram over equal-width score
// buckets using ground-truth labels. It is an evaluation tool: it reads
// true labels directly and must not be used inside query execution.
func Reliability(d *dataset.Dataset, buckets int) []ReliabilityBucket {
	if buckets <= 0 {
		buckets = 10
	}
	out := make([]ReliabilityBucket, buckets)
	for i := range out {
		w := 1.0 / float64(buckets)
		out[i].Lo = float64(i) * w
		out[i].Hi = out[i].Lo + w
	}
	for i := 0; i < d.Len(); i++ {
		s := d.Score(i)
		b := int(s * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		out[b].Count++
		out[b].MeanScore += s
		if d.TrueLabel(i) {
			out[b].Positives++
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].MeanScore /= float64(out[i].Count)
		}
	}
	return out
}

// ECE returns the expected calibration error: the count-weighted mean
// absolute gap between bucket confidence and bucket match rate.
func ECE(d *dataset.Dataset, buckets int) float64 {
	rel := Reliability(d, buckets)
	total := 0
	sum := 0.0
	for _, b := range rel {
		total += b.Count
		sum += float64(b.Count) * math.Abs(b.MeanScore-b.MatchRate())
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// MonotoneDistort returns a copy of d with scores warped by the
// monotone map s^gamma. Monotone warps preserve the ranking (so
// threshold selection still works) while destroying calibration —
// useful for testing that guarantees do not depend on calibration.
func MonotoneDistort(d *dataset.Dataset, gamma float64) *dataset.Dataset {
	if gamma <= 0 {
		panic(fmt.Sprintf("proxy: MonotoneDistort gamma %g must be positive", gamma))
	}
	out := d.Clone()
	scores := out.Scores()
	for i := range scores {
		scores[i] = math.Pow(scores[i], gamma)
	}
	return out
}

// Invert returns a copy of d with scores replaced by 1-s: an adversarial
// proxy that is perfectly anti-correlated with the labels of the
// original calibrated proxy. Used by the defensive-mixing ablation.
func Invert(d *dataset.Dataset) *dataset.Dataset {
	out := d.Clone()
	scores := out.Scores()
	for i := range scores {
		scores[i] = 1 - scores[i]
	}
	return out
}
