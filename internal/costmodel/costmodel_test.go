package costmodel

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestStandardCostsMatchPaperArithmetic(t *testing.T) {
	costs := StandardCosts()
	byName := map[string]DatasetCosts{}
	for _, c := range costs {
		byName[c.Name] = c
	}

	// night-street: 10k oracle calls at ~$0.00025 each ~= $2.5 and the
	// 972k-frame exhaustive scan ~= $243 (the paper's Table 5 values).
	night := byName["night"]
	if got := float64(night.Budget) * night.OraclePerCall; math.Abs(got-2.5) > 0.1 {
		t.Errorf("night oracle cost %v, want ~2.5", got)
	}
	if got := float64(night.Records) * night.OraclePerCall; math.Abs(got-243) > 10 {
		t.Errorf("night exhaustive %v, want ~243", got)
	}

	// Human-labeled datasets: budget x $0.08 = $80 per query;
	// exhaustive = records x $0.08.
	for _, name := range []string{"ImageNet", "OntoNotes", "TACRED"} {
		c := byName[name]
		if c.OraclePerCall != HumanLabelCost {
			t.Errorf("%s oracle per call %v", name, c.OraclePerCall)
		}
		if got := float64(c.Budget) * c.OraclePerCall; math.Abs(got-80) > 1e-9 {
			t.Errorf("%s oracle budget cost %v, want 80", name, got)
		}
	}
	if got := float64(byName["ImageNet"].Records) * HumanLabelCost; math.Abs(got-4000) > 1e-6 {
		t.Errorf("ImageNet exhaustive %v, want 4000", got)
	}
	if got := float64(byName["OntoNotes"].Records) * HumanLabelCost; math.Abs(got-893.2) > 0.5 {
		t.Errorf("OntoNotes exhaustive %v, want ~893", got)
	}
	if got := float64(byName["TACRED"].Records) * HumanLabelCost; math.Abs(got-1810.5) > 0.5 {
		t.Errorf("TACRED exhaustive %v, want ~1810", got)
	}
}

func TestComputeBreakdown(t *testing.T) {
	c := DatasetCosts{Name: "x", OraclePerCall: 0.08, ProxyPerRecord: 1e-6, Records: 100000, Budget: 1000}
	b := Compute(c, 2*time.Second, 1000)
	if b.Oracle != 80 {
		t.Errorf("oracle %v", b.Oracle)
	}
	if math.Abs(b.Proxy-0.1) > 1e-9 {
		t.Errorf("proxy %v", b.Proxy)
	}
	wantSampling := 2 * GPUHourCost / 3600
	if math.Abs(b.Sampling-wantSampling) > 1e-9 {
		t.Errorf("sampling %v, want %v", b.Sampling, wantSampling)
	}
	if math.Abs(b.Total-(b.Sampling+b.Proxy+b.Oracle)) > 1e-12 {
		t.Errorf("total %v", b.Total)
	}
	if b.Exhaustive != 8000 {
		t.Errorf("exhaustive %v", b.Exhaustive)
	}
}

func TestQueryProcessingNegligible(t *testing.T) {
	// The paper's headline: SUPG query processing is orders of
	// magnitude cheaper than the oracle stage.
	for _, c := range StandardCosts() {
		b := Compute(c, 500*time.Millisecond, c.Budget)
		if b.Sampling > b.Oracle/100 {
			t.Errorf("%s: sampling cost %v not negligible vs oracle %v", c.Name, b.Sampling, b.Oracle)
		}
		if b.Total >= b.Exhaustive {
			t.Errorf("%s: SUPG total %v should beat exhaustive %v", c.Name, b.Total, b.Exhaustive)
		}
	}
}

func TestFormat(t *testing.T) {
	b := Compute(StandardCosts()[0], time.Second, 10000)
	s := b.Format()
	if !strings.Contains(s, "night") || !strings.Contains(s, "exhaustive") {
		t.Errorf("format %q", s)
	}
}
