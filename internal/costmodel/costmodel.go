// Package costmodel reproduces the paper's Table 5 cost accounting. It
// prices oracle labels at the Scale API public rate, GPU compute at the
// AWS p3.2xlarge hourly rate, and converts measured query-processing
// wall time into dollars at the same GPU rate (conservative: sampling
// runs on CPU).
package costmodel

import (
	"fmt"
	"time"
)

// Pricing constants from Section 6.5 of the paper.
const (
	// HumanLabelCost is the Scale API cost per labeled example.
	HumanLabelCost = 0.08
	// GPUHourCost is the AWS p3.2xlarge on-demand hourly price.
	GPUHourCost = 3.06
)

// DatasetCosts captures per-record costs for one dataset's oracle and
// proxy models.
type DatasetCosts struct {
	Name string
	// OraclePerCall is the dollar cost of one oracle invocation: the
	// human-label price, or GPU time for a DNN oracle such as
	// night-street's Mask R-CNN.
	OraclePerCall float64
	// ProxyPerRecord is the dollar cost of scoring one record with the
	// proxy model on the GPU.
	ProxyPerRecord float64
	// Records is the dataset size (for exhaustive-labeling cost).
	Records int
	// Budget is the oracle budget the paper uses for SUPG queries.
	Budget int
}

// gpuCostPerSecond converts the hourly GPU price to per-second.
const gpuCostPerSecond = GPUHourCost / 3600

// MaskRCNNThroughput is the oracle DNN throughput (frames/sec) implied
// by the paper's night-street numbers ($2.5 for 10,000 frames).
const MaskRCNNThroughput = 3.4

// StandardCosts returns the per-dataset cost parameters of Table 5.
// Proxy per-record costs are back-derived from the paper's reported
// proxy totals divided by the dataset sizes in DESIGN.md.
func StandardCosts() []DatasetCosts {
	return []DatasetCosts{
		{
			Name:           "night",
			OraclePerCall:  gpuCostPerSecond / MaskRCNNThroughput, // ≈ $0.00025
			ProxyPerRecord: 0.02 / 972_000,
			Records:        972_000,
			Budget:         10_000,
		},
		{
			Name:           "ImageNet",
			OraclePerCall:  HumanLabelCost,
			ProxyPerRecord: 0.01 / 50_000,
			Records:        50_000,
			Budget:         1_000,
		},
		{
			Name:           "OntoNotes",
			OraclePerCall:  HumanLabelCost,
			ProxyPerRecord: 0.02 / 11_165,
			Records:        11_165,
			Budget:         1_000,
		},
		{
			Name:           "TACRED",
			OraclePerCall:  HumanLabelCost,
			ProxyPerRecord: 0.07 / 22_631,
			Records:        22_631,
			Budget:         1_000,
		},
	}
}

// Breakdown is one Table 5 row.
type Breakdown struct {
	Dataset string
	// Sampling is the SUPG query-processing cost (threshold estimation),
	// from measured wall time priced at the GPU rate.
	Sampling float64
	// Proxy is the cost of scoring every record with the proxy model.
	Proxy float64
	// Oracle is the cost of the budgeted oracle sample.
	Oracle float64
	// Total is Sampling + Proxy + Oracle.
	Total float64
	// Exhaustive is the cost of labeling the entire dataset with the
	// oracle (the baseline SUPG avoids).
	Exhaustive float64
}

// Compute prices a query execution: samplingTime is the measured
// threshold-estimation wall time, oracleCalls the budget actually spent.
func Compute(c DatasetCosts, samplingTime time.Duration, oracleCalls int) Breakdown {
	b := Breakdown{
		Dataset:    c.Name,
		Sampling:   samplingTime.Seconds() * gpuCostPerSecond,
		Proxy:      float64(c.Records) * c.ProxyPerRecord,
		Oracle:     float64(oracleCalls) * c.OraclePerCall,
		Exhaustive: float64(c.Records) * c.OraclePerCall,
	}
	b.Total = b.Sampling + b.Proxy + b.Oracle
	return b
}

// Format renders a breakdown row like the paper's Table 5.
func (b Breakdown) Format() string {
	return fmt.Sprintf("%-10s sampling=$%.2g proxy=$%.2f oracle=$%.2f total=$%.2f exhaustive=$%.0f",
		b.Dataset, b.Sampling, b.Proxy, b.Oracle, b.Total, b.Exhaustive)
}
