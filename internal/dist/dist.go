// Package dist provides the Beta-distribution primitives the library
// needs: sampling (for the paper's synthetic Beta-score datasets),
// the regularized incomplete beta function (binomial tail
// probabilities), and the Beta quantile (Clopper-Pearson confidence
// bounds). All routines are dependency-free and deterministic given a
// *randx.Rand.
package dist

import (
	"math"

	"supg/internal/randx"
)

// SampleGamma draws from Gamma(shape, 1) using the Marsaglia-Tsang
// squeeze method, with the standard U^(1/shape) boost for shape < 1.
// It panics if shape is not positive and finite.
func SampleGamma(r *randx.Rand, shape float64) float64 {
	if !(shape > 0) || math.IsInf(shape, 1) {
		panic("dist: gamma shape must be positive and finite")
	}
	if shape < 1 {
		// G(a) =d G(a+1) * U^(1/a); computed in log space by SampleBeta
		// callers that need it — here the direct product is fine for
		// shapes that do not underflow.
		u := 1 - r.Float64() // in (0, 1]
		return marsagliaTsang(r, shape+1) * math.Pow(u, 1/shape)
	}
	return marsagliaTsang(r, shape)
}

// marsagliaTsang draws from Gamma(shape, 1) for shape >= 1.
func marsagliaTsang(r *randx.Rand, shape float64) float64 {
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleLogGamma returns log(G) for G ~ Gamma(shape, 1). Working in log
// space keeps tiny shapes (the paper uses Beta(0.01, ·) scores) from
// underflowing to zero before the Beta ratio is formed.
func sampleLogGamma(r *randx.Rand, shape float64) float64 {
	if shape >= 1 {
		return math.Log(marsagliaTsang(r, shape))
	}
	u := 1 - r.Float64() // in (0, 1]
	return math.Log(marsagliaTsang(r, shape+1)) + math.Log(u)/shape
}

// SampleBeta draws from Beta(alpha, beta) as the gamma ratio
// X/(X+Y), X ~ Gamma(alpha), Y ~ Gamma(beta), evaluated stably in log
// space so extreme shape parameters produce values near (but inside the
// closure of) the correct tail rather than NaN. It panics if either
// shape is not positive and finite.
func SampleBeta(r *randx.Rand, alpha, beta float64) float64 {
	if !(alpha > 0) || !(beta > 0) || math.IsInf(alpha, 1) || math.IsInf(beta, 1) {
		panic("dist: beta shapes must be positive and finite")
	}
	lx := sampleLogGamma(r, alpha)
	ly := sampleLogGamma(r, beta)
	// X/(X+Y) = 1/(1 + exp(ly-lx)); exp overflow saturates to 0 or 1,
	// which is the correct limit.
	d := ly - lx
	if d > 0 {
		e := math.Exp(-d)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(d))
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) for x in [0, 1] and a, b > 0 via the Lentz continued
// fraction, accurate to ~1e-14. Out-of-range x clamps to {0, 1}.
func RegIncBeta(x, a, b float64) float64 {
	if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a + b)
	lgb, _ := math.Lgamma(a)
	lgc, _ := math.Lgamma(b)
	front := math.Exp(lga - lgb - lgc + a*math.Log(x) + b*math.Log1p(-x))
	// The continued fraction converges quickly for x < (a+1)/(a+b+2);
	// use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
	if x < (a+1)/(a+b+2) {
		return front * betacf(x, a, b) / a
	}
	return 1 - front*betacf(1-x, b, a)/b
}

// betacf evaluates the continued fraction of the incomplete beta
// function by the modified Lentz method.
func betacf(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaQuantile returns the p-quantile of Beta(a, b): the x with
// I_x(a, b) = p. Quantiles above the value at 1/2 are reflected
// through I_x(a,b) = 1 - I_{1-x}(b,a); the lower-half solve bisects on
// log(x), which resolves the astronomically small quantiles that
// shapes far below 1 produce (Beta(0.01, 2) at p=0.01 sits near
// 1e-200) where linear bisection would stall at ~1e-16.
func BetaQuantile(p, a, b float64) float64 {
	if math.IsNaN(p) || math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if RegIncBeta(0.5, a, b) < p {
		// The quantile lies in (1/2, 1); solve the mirrored lower-tail
		// problem instead (this cannot re-flip: the mirrored CDF at 1/2
		// is >= the mirrored p by construction).
		return 1 - BetaQuantile(1-p, b, a)
	}
	// Quantile is in (0, 1/2]; bisect t = log(x) down to the subnormal
	// floor. 200 halvings of a ~745-wide interval are far below float64
	// resolution in t, hence below relative epsilon in x = e^t.
	loT, hiT := -745.0, math.Log(0.5)
	for i := 0; i < 200 && hiT-loT > 1e-30; i++ {
		mid := (loT + hiT) / 2
		if RegIncBeta(math.Exp(mid), a, b) < p {
			loT = mid
		} else {
			hiT = mid
		}
	}
	return math.Exp((loT + hiT) / 2)
}
