package dist

import (
	"math"
	"testing"

	"supg/internal/randx"
)

// closeTo fails the test when |got-want| > tol.
func closeTo(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		closeTo(t, "I_x(1,1)", RegIncBeta(x, 1, 1), x, 1e-12)
	}
	// I_x(1, n) = 1 - (1-x)^n.
	closeTo(t, "I_0.3(1,5)", RegIncBeta(0.3, 1, 5), 1-math.Pow(0.7, 5), 1e-12)
	// I_x(2, 2) = 3x^2 - 2x^3.
	closeTo(t, "I_0.3(2,2)", RegIncBeta(0.3, 2, 2), 3*0.09-2*0.027, 1e-12)
	// I_0.4(2, 3) = 0.5248 (binomial identity, n=4, j>=2 at p=0.4).
	closeTo(t, "I_0.4(2,3)", RegIncBeta(0.4, 2, 3), 0.5248, 1e-12)
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	closeTo(t, "symmetry", RegIncBeta(0.37, 2.5, 4.2), 1-RegIncBeta(0.63, 4.2, 2.5), 1e-12)
	// Median of a symmetric Beta is exactly 1/2.
	closeTo(t, "I_0.5(3,3)", RegIncBeta(0.5, 3, 3), 0.5, 1e-12)
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(0, 2, 3) != 0 || RegIncBeta(-1, 2, 3) != 0 {
		t.Error("x <= 0 must give 0")
	}
	if RegIncBeta(1, 2, 3) != 1 || RegIncBeta(2, 2, 3) != 1 {
		t.Error("x >= 1 must give 1")
	}
	if !math.IsNaN(RegIncBeta(math.NaN(), 2, 3)) {
		t.Error("NaN x must propagate")
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := RegIncBeta(x, 0.3, 7)
		if v < prev {
			t.Fatalf("I_x(0.3,7) not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{1, 1}, {2, 2}, {0.5, 0.5}, {5, 1}, {1, 5}, {0.01, 2}, {30, 70},
	}
	for _, c := range cases {
		for _, p := range []float64{0.01, 0.05, 0.5, 0.95, 0.99} {
			x := BetaQuantile(p, c.a, c.b)
			closeTo(t, "roundtrip", RegIncBeta(x, c.a, c.b), p, 1e-9)
		}
	}
}

func TestBetaQuantileKnownValues(t *testing.T) {
	// Beta(1, n): quantile p = 1 - (1-p)^(1/n).
	closeTo(t, "q(0.95;1,10)", BetaQuantile(0.95, 1, 10), 1-math.Pow(0.05, 0.1), 1e-10)
	// Beta(n, 1): quantile p = p^(1/n).
	closeTo(t, "q(0.05;20,1)", BetaQuantile(0.05, 20, 1), math.Pow(0.05, 1.0/20), 1e-10)
	// Symmetric median.
	closeTo(t, "q(0.5;4,4)", BetaQuantile(0.5, 4, 4), 0.5, 1e-10)
	if BetaQuantile(0, 2, 3) != 0 || BetaQuantile(1, 2, 3) != 1 {
		t.Error("p edge cases must clamp to {0, 1}")
	}
}

// TestClopperPearsonEndpoints checks the quantile against the closed
// forms of the exact binomial interval endpoints: with 0 of n successes
// the upper 1-delta bound is 1 - delta^(1/n), and with n of n successes
// the lower bound is delta^(1/n).
func TestClopperPearsonEndpoints(t *testing.T) {
	n := 50.0
	delta := 0.05
	upper := BetaQuantile(1-delta, 1, n) // k=0 upper bound: Beta(1, n)
	closeTo(t, "CP upper k=0", upper, 1-math.Pow(delta, 1/n), 1e-10)
	lower := BetaQuantile(delta, n, 1) // k=n lower bound: Beta(n, 1)
	closeTo(t, "CP lower k=n", lower, math.Pow(delta, 1/n), 1e-10)
}

func TestSampleBetaMoments(t *testing.T) {
	r := randx.New(7)
	cases := []struct{ a, b float64 }{
		{2, 2}, {0.5, 0.5}, {5, 1}, {0.01, 2}, {1, 1},
	}
	const trials = 60000
	for _, c := range cases {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := SampleBeta(r, c.a, c.b)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("Beta(%g,%g) sample %v outside [0,1]", c.a, c.b, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := c.a / (c.a + c.b)
		variance := sumSq/trials - mean*mean
		wantVar := c.a * c.b / ((c.a + c.b) * (c.a + c.b) * (c.a + c.b + 1))
		// 5-sigma-ish tolerance on the sample mean.
		tol := 5*math.Sqrt(wantVar/trials) + 1e-4
		closeTo(t, "mean", mean, wantMean, tol)
		if math.Abs(variance-wantVar) > 0.15*wantVar+1e-4 {
			t.Fatalf("Beta(%g,%g) variance %v, want ~%v", c.a, c.b, variance, wantVar)
		}
	}
}

func TestSampleBetaDeterministic(t *testing.T) {
	a := SampleBeta(randx.New(99), 0.01, 2)
	b := SampleBeta(randx.New(99), 0.01, 2)
	if a != b {
		t.Fatalf("same seed must reproduce: %v vs %v", a, b)
	}
}

func TestSampleGammaMoments(t *testing.T) {
	r := randx.New(8)
	for _, shape := range []float64{0.3, 1, 2.5, 9} {
		const trials = 60000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := SampleGamma(r, shape)
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("Gamma(%g) sample %v negative", shape, v)
			}
			sum += v
		}
		mean := sum / trials
		// Var(Gamma(k,1)) = k, so 5 sigma on the mean:
		tol := 5 * math.Sqrt(shape/trials)
		closeTo(t, "gamma mean", mean, shape, tol)
	}
}

func TestSampleBetaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive shape")
		}
	}()
	SampleBeta(randx.New(1), 0, 1)
}
