package oracle

import (
	"fmt"
	"sync"
	"time"
)

// ChaosOptions configure the fault-injection oracle. The zero value
// injects nothing (a transparent wrapper).
type ChaosOptions struct {
	// Seed drives every random injection decision. Decisions are a pure
	// function of (Seed, record, attempt) — independent of call order
	// and goroutine interleaving — so a chaos run is exactly
	// reproducible.
	Seed uint64
	// FailureRate is the per-attempt probability of injecting a
	// transient failure (0 = never, 1 = always).
	FailureRate float64
	// FailFirst makes the first N attempts of every record fail
	// transiently before the record starts succeeding — the
	// fail-N-then-succeed script for retry tests.
	FailFirst int
	// LatencySpikeRate is the per-attempt probability of sleeping
	// LatencySpike before answering, for timeout tests.
	LatencySpikeRate float64
	// LatencySpike is the injected sleep duration.
	LatencySpike time.Duration
	// PermanentFrom/PermanentTo define a window of global call numbers
	// [From, To) that fail permanently — a backend outage script. The
	// window is counted over calls in arrival order, so use it with
	// sequential dispatch when determinism matters.
	PermanentFrom int
	PermanentTo   int
}

// Chaos wraps an oracle with scripted and randomized fault injection:
// seeded per-attempt transient failures, fail-N-then-succeed scripts,
// latency spikes, and permanent-failure windows. It exists for the
// chaos test battery — proving the resilience layer recovers
// byte-identical results under injected faults — and for demos.
// Injected transient failures are marked with Transient, window
// failures with Permanent, so Classify sees exactly what a
// well-behaved backend would report. Safe for concurrent use.
type Chaos struct {
	inner Oracle
	opts  ChaosOptions

	mu       sync.Mutex
	attempts map[int]int // per-record attempt counter
	calls    int         // global call counter (for the permanent window)

	injectedTransient int
	injectedPermanent int
}

// NewChaos wraps inner with the given fault script.
func NewChaos(inner Oracle, opts ChaosOptions) *Chaos {
	return &Chaos{inner: inner, opts: opts, attempts: make(map[int]int)}
}

// Label implements Oracle, injecting faults per the configured script
// before delegating to the inner oracle.
func (c *Chaos) Label(i int) (bool, error) {
	c.mu.Lock()
	attempt := c.attempts[i]
	c.attempts[i] = attempt + 1
	call := c.calls
	c.calls++
	inWindow := call >= c.opts.PermanentFrom && call < c.opts.PermanentTo
	if inWindow {
		c.injectedPermanent++
	}
	c.mu.Unlock()

	if inWindow {
		return false, Permanent(fmt.Errorf("chaos: permanent outage window (call %d)", call))
	}
	if attempt < c.opts.FailFirst {
		c.noteTransient()
		return false, Transient(fmt.Errorf("chaos: scripted failure %d/%d on record %d", attempt+1, c.opts.FailFirst, i))
	}
	if c.opts.FailureRate > 0 && jitterFloat(c.opts.Seed, uint64(i), uint64(attempt)) < c.opts.FailureRate {
		c.noteTransient()
		return false, Transient(fmt.Errorf("chaos: injected transient failure on record %d (attempt %d)", i, attempt))
	}
	if c.opts.LatencySpikeRate > 0 && c.opts.LatencySpike > 0 &&
		jitterFloat(c.opts.Seed^0x5ca1ab1e, uint64(i), uint64(attempt)) < c.opts.LatencySpikeRate {
		time.Sleep(c.opts.LatencySpike)
	}
	return c.inner.Label(i)
}

func (c *Chaos) noteTransient() {
	c.mu.Lock()
	c.injectedTransient++
	c.mu.Unlock()
}

// Injected reports how many transient and permanent failures were
// injected so far.
func (c *Chaos) Injected() (transient, permanent int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injectedTransient, c.injectedPermanent
}

// Calls reports the total number of Label invocations observed
// (including failed attempts).
func (c *Chaos) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}
