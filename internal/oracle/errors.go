package oracle

import (
	"context"
	"errors"
	"fmt"
)

// Class categorizes an oracle error for the resilience layer: it
// decides whether a failed Label call is worth retrying.
type Class int

const (
	// ClassTransient marks failures that may succeed on retry — network
	// blips, rate limits, timeouts. Unmarked errors default to this
	// class: in the paper's setting the oracle is a remote, unreliable
	// backend, so retrying is the safe default.
	ClassTransient Class = iota
	// ClassPermanent marks failures retrying cannot fix — a record out
	// of range, a malformed request, an exhausted budget. The resilience
	// layer propagates them immediately and does not count them against
	// the circuit breaker (the backend answered; it is healthy).
	ClassPermanent
	// ClassCancelled marks context cancellation and deadline expiry of
	// the query itself. Neither retried nor held against the backend.
	ClassCancelled
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// classifiedError carries an explicit class assigned by Transient or
// Permanent. It unwraps to the underlying error.
type classifiedError struct {
	err   error
	class Class
}

func (e *classifiedError) Error() string { return e.err.Error() }
func (e *classifiedError) Unwrap() error { return e.err }

// Transient marks err as retryable. Oracle UDFs and backends wrap
// failures they know to be temporary so the resilience layer retries
// them; unmarked errors are treated as transient anyway, so Transient
// is mostly documentation plus protection against future default
// changes.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, class: ClassTransient}
}

// Permanent marks err as not retryable: the resilience layer fails the
// call immediately instead of burning retries and backoff on it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, class: ClassPermanent}
}

// Classify maps an oracle error onto its retry class. Explicit marks
// (Transient, Permanent) win; context cancellation and deadline expiry
// are ClassCancelled; a spent budget is ClassPermanent (retrying cannot
// mint budget); everything else defaults to ClassTransient.
func Classify(err error) Class {
	var ce *classifiedError
	if errors.As(err, &ce) {
		return ce.class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCancelled
	}
	if errors.Is(err, ErrBudgetExhausted) {
		return ClassPermanent
	}
	return ClassTransient
}

// ErrOracleUnavailable is the sentinel matched (via errors.Is) by every
// UnavailableError: the oracle backend could not be reached even with
// retries, or the circuit breaker is refusing calls. Queries fail fast
// with it instead of hanging, and the HTTP layer maps it to 503 with a
// Retry-After hint.
var ErrOracleUnavailable = errors.New("oracle: unavailable")

// ErrBreakerOpen is returned (wrapped in an UnavailableError) when the
// circuit breaker is open and the call was refused without touching the
// backend.
var ErrBreakerOpen = errors.New("oracle: circuit breaker open")

// UnavailableError is the typed failure of the resilient oracle
// pipeline: retries exhausted on a transient failure, or the breaker
// open. LabelsFolded reports how many budget-consuming labels the
// failed query had already folded into its accounting (and, when a
// label store is attached, durably persisted) before the failure — the
// diagnostic callers surface so operators know a retry of the query
// resumes warm, not from zero.
type UnavailableError struct {
	// Cause is the underlying failure (the last attempt's error, or
	// ErrBreakerOpen).
	Cause error
	// LabelsFolded is the number of labels the failing query had already
	// bought and folded before the failure surfaced.
	LabelsFolded int
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("oracle: unavailable: %v (%d labels folded before failure)", e.Cause, e.LabelsFolded)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *UnavailableError) Unwrap() error { return e.Cause }

// Is matches the ErrOracleUnavailable sentinel.
func (e *UnavailableError) Is(target error) bool { return target == ErrOracleUnavailable }

// NoteLabelsFolded records n as the labels-folded-so-far diagnostic on
// the UnavailableError inside err, if there is one and it has not been
// set yet. The budget wrapper's owner calls it on the way out of a
// failed query, where the folded count is known.
func NoteLabelsFolded(err error, n int) {
	var ue *UnavailableError
	if errors.As(err, &ue) && ue.LabelsFolded == 0 {
		ue.LabelsFolded = n
	}
}
