package oracle

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"supg/internal/metrics"
)

// BatchOracle labels a set of records in one call. Implementations may
// fetch the labels in parallel or ship them to a remote backend in one
// round trip; the returned slice is positional (labels[i] is the label
// of idx[i]). Labeling must be a pure function of the record index so
// that fetch order cannot change results.
type BatchOracle interface {
	// LabelBatch returns the labels of idx, in idx order. On error the
	// labels are discarded wholesale; partial results are not returned.
	LabelBatch(ctx context.Context, idx []int) ([]bool, error)
}

// Dispatcher fans the labels of a batch out across a bounded pool of
// goroutines, each calling the wrapped oracle's Label. It adapts any
// per-record Oracle — a user UDF, a Simulated oracle with latency — to
// the BatchOracle interface, overlapping slow per-call latency (the
// dominant cost per the paper's Section 4.1) up to the configured
// parallelism. Results are merged back positionally, so for a
// deterministic oracle the output is identical to a sequential loop.
//
// The wrapped oracle must be goroutine-safe when parallelism > 1.
type Dispatcher struct {
	inner       Oracle
	parallelism int
	counters    *metrics.Counters
}

// NewDispatcher wraps inner with a dispatch width of parallelism
// concurrent label fetches per batch. parallelism <= 1 dispatches
// sequentially (but still batches accounting).
func NewDispatcher(inner Oracle, parallelism int) *Dispatcher {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Dispatcher{inner: inner, parallelism: parallelism}
}

// WithCounters attaches service counters recording dispatch volume.
// Returns d for chaining.
func (d *Dispatcher) WithCounters(c *metrics.Counters) *Dispatcher {
	d.counters = c
	return d
}

// Parallelism returns the configured dispatch width.
func (d *Dispatcher) Parallelism() int { return d.parallelism }

// Label implements Oracle by delegating to the wrapped oracle, so a
// Dispatcher can stand anywhere an Oracle is expected.
func (d *Dispatcher) Label(i int) (bool, error) { return d.inner.Label(i) }

// LabelBatch implements BatchOracle with bounded-parallel fan-out.
// Workers pull positions from a shared cursor; the first error (or a
// context cancellation) stops the remaining work and is returned.
func (d *Dispatcher) LabelBatch(ctx context.Context, idx []int) ([]bool, error) {
	d.counters.DispatchBatch(len(idx))
	out := make([]bool, len(idx))
	if len(idx) == 0 {
		return out, nil
	}

	workers := d.parallelism
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		for i, j := range idx {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("oracle: %w", err)
			}
			v, err := d.inner.Label(j)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cursor   atomic.Int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				pos := int(cursor.Add(1)) - 1
				if pos >= len(idx) {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("oracle: %w", err))
					return
				}
				v, err := d.inner.Label(idx[pos])
				if err != nil {
					fail(err)
					return
				}
				out[pos] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
