package oracle

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"supg/internal/metrics"
)

// BatchOracle labels a set of records in one call. Implementations may
// fetch the labels in parallel or ship them to a remote backend in one
// round trip; the returned slice is positional (labels[i] is the label
// of idx[i]). Labeling must be a pure function of the record index so
// that fetch order cannot change results.
type BatchOracle interface {
	// LabelBatch returns the labels of idx, in idx order. On error the
	// returned slice holds the labels of the longest successfully-labeled
	// prefix of idx (possibly empty): labels[i] is valid for idx[i] for
	// every i < len(labels). Callers fold that prefix into their cache
	// and budget accounting so already-paid-for labels survive a partial
	// failure, mirroring the sequential path's kept prefix.
	LabelBatch(ctx context.Context, idx []int) ([]bool, error)
}

// Dispatcher fans the labels of a batch out across a bounded pool of
// goroutines, each calling the wrapped oracle's Label. It adapts any
// per-record Oracle — a user UDF, a Simulated oracle with latency — to
// the BatchOracle interface, overlapping slow per-call latency (the
// dominant cost per the paper's Section 4.1) up to the configured
// parallelism. Results are merged back positionally, so for a
// deterministic oracle the output is identical to a sequential loop.
//
// The wrapped oracle must be goroutine-safe when parallelism > 1.
type Dispatcher struct {
	inner       Oracle
	parallelism int
	counters    *metrics.Counters
}

// NewDispatcher wraps inner with a dispatch width of parallelism
// concurrent label fetches per batch. parallelism <= 1 dispatches
// sequentially (but still batches accounting).
func NewDispatcher(inner Oracle, parallelism int) *Dispatcher {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Dispatcher{inner: inner, parallelism: parallelism}
}

// WithCounters attaches service counters recording dispatch volume.
// Returns d for chaining.
func (d *Dispatcher) WithCounters(c *metrics.Counters) *Dispatcher {
	d.counters = c
	return d
}

// Parallelism returns the configured dispatch width.
func (d *Dispatcher) Parallelism() int { return d.parallelism }

// Label implements Oracle by delegating to the wrapped oracle, so a
// Dispatcher can stand anywhere an Oracle is expected.
func (d *Dispatcher) Label(i int) (bool, error) { return d.inner.Label(i) }

// LabelBatch implements BatchOracle with bounded-parallel fan-out.
// Workers pull positions from a shared cursor; the first error (or a
// context cancellation) stops the remaining work. Per the BatchOracle
// contract, on error the longest successfully-labeled prefix is
// returned alongside it, so callers can keep labels that were already
// fetched (and paid for) instead of discarding the whole batch.
func (d *Dispatcher) LabelBatch(ctx context.Context, idx []int) ([]bool, error) {
	d.counters.DispatchBatch(len(idx))
	out := make([]bool, len(idx))
	if len(idx) == 0 {
		return out, nil
	}

	workers := d.parallelism
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		for i, j := range idx {
			if err := ctx.Err(); err != nil {
				return out[:i], fmt.Errorf("oracle: %w", err)
			}
			v, err := d.inner.Label(j)
			if err != nil {
				return out[:i], err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cursor   atomic.Int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	// done[pos] marks positions whose label landed in out; written by
	// workers before wg.Done, read only after wg.Wait (the WaitGroup
	// orders the accesses).
	done := make([]bool, len(idx))
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				pos := int(cursor.Add(1)) - 1
				if pos >= len(idx) {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("oracle: %w", err))
					return
				}
				v, err := d.inner.Label(idx[pos])
				if err != nil {
					fail(err)
					return
				}
				out[pos] = v
				done[pos] = true
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// The contiguous done prefix is exactly what a sequential loop
		// stopping at the first failure could have kept; later completed
		// positions are discarded to preserve prefix semantics.
		k := 0
		for k < len(done) && done[k] {
			k++
		}
		return out[:k], firstErr
	}
	return out, nil
}
