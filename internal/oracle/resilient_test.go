package oracle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"supg/internal/metrics"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"unmarked defaults to transient", base, ClassTransient},
		{"explicit transient", Transient(base), ClassTransient},
		{"explicit permanent", Permanent(base), ClassPermanent},
		{"wrapped permanent", fmt.Errorf("outer: %w", Permanent(base)), ClassPermanent},
		{"context cancelled", context.Canceled, ClassCancelled},
		{"deadline exceeded", fmt.Errorf("x: %w", context.DeadlineExceeded), ClassCancelled},
		{"budget exhausted is permanent", ErrBudgetExhausted, ClassPermanent},
		{"marker wins over context", Transient(context.Canceled), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Fatal("markers must pass nil through")
	}
}

func TestUnavailableError(t *testing.T) {
	cause := errors.New("connection refused")
	err := error(&UnavailableError{Cause: cause})
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatal("UnavailableError must match ErrOracleUnavailable")
	}
	if !errors.Is(err, cause) {
		t.Fatal("UnavailableError must unwrap to its cause")
	}
	wrapped := fmt.Errorf("query: %w", err)
	NoteLabelsFolded(wrapped, 42)
	var ue *UnavailableError
	if !errors.As(wrapped, &ue) || ue.LabelsFolded != 42 {
		t.Fatalf("LabelsFolded = %d, want 42", ue.LabelsFolded)
	}
	// A second note must not overwrite the first.
	NoteLabelsFolded(wrapped, 7)
	if ue.LabelsFolded != 42 {
		t.Fatalf("LabelsFolded overwritten to %d", ue.LabelsFolded)
	}
	// No UnavailableError in the chain: a silent no-op.
	NoteLabelsFolded(errors.New("other"), 3)
}

// scriptedOracle fails each record a scripted number of times before
// succeeding, and records every attempt.
type scriptedOracle struct {
	mu       sync.Mutex
	failN    int
	attempts map[int]int
	err      error // error to return while failing (default: plain transient)
}

func (s *scriptedOracle) Label(i int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attempts == nil {
		s.attempts = make(map[int]int)
	}
	s.attempts[i]++
	if s.attempts[i] <= s.failN {
		if s.err != nil {
			return false, s.err
		}
		return false, Transient(errors.New("scripted failure"))
	}
	return true, nil
}

func (s *scriptedOracle) attemptCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts[i]
}

func TestResilientRetriesTransientFailures(t *testing.T) {
	inner := &scriptedOracle{failN: 2}
	var c metrics.Counters
	r := NewResilient(inner, ResilientOptions{
		Retries:     3,
		BaseBackoff: time.Nanosecond,
		Seed:        1,
	}).WithCounters(&c)
	v, err := r.Label(5)
	if err != nil || !v {
		t.Fatalf("Label = %v, %v; want true after retries", v, err)
	}
	if got := inner.attemptCount(5); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := c.Snapshot().OracleRetries; got != 2 {
		t.Fatalf("oracle_retries = %d, want 2", got)
	}
}

func TestResilientExhaustedRetriesReturnUnavailable(t *testing.T) {
	inner := &scriptedOracle{failN: 100}
	r := NewResilient(inner, ResilientOptions{Retries: 2, BaseBackoff: time.Nanosecond})
	_, err := r.Label(9)
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want ErrOracleUnavailable", err)
	}
	if got := inner.attemptCount(9); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestResilientPermanentFailsImmediately(t *testing.T) {
	inner := &scriptedOracle{failN: 100, err: Permanent(errors.New("record out of range"))}
	b := NewBreaker(BreakerOptions{Threshold: 1})
	r := NewResilient(inner, ResilientOptions{Retries: 5, BaseBackoff: time.Nanosecond}).WithBreaker(b)
	_, err := r.Label(1)
	if err == nil || errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("err = %v, want raw permanent error", err)
	}
	if got := inner.attemptCount(1); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries on permanent)", got)
	}
	// Permanent errors are skips: the backend answered, so even a
	// threshold-1 breaker stays closed.
	if b.State() != BreakerClosed {
		t.Fatalf("breaker %v, want closed", b.State())
	}
}

func TestResilientCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := &scriptedOracle{failN: 0}
	r := NewResilient(inner, ResilientOptions{Retries: 5}).WithContext(ctx)
	_, err := r.Label(1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := inner.attemptCount(1); got != 0 {
		t.Fatalf("attempts = %d, want 0 (cancelled before the call)", got)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	opts := ResilientOptions{Retries: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Seed: 99}
	a := NewResilient(nil, opts)
	b := NewResilient(nil, opts)
	prevCap := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d1, d2 := a.backoff(7, attempt), b.backoff(7, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		// Envelope: [cap/2, cap) where cap doubles from base up to max.
		cap := opts.BaseBackoff << attempt
		if cap > opts.MaxBackoff {
			cap = opts.MaxBackoff
		}
		if d1 < cap/2 || d1 >= cap {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, cap/2, cap)
		}
		if cap > prevCap && attempt > 0 && d1 == 0 {
			t.Fatalf("attempt %d: zero backoff", attempt)
		}
		prevCap = cap
	}
	// Different records jitter differently (overwhelmingly likely).
	if a.backoff(1, 0) == a.backoff(2, 0) && a.backoff(1, 1) == a.backoff(2, 1) && a.backoff(1, 2) == a.backoff(2, 2) {
		t.Fatal("jitter does not depend on the record")
	}
}

// TestResilientManualClockRetry drives a retry schedule entirely with
// the manual clock: no real sleeping, fully deterministic.
func TestResilientManualClockRetry(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	inner := &scriptedOracle{failN: 2}
	r := NewResilient(inner, ResilientOptions{
		Retries:     3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		Clock:       clock,
	})
	done := make(chan struct{})
	var v bool
	var err error
	go func() {
		defer close(done)
		v, err = r.Label(3)
	}()
	for i := 0; i < 2; i++ {
		waitPending(t, clock, 1)
		clock.Advance(time.Second) // covers any jittered backoff <= max
	}
	<-done
	if err != nil || !v {
		t.Fatalf("Label = %v, %v; want true", v, err)
	}
	if got := inner.attemptCount(3); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestResilientTimeout drives a per-attempt timeout with the manual
// clock: the first attempt hangs, times out, and the retry succeeds.
func TestResilientTimeout(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	inner := Func(func(i int) (bool, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			<-release // hang until the test ends
			return false, errors.New("abandoned")
		}
		return true, nil
	})
	defer close(release)
	var c metrics.Counters
	r := NewResilient(inner, ResilientOptions{
		Timeout:     time.Second,
		Retries:     1,
		BaseBackoff: 10 * time.Millisecond,
		Clock:       clock,
	}).WithCounters(&c)
	done := make(chan struct{})
	var v bool
	var err error
	go func() {
		defer close(done)
		v, err = r.Label(0)
	}()
	waitPending(t, clock, 1) // the attempt timer
	clock.Advance(time.Second)
	waitPending(t, clock, 1) // the backoff sleep
	clock.Advance(time.Second)
	<-done
	if err != nil || !v {
		t.Fatalf("Label = %v, %v; want true after timeout retry", v, err)
	}
	if got := c.Snapshot().OracleTimeouts; got != 1 {
		t.Fatalf("oracle_timeouts = %d, want 1", got)
	}
}

// waitPending blocks until the manual clock has at least n waiters —
// the synchronization point between the test and a goroutine entering
// a backoff sleep or attempt timer.
func waitPending(t *testing.T, clock *ManualClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clock.PendingTimers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending timers", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestBreakerTransitions(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	var c metrics.Counters
	b := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Minute, Clock: clock}).WithCounters(&c)

	fail := func() {
		t.Helper()
		report, err := b.Allow()
		if err != nil {
			t.Fatalf("Allow refused while %v", b.State())
		}
		report(OutcomeFailure)
	}

	// A success resets the failure streak.
	report, _ := b.Allow()
	report(OutcomeSuccess)
	fail()
	report, _ = b.Allow()
	report(OutcomeSuccess)
	fail()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed (streak was reset)", b.State())
	}

	// Two consecutive failures trip it open.
	fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if got := c.Snapshot().BreakerState; got != 1 {
		t.Fatalf("breaker_state gauge = %d, want 1", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapses: one probe allowed, second caller refused.
	clock.Advance(time.Minute)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe refused after cooldown: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe = %v, want ErrBreakerOpen", err)
	}

	// Failed probe re-opens and restarts the cooldown.
	probe(OutcomeFailure)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open after failed probe", b.State())
	}
	clock.Advance(30 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("cooldown must restart after a failed probe")
	}
	clock.Advance(30 * time.Second)
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("probe refused after restarted cooldown: %v", err)
	}

	// Successful probe closes the breaker and zeroes the gauge.
	probe(OutcomeSuccess)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed after successful probe", b.State())
	}
	if got := c.Snapshot().BreakerState; got != 0 {
		t.Fatalf("breaker_state gauge = %d, want 0", got)
	}
}

func TestBreakerProbeSkipFreesSlot(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Second, Clock: clock})
	report, _ := b.Allow()
	report(OutcomeFailure)
	clock.Advance(time.Second)
	probe, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	probe(OutcomeSkip) // e.g. the probing query was cancelled
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open retained", b.State())
	}
	if _, err := b.Allow(); err != nil {
		t.Fatalf("slot not freed after skip: %v", err)
	}
}

func TestNilBreakerAllowsEverything(t *testing.T) {
	var b *Breaker
	report, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	report(OutcomeFailure)
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker must read closed")
	}
}

// TestBreakerConcurrentQueries exercises one breaker shared by many
// goroutines (the -race target): mixed outcomes, open/close cycles.
func TestBreakerConcurrentQueries(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	var c metrics.Counters
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Millisecond, Clock: clock}).WithCounters(&c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				report, err := b.Allow()
				if err != nil {
					continue
				}
				switch (g + i) % 3 {
				case 0:
					report(OutcomeSuccess)
				case 1:
					report(OutcomeFailure)
				default:
					report(OutcomeSkip)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	for {
		select {
		case <-done:
			if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
				t.Fatalf("invalid state %v", s)
			}
			// The gauge must agree with the final state.
			want := int64(0)
			if b.State() != BreakerClosed {
				want = 1
			}
			if got := c.Snapshot().BreakerState; got != want {
				t.Fatalf("breaker_state gauge = %d, want %d (state %v)", got, want, b.State())
			}
			return
		default:
			clock.Advance(time.Millisecond) // let open breakers half-open
		}
	}
}

func TestChaosDeterministicInjection(t *testing.T) {
	mk := func() *Chaos {
		return NewChaos(Func(func(i int) (bool, error) { return true, nil }),
			ChaosOptions{Seed: 11, FailureRate: 0.5})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		for attempt := 0; attempt < 3; attempt++ {
			_, errA := a.Label(i)
			_, errB := b.Label(i)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("record %d attempt %d: injection not deterministic", i, attempt)
			}
		}
	}
	ta, _ := a.Injected()
	tb, _ := b.Injected()
	if ta != tb || ta == 0 {
		t.Fatalf("injected %d vs %d, want equal and nonzero", ta, tb)
	}
}

func TestChaosScripts(t *testing.T) {
	inner := Func(func(i int) (bool, error) { return true, nil })

	// Fail-N-then-succeed.
	c := NewChaos(inner, ChaosOptions{FailFirst: 2})
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := c.Label(7); err == nil || Classify(err) != ClassTransient {
			t.Fatalf("attempt %d: err = %v, want transient", attempt, err)
		}
	}
	if v, err := c.Label(7); err != nil || !v {
		t.Fatalf("after scripted failures: %v, %v", v, err)
	}

	// Permanent outage window over global call numbers.
	c = NewChaos(inner, ChaosOptions{PermanentFrom: 1, PermanentTo: 3})
	if _, err := c.Label(0); err != nil {
		t.Fatalf("call 0 outside window: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Label(i); err == nil || Classify(err) != ClassPermanent {
			t.Fatalf("window call: err = %v, want permanent", err)
		}
	}
	if _, err := c.Label(9); err != nil {
		t.Fatalf("call after window: %v", err)
	}
	if _, perm := c.Injected(); perm != 2 {
		t.Fatalf("injected permanent = %d, want 2", perm)
	}
}

func TestManualClockAdvance(t *testing.T) {
	clock := NewManualClock(time.Unix(100, 0))
	ch1, stop1 := clock.Timer(time.Second)
	ch2, _ := clock.Timer(3 * time.Second)
	defer stop1()
	clock.Advance(2 * time.Second)
	select {
	case <-ch1:
	default:
		t.Fatal("1s timer did not fire after 2s advance")
	}
	select {
	case <-ch2:
		t.Fatal("3s timer fired early")
	default:
	}
	clock.Advance(time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("3s timer did not fire")
	}
	if got := clock.Now(); !got.Equal(time.Unix(103, 0)) {
		t.Fatalf("Now = %v", got)
	}
}
