package oracle

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the resilience layer so retry/backoff
// schedules and breaker cooldowns are testable without real sleeps.
// The zero configuration everywhere selects the real clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx's error in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// Timer returns a channel that fires once after d plus a stop
	// function releasing the timer's resources (safe to call after the
	// fire).
	Timer(d time.Duration) (<-chan time.Time, func())
}

// realClock is the production Clock backed by package time.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) Timer(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}

// clockOrReal returns c, defaulting a nil clock to the real one.
func clockOrReal(c Clock) Clock {
	if c == nil {
		return realClock{}
	}
	return c
}

// ManualClock is a deterministic Clock for tests: time stands still
// until Advance moves it, firing due timers and waking due sleepers.
// Safe for concurrent use.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a manual clock reading start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until Advance has moved the clock
// past now+d, or ctx is done.
func (c *ManualClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	ch, stop := c.Timer(d)
	defer stop()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Timer implements Clock.
func (c *ManualClock) Timer(d time.Duration) (<-chan time.Time, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &manualWaiter{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- c.now
		return w.ch, func() {}
	}
	c.waiters = append(c.waiters, w)
	return w.ch, func() { c.remove(w) }
}

func (c *ManualClock) remove(w *manualWaiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cur := range c.waiters {
		if cur == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Advance moves the clock forward by d, firing every timer whose
// deadline has passed (in deadline order).
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*manualWaiter
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// PendingTimers reports how many timers are waiting for Advance —
// tests use it to synchronize with goroutines entering a backoff sleep.
func (c *ManualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
