package oracle

import (
	"errors"
	"testing"

	"supg/internal/dataset"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.MustNew("t",
		[]float64{0.1, 0.9, 0.5, 0.7},
		[]bool{false, true, false, true})
}

func TestSimulatedLabels(t *testing.T) {
	o := NewSimulated(testDataset(t))
	got, err := o.Label(1)
	if err != nil || !got {
		t.Fatalf("Label(1) = %v, %v", got, err)
	}
	got, err = o.Label(0)
	if err != nil || got {
		t.Fatalf("Label(0) = %v, %v", got, err)
	}
}

func TestSimulatedCounting(t *testing.T) {
	o := NewSimulated(testDataset(t))
	o.Label(0)
	o.Label(0)
	o.Label(1)
	if o.Calls() != 3 {
		t.Errorf("Calls = %d, want 3", o.Calls())
	}
	if o.UniqueCalls() != 2 {
		t.Errorf("UniqueCalls = %d, want 2", o.UniqueCalls())
	}
}

func TestSimulatedCost(t *testing.T) {
	o := NewSimulated(testDataset(t)).WithCost(0.08)
	o.Label(0)
	o.Label(1)
	if o.SpentCost() != 0.16 {
		t.Errorf("SpentCost = %v", o.SpentCost())
	}
}

func TestSimulatedOutOfRange(t *testing.T) {
	o := NewSimulated(testDataset(t))
	if _, err := o.Label(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := o.Label(4); err == nil {
		t.Error("index past end should error")
	}
}

func TestSimulatedReset(t *testing.T) {
	o := NewSimulated(testDataset(t))
	o.Label(0)
	o.Reset()
	if o.Calls() != 0 || o.UniqueCalls() != 0 {
		t.Error("Reset did not clear accounting")
	}
}

func TestBudgetedEnforcesLimit(t *testing.T) {
	o := NewBudgeted(NewSimulated(testDataset(t)), 2)
	if _, err := o.Label(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Label(1); err != nil {
		t.Fatal(err)
	}
	_, err := o.Label(2)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected ErrBudgetExhausted, got %v", err)
	}
	if o.Used() != 2 || o.Remaining() != 0 || o.Budget() != 2 {
		t.Errorf("accounting wrong: used=%d remaining=%d", o.Used(), o.Remaining())
	}
}

func TestBudgetedMemoization(t *testing.T) {
	inner := NewSimulated(testDataset(t))
	o := NewBudgeted(inner, 2)
	o.Label(1)
	// Re-labeling a cached record is free and works past exhaustion.
	o.Label(0)
	if got, err := o.Label(1); err != nil || !got {
		t.Fatalf("cached label failed: %v %v", got, err)
	}
	if o.Used() != 2 {
		t.Errorf("cached call consumed budget: used=%d", o.Used())
	}
	if inner.Calls() != 2 {
		t.Errorf("inner oracle called %d times, want 2", inner.Calls())
	}
}

func TestBudgetedLabeled(t *testing.T) {
	o := NewBudgeted(NewSimulated(testDataset(t)), 4)
	o.Label(0)
	o.Label(1)
	o.Label(3)
	labeled := o.Labeled()
	if len(labeled) != 3 || labeled[0] || !labeled[1] || !labeled[3] {
		t.Errorf("Labeled = %v", labeled)
	}
	pos := o.LabeledPositives()
	if len(pos) != 2 {
		t.Errorf("LabeledPositives = %v", pos)
	}
}

func TestBudgetedPropagatesErrors(t *testing.T) {
	fails := Func(func(i int) (bool, error) { return false, errors.New("boom") })
	o := NewBudgeted(fails, 5)
	if _, err := o.Label(0); err == nil {
		t.Error("inner error should propagate")
	}
	if o.Used() != 0 {
		t.Error("failed call must not consume budget")
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func(func(i int) (bool, error) { return i%2 == 1, nil })
	got, err := f.Label(3)
	if err != nil || !got {
		t.Fatal("Func adapter broken")
	}
}
