package oracle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/randx"
)

func largeDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	r := randx.New(7)
	return dataset.Beta(r, 2000, 0.05, 2)
}

// TestSimulatedConcurrentAccounting is the -race regression test for
// the Simulated oracle: concurrent Label calls (as issued by the
// Dispatcher) must not race on the call accounting.
func TestSimulatedConcurrentAccounting(t *testing.T) {
	d := largeDataset(t)
	o := NewSimulated(d)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := o.Label((w*perWorker + i) % d.Len()); err != nil {
					t.Errorf("Label: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if o.Calls() != workers*perWorker {
		t.Errorf("Calls = %d, want %d", o.Calls(), workers*perWorker)
	}
	if o.UniqueCalls() != workers*perWorker {
		t.Errorf("UniqueCalls = %d, want %d", o.UniqueCalls(), workers*perWorker)
	}
}

func TestDispatcherMatchesSequential(t *testing.T) {
	d := largeDataset(t)
	idx := make([]int, 500)
	r := randx.New(3)
	for i := range idx {
		idx[i] = r.IntN(d.Len())
	}

	want := make([]bool, len(idx))
	for i, j := range idx {
		want[i] = d.TrueLabel(j)
	}

	for _, p := range []int{1, 2, 8, 64} {
		disp := NewDispatcher(NewSimulated(d), p)
		got, err := disp.LabelBatch(context.Background(), idx)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: label[%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestDispatcherCountsBatches(t *testing.T) {
	d := largeDataset(t)
	var c metrics.Counters
	disp := NewDispatcher(NewSimulated(d), 4).WithCounters(&c)
	if _, err := disp.LabelBatch(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.LabelBatch(context.Background(), []int{4}); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.DispatchBatches != 2 || snap.DispatchCalls != 4 {
		t.Errorf("counters = %+v, want 2 batches / 4 calls", snap)
	}
}

func TestDispatcherPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	inner := Func(func(i int) (bool, error) {
		if i == 13 {
			return false, boom
		}
		return true, nil
	})
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	disp := NewDispatcher(inner, 8)
	if _, err := disp.LabelBatch(context.Background(), idx); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDispatcherCancellation(t *testing.T) {
	var calls sync.Map
	slow := Func(func(i int) (bool, error) {
		calls.Store(i, true)
		time.Sleep(2 * time.Millisecond)
		return true, nil
	})
	idx := make([]int, 1000)
	for i := range idx {
		idx[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	disp := NewDispatcher(slow, 4)
	done := make(chan error, 1)
	go func() {
		_, err := disp.LabelBatch(ctx, idx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	n := 0
	calls.Range(func(_, _ any) bool { n++; return true })
	if n == 0 || n >= len(idx) {
		t.Errorf("cancellation did not stop mid-batch: %d of %d calls made", n, len(idx))
	}
}

func TestBudgetedLabelAllMatchesSequential(t *testing.T) {
	d := largeDataset(t)
	idx := make([]int, 300)
	r := randx.New(11)
	for i := range idx {
		idx[i] = r.IntN(50) // force repeats so memoization paths differ
	}

	seq := NewBudgeted(NewSimulated(d), 300)
	want := make([]bool, len(idx))
	for i, j := range idx {
		v, err := seq.Label(j)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	batchInner := NewSimulated(d)
	bat := NewBudgeted(NewDispatcher(batchInner, 8), 300)
	got, err := bat.LabelAll(idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if bat.Used() != seq.Used() {
		t.Errorf("batch used %d, sequential used %d", bat.Used(), seq.Used())
	}
	if batchInner.Calls() != bat.Used() {
		t.Errorf("inner called %d times for %d budget units", batchInner.Calls(), bat.Used())
	}
}

func TestBudgetedLabelAllExhaustionMatchesSequential(t *testing.T) {
	d := largeDataset(t)
	idx := []int{0, 1, 2, 3, 4, 5}

	// Sequential reference: budget 4 labels records 0..3, then fails on
	// 4 having consumed the full budget.
	seq := NewBudgeted(NewSimulated(d), 4)
	var seqErr error
	for _, j := range idx {
		if _, err := seq.Label(j); err != nil {
			seqErr = err
			break
		}
	}
	if !errors.Is(seqErr, ErrBudgetExhausted) {
		t.Fatalf("sequential reference did not exhaust: %v", seqErr)
	}

	inner := NewSimulated(d)
	bat := NewBudgeted(NewDispatcher(inner, 3), 4)
	_, err := bat.LabelAll(idx)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("LabelAll err = %v, want ErrBudgetExhausted", err)
	}
	if bat.Used() != seq.Used() {
		t.Errorf("batch used %d, sequential used %d", bat.Used(), seq.Used())
	}
	if inner.Calls() != 4 {
		t.Errorf("inner called %d times, want 4 (in-budget prefix)", inner.Calls())
	}
	// The in-budget prefix must be cached: re-labeling it is free.
	for _, j := range idx[:4] {
		if _, err := bat.Label(j); err != nil {
			t.Errorf("prefix record %d not cached: %v", j, err)
		}
	}
}

// TestLabelAllSequentialErrorKeepsPrefixState verifies the non-batch
// fallback matches the sequential loop on the error path too: labels
// fetched before an inner error stay cached and budget-counted.
func TestLabelAllSequentialErrorKeepsPrefixState(t *testing.T) {
	flaky := Func(func(i int) (bool, error) {
		if i == 3 {
			return false, errors.New("transient")
		}
		return true, nil
	})
	b := NewBudgeted(flaky, 10)
	if _, err := b.LabelAll([]int{0, 1, 2, 3, 4}); err == nil {
		t.Fatal("want inner error")
	}
	if b.Used() != 3 {
		t.Errorf("used = %d, want 3 (successful prefix)", b.Used())
	}
	for _, j := range []int{0, 1, 2} {
		if v, err := b.Label(j); err != nil || !v {
			t.Errorf("prefix record %d not cached: %v, %v", j, v, err)
		}
	}
	if b.Used() != 3 {
		t.Errorf("re-reading cached prefix consumed budget: used = %d", b.Used())
	}
}

func TestBudgetedContextCancellation(t *testing.T) {
	d := largeDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudgeted(NewSimulated(d), 100).WithContext(ctx)
	if _, err := b.Label(0); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := b.Label(1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Label after cancel = %v, want context.Canceled", err)
	}
	// Cached hits are still served after cancellation — no oracle call
	// is involved; only fresh labeling is cut off.
	if v, err := b.Label(0); err != nil || v != d.TrueLabel(0) {
		t.Fatalf("cached Label after cancel = %v, %v", v, err)
	}
	if _, err := b.LabelAll([]int{2, 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("LabelAll after cancel = %v, want context.Canceled", err)
	}
}

func TestDispatcherLabelDelegates(t *testing.T) {
	disp := NewDispatcher(Func(func(i int) (bool, error) {
		if i < 0 {
			return false, fmt.Errorf("bad index")
		}
		return i%2 == 0, nil
	}), 4)
	if v, err := disp.Label(2); err != nil || !v {
		t.Fatalf("Label(2) = %v, %v", v, err)
	}
	if disp.Parallelism() != 4 {
		t.Errorf("Parallelism = %d", disp.Parallelism())
	}
}
