package oracle

import (
	"context"
	"errors"
	"sync"
	"testing"

	"supg/internal/labelstore"
)

// storeFor returns a fresh labelstore cache — the real LabelCache
// implementation the engine wires in.
func storeFor(t *testing.T) LabelCache {
	t.Helper()
	return labelstore.New(labelstore.Options{}).Cache("t", "o")
}

// TestChargedStoreHitsPreserveBudgetTrace is the oracle-level half of
// the charged-mode guarantee: a warm Budgeted consumes budget units
// and exhausts at exactly the same points as a cold one, while the
// inner oracle is never called for stored labels.
func TestChargedStoreHitsPreserveBudgetTrace(t *testing.T) {
	store := storeFor(t)
	idx := []int{4, 2, 4, 9, 2} // three distinct records with repeats

	labelOf := func(i int) bool { return i%2 == 0 }
	calls := 0
	inner := Func(func(i int) (bool, error) { calls++; return labelOf(i), nil })

	cold := NewBudgeted(inner, 3).WithStore(store, false)
	coldLabels, coldErr := cold.LabelAll(idx)
	if coldErr != nil {
		t.Fatalf("cold LabelAll: %v", coldErr)
	}
	if calls != 3 || cold.Used() != 3 {
		t.Fatalf("cold run: calls %d used %d, want 3/3", calls, cold.Used())
	}
	if cold.StoreHits() != 0 {
		t.Fatalf("cold run reported %d store hits", cold.StoreHits())
	}

	// Warm run: identical labels, identical budget consumption, zero
	// inner calls.
	calls = 0
	warm := NewBudgeted(inner, 3).WithStore(store, false)
	warmLabels, warmErr := warm.LabelAll(idx)
	if warmErr != nil {
		t.Fatalf("warm LabelAll: %v", warmErr)
	}
	if calls != 0 {
		t.Errorf("warm run made %d inner calls, want 0", calls)
	}
	if warm.Used() != cold.Used() {
		t.Errorf("warm used %d, cold used %d", warm.Used(), cold.Used())
	}
	if warm.StoreHits() != 3 {
		t.Errorf("warm StoreHits = %d, want 3", warm.StoreHits())
	}
	for i := range coldLabels {
		if coldLabels[i] != warmLabels[i] {
			t.Fatalf("label[%d] diverged: cold %v warm %v", i, coldLabels[i], warmLabels[i])
		}
	}

	// Exhaustion point must match a storeless run too: budget 2 over 3
	// distinct fresh records exhausts whether labels come from the
	// store or the oracle.
	storeless := NewBudgeted(inner, 2)
	_, slErr := storeless.LabelAll(idx)
	warm2 := NewBudgeted(inner, 2).WithStore(store, false)
	_, w2Err := warm2.LabelAll(idx)
	if !errors.Is(slErr, ErrBudgetExhausted) || !errors.Is(w2Err, ErrBudgetExhausted) {
		t.Fatalf("exhaustion diverged: storeless %v warm %v", slErr, w2Err)
	}
	if warm2.Used() != storeless.Used() {
		t.Errorf("exhausted warm used %d, storeless used %d", warm2.Used(), storeless.Used())
	}
}

func TestFreeReuseStretchesBudget(t *testing.T) {
	store := storeFor(t)
	inner := Func(func(i int) (bool, error) { return true, nil })

	// Seed the store with records 0 and 1.
	seed := NewBudgeted(inner, 10).WithStore(store, false)
	if _, err := seed.LabelAll([]int{0, 1}); err != nil {
		t.Fatal(err)
	}

	// Budget 2 in free mode: records 0 and 1 are free store hits, so 2
	// and 3 still fit in budget.
	free := NewBudgeted(inner, 2).WithStore(store, true)
	labels, err := free.LabelAll([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("free-reuse LabelAll: %v", err)
	}
	if len(labels) != 4 {
		t.Fatalf("labels = %d entries, want 4", len(labels))
	}
	if free.Used() != 2 {
		t.Errorf("free-reuse used %d budget units, want 2 (hits are free)", free.Used())
	}
	if free.StoreHits() != 2 {
		t.Errorf("StoreHits = %d, want 2", free.StoreHits())
	}

	// The same request in charged mode exhausts: 4 fresh records, 2
	// units.
	charged := NewBudgeted(inner, 2).WithStore(store, false)
	if _, err := charged.LabelAll([]int{0, 1, 2, 3}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("charged mode err = %v, want ErrBudgetExhausted", err)
	}

	// Per-call path (Label) honors free reuse past exhaustion as well.
	spent := NewBudgeted(inner, 1).WithStore(store, true)
	if _, err := spent.Label(5); err != nil { // consumes the only unit
		t.Fatal(err)
	}
	if v, err := spent.Label(0); err != nil || !v {
		t.Errorf("free store hit after exhaustion = %v, %v; want true, nil", v, err)
	}
	if _, err := spent.Label(6); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("fresh record after exhaustion err = %v", err)
	}
}

func TestChargeHookKeepsProgressEqualToUsed(t *testing.T) {
	store := storeFor(t)
	realCalls := 0
	inner := Func(func(i int) (bool, error) { realCalls++; return false, nil })

	seed := NewBudgeted(inner, 10).WithStore(store, false)
	if _, err := seed.LabelAll([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}

	// Warm run labeling a mix of stored and fresh records: the hook
	// must account for exactly the store hits, so hook + real calls ==
	// Used.
	hooked := 0
	warm := NewBudgeted(inner, 10).WithStore(store, false).
		WithChargeHook(func(n int) { hooked += n })
	realCalls = 0
	if _, err := warm.LabelAll([]int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if hooked != 3 {
		t.Errorf("charge hook saw %d units, want 3 store hits", hooked)
	}
	if hooked+realCalls != warm.Used() {
		t.Errorf("hook %d + real %d != used %d", hooked, realCalls, warm.Used())
	}

	// Free mode: hits are not budget-consuming, so the hook stays
	// silent and Used covers only real calls.
	hooked, realCalls = 0, 0
	free := NewBudgeted(inner, 10).WithStore(store, true).
		WithChargeHook(func(n int) { hooked += n })
	if _, err := free.LabelAll([]int{0, 1, 2, 5}); err != nil {
		t.Fatal(err)
	}
	if hooked != 0 {
		t.Errorf("free mode charge hook saw %d units, want 0", hooked)
	}
	if realCalls != free.Used() {
		t.Errorf("free mode: real %d != used %d", realCalls, free.Used())
	}
}

// TestDispatcherPartialPrefixOnError is the regression test for the
// batch error path: the dispatcher returns the successfully-labeled
// prefix so already-fetched (and charged-for) labels are not thrown
// away.
func TestDispatcherPartialPrefixOnError(t *testing.T) {
	boom := errors.New("backend down")
	var mu sync.Mutex
	calls := 0
	flaky := Func(func(i int) (bool, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		if i >= 5 {
			return false, boom
		}
		return true, nil
	})
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}

	for _, p := range []int{1, 3} {
		mu.Lock()
		calls = 0
		mu.Unlock()
		disp := NewDispatcher(flaky, p)
		labels, err := disp.LabelBatch(context.Background(), idx)
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want boom", p, err)
		}
		if len(labels) > 5 {
			t.Fatalf("parallelism %d: prefix %d includes the failed record", p, len(labels))
		}
		for i, v := range labels {
			if !v {
				t.Fatalf("parallelism %d: prefix label[%d] = false, want true", p, i)
			}
		}
		if p == 1 && len(labels) != 5 {
			t.Errorf("sequential dispatch kept %d labels, want the full prefix 5", len(labels))
		}
	}
}

// TestFetchAllFoldsBatchPrefix pins the Budgeted side of the fix: the
// prefix a failing batch did label is cached, budget-counted, and
// written through to the store — matching the sequential path's kept
// prefix instead of discarding the whole batch.
func TestFetchAllFoldsBatchPrefix(t *testing.T) {
	boom := errors.New("backend down")
	flaky := Func(func(i int) (bool, error) {
		if i == 3 {
			return false, boom
		}
		return true, nil
	})
	store := storeFor(t)
	b := NewBudgeted(NewDispatcher(flaky, 1), 10).WithStore(store, false)
	if _, err := b.LabelAll([]int{0, 1, 2, 3, 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if b.Used() != 3 {
		t.Errorf("used = %d, want 3 (kept prefix is charged)", b.Used())
	}
	// The prefix is memoized: re-labeling is free.
	for _, j := range []int{0, 1, 2} {
		if v, err := b.Label(j); err != nil || !v {
			t.Errorf("prefix record %d not cached: %v, %v", j, v, err)
		}
	}
	if b.Used() != 3 {
		t.Errorf("re-reading the prefix consumed budget: used = %d", b.Used())
	}
	// And written through to the shared store: a fresh Budgeted can
	// reuse it without touching the oracle.
	fresh := NewBudgeted(Func(func(i int) (bool, error) {
		t.Errorf("inner oracle called for stored record %d", i)
		return false, nil
	}), 10).WithStore(store, false)
	for _, j := range []int{0, 1, 2} {
		if v, err := fresh.Label(j); err != nil || !v {
			t.Errorf("store lost prefix record %d: %v, %v", j, v, err)
		}
	}
}

// TestNestedBudgetedPropagatesPrefix: a Budgeted used as the inner
// BatchOracle of another Budgeted (the joint-query stacking) must
// surface its memoized prefix on error, so the outer wrapper's cache
// and budget keep the labels the inner one already charged for.
func TestNestedBudgetedPropagatesPrefix(t *testing.T) {
	boom := errors.New("backend down")
	flaky := Func(func(i int) (bool, error) {
		if i == 3 {
			return false, boom
		}
		return true, nil
	})
	inner := NewBudgeted(flaky, 100)
	outer := NewBudgeted(inner, 10)
	if _, err := outer.LabelAll([]int{0, 1, 2, 3, 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if inner.Used() != 3 {
		t.Errorf("inner used = %d, want 3", inner.Used())
	}
	if outer.Used() != 3 {
		t.Errorf("outer used = %d, want 3 (prefix propagated up)", outer.Used())
	}
	for _, j := range []int{0, 1, 2} {
		if v, err := outer.Label(j); err != nil || !v {
			t.Errorf("outer lost prefix record %d: %v, %v", j, v, err)
		}
	}
	if outer.Used() != 3 {
		t.Errorf("outer re-read charged budget: used = %d", outer.Used())
	}
}

// TestFetchAllFoldsParallelBatchPrefix is the same regression through
// the concurrent dispatcher: whatever contiguous prefix the workers
// completed before the failure must survive into cache and budget.
func TestFetchAllFoldsParallelBatchPrefix(t *testing.T) {
	boom := errors.New("backend down")
	flaky := Func(func(i int) (bool, error) {
		if i == 40 {
			return false, boom
		}
		return true, nil
	})
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	b := NewBudgeted(NewDispatcher(flaky, 8), 100)
	_, err := b.LabelAll(idx)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if b.Used() > 40 {
		t.Errorf("used = %d, exceeds the failing position", b.Used())
	}
	// Every budget unit spent corresponds to a cached label — nothing
	// was paid for and thrown away.
	cached := len(b.Labeled())
	if cached != b.Used() {
		t.Errorf("cached %d labels but charged %d units", cached, b.Used())
	}
}
