// Package oracle models the expensive ground-truth predicate of a SUPG
// query. The paper treats the oracle as a user-provided UDF — a human
// labeler or an expensive DNN — whose calls are counted against a hard
// budget (the ORACLE LIMIT clause). This package provides the Oracle
// interface, budget enforcement, call accounting, and a simulated
// oracle backed by a dataset's hidden ground-truth labels with optional
// per-call cost and latency modeling.
package oracle

import (
	"errors"
	"fmt"
	"time"

	"supg/internal/dataset"
)

// Oracle evaluates the ground-truth predicate O(x) for a record index.
// Implementations may be expensive; callers must respect budgets.
type Oracle interface {
	// Label returns the oracle predicate value for record i.
	Label(i int) (bool, error)
}

// Func adapts a plain function to the Oracle interface.
type Func func(i int) (bool, error)

// Label implements Oracle.
func (f Func) Label(i int) (bool, error) { return f(i) }

// ErrBudgetExhausted is returned by a Budgeted oracle once its call
// limit has been spent.
var ErrBudgetExhausted = errors.New("oracle: budget exhausted")

// Simulated is an oracle backed by a dataset's hidden ground-truth
// labels, with per-call accounting. It stands in for human labelers and
// ground-truth DNNs per the substitution notes in DESIGN.md.
type Simulated struct {
	data        *dataset.Dataset
	calls       int
	uniqueCalls map[int]struct{}
	costPerCall float64
	latency     time.Duration
}

// NewSimulated returns an oracle that reveals d's ground-truth labels.
func NewSimulated(d *dataset.Dataset) *Simulated {
	return &Simulated{data: d, uniqueCalls: make(map[int]struct{})}
}

// WithCost sets a per-call dollar cost used by the cost model.
func (s *Simulated) WithCost(dollars float64) *Simulated {
	s.costPerCall = dollars
	return s
}

// WithLatency makes each call sleep for d, for end-to-end demos.
func (s *Simulated) WithLatency(d time.Duration) *Simulated {
	s.latency = d
	return s
}

// Label implements Oracle.
func (s *Simulated) Label(i int) (bool, error) {
	if i < 0 || i >= s.data.Len() {
		return false, fmt.Errorf("oracle: record %d out of range [0,%d)", i, s.data.Len())
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	s.calls++
	s.uniqueCalls[i] = struct{}{}
	return s.data.TrueLabel(i), nil
}

// Calls returns the total number of Label invocations.
func (s *Simulated) Calls() int { return s.calls }

// UniqueCalls returns the number of distinct records labeled.
func (s *Simulated) UniqueCalls() int { return len(s.uniqueCalls) }

// SpentCost returns calls × cost-per-call in dollars.
func (s *Simulated) SpentCost() float64 { return float64(s.calls) * s.costPerCall }

// Reset clears the call accounting (not the cost configuration).
func (s *Simulated) Reset() {
	s.calls = 0
	s.uniqueCalls = make(map[int]struct{})
}

// Budgeted wraps an oracle with a hard call limit and memoization.
// Repeat labels of an already-labeled record are served from cache and
// do NOT consume budget, matching the paper's model where the label of
// a record, once obtained, is known. Once remaining budget reaches zero
// any uncached call fails with ErrBudgetExhausted.
type Budgeted struct {
	inner  Oracle
	budget int
	used   int
	cache  map[int]bool
}

// NewBudgeted wraps inner with a limit of budget oracle calls. The
// memoization map is presized to realistic budgets to keep incremental
// map growth off the query hot path; sentinel "effectively unlimited"
// budgets (the joint-query wrapper passes MaxInt/2) get no hint, since
// presizing to them would allocate far beyond actual use.
func NewBudgeted(inner Oracle, budget int) *Budgeted {
	hint := budget
	if hint < 0 || hint > 1<<20 {
		hint = 0
	}
	if hint > 1<<16 {
		hint = 1 << 16
	}
	return &Budgeted{inner: inner, budget: budget, cache: make(map[int]bool, hint)}
}

// Label implements Oracle with budget enforcement and memoization.
func (b *Budgeted) Label(i int) (bool, error) {
	if v, ok := b.cache[i]; ok {
		return v, nil
	}
	if b.used >= b.budget {
		return false, fmt.Errorf("%w (limit %d)", ErrBudgetExhausted, b.budget)
	}
	v, err := b.inner.Label(i)
	if err != nil {
		return false, err
	}
	b.used++
	b.cache[i] = v
	return v, nil
}

// Used returns the number of budget-consuming calls made so far.
func (b *Budgeted) Used() int { return b.used }

// Remaining returns the budget still available.
func (b *Budgeted) Remaining() int { return b.budget - b.used }

// Budget returns the configured limit.
func (b *Budgeted) Budget() int { return b.budget }

// Labeled returns a snapshot of all labeled records so far as a map of
// record index to label.
func (b *Budgeted) Labeled() map[int]bool {
	out := make(map[int]bool, len(b.cache))
	for k, v := range b.cache {
		out[k] = v
	}
	return out
}

// LabeledPositives returns the indices labeled positive so far — the R1
// component of Algorithm 1's result.
func (b *Budgeted) LabeledPositives() []int {
	var out []int
	for k, v := range b.cache {
		if v {
			out = append(out, k)
		}
	}
	return out
}
