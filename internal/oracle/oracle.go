// Package oracle models the expensive ground-truth predicate of a SUPG
// query. The paper treats the oracle as a user-provided UDF — a human
// labeler or an expensive DNN — whose calls are counted against a hard
// budget (the ORACLE LIMIT clause). This package provides the Oracle
// interface, budget enforcement, call accounting, and a simulated
// oracle backed by a dataset's hidden ground-truth labels with optional
// per-call cost and latency modeling.
package oracle

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"supg/internal/dataset"
)

// Oracle evaluates the ground-truth predicate O(x) for a record index.
// Implementations may be expensive; callers must respect budgets.
type Oracle interface {
	// Label returns the oracle predicate value for record i.
	Label(i int) (bool, error)
}

// Func adapts a plain function to the Oracle interface.
type Func func(i int) (bool, error)

// Label implements Oracle.
func (f Func) Label(i int) (bool, error) { return f(i) }

// ErrBudgetExhausted is returned by a Budgeted oracle once its call
// limit has been spent.
var ErrBudgetExhausted = errors.New("oracle: budget exhausted")

// Simulated is an oracle backed by a dataset's hidden ground-truth
// labels, with per-call accounting. It stands in for human labelers and
// ground-truth DNNs per the substitution notes in DESIGN.md. It is safe
// for concurrent use: the Dispatcher labels batches from multiple
// goroutines, so the call accounting is guarded by a mutex (the latency
// sleep happens outside the lock, so concurrent calls overlap the way
// real oracle backends would).
type Simulated struct {
	data        *dataset.Dataset
	costPerCall float64
	latency     time.Duration

	mu          sync.Mutex
	calls       int
	uniqueCalls map[int]struct{}
}

// NewSimulated returns an oracle that reveals d's ground-truth labels.
func NewSimulated(d *dataset.Dataset) *Simulated {
	return &Simulated{data: d, uniqueCalls: make(map[int]struct{})}
}

// WithCost sets a per-call dollar cost used by the cost model.
func (s *Simulated) WithCost(dollars float64) *Simulated {
	s.costPerCall = dollars
	return s
}

// WithLatency makes each call sleep for d, for end-to-end demos.
func (s *Simulated) WithLatency(d time.Duration) *Simulated {
	s.latency = d
	return s
}

// Label implements Oracle.
func (s *Simulated) Label(i int) (bool, error) {
	if i < 0 || i >= s.data.Len() {
		return false, Permanent(fmt.Errorf("oracle: record %d out of range [0,%d)", i, s.data.Len()))
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	s.mu.Lock()
	s.calls++
	s.uniqueCalls[i] = struct{}{}
	s.mu.Unlock()
	return s.data.TrueLabel(i), nil
}

// Calls returns the total number of Label invocations.
func (s *Simulated) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// UniqueCalls returns the number of distinct records labeled.
func (s *Simulated) UniqueCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.uniqueCalls)
}

// SpentCost returns calls × cost-per-call in dollars.
func (s *Simulated) SpentCost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.calls) * s.costPerCall
}

// Reset clears the call accounting (not the cost configuration).
func (s *Simulated) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = 0
	s.uniqueCalls = make(map[int]struct{})
}

// LabelCache is a shared read-through/write-through label tier for a
// Budgeted oracle — typically a labelstore.Cache holding the labels
// every earlier query of the same (table, oracle) pair already bought.
// Implementations must be goroutine-safe (multiple queries share one
// cache) and must serve labels that are a pure function of the record
// index. A lookup may miss at any time (bounded caches evict;
// invalidated caches go cold), so correctness never depends on a hit.
type LabelCache interface {
	// Get returns the cached label of record i and whether it was found.
	Get(i int) (bool, bool)
	// Put records the label of record i. It may drop the write.
	Put(i int, v bool)
}

// Budgeted wraps an oracle with a hard call limit and memoization.
// Repeat labels of an already-labeled record are served from cache and
// do NOT consume budget, matching the paper's model where the label of
// a record, once obtained, is known. Once remaining budget reaches zero
// any uncached call fails with ErrBudgetExhausted.
//
// A Budgeted is owned by a single query goroutine: Label and LabelAll
// are not safe for concurrent use with each other. LabelAll may fan the
// underlying fetches out across goroutines (when the inner oracle is a
// BatchOracle), but the budget accounting itself stays single-threaded.
type Budgeted struct {
	inner  Oracle
	budget int
	used   int
	cache  map[int]bool
	ctx    context.Context // nil = never cancelled

	// store is the optional cross-query label tier (see WithStore).
	store     LabelCache
	freeReuse bool
	storeHits int
	onCharge  func(n int) // notified per charged store hit batch
}

// NewBudgeted wraps inner with a limit of budget oracle calls. The
// memoization map is presized to realistic budgets to keep incremental
// map growth off the query hot path; sentinel "effectively unlimited"
// budgets (the joint-query wrapper passes MaxInt/2) get no hint, since
// presizing to them would allocate far beyond actual use.
func NewBudgeted(inner Oracle, budget int) *Budgeted {
	hint := budget
	if hint < 0 || hint > 1<<20 {
		hint = 0
	}
	if hint > 1<<16 {
		hint = 1 << 16
	}
	return &Budgeted{inner: inner, budget: budget, cache: make(map[int]bool, hint)}
}

// WithContext attaches a cancellation context: once ctx is done, every
// subsequent uncached Label (and any LabelAll) fails with ctx's error,
// stopping oracle consumption mid-query. Returns b for chaining.
func (b *Budgeted) WithContext(ctx context.Context) *Budgeted {
	b.ctx = ctx
	return b
}

// WithStore attaches a shared cross-query label tier. A store hit
// skips the inner oracle entirely. In the default charged mode (free =
// false) a hit still consumes one budget unit, so budget traces —
// and therefore every downstream decision of the selection algorithms
// — are byte-identical to a run without the store; only the inner
// oracle's call count drops. With free = true hits cost nothing,
// stretching the effective sample size a budget can buy at the price
// of run-to-run comparability. Fresh labels fetched from the inner
// oracle are written through to the store either way. Returns b for
// chaining; a nil store leaves b unchanged.
func (b *Budgeted) WithStore(store LabelCache, free bool) *Budgeted {
	if store != nil {
		b.store = store
		b.freeReuse = free
	}
	return b
}

// WithChargeHook registers fn to be notified whenever charged store
// hits consume budget (n units at a time). It lets callers that count
// real oracle invocations elsewhere (e.g. a progress hook below the
// batch dispatcher) keep their cumulative totals equal to Used(),
// which charges for store hits the inner oracle never sees. Returns b
// for chaining.
func (b *Budgeted) WithChargeHook(fn func(n int)) *Budgeted {
	b.onCharge = fn
	return b
}

// StoreHits returns the number of labels this query served from the
// attached store (charged or free).
func (b *Budgeted) StoreHits() int { return b.storeHits }

// Context returns the attached cancellation context (never nil).
func (b *Budgeted) Context() context.Context {
	if b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Label implements Oracle with budget enforcement and memoization.
func (b *Budgeted) Label(i int) (bool, error) {
	if v, ok := b.cache[i]; ok {
		return v, nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return false, fmt.Errorf("oracle: %w", err)
		}
	}
	if b.store != nil {
		if v, ok := b.store.Get(i); ok {
			if b.freeReuse {
				b.cache[i] = v
				b.storeHits++
				return v, nil
			}
			if b.used >= b.budget {
				return false, fmt.Errorf("%w (limit %d)", ErrBudgetExhausted, b.budget)
			}
			b.used++
			b.storeHits++
			b.cache[i] = v
			if b.onCharge != nil {
				b.onCharge(1)
			}
			return v, nil
		}
	}
	if b.used >= b.budget {
		return false, fmt.Errorf("%w (limit %d)", ErrBudgetExhausted, b.budget)
	}
	v, err := b.inner.Label(i)
	if err != nil {
		return false, err
	}
	b.used++
	b.cache[i] = v
	if b.store != nil {
		b.store.Put(i, v)
	}
	return v, nil
}

// LabelAll labels idx in order and returns the labels positionally.
// Budget semantics are identical to calling Label on each element of
// idx in sequence: repeats and already-cached records are free, each
// fresh record consumes one unit, and if the fresh records outnumber
// the remaining budget the in-budget prefix is still fetched (and
// cached, mirroring the partial consumption of the sequential loop)
// before ErrBudgetExhausted is returned.
//
// When the inner oracle implements BatchOracle the fresh records are
// fetched through one LabelBatch call — concurrently, if the inner
// oracle dispatches that way — and merged back in idx order, so results
// are bit-for-bit identical to the sequential path for any oracle that
// is a pure function of the record index.
func (b *Budgeted) LabelAll(idx []int) ([]bool, error) {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
	}
	// Collect the fresh records in first-occurrence order, capped at the
	// remaining budget exactly as a sequential Label loop would be.
	// Store hits are resolved inline: in charged mode they consume a
	// budget unit at their encounter position (so the exhaustion point
	// matches a storeless run unit for unit); in reuse-free mode they
	// are as free as memo hits.
	var (
		fetch     []int
		fetchPos  map[int]int
		hits      int
		exhausted bool
	)
	for _, j := range idx {
		if _, ok := b.cache[j]; ok {
			continue
		}
		if _, ok := fetchPos[j]; ok {
			continue
		}
		if b.store != nil {
			if v, ok := b.store.Get(j); ok {
				if b.freeReuse {
					b.cache[j] = v
					b.storeHits++
					continue
				}
				if b.used+len(fetch) >= b.budget {
					exhausted = true
					break
				}
				b.cache[j] = v
				b.used++
				b.storeHits++
				hits++
				continue
			}
		}
		if b.used+len(fetch) >= b.budget {
			exhausted = true
			break
		}
		if fetchPos == nil {
			fetchPos = make(map[int]int, len(idx))
		}
		fetchPos[j] = len(fetch)
		fetch = append(fetch, j)
	}
	if hits > 0 && b.onCharge != nil {
		b.onCharge(hits)
	}

	if err := b.fetchAll(fetch); err != nil {
		return nil, err
	}
	if exhausted {
		return nil, fmt.Errorf("%w (limit %d)", ErrBudgetExhausted, b.budget)
	}

	out := make([]bool, len(idx))
	for i, j := range idx {
		out[i] = b.cache[j]
	}
	return out, nil
}

// LabelBatch implements BatchOracle, so nested Budgeted wrappers (the
// joint query path stacks a stage budget on an unlimited one) propagate
// batching down to the innermost dispatcher. It must be called from the
// goroutine that owns b; the batch parallelism happens below it. On
// error it honors the BatchOracle prefix contract: the longest prefix
// of idx answerable from the memo — exactly the labels the failed run
// did obtain and charge for — is returned alongside the error, so an
// outer wrapper's accounting keeps them.
func (b *Budgeted) LabelBatch(ctx context.Context, idx []int) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	labels, err := b.LabelAll(idx)
	if err == nil {
		return labels, nil
	}
	prefix := make([]bool, 0, len(idx))
	for _, j := range idx {
		v, ok := b.cache[j]
		if !ok {
			break
		}
		prefix = append(prefix, v)
	}
	return prefix, err
}

// fetchAll labels the deduplicated fresh records through the inner
// oracle and folds them into the cache and budget accounting. The
// sequential path caches and counts each success before moving on, so
// an inner error mid-way leaves exactly the sequential loop's partial
// state behind. The batch path keeps the same invariant: BatchOracle
// implementations return the successfully-labeled prefix alongside an
// error, and that prefix is cached, charged, and written through to
// the store before the error propagates — labels the inner oracle
// already fetched (and was paid for) are never thrown away.
func (b *Budgeted) fetchAll(fetch []int) error {
	if len(fetch) == 0 {
		return nil
	}
	if batch, ok := b.inner.(BatchOracle); ok {
		labels, err := batch.LabelBatch(b.Context(), fetch)
		n := len(labels)
		if n > len(fetch) {
			n = len(fetch)
		}
		for i := 0; i < n; i++ {
			j := fetch[i]
			b.cache[j] = labels[i]
			if b.store != nil {
				b.store.Put(j, labels[i])
			}
		}
		b.used += n
		return err
	}
	for _, j := range fetch {
		if b.ctx != nil {
			if err := b.ctx.Err(); err != nil {
				return fmt.Errorf("oracle: %w", err)
			}
		}
		v, err := b.inner.Label(j)
		if err != nil {
			return err
		}
		b.cache[j] = v
		b.used++
		if b.store != nil {
			b.store.Put(j, v)
		}
	}
	return nil
}

// Used returns the number of budget-consuming calls made so far.
func (b *Budgeted) Used() int { return b.used }

// Remaining returns the budget still available.
func (b *Budgeted) Remaining() int { return b.budget - b.used }

// Budget returns the configured limit.
func (b *Budgeted) Budget() int { return b.budget }

// Labeled returns a snapshot of all labeled records so far as a map of
// record index to label.
func (b *Budgeted) Labeled() map[int]bool {
	out := make(map[int]bool, len(b.cache))
	for k, v := range b.cache {
		out[k] = v
	}
	return out
}

// LabeledPositives returns the indices labeled positive so far — the R1
// component of Algorithm 1's result.
func (b *Budgeted) LabeledPositives() []int {
	var out []int
	for k, v := range b.cache {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}
