package oracle

import (
	"context"
	"fmt"
	"sync"
	"time"

	"supg/internal/metrics"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes every call through (healthy backend).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails every call fast without touching the backend.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through; everyone else fails
	// fast until the probe reports.
	BreakerHalfOpen
)

// String names the state for diagnostics and stats.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Outcome is what a breaker-guarded call reports back.
type Outcome int

const (
	// OutcomeSuccess: the backend answered. Resets the failure streak;
	// closes a half-open breaker.
	OutcomeSuccess Outcome = iota
	// OutcomeFailure: the backend is unusable even after retries. Counts
	// toward the open threshold; re-opens a half-open breaker.
	OutcomeFailure
	// OutcomeSkip: the call says nothing about backend health (query
	// cancelled, permanent application error). No state change beyond
	// releasing a half-open probe slot.
	OutcomeSkip
)

// BreakerOptions tune a Breaker. The zero value selects the defaults
// noted on each field.
type BreakerOptions struct {
	// Threshold is the number of consecutive failed calls (transient
	// failures that exhausted their retries) that trips the breaker
	// open (default 5).
	Threshold int
	// Cooldown is how long an open breaker refuses calls before
	// half-opening for a probe (default 1s).
	Cooldown time.Duration
	// Clock overrides the time source (nil = real time).
	Clock Clock
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	o.Clock = clockOrReal(o.Clock)
	return o
}

// Breaker is a circuit breaker shared by every query hitting one
// oracle backend: closed → open after Threshold consecutive failures,
// open → half-open after Cooldown, half-open → closed on a successful
// probe (or back to open on a failed one). All methods are
// goroutine-safe and nil-safe — a nil *Breaker allows everything.
//
// The breaker observes final outcomes, not attempts: a call that
// failed twice and then succeeded under retry reports one success.
// That keeps "open" meaning "unusable even with retries", and keeps
// breaker state deterministic for workloads whose calls all eventually
// succeed.
type Breaker struct {
	opts     BreakerOptions
	counters *metrics.Counters

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.withDefaults()}
}

// WithCounters mirrors open/close transitions into the breaker-state
// gauge. Returns b for chaining.
func (b *Breaker) WithCounters(c *metrics.Counters) *Breaker {
	if b != nil {
		b.counters = c
	}
	return b
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks permission for one call. On nil error the caller must
// invoke the returned report with the call's Outcome exactly once; on
// ErrBreakerOpen the call was refused and there is nothing to report.
func (b *Breaker) Allow() (report func(Outcome), err error) {
	if b == nil {
		return func(Outcome) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return b.reportClosed, nil
	case BreakerOpen:
		if b.opts.Clock.Now().Sub(b.openedAt) < b.opts.Cooldown {
			return nil, fmt.Errorf("%w (cooldown %v)", ErrBreakerOpen, b.opts.Cooldown)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return b.reportProbe, nil
	default: // BreakerHalfOpen
		if b.probing {
			return nil, fmt.Errorf("%w (probe in flight)", ErrBreakerOpen)
		}
		b.probing = true
		return b.reportProbe, nil
	}
}

// reportClosed folds a closed-state call's outcome into the failure
// streak. If another goroutine already tripped the breaker, the report
// is a no-op — the streak belongs to the closed state.
func (b *Breaker) reportClosed(o Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return
	}
	switch o {
	case OutcomeSuccess:
		b.failures = 0
	case OutcomeFailure:
		b.failures++
		if b.failures >= b.opts.Threshold {
			b.state = BreakerOpen
			b.openedAt = b.opts.Clock.Now()
			b.counters.BreakerOpened()
		}
	}
}

// reportProbe folds the half-open probe's outcome: success closes the
// breaker, failure re-opens it (restarting the cooldown), and a skip
// frees the probe slot for the next caller.
func (b *Breaker) reportProbe(o Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	b.probing = false
	switch o {
	case OutcomeSuccess:
		b.state = BreakerClosed
		b.failures = 0
		b.counters.BreakerClosed()
	case OutcomeFailure:
		b.state = BreakerOpen
		b.openedAt = b.opts.Clock.Now()
	}
}

// ResilientOptions tune a Resilient oracle wrapper. The zero value
// performs one attempt per call with no timeout — indistinguishable
// from the raw oracle.
type ResilientOptions struct {
	// Timeout bounds one attempt's wall-clock time (0 = unbounded). A
	// timed-out attempt counts as a transient failure; the abandoned
	// UDF call keeps running in its goroutine and its eventual result
	// is discarded, so the inner oracle must be goroutine-safe when a
	// timeout is configured.
	Timeout time.Duration
	// Retries is how many times a transient failure is re-attempted
	// after the first try (0 = fail on first error).
	Retries int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Seed derives the deterministic backoff jitter. The jitter for a
	// given (seed, record, attempt) is a pure function — independent of
	// goroutine interleaving — so a replayed query sleeps the exact
	// same schedule.
	Seed uint64
	// Clock overrides the time source (nil = real time).
	Clock Clock
}

// Enabled reports whether the options ask for any resilience behavior
// beyond a raw call.
func (o ResilientOptions) Enabled() bool {
	return o.Timeout > 0 || o.Retries > 0
}

func (o ResilientOptions) baseBackoff() time.Duration {
	if o.BaseBackoff <= 0 {
		return 10 * time.Millisecond
	}
	return o.BaseBackoff
}

func (o ResilientOptions) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return o.MaxBackoff
}

// Resilient wraps an oracle with per-attempt timeouts, bounded retries
// with exponential backoff and deterministic jitter, and an optional
// shared circuit breaker. It is created per query (it carries the
// query's context and jitter seed) while the breaker is shared across
// queries of the same backend.
//
// Resilience never changes results: labels are a pure function of the
// record index, so a call that eventually succeeds yields exactly the
// label a fault-free run yields, and the budget wrapper above never
// sees the retried attempts. Sitting below the Dispatcher, a mid-batch
// transient failure is retried for the failing index alone — the other
// in-flight indices are unaffected.
type Resilient struct {
	inner    Oracle
	opts     ResilientOptions
	breaker  *Breaker
	ctx      context.Context
	counters *metrics.Counters
	clock    Clock
}

// NewResilient wraps inner with the given resilience policy.
func NewResilient(inner Oracle, opts ResilientOptions) *Resilient {
	return &Resilient{inner: inner, opts: opts, clock: clockOrReal(opts.Clock)}
}

// WithBreaker attaches a shared circuit breaker (nil = none). Returns
// r for chaining.
func (r *Resilient) WithBreaker(b *Breaker) *Resilient {
	r.breaker = b
	return r
}

// WithContext attaches the query's cancellation context: backoff
// sleeps and in-flight attempts abort when it is done. Returns r for
// chaining.
func (r *Resilient) WithContext(ctx context.Context) *Resilient {
	r.ctx = ctx
	return r
}

// WithCounters mirrors retry and timeout activity into the service
// counters. Returns r for chaining.
func (r *Resilient) WithCounters(c *metrics.Counters) *Resilient {
	r.counters = c
	return r
}

func (r *Resilient) context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Label implements Oracle: one breaker-guarded call with up to
// opts.Retries re-attempts of transient failures. Exhausted retries
// and a refused (breaker-open) call return a typed *UnavailableError
// matching ErrOracleUnavailable.
func (r *Resilient) Label(i int) (bool, error) {
	report, err := r.breaker.Allow()
	if err != nil {
		return false, &UnavailableError{Cause: err}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		v, err := r.attempt(i)
		if err == nil {
			report(OutcomeSuccess)
			return v, nil
		}
		switch Classify(err) {
		case ClassCancelled:
			report(OutcomeSkip)
			return false, err
		case ClassPermanent:
			report(OutcomeSkip)
			return false, err
		}
		lastErr = err
		if attempt >= r.opts.Retries {
			report(OutcomeFailure)
			return false, &UnavailableError{
				Cause: fmt.Errorf("record %d failed %d attempt(s): %w", i, attempt+1, lastErr),
			}
		}
		r.counters.OracleRetries(1)
		if serr := r.clock.Sleep(r.context(), r.backoff(i, attempt)); serr != nil {
			report(OutcomeSkip)
			return false, fmt.Errorf("oracle: %w", serr)
		}
	}
}

// attempt performs one timeout-bounded call of the inner oracle.
func (r *Resilient) attempt(i int) (bool, error) {
	ctx := r.context()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if r.opts.Timeout <= 0 {
		return r.inner.Label(i)
	}
	type outcome struct {
		v   bool
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := r.inner.Label(i)
		ch <- outcome{v, err}
	}()
	timer, stop := r.clock.Timer(r.opts.Timeout)
	defer stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer:
		r.counters.OracleTimeouts(1)
		return false, Transient(fmt.Errorf("attempt on record %d timed out after %v", i, r.opts.Timeout))
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// backoff computes the delay before retry number attempt of record i:
// exponential growth from BaseBackoff capped at MaxBackoff, scaled by
// a deterministic jitter factor in [0.5, 1.0) derived from (Seed, i,
// attempt) — a pure function, so replays sleep byte-identical
// schedules regardless of goroutine interleaving.
func (r *Resilient) backoff(i, attempt int) time.Duration {
	d := r.opts.baseBackoff()
	max := r.opts.maxBackoff()
	for a := 0; a < attempt && d < max; a++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	u := jitterFloat(r.opts.Seed, uint64(i), uint64(attempt))
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// jitterFloat hashes (seed, record, attempt) to a uniform float in
// [0, 1) with the SplitMix64 finalizer.
func jitterFloat(seed, record, attempt uint64) float64 {
	h := mix64(seed ^ mix64(record+0x9e3779b97f4a7c15) ^ mix64(attempt+0xbf58476d1ce4e5b9))
	return float64(h>>11) / (1 << 53)
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
