package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"supg/internal/randx"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, nil); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := New("x", []float64{0.5}, []bool{true, false}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := New("x", []float64{1.5}, []bool{true}); err == nil {
		t.Error("score > 1 should error")
	}
	if _, err := New("x", []float64{-0.1}, []bool{true}); err == nil {
		t.Error("score < 0 should error")
	}
	if _, err := New("x", []float64{math.NaN()}, []bool{true}); err == nil {
		t.Error("NaN score should error")
	}
	d, err := New("ok", []float64{0, 0.5, 1}, []bool{false, true, true})
	if err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	if d.Name() != "ok" || d.Len() != 3 {
		t.Error("accessors wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew("bad", []float64{2}, []bool{true})
}

func TestAccessors(t *testing.T) {
	d := MustNew("d", []float64{0.2, 0.8, 0.5}, []bool{false, true, true})
	if d.Score(1) != 0.8 {
		t.Error("Score")
	}
	if !d.TrueLabel(1) || d.TrueLabel(0) {
		t.Error("TrueLabel")
	}
	if d.PositiveCount() != 2 {
		t.Error("PositiveCount")
	}
	if math.Abs(d.PositiveRate()-2.0/3) > 1e-12 {
		t.Error("PositiveRate")
	}
	pos := d.Positives()
	if len(pos) != 2 || pos[0] != 1 || pos[1] != 2 {
		t.Errorf("Positives = %v", pos)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustNew("d", []float64{0.2, 0.8}, []bool{false, true})
	c := d.Clone()
	c.Scores()[0] = 0.99
	if d.Score(0) != 0.2 {
		t.Error("Clone shares score storage")
	}
}

func TestWithName(t *testing.T) {
	d := MustNew("a", []float64{0.5}, []bool{true})
	if d.WithName("b").Name() != "b" {
		t.Error("WithName")
	}
	if d.Name() != "a" {
		t.Error("WithName mutated original")
	}
}

func TestSummarize(t *testing.T) {
	d := MustNew("s", []float64{0.1, 0.9, 0.5, 0.2}, []bool{false, true, false, false})
	s := d.Summarize()
	if s.Records != 4 || s.Positives != 1 || s.TPR != 0.25 || s.Name != "s" {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestBetaGeneratorCalibration(t *testing.T) {
	r := randx.New(1)
	d := Beta(r, 200000, 0.01, 2)
	// Labels are Bernoulli(score): the TPR should match the mean score.
	meanScore := 0.0
	for _, s := range d.Scores() {
		meanScore += s
	}
	meanScore /= float64(d.Len())
	if math.Abs(d.PositiveRate()-meanScore) > 0.002 {
		t.Errorf("TPR %v far from mean score %v (calibration broken)", d.PositiveRate(), meanScore)
	}
	// Mean of Beta(0.01, 2) is 0.01/2.01.
	want := 0.01 / 2.01
	if math.Abs(meanScore-want) > 0.001 {
		t.Errorf("mean score %v, want %v", meanScore, want)
	}
}

func TestBetaGeneratorName(t *testing.T) {
	d := Beta(randx.New(1), 100, 0.01, 1)
	if d.Name() != "Beta(0.01, 1)" {
		t.Errorf("name %q", d.Name())
	}
}

func TestMixtureProfileTPR(t *testing.T) {
	p := MixtureProfile{
		Name: "m", N: 100000, TPR: 0.03,
		PosAlpha: 4, PosBeta: 1.2, NegAlpha: 0.1, NegBeta: 5,
	}
	d := p.Generate(randx.New(2))
	if math.Abs(d.PositiveRate()-0.03) > 0.005 {
		t.Errorf("TPR %v, want ~0.03", d.PositiveRate())
	}
	// Positives should score higher than negatives on average.
	var posSum, negSum float64
	var posN, negN int
	for i := 0; i < d.Len(); i++ {
		if d.TrueLabel(i) {
			posSum += d.Score(i)
			posN++
		} else {
			negSum += d.Score(i)
			negN++
		}
	}
	if posSum/float64(posN) <= negSum/float64(negN) {
		t.Error("positives should have higher mean proxy score")
	}
}

func TestSimProfilesMatchPaper(t *testing.T) {
	r := randx.New(3)
	cases := []struct {
		d      *Dataset
		n      int
		tpr    float64
		tprTol float64
	}{
		{ImageNetSim(r.Stream(1)), 50000, 0.001, 0.0006},
		{OntoNotesSim(r.Stream(2)), 11165, 0.025, 0.006},
		{TACREDSim(r.Stream(3)), 22631, 0.024, 0.006},
		{NightStreetSimN(r.Stream(4), 50000), 50000, 0.04, 0.006},
	}
	for _, c := range cases {
		if c.d.Len() != c.n {
			t.Errorf("%s: n=%d, want %d", c.d.Name(), c.d.Len(), c.n)
		}
		if math.Abs(c.d.PositiveRate()-c.tpr) > c.tprTol {
			t.Errorf("%s: TPR %v, want ~%v", c.d.Name(), c.d.PositiveRate(), c.tpr)
		}
	}
}

func TestAddProxyNoise(t *testing.T) {
	r := randx.New(4)
	d := Beta(r, 50000, 2, 2)
	noisy := AddProxyNoise(r.Stream(1), d, 0.1)
	if noisy.Len() != d.Len() {
		t.Fatal("length changed")
	}
	changed := 0
	for i := 0; i < d.Len(); i++ {
		s := noisy.Score(i)
		if s < 0 || s > 1 {
			t.Fatalf("noisy score %v outside [0,1]", s)
		}
		if s != d.Score(i) {
			changed++
		}
		if noisy.TrueLabel(i) != d.TrueLabel(i) {
			t.Fatal("noise must not change labels")
		}
	}
	if changed < d.Len()/2 {
		t.Errorf("only %d/%d scores changed", changed, d.Len())
	}
	if !strings.Contains(noisy.Name(), "noise") {
		t.Errorf("name %q should mention noise", noisy.Name())
	}
}

func TestScoreStdDev(t *testing.T) {
	d := MustNew("sd", []float64{0, 1, 0, 1}, []bool{false, true, false, true})
	if math.Abs(d.ScoreStdDev()-0.5) > 1e-12 {
		t.Errorf("ScoreStdDev %v, want 0.5", d.ScoreStdDev())
	}
}

func TestFogDriftDegradesPositives(t *testing.T) {
	r := randx.New(5)
	d := ImageNetSim(r)
	fog := ApplyFogDrift(r.Stream(1), d, 0.5)
	var before, after float64
	n := 0
	for i := 0; i < d.Len(); i++ {
		if d.TrueLabel(i) {
			before += d.Score(i)
			after += fog.Score(i)
			n++
		}
	}
	if n == 0 {
		t.Skip("no positives generated")
	}
	if after >= before {
		t.Errorf("fog should reduce positive scores: %v -> %v", before/float64(n), after/float64(n))
	}
	if !strings.Contains(fog.Name(), "fog") {
		t.Errorf("name %q", fog.Name())
	}
}

func TestDayDriftPerturbsScores(t *testing.T) {
	r := randx.New(6)
	d := NightStreetSimN(r, 20000)
	day2 := ApplyDayDrift(r.Stream(1), d)
	same := 0
	for i := 0; i < d.Len(); i++ {
		if day2.Score(i) == d.Score(i) {
			same++
		}
		if s := day2.Score(i); s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
	if same > d.Len()/2 {
		t.Errorf("day drift left %d/%d scores unchanged", same, d.Len())
	}
}

func TestShiftBeta(t *testing.T) {
	train, test := ShiftBeta(randx.New(7), 50000, 0.01, 1, 2)
	// Beta(0.01,1) has mean ~0.0099, Beta(0.01,2) ~0.005: the shift
	// must lower the positive rate.
	if train.PositiveRate() <= test.PositiveRate() {
		t.Errorf("expected TPR drop: train %v, test %v", train.PositiveRate(), test.PositiveRate())
	}
	if !strings.Contains(test.Name(), "shifted") {
		t.Errorf("test name %q", test.Name())
	}
}

func TestStandardDriftPairs(t *testing.T) {
	pairs := StandardDriftPairs(randx.New(8), 5000)
	if len(pairs) != 3 {
		t.Fatalf("want 3 drift pairs, got %d", len(pairs))
	}
	for _, p := range pairs {
		if p.Train == nil || p.Test == nil || p.Description == "" {
			t.Errorf("incomplete pair %+v", p.Description)
		}
		if p.Train.Len() != 5000 {
			t.Errorf("%s: train size %d", p.Description, p.Train.Len())
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := MustNew("rt", []float64{0.25, 0.75, 0}, []bool{false, true, false})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("roundtrip length %d", got.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if got.Score(i) != d.Score(i) || got.TrueLabel(i) != d.TrueLabel(i) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"wrong,header,here\n0,0.5,1\n",
		"id,proxy_score,label\n0,notanumber,1\n",
		"id,proxy_score,label\n0,0.5,maybe\n",
		"id,proxy_score,label\n0,1.5,1\n", // out-of-range score caught by New
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestReadCSVAcceptsBoolWords(t *testing.T) {
	src := "id,proxy_score,label\n0,0.5,true\n1,0.6,false\n"
	d, err := ReadCSV(strings.NewReader(src), "words")
	if err != nil {
		t.Fatal(err)
	}
	if !d.TrueLabel(0) || d.TrueLabel(1) {
		t.Error("bool words parsed wrong")
	}
}
