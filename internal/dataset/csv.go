package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV layout: a header row "id,proxy_score,label" followed by one row
// per record. Labels are "0"/"1" (also accepts "true"/"false"). This is
// the interchange format used by cmd/supg and cmd/supg-datagen.

// WriteCSV serializes d to w in the interchange format.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "proxy_score", "label"}); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, 3)
	for i := 0; i < d.Len(); i++ {
		row[0] = strconv.Itoa(i)
		row[1] = strconv.FormatFloat(d.Score(i), 'g', -1, 64)
		if d.TrueLabel(i) {
			row[2] = "1"
		} else {
			row[2] = "0"
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset in the interchange format. The id column is
// ignored (record order defines identity).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if header[1] != "proxy_score" || header[2] != "label" {
		return nil, fmt.Errorf("dataset: unexpected header %v, want [id proxy_score label]", header)
	}
	var scores []float64
	var labels []bool
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line+1, err)
		}
		line++
		s, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad proxy_score %q: %w", line, rec[1], err)
		}
		l, err := parseLabel(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		scores = append(scores, s)
		labels = append(labels, l)
	}
	return New(name, scores, labels)
}

func parseLabel(s string) (bool, error) {
	switch s {
	case "1", "true", "TRUE", "True":
		return true, nil
	case "0", "false", "FALSE", "False":
		return false, nil
	}
	return false, fmt.Errorf("bad label %q (want 0/1/true/false)", s)
}
