package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary interchange format. Large simulated datasets (the paper's
// night-street has ~10^6 frames) round-trip an order of magnitude
// faster and 3x smaller than CSV:
//
//	magic   [8]byte  "SUPGDS1\n"
//	count   uint64   little-endian record count
//	scores  count x float64 (little-endian IEEE 754)
//	labels  ceil(count/8) bytes, LSB-first bit per record
var binaryMagic = [8]byte{'S', 'U', 'P', 'G', 'D', 'S', '1', '\n'}

// WriteBinary serializes d in the binary interchange format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("dataset: write magic: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(d.Len()))
	if _, err := bw.Write(buf[:]); err != nil {
		return fmt.Errorf("dataset: write count: %w", err)
	}
	for i := 0; i < d.Len(); i++ {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.Score(i)))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("dataset: write score %d: %w", i, err)
		}
	}
	bits := make([]byte, (d.Len()+7)/8)
	for i := 0; i < d.Len(); i++ {
		if d.TrueLabel(i) {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	if _, err := bw.Write(bits); err != nil {
		return fmt.Errorf("dataset: write labels: %w", err)
	}
	return bw.Flush()
}

// maxRecords caps the declared record count (~8B records) as a sanity
// check against corrupt headers.
const maxRecords = 1 << 33

// chunkRecords is the incremental-allocation granularity of ReadBinary.
const chunkRecords = 1 << 16

// BinarySize returns the exact byte length of n records in the binary
// interchange format: magic + count + scores + label bits.
func BinarySize(n int) int64 {
	return 16 + 8*int64(n) + int64((n+7)/8)
}

// readBinaryHeader consumes and validates the magic + count header.
func readBinaryHeader(br io.Reader) (int, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("dataset: read header: %w", err)
	}
	if [8]byte(hdr[:8]) != binaryMagic {
		return 0, fmt.Errorf("dataset: bad magic %q (not a SUPG binary dataset)", hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	if count == 0 || count > maxRecords {
		return 0, fmt.Errorf("dataset: implausible record count %d", count)
	}
	return int(count), nil
}

// readBinaryBody decodes n scores and labels from br into the provided
// slices, which must have length n. Scores are read in bulk chunks and
// decoded in place — no per-record reads, no slice growth.
func readBinaryBody(br io.Reader, scores []float64, labels []bool) error {
	n := len(scores)
	chunk := make([]byte, min(n, chunkRecords)*8)
	for done := 0; done < n; {
		want := min(n-done, chunkRecords) * 8
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return fmt.Errorf("dataset: read score %d: %w", done, err)
		}
		for off := 0; off < want; off += 8 {
			scores[done] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:]))
			done++
		}
	}
	nb := (n + 7) / 8
	for done := 0; done < nb; {
		want := min(nb-done, len(chunk))
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return fmt.Errorf("dataset: read labels: %w", err)
		}
		for _, b := range chunk[:want] {
			base := done * 8
			for bit := 0; bit < 8 && base+bit < n; bit++ {
				labels[base+bit] = b&(1<<bit) != 0
			}
			done++
		}
	}
	return nil
}

// ReadBinary parses a dataset in the binary interchange format.
//
// Scores are allocated incrementally rather than trusting the header's
// count up front: a corrupt or hostile header can claim 2^33 records
// (64 GiB of scores) while the stream holds a few bytes, and the parse
// must fail with a read error, not an OOM. Callers that know the
// stream's byte length (an upload's Content-Length, a file's size)
// should use ReadBinarySized, which cross-checks the header against the
// length and decodes straight into exact-size buffers.
func ReadBinary(r io.Reader, name string) (*Dataset, error) {
	br := bufio.NewReader(r)
	n, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, 0, min(n, chunkRecords))
	chunk := make([]byte, min(n, chunkRecords)*8)
	for len(scores) < n {
		want := min(n-len(scores), chunkRecords) * 8
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, fmt.Errorf("dataset: read score %d: %w", len(scores), err)
		}
		for off := 0; off < want; off += 8 {
			scores = append(scores, math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:])))
		}
	}
	bits := make([]byte, 0, min((n+7)/8, chunkRecords))
	for len(bits) < (n+7)/8 {
		want := min((n+7)/8-len(bits), len(chunk))
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, fmt.Errorf("dataset: read labels: %w", err)
		}
		bits = append(bits, chunk[:want]...)
	}
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		labels[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return New(name, scores, labels)
}

// ReadBinaryInto parses a dataset in the binary interchange format,
// decoding into the caller's buffers instead of growing fresh slices —
// the no-double-copy path for callers that already know the record
// count. scores and labels are used from index 0 up to their capacity;
// a stream declaring more records than cap(scores) or cap(labels) is
// rejected before any allocation, so the header cannot force an OOM.
// The returned dataset retains (re-sliced views of) the buffers.
func ReadBinaryInto(r io.Reader, name string, scores []float64, labels []bool) (*Dataset, error) {
	br := bufio.NewReader(r)
	n, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	if n > cap(scores) || n > cap(labels) {
		return nil, fmt.Errorf("dataset: %d records exceed the provided %d-score/%d-label capacity",
			n, cap(scores), cap(labels))
	}
	scores, labels = scores[:n], labels[:n]
	if err := readBinaryBody(br, scores, labels); err != nil {
		return nil, err
	}
	return New(name, scores, labels)
}

// ReadBinarySized is ReadBinary for callers that know the stream's
// exact byte length: when size matches the header's implied length the
// columns are allocated exactly once at full size and filled with bulk
// reads (no growth reallocations); a mismatched or unknown size falls
// back to the incremental path.
func ReadBinarySized(r io.Reader, name string, size int64) (*Dataset, error) {
	// Invert BinarySize: n is the unique count whose encoding is size
	// bytes long (the per-record cost is 8 bytes + 1 bit).
	if size > 16 {
		n := int(((size - 16) * 8) / 65)
		for cand := n; cand <= n+2 && cand <= maxRecords; cand++ {
			if cand > 0 && BinarySize(cand) == size {
				return ReadBinaryInto(r, name, make([]float64, 0, cand), make([]bool, 0, cand))
			}
		}
	}
	return ReadBinary(r, name)
}
