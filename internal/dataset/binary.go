package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary interchange format. Large simulated datasets (the paper's
// night-street has ~10^6 frames) round-trip an order of magnitude
// faster and 3x smaller than CSV:
//
//	magic   [8]byte  "SUPGDS1\n"
//	count   uint64   little-endian record count
//	scores  count x float64 (little-endian IEEE 754)
//	labels  ceil(count/8) bytes, LSB-first bit per record
var binaryMagic = [8]byte{'S', 'U', 'P', 'G', 'D', 'S', '1', '\n'}

// WriteBinary serializes d in the binary interchange format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("dataset: write magic: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(d.Len()))
	if _, err := bw.Write(buf[:]); err != nil {
		return fmt.Errorf("dataset: write count: %w", err)
	}
	for i := 0; i < d.Len(); i++ {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.Score(i)))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("dataset: write score %d: %w", i, err)
		}
	}
	bits := make([]byte, (d.Len()+7)/8)
	for i := 0; i < d.Len(); i++ {
		if d.TrueLabel(i) {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	if _, err := bw.Write(bits); err != nil {
		return fmt.Errorf("dataset: write labels: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses a dataset in the binary interchange format.
func ReadBinary(r io.Reader, name string) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q (not a SUPG binary dataset)", magic[:])
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("dataset: read count: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:])
	const maxRecords = 1 << 33 // ~8B records: a sanity cap against corrupt headers
	if count == 0 || count > maxRecords {
		return nil, fmt.Errorf("dataset: implausible record count %d", count)
	}
	n := int(count)
	// Allocate incrementally rather than trusting the header's count
	// up front: a corrupt or hostile header can claim 2^33 records
	// (64 GiB of scores) while the stream holds a few bytes, and the
	// parse must fail with a read error, not an OOM. Growth is capped
	// by what the stream actually delivers.
	const chunkRecords = 1 << 16
	scores := make([]float64, 0, min(n, chunkRecords))
	for len(scores) < n {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("dataset: read score %d: %w", len(scores), err)
		}
		scores = append(scores, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	bits := make([]byte, 0, min((n+7)/8, chunkRecords))
	var chunk [4096]byte
	for len(bits) < (n+7)/8 {
		want := (n+7)/8 - len(bits)
		if want > len(chunk) {
			want = len(chunk)
		}
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, fmt.Errorf("dataset: read labels: %w", err)
		}
		bits = append(bits, chunk[:want]...)
	}
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		labels[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return New(name, scores, labels)
}
