// Package dataset provides the data substrate for SUPG queries: an
// in-memory columnar store of records carrying proxy scores and hidden
// ground-truth labels, generators for the paper's synthetic Beta
// datasets, simulated stand-ins for the paper's four real datasets
// (ImageNet, night-street, OntoNotes, TACRED), the distribution-shift
// transforms of Table 3, and CSV import/export.
//
// Ground-truth labels are stored but deliberately not exposed as a
// public field: algorithms must go through an oracle (which enforces the
// budget), while evaluation code uses TrueLabel / Positives explicitly.
package dataset

import (
	"fmt"
)

// Dataset is an immutable collection of records. Each record i has a
// proxy confidence score Scores[i] in [0,1] and a hidden ground-truth
// boolean label.
type Dataset struct {
	name   string
	scores []float64
	labels []bool
}

// New constructs a Dataset from parallel score/label slices. The slices
// are retained (not copied); callers must not mutate them afterwards.
// It returns an error if lengths differ, the dataset is empty, or any
// score is outside [0, 1].
func New(name string, scores []float64, labels []bool) (*Dataset, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("dataset %q: no records", name)
	}
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("dataset %q: %d scores but %d labels", name, len(scores), len(labels))
	}
	for i, s := range scores {
		if s < 0 || s > 1 || s != s {
			return nil, fmt.Errorf("dataset %q: score %g at record %d outside [0,1]", name, s, i)
		}
	}
	return &Dataset{name: name, scores: scores, labels: labels}, nil
}

// FromColumns constructs a Dataset over already-validated parallel
// columns without the per-record range scan New performs. The slices
// are retained (not copied) — the zero-copy path for callers whose
// scores are integrity-checked elsewhere, like the storage tier's
// CRC-verified mmap'd columns. Only structural errors (empty, length
// mismatch) are reported; a caller passing unvalidated scores breaks
// the [0,1] invariant downstream code relies on.
func FromColumns(name string, scores []float64, labels []bool) (*Dataset, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("dataset %q: no records", name)
	}
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("dataset %q: %d scores but %d labels", name, len(scores), len(labels))
	}
	return &Dataset{name: name, scores: scores, labels: labels}, nil
}

// MustNew is New but panics on error; for generators with validated input.
func MustNew(name string, scores []float64, labels []bool) *Dataset {
	d, err := New(name, scores, labels)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.scores) }

// Score returns the proxy score of record i.
func (d *Dataset) Score(i int) float64 { return d.scores[i] }

// Scores returns the full proxy-score column. The returned slice is the
// dataset's backing array; treat it as read-only.
func (d *Dataset) Scores() []float64 { return d.scores }

// TrueLabel reports the ground-truth label of record i. Algorithm code
// must not call this; it exists for oracle construction and evaluation.
func (d *Dataset) TrueLabel(i int) bool { return d.labels[i] }

// PositiveCount returns the number of true-positive records.
func (d *Dataset) PositiveCount() int {
	c := 0
	for _, l := range d.labels {
		if l {
			c++
		}
	}
	return c
}

// PositiveRate returns the true-positive rate |O+| / |D|.
func (d *Dataset) PositiveRate() float64 {
	return float64(d.PositiveCount()) / float64(d.Len())
}

// Positives returns the indices of all true-positive records.
func (d *Dataset) Positives() []int {
	out := make([]int, 0, d.PositiveCount())
	for i, l := range d.labels {
		if l {
			out = append(out, i)
		}
	}
	return out
}

// WithName returns a shallow copy of d renamed to name.
func (d *Dataset) WithName(name string) *Dataset {
	return &Dataset{name: name, scores: d.scores, labels: d.labels}
}

// Append returns a new dataset holding d's records followed by
// extra's; both inputs are left untouched (slices are copied). The
// name is d's. Appended records take the ids [d.Len(), d.Len()+
// extra.Len()), which is what makes incremental index appends safe:
// existing ids keep their scores and labels bit for bit.
func (d *Dataset) Append(extra *Dataset) *Dataset {
	scores := make([]float64, 0, len(d.scores)+extra.Len())
	scores = append(append(scores, d.scores...), extra.scores...)
	labels := make([]bool, 0, len(d.labels)+extra.Len())
	labels = append(append(labels, d.labels...), extra.labels...)
	return &Dataset{name: d.name, scores: scores, labels: labels}
}

// Slice returns a new dataset over records [lo, hi) of d, with copied
// columns. It panics if the range is invalid; an empty range yields a
// dataset New would reject, so callers slice at least one record.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	scores := make([]float64, hi-lo)
	copy(scores, d.scores[lo:hi])
	labels := make([]bool, hi-lo)
	copy(labels, d.labels[lo:hi])
	return &Dataset{name: d.name, scores: scores, labels: labels}
}

// Clone returns a deep copy of d, so transforms can mutate safely.
func (d *Dataset) Clone() *Dataset {
	scores := make([]float64, len(d.scores))
	copy(scores, d.scores)
	labels := make([]bool, len(d.labels))
	copy(labels, d.labels)
	return &Dataset{name: d.name, scores: scores, labels: labels}
}

// Summary describes a dataset the way the paper's Table 2 does.
type Summary struct {
	Name      string
	Records   int
	Positives int
	TPR       float64
}

// Summarize returns the dataset's Table 2 row.
func (d *Dataset) Summarize() Summary {
	p := d.PositiveCount()
	return Summary{
		Name:      d.name,
		Records:   d.Len(),
		Positives: p,
		TPR:       float64(p) / float64(d.Len()),
	}
}
