package dataset

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"supg/internal/randx"
)

func TestFromColumns(t *testing.T) {
	scores := []float64{0.5, 0.25, 1}
	labels := []bool{true, false, true}
	d, err := FromColumns("t", scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy: the dataset aliases the caller's slices.
	if &d.Scores()[0] != &scores[0] {
		t.Fatal("FromColumns copied the score column")
	}
	if d.Name() != "t" || d.Len() != 3 || !d.TrueLabel(0) || d.TrueLabel(1) {
		t.Fatalf("columns misread: %+v", d.Summarize())
	}
	if _, err := FromColumns("t", nil, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := FromColumns("t", scores, labels[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReadBinaryIntoRoundTrip(t *testing.T) {
	d := Beta(randx.New(21), 1000, 0.2, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, 0, d.Len())
	labels := make([]bool, 0, d.Len())
	got, err := ReadBinaryInto(bytes.NewReader(buf.Bytes()), "t", scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("length %d, want %d", got.Len(), d.Len())
	}
	// Decoded into the caller's buffer, not a fresh one.
	if &got.Scores()[0] != &scores[:1][0] {
		t.Fatal("ReadBinaryInto allocated its own score buffer")
	}
	for i := 0; i < d.Len(); i++ {
		if math.Float64bits(got.Score(i)) != math.Float64bits(d.Score(i)) || got.TrueLabel(i) != d.TrueLabel(i) {
			t.Fatalf("record %d diverged", i)
		}
	}
}

func TestReadBinaryIntoRejectsOverflow(t *testing.T) {
	d := Beta(randx.New(22), 100, 0.2, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	// 99-record buffers cannot hold a 100-record stream; the reject must
	// come from the capacity check, before any decode.
	_, err := ReadBinaryInto(bytes.NewReader(buf.Bytes()), "t",
		make([]float64, 0, 99), make([]bool, 0, 99))
	if err == nil {
		t.Fatal("over-capacity stream accepted")
	}
	// A hostile header claiming 2^32 records is rejected the same way —
	// the claimed count never sizes an allocation.
	hostile := append([]byte{}, buf.Bytes()[:16]...)
	binary.LittleEndian.PutUint64(hostile[8:], 1<<32)
	_, err = ReadBinaryInto(bytes.NewReader(hostile), "t",
		make([]float64, 0, 100), make([]bool, 0, 100))
	if err == nil {
		t.Fatal("hostile header accepted")
	}
}

func TestReadBinarySized(t *testing.T) {
	d := Beta(randx.New(23), 777, 0.2, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != BinarySize(d.Len()) {
		t.Fatalf("BinarySize(%d) = %d, stream is %d bytes", d.Len(), BinarySize(d.Len()), buf.Len())
	}
	// Exact size: the sized fast path.
	got, err := ReadBinarySized(bytes.NewReader(buf.Bytes()), "t", int64(buf.Len()))
	if err != nil || got.Len() != d.Len() {
		t.Fatalf("sized read: %v (len %d)", err, got.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if math.Float64bits(got.Score(i)) != math.Float64bits(d.Score(i)) {
			t.Fatalf("record %d diverged", i)
		}
	}
	// Unknown or wrong sizes fall back to the incremental reader and
	// still parse correctly.
	for _, size := range []int64{-1, 0, int64(buf.Len()) + 3} {
		got, err := ReadBinarySized(bytes.NewReader(buf.Bytes()), "t", size)
		if err != nil || got.Len() != d.Len() {
			t.Fatalf("size %d: %v", size, err)
		}
	}
	// A size that matches the header of a truncated stream must fail
	// cleanly (short read), not fabricate records.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinarySized(bytes.NewReader(trunc), "t", int64(buf.Len())); err == nil {
		t.Fatal("truncated stream parsed")
	}
}
