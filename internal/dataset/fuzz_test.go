package dataset

import (
	"bytes"
	"testing"

	"supg/internal/randx"
)

// Native Go fuzz targets for the two on-the-wire parsers. The parsers
// guard the HTTP upload and append endpoints, so the contract under
// fuzzing is: arbitrary bytes must produce either a valid dataset or
// an error — never a panic, never an OOM from a lying header, and any
// dataset that parses must round-trip through the matching writer.

// validCSV returns well-formed interchange bytes for the seed corpus.
func validCSV(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	d := Beta(randx.New(5), 50, 0.5, 1)
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validBinary returns well-formed binary interchange bytes.
func validBinary(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	d := Beta(randx.New(6), 50, 0.5, 1)
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadCSV(f *testing.F) {
	f.Add(validCSV(f))
	f.Add([]byte("id,proxy_score,label\n0,0.5,1\n"))
	f.Add([]byte("id,proxy_score,label\n0,0.5,1\n1,0.25,0\n2,1,true\n"))
	f.Add([]byte("id,proxy_score,label\n0,1.5,1\n"))        // score out of range
	f.Add([]byte("id,proxy_score,label\n0,NaN,1\n"))        // NaN score
	f.Add([]byte("id,proxy_score,label\n0,0.5,maybe\n"))    // bad label
	f.Add([]byte("id,proxy_score,label\n0,0.5\n"))          // short row
	f.Add([]byte("id,wrong,header\n"))                      // bad header
	f.Add([]byte(""))                                       // empty
	f.Add([]byte("id,proxy_score,label\n0,-0.1,0\n"))       // negative score
	f.Add([]byte("id,proxy_score,label\n\xff\xfe,0.5,1\n")) // junk bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		assertRoundTrips(t, d, data)
	})
}

func FuzzLoadBinary(f *testing.F) {
	f.Add(validBinary(f))
	f.Add([]byte("SUPGDS1\n"))    // magic, no count
	f.Add([]byte("NOTMAGIC\x00")) // wrong magic
	f.Add([]byte(""))             // empty
	truncated := validBinary(f)
	f.Add(truncated[:len(truncated)-3]) // truncated labels
	f.Add(truncated[:20])               // truncated scores
	// A header claiming 2^32 records followed by almost no data: the
	// chunked reader must fail on the short stream, not allocate 32 GiB.
	lying := append([]byte("SUPGDS1\n"), 0, 0, 0, 0, 1, 0, 0, 0)
	f.Add(append(lying, 1, 2, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			t.Fatalf("parsed dataset failed to serialize: %v", err)
		}
		d2, err := ReadBinary(&buf, "fuzz")
		if err != nil {
			t.Fatalf("serialized dataset failed to re-parse: %v", err)
		}
		assertSameDataset(t, d, d2)
	})
}

// assertRoundTrips checks WriteCSV(ReadCSV(data)) re-parses to the
// same records. The textual form may differ from data (float
// formatting, label spellings), so the comparison is semantic.
func assertRoundTrips(t *testing.T, d *Dataset, data []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("parsed dataset failed to serialize: %v", err)
	}
	d2, err := ReadCSV(&buf, "fuzz")
	if err != nil {
		t.Fatalf("serialized dataset failed to re-parse: %v", err)
	}
	assertSameDataset(t, d, d2)
}

func assertSameDataset(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("round trip changed length: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Score(i) != b.Score(i) || a.TrueLabel(i) != b.TrueLabel(i) {
			t.Fatalf("round trip changed record %d: (%v,%v) vs (%v,%v)",
				i, a.Score(i), a.TrueLabel(i), b.Score(i), b.TrueLabel(i))
		}
	}
}
