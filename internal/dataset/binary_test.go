package dataset

import (
	"bytes"
	"strings"
	"testing"

	"supg/internal/randx"
)

func TestBinaryRoundTrip(t *testing.T) {
	d := Beta(randx.New(1), 1234, 0.5, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, d.Name())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("length %d, want %d", got.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if got.Score(i) != d.Score(i) {
			t.Fatalf("score %d: %v vs %v", i, got.Score(i), d.Score(i))
		}
		if got.TrueLabel(i) != d.TrueLabel(i) {
			t.Fatalf("label %d mismatch", i)
		}
	}
}

func TestBinaryRoundTripOddCount(t *testing.T) {
	// Counts not divisible by 8 exercise the label bit-packing tail.
	for _, n := range []int{1, 7, 8, 9, 15} {
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = float64(i) / float64(n)
			labels[i] = i%3 == 0
		}
		d := MustNew("odd", scores, labels)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf, "odd")
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got.TrueLabel(i) != labels[i] {
				t.Fatalf("n=%d label %d mismatch", n, i)
			}
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("id,proxy_score,label\n"), "x"); err == nil {
		t.Fatal("CSV content should be rejected by the binary reader")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	d := Beta(randx.New(2), 100, 1, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, 20, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut]), "x"); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestBinaryRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd count
	if _, err := ReadBinary(&buf, "x"); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	d := Beta(randx.New(3), 20000, 0.01, 2)
	var bin, csv bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, d); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= csv.Len() {
		t.Fatalf("binary %d bytes not smaller than CSV %d", bin.Len(), csv.Len())
	}
}
