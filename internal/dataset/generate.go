package dataset

import (
	"fmt"
	"math"

	"supg/internal/dist"
	"supg/internal/randx"
)

// Beta generates the paper's synthetic dataset: proxy scores A(x) drawn
// from Beta(alpha, beta) and oracle labels as independent Bernoulli(A(x))
// trials, i.e. a perfectly calibrated proxy. The paper uses n = 10^6
// with (alpha, beta) in {(0.01, 1), (0.01, 2)}.
func Beta(r *randx.Rand, n int, alpha, beta float64) *Dataset {
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		a := dist.SampleBeta(r, alpha, beta)
		scores[i] = a
		labels[i] = r.Bernoulli(a)
	}
	return MustNew(fmt.Sprintf("Beta(%g, %g)", alpha, beta), scores, labels)
}

// MixtureProfile describes a two-component proxy-score model used to
// simulate the paper's real datasets: negatives draw scores from
// Beta(NegAlpha, NegBeta), positives from Beta(PosAlpha, PosBeta), with
// an optional fraction of "hard" records whose component is flipped
// (positives scored like negatives and vice versa). This captures the
// two properties the SUPG algorithms are sensitive to — class imbalance
// and proxy quality — without the underlying images or text.
type MixtureProfile struct {
	Name     string
	N        int
	TPR      float64
	PosAlpha float64
	PosBeta  float64
	NegAlpha float64
	NegBeta  float64
	// HardPos is the fraction of positives whose score is drawn from the
	// negative component (false negatives of the proxy); HardNeg is the
	// fraction of negatives drawn from the positive component.
	HardPos float64
	HardNeg float64
}

// Generate realizes the profile into a Dataset.
func (p MixtureProfile) Generate(r *randx.Rand) *Dataset {
	scores := make([]float64, p.N)
	labels := make([]bool, p.N)
	for i := 0; i < p.N; i++ {
		pos := r.Bernoulli(p.TPR)
		labels[i] = pos
		usePosComponent := pos
		if pos && r.Bernoulli(p.HardPos) {
			usePosComponent = false
		} else if !pos && r.Bernoulli(p.HardNeg) {
			usePosComponent = true
		}
		if usePosComponent {
			scores[i] = dist.SampleBeta(r, p.PosAlpha, p.PosBeta)
		} else {
			scores[i] = dist.SampleBeta(r, p.NegAlpha, p.NegBeta)
		}
	}
	return MustNew(p.Name, scores, labels)
}

// The simulated real-dataset profiles. Record counts follow the paper
// directly (ImageNet: 50,000 validation images) or are back-derived from
// the Table 5 exhaustive-labeling costs at $0.08/label (OntoNotes $893,
// TACRED $1810) and $0.00025/frame (night-street $243); true-positive
// rates follow Table 2. Proxy quality is set per the paper's discussion:
// ImageNet's ResNet-50 is "especially favorable ... highly calibrated";
// TACRED's SpanBERT is state of the art; OntoNotes uses a weak baseline;
// night-street sits in between.

// ImageNetSim mirrors "finding hummingbirds in the ImageNet validation
// set": 50,000 records, 0.1% TPR, a sharply separating proxy.
func ImageNetSim(r *randx.Rand) *Dataset {
	return MixtureProfile{
		Name: "ImageNet", N: 50_000, TPR: 0.001,
		PosAlpha: 6, PosBeta: 1.2,
		NegAlpha: 0.03, NegBeta: 6,
		HardPos: 0.04, HardNeg: 0.0006,
	}.Generate(r)
}

// NightStreetSim mirrors "finding cars in the night-street video":
// 972,000 frames, 4% TPR, a good but noisier proxy. Scale may be reduced
// for tests via NightStreetSimN.
func NightStreetSim(r *randx.Rand) *Dataset { return NightStreetSimN(r, 972_000) }

// NightStreetSimN is NightStreetSim with an explicit record count.
func NightStreetSimN(r *randx.Rand, n int) *Dataset {
	return MixtureProfile{
		Name: "night-street", N: n, TPR: 0.04,
		PosAlpha: 3, PosBeta: 1.5,
		NegAlpha: 0.12, NegBeta: 4,
		HardPos: 0.08, HardNeg: 0.01,
	}.Generate(r)
}

// OntoNotesSim mirrors "finding city relationships" with a weak LSTM
// baseline proxy: 11,165 records, 2.5% TPR.
func OntoNotesSim(r *randx.Rand) *Dataset {
	return MixtureProfile{
		Name: "OntoNotes", N: 11_165, TPR: 0.025,
		PosAlpha: 1.6, PosBeta: 1.4,
		NegAlpha: 0.25, NegBeta: 3,
		HardPos: 0.15, HardNeg: 0.03,
	}.Generate(r)
}

// TACREDSim mirrors "finding employees relationships" with a strong
// SpanBERT proxy: 22,631 records, 2.4% TPR.
func TACREDSim(r *randx.Rand) *Dataset {
	return MixtureProfile{
		Name: "TACRED", N: 22_631, TPR: 0.024,
		PosAlpha: 4, PosBeta: 1.2,
		NegAlpha: 0.08, NegBeta: 5,
		HardPos: 0.06, HardNeg: 0.004,
	}.Generate(r)
}

// AddProxyNoise returns a copy of d whose scores have independent
// Gaussian noise of standard deviation sigma added, clipped to [0, 1] —
// the Figure 9 sensitivity workload. Labels are unchanged.
func AddProxyNoise(r *randx.Rand, d *Dataset, sigma float64) *Dataset {
	out := d.Clone()
	out.name = fmt.Sprintf("%s+noise(%.3g)", d.name, sigma)
	for i := range out.scores {
		v := out.scores[i] + sigma*r.NormFloat64()
		out.scores[i] = clamp01(v)
	}
	return out
}

// ScoreStdDev returns the standard deviation of the proxy scores, used
// by Figure 9 to express noise as a percentage of the score spread.
func (d *Dataset) ScoreStdDev() float64 {
	n := float64(len(d.scores))
	mean := 0.0
	for _, s := range d.scores {
		mean += s
	}
	mean /= n
	varsum := 0.0
	for _, s := range d.scores {
		dv := s - mean
		varsum += dv * dv
	}
	return math.Sqrt(varsum / n)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
