package dataset

import (
	"fmt"
	"math"

	"supg/internal/randx"
)

// This file implements the Table 3 distribution shifts. Each transform
// takes a "training" dataset and produces the shifted "test" dataset on
// which pre-set thresholds (the U-NoCI empirical-cutoff strategy) break.

// ApplyFogDrift simulates the ImageNet-C fog corruption: the proxy's
// view of positives degrades (scores attenuate toward the negative
// mode) while negatives gain slight haze-induced confidence. Severity in
// [0,1] controls the strength; the paper's fog benchmark corresponds to
// roughly severity 0.5.
func ApplyFogDrift(r *randx.Rand, d *Dataset, severity float64) *Dataset {
	out := d.Clone()
	out.name = fmt.Sprintf("%s-C(fog)", d.name)
	for i := range out.scores {
		s := out.scores[i]
		if out.labels[i] {
			// Positives: multiplicative attenuation with jitter.
			atten := 1 - severity*(0.55+0.3*r.Float64())
			s = s * atten
		} else {
			// Negatives: fog adds spurious low-grade confidence.
			s += severity * 0.08 * r.Float64()
		}
		out.scores[i] = clamp01(s)
	}
	return out
}

// ApplyDayDrift simulates recording a different day of the night-street
// video: a mild global recalibration (gamma warp) plus small noise.
// Labels are redrawn for a fresh day with the same positive rate, which
// models new traffic rather than the same frames re-scored.
func ApplyDayDrift(r *randx.Rand, d *Dataset) *Dataset {
	out := d.Clone()
	out.name = fmt.Sprintf("%s (day 2)", d.name)
	for i := range out.scores {
		s := out.scores[i]
		// Gamma warp: scores systematically compressed.
		s = pow(s, 1.25)
		s += 0.03 * r.NormFloat64()
		out.scores[i] = clamp01(s)
	}
	return out
}

// ShiftBeta generates the synthetic drift pair of Table 3: a test
// dataset with a different Beta shape parameter than the training one.
func ShiftBeta(r *randx.Rand, n int, alpha, betaTrain, betaTest float64) (train, test *Dataset) {
	train = Beta(r, n, alpha, betaTrain)
	test = Beta(r.Stream(1), n, alpha, betaTest)
	test.name = fmt.Sprintf("Beta(%g, %g) [shifted]", alpha, betaTest)
	return train, test
}

// DriftPair bundles a training dataset and its shifted counterpart, as
// in Table 3.
type DriftPair struct {
	Description string
	Train       *Dataset
	Test        *Dataset
}

// StandardDriftPairs constructs the three Table 3 train→test pairs at the
// requested scale (records per dataset; the sim profiles are resized
// proportionally so tests can run small).
func StandardDriftPairs(r *randx.Rand, scale int) []DriftPair {
	imagenet := MixtureProfile{
		Name: "ImageNet", N: scale, TPR: 0.001,
		PosAlpha: 6, PosBeta: 1.2,
		NegAlpha: 0.03, NegBeta: 6,
		HardPos: 0.04, HardNeg: 0.0006,
	}.Generate(r.Stream(10))
	night := MixtureProfile{
		Name: "night-street", N: scale, TPR: 0.04,
		PosAlpha: 3, PosBeta: 1.5,
		NegAlpha: 0.12, NegBeta: 4,
		HardPos: 0.08, HardNeg: 0.01,
	}.Generate(r.Stream(11))
	betaTrain, betaTest := ShiftBeta(r.Stream(12), scale, 0.01, 1, 2)

	return []DriftPair{
		{
			Description: "ImageNet -> ImageNet-C (fog)",
			Train:       imagenet,
			Test:        ApplyFogDrift(r.Stream(20), imagenet, 0.5),
		},
		{
			Description: "night-street -> day 2",
			Train:       night,
			Test:        ApplyDayDrift(r.Stream(21), night),
		},
		{
			Description: "Beta(0.01,1) -> Beta(0.01,2)",
			Train:       betaTrain,
			Test:        betaTest,
		},
	}
}

func pow(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, p)
}
