package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachCoversEveryIndexOnce pins the contract every index-layer
// reduction builds on: each iteration runs exactly once, at every pool
// limit, for loop sizes around the worker count.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 3, 8, 64} {
		p := NewPool(limit)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("limit %d n %d: index %d ran %d times", limit, n, i, got)
				}
			}
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 1, 2, 7} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, n)
			Run(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers %d n %d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestNilAndZeroPoolRunInline(t *testing.T) {
	var nilPool *Pool
	if nilPool.Limit() != 1 {
		t.Fatalf("nil pool limit = %d, want 1", nilPool.Limit())
	}
	var zero Pool
	ran := 0
	// Inline execution: the closure mutates a local with no
	// synchronization, which is only safe single-threaded.
	nilPool.ForEach(10, func(int) { ran++ })
	zero.ForEach(10, func(int) { ran++ })
	if ran != 20 {
		t.Fatalf("inline runs = %d, want 20", ran)
	}
}

func TestDefaultLimitIsGOMAXPROCS(t *testing.T) {
	if got, want := NewPool(0).Limit(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default limit = %d, want %d", got, want)
	}
}

// TestSharedBudgetNeverExceeded runs many concurrent loops through one
// pool and asserts the total worker count (submitters excluded) never
// exceeds limit-1 — the degrade-to-inline guarantee that makes a shared
// pool safe under concurrent queries.
func TestSharedBudgetNeverExceeded(t *testing.T) {
	const limit = 4
	p := NewPool(limit)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForEach(256, func(int) {
				c := cur.Add(1)
				for {
					pk := peak.Load()
					if c <= pk || peak.CompareAndSwap(pk, c) {
						break
					}
				}
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	// Each of the 16 loops contributes its submitter plus a share of the
	// limit-1 helpers.
	if got, max := peak.Load(), int64(16+limit-1); got > max {
		t.Fatalf("peak concurrent workers %d exceeds submitters+helpers bound %d", got, max)
	}
	if p.helpers.Load() != 0 {
		t.Fatalf("helper budget not released: %d outstanding", p.helpers.Load())
	}
}
