// Package parallel provides the bounded worker pool behind the
// deterministic intra-query read path: per-segment reductions
// (threshold counts, id gathers, mixture transforms) fan out across a
// shared goroutine budget while the observable results stay a pure
// function of (data, seed).
//
// The pool never owns resident goroutines. Each ForEach call spawns up
// to its share of helpers for the duration of the loop and the calling
// goroutine always participates, so a loop completes even when the
// shared budget is exhausted by concurrent queries — it just runs with
// fewer helpers, possibly alone. That makes the parallelism level an
// execution detail: callers must arrange (and the index package's
// equivalence tests pin) that the work assigned to each iteration is
// order-independent — disjoint writes, or commutative integer
// accumulation — so any helper count produces byte-identical results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the helper goroutines of every loop that shares it. The
// zero value and the nil pool both run loops inline; construct with
// NewPool.
type Pool struct {
	// helpers is the shared budget of extra goroutines; submitting
	// goroutines are not counted, so a Pool of limit L runs one loop on
	// at most L goroutines and N concurrent loops on at most N+L-1.
	helpers  atomic.Int64
	maxExtra int64
	limit    int
}

// NewPool returns a pool allowing up to limit concurrent workers per
// loop, the submitter included (<= 0 selects GOMAXPROCS).
func NewPool(limit int) *Pool {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Pool{maxExtra: int64(limit - 1), limit: limit}
}

// Limit reports the configured per-loop worker bound (1 for a nil or
// zero pool).
func (p *Pool) Limit() int {
	if p == nil || p.limit <= 0 {
		return 1
	}
	return p.limit
}

// tryAcquire claims one helper slot without blocking.
func (p *Pool) tryAcquire() bool {
	for {
		cur := p.helpers.Load()
		if cur >= p.maxExtra {
			return false
		}
		if p.helpers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (p *Pool) release() { p.helpers.Add(-1) }

// ForEach runs fn(0), ..., fn(n-1), each exactly once, across the
// submitter plus however many helper goroutines the shared budget
// grants (possibly none — the submitter alone is always sufficient).
// Iterations are claimed from an atomic counter, so their assignment to
// workers is racy by design: fn must produce results independent of
// which worker runs which iteration and in what order. ForEach returns
// after every iteration has completed.
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	want := p.Limit()
	if want > n {
		want = n
	}
	if want <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 1; w < want && p.tryAcquire(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1))
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// Run is the pool-free form of ForEach: fn(0..n-1) across at most
// workers goroutines, the caller included. It backs one-shot build
// phases that size their own worker count instead of sharing a query
// budget.
func Run(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1))
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}
