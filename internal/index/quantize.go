package index

import "sort"

// Quantized score codes (Options.Quantize).
//
// The selection hot path is a pure function of the score column, and
// the column's only job inside a scan or binary search is to answer
// order comparisons against a threshold. A 16-bit bucket code preserves
// enough of that order to answer almost every comparison: because the
// code map is monotone, a strict code inequality decides the exact
// score inequality, and only records whose code EQUALS the threshold's
// code — one bucket out of 65536 — need the 8-byte float consulted.
// Scans therefore walk 2 bytes per record instead of 8 (~4x less
// memory traffic; segment-sized code vectors stay cache-resident where
// float columns do not) while every operation returns byte-identical
// results: the boundary bucket is resolved with the same float
// comparisons, in the same order, as the unquantized path, so the
// unique (score, id) total order — and with it counts, order
// statistics, extraction order, alias tables, and RNG stream
// consumption — is untouched. This is the paper's proxy idea applied
// one level down: a cheap approximation does the bulk work, the exact
// signal is consulted only at decision boundaries.

// codeBuckets is the number of quantization buckets — one per uint16
// code value.
const codeBuckets = 1 << 16

// quantizeScore maps a validated score in [0, 1] onto its bucket code:
// floor(s * 65536), clamped so s = 1.0 shares the top bucket. The map
// is monotone — s <= t implies quantizeScore(s) <= quantizeScore(t) —
// which is the entire contract quantized scans rely on.
//
// The input must be a column buildSegment has already validated and
// normalized: NaN and out-of-range values rejected, -0.0 rewritten to
// +0.0. The quantizer therefore always consumes the same normalized
// values every float comparison consumes; a caller's raw -0.0 can
// never produce a bucket-0 code whose float fallback then disagrees
// with the bit-space machinery (KthHighest) over the sign bit.
func quantizeScore(s float64) uint16 {
	q := uint32(s * codeBuckets)
	if q >= codeBuckets {
		q = codeBuckets - 1
	}
	return uint16(q)
}

// quantizeSub builds the record-order code vector of a normalized
// sub-column.
func quantizeSub(sub []float64) []uint16 {
	codes := make([]uint16, len(sub))
	for i, s := range sub {
		codes[i] = quantizeScore(s)
	}
	return codes
}

// permuteCodes builds the sorted-order code vector: codes[perm[i]].
func permuteCodes(codes []uint16, perm []int) []uint16 {
	qsorted := make([]uint16, len(perm))
	for i, p := range perm {
		qsorted[i] = codes[p]
	}
	return qsorted
}

// cutAtLeast returns the first position of the segment's ascending run
// with score >= tau — the exact value sort.SearchFloat64s(s.sorted,
// tau) returns, computed over the 2-byte codes when the segment is
// quantized: two code binary searches bracket the boundary bucket, and
// a float search inside that bucket alone resolves it. Thresholds
// outside (0, 1] — including NaN, whose comparisons are all false —
// take the plain float search, which is exact for them and never hot
// (scores are validated into [0, 1], so such taus answer trivially).
func (s *segment) cutAtLeast(tau float64) int {
	qs := s.qsorted
	if qs == nil || !(tau > 0 && tau <= 1) {
		return sort.SearchFloat64s(s.sorted, tau)
	}
	lo, hi := s.codeBucket(quantizeScore(tau))
	return lo + sort.SearchFloat64s(s.sorted[lo:hi], tau)
}

// codeBucket brackets the threshold's bucket in the ascending code
// run: lo is the first position with code >= ct (below it scores are
// exactly < tau by monotonicity), hi the first with code > ct (at and
// beyond, scores are exactly > tau). hi-lo is the boundary-bucket
// population — the only records whose floats a quantized operation
// must consult.
func (s *segment) codeBucket(ct uint16) (lo, hi int) {
	qs := s.qsorted
	lo = sort.Search(len(qs), func(i int) bool { return qs[i] >= ct })
	hi = lo + sort.Search(len(qs)-lo, func(i int) bool { return qs[lo+i] > ct })
	return lo, hi
}

// Quantized reports whether the index carries 16-bit score codes and
// runs its scans over them.
func (ix *ScoreIndex) Quantized() bool { return ix.quant }

// ResidentBytes estimates the index's resident data memory: the score
// column plus each segment's permutation, sorted run, and (when
// quantized) code vectors. Cached mixtures are excluded — they are a
// per-configuration cost, not part of the index layout.
func (ix *ScoreIndex) ResidentBytes() int64 {
	total := int64(8 * len(ix.scores))
	for _, s := range ix.segs {
		total += int64(8*len(s.perm) + 8*len(s.sorted) + 2*len(s.codes) + 2*len(s.qsorted))
	}
	return total
}

// ScanBytesPerRecord reports how many bytes a full permutation scan
// (the dense AppendAtLeast path) reads per record: 2 over the code
// vector of a quantized index, 8 over the float column otherwise —
// boundary-bucket float touches excluded, as they cover one bucket out
// of 65536.
func (ix *ScoreIndex) ScanBytesPerRecord() int {
	if ix.quant {
		return 2
	}
	return 8
}
