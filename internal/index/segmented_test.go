package index

import (
	"math"
	"sort"
	"testing"

	"supg/internal/randx"
	"supg/internal/sampling"
)

// quantizedScores generates a column with heavy ties (and exact 0/1
// endpoints) so segment boundaries routinely split tie groups.
func quantizedScores(seed uint64, n int) []float64 {
	r := randx.New(seed)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = math.Round(r.Float64()*40) / 40
	}
	return scores
}

// segmentSizesFor returns the satellite-mandated sweep: degenerate
// 1-record segments, a small prime, a mid size, and the monolithic
// single-segment layout.
func segmentSizesFor(n int) []int {
	return []int{1, 7, 1024, n}
}

// TestSegmentedMatchesMonolithicPrimitives checks every ScoreSource
// primitive of a segmented index against the single-segment layout,
// which preserves the original monolithic code path (direct sorted
// array, direct order statistics).
func TestSegmentedMatchesMonolithicPrimitives(t *testing.T) {
	for _, n := range []int{1, 2, 9, 1000, 5000} {
		scores := quantizedScores(uint64(100+n), n)
		mono, err := NewWithOptions(scores, Options{SegmentSize: n})
		if err != nil {
			t.Fatal(err)
		}
		for _, segSize := range segmentSizesFor(n) {
			seg, err := NewWithOptions(scores, Options{SegmentSize: segSize, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			wantSegs := (n + segSize - 1) / segSize
			if seg.Segments() != wantSegs {
				t.Fatalf("n=%d segSize=%d: %d segments, want %d", n, segSize, seg.Segments(), wantSegs)
			}
			assertIndexesEqual(t, mono, seg, n, segSize)
		}
	}
}

func assertIndexesEqual(t *testing.T, mono, seg *ScoreIndex, n, segSize int) {
	t.Helper()
	if mono.Len() != seg.Len() {
		t.Fatalf("lengths differ: %d vs %d", mono.Len(), seg.Len())
	}
	if mono.MinScore() != seg.MinScore() || mono.MaxScore() != seg.MaxScore() {
		t.Fatalf("n=%d segSize=%d: min/max differ", n, segSize)
	}
	taus := []float64{-0.5, 0, 0.025, 0.5, 0.975, 1, 1.5, math.Inf(1)}
	for _, tau := range taus {
		if m, s := mono.CountAtLeast(tau), seg.CountAtLeast(tau); m != s {
			t.Fatalf("n=%d segSize=%d tau=%v: count %d vs %d", n, segSize, tau, m, s)
		}
		m := mono.AppendAtLeast(nil, tau)
		s := seg.AppendAtLeast(nil, tau)
		if len(m) != len(s) {
			t.Fatalf("n=%d segSize=%d tau=%v: %d ids vs %d", n, segSize, tau, len(m), len(s))
		}
		for i := range m {
			if m[i] != s[i] {
				t.Fatalf("n=%d segSize=%d tau=%v: id[%d] %d vs %d", n, segSize, tau, i, m[i], s[i])
			}
		}
		if !sort.IntsAreSorted(s) {
			t.Fatalf("n=%d segSize=%d tau=%v: segmented ids not ascending", n, segSize, tau)
		}
	}
	for _, k := range []int{-3, 0, 1, n / 3, n - 1, n, 10 * n} {
		m := mono.KthHighest(k)
		s := seg.KthHighest(k)
		if math.Float64bits(m) != math.Float64bits(s) && m != s {
			t.Fatalf("n=%d segSize=%d k=%d: KthHighest %v vs %v", n, segSize, k, m, s)
		}
	}
}

// TestMixtureMatchesDefensiveWeights pins the bit-exactness contract
// of the parallel mixture build: for every segmentation and every
// exponent branch, the weight vector must equal
// sampling.DefensiveWeights on the full column bit for bit, and draws
// from the alias table must match a freshly built monolithic one.
func TestMixtureMatchesDefensiveWeights(t *testing.T) {
	n := 3000
	scores := quantizedScores(7, n)
	for _, segSize := range segmentSizesFor(n) {
		ix, err := NewWithOptions(scores, Options{SegmentSize: segSize, Parallelism: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []MixtureKey{
			{Exponent: 0.5, Mix: 0.1},
			{Exponent: 0, Mix: 0.1},
			{Exponent: 1, Mix: 0},
			{Exponent: 2.3, Mix: 0.25},
		} {
			w, alias := ix.Mixture(key.Exponent, key.Mix)
			want := sampling.DefensiveWeights(scores, key.Exponent, key.Mix)
			for i := range want {
				if math.Float64bits(w[i]) != math.Float64bits(want[i]) {
					t.Fatalf("segSize=%d key=%+v: weight %d = %v, want %v", segSize, key, i, w[i], want[i])
				}
			}
			a := alias.DrawN(randx.New(99), 300)
			b := sampling.NewAlias(want).DrawN(randx.New(99), 300)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("segSize=%d key=%+v: draw %d: %d vs %d", segSize, key, i, a[i], b[i])
				}
			}
			cum := ix.MixtureSegmentCumulative(key.Exponent, key.Mix)
			if len(cum) != ix.Segments() {
				t.Fatalf("segSize=%d: %d cumulative entries for %d segments", segSize, len(cum), ix.Segments())
			}
			if total := cum[len(cum)-1]; math.Abs(total-1) > 1e-9 {
				t.Fatalf("segSize=%d key=%+v: cumulative mass %v, want 1", segSize, key, total)
			}
			if !sort.Float64sAreSorted(cum) {
				t.Fatalf("segSize=%d: cumulative masses not monotone: %v", segSize, cum)
			}
		}
	}
}

// TestAscendMatchesGlobalSort verifies the k-way merge yields exactly
// the (score, id)-ascending global order at every segmentation.
func TestAscendMatchesGlobalSort(t *testing.T) {
	n := 2500
	scores := quantizedScores(21, n)
	type pair struct {
		id int
		sc float64
	}
	want := make([]pair, n)
	for i, s := range scores {
		want[i] = pair{id: i, sc: s}
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].sc != want[b].sc {
			return want[a].sc < want[b].sc
		}
		return want[a].id < want[b].id
	})
	for _, segSize := range segmentSizesFor(n) {
		ix, err := NewWithOptions(scores, Options{SegmentSize: segSize})
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		ix.Ascend(func(id int, sc float64) bool {
			if pos >= n {
				t.Fatalf("segSize=%d: Ascend yielded more than %d records", segSize, n)
			}
			if id != want[pos].id || sc != want[pos].sc {
				t.Fatalf("segSize=%d: Ascend[%d] = (%d, %v), want (%d, %v)",
					segSize, pos, id, sc, want[pos].id, want[pos].sc)
			}
			pos++
			return true
		})
		if pos != n {
			t.Fatalf("segSize=%d: Ascend yielded %d of %d records", segSize, pos, n)
		}
		// Early stop must be honored.
		stops := 0
		ix.Ascend(func(int, float64) bool { stops++; return stops < 5 })
		if stops != 5 {
			t.Fatalf("segSize=%d: early stop yielded %d records, want 5", segSize, stops)
		}
	}
}

// TestAppendMatchesFreshBuild: an index grown by Append must answer
// every primitive identically to one built from the full column in one
// shot — including chains of appends and appends crossing segment
// boundaries.
func TestAppendMatchesFreshBuild(t *testing.T) {
	n := 4000
	scores := quantizedScores(33, n)
	for _, segSize := range []int{7, 500, 1024, n} {
		fresh, err := NewWithOptions(scores, Options{SegmentSize: segSize})
		if err != nil {
			t.Fatal(err)
		}
		for _, splits := range [][]int{{n / 2}, {1000, 1001, 2500}, {1}} {
			prev := 0
			var grown *ScoreIndex
			bounds := append(append([]int{}, splits...), n)
			for _, b := range bounds {
				chunk := scores[prev:b]
				if grown == nil {
					grown, err = NewWithOptions(chunk, Options{SegmentSize: segSize})
				} else {
					grown, err = grown.Append(chunk)
				}
				if err != nil {
					t.Fatal(err)
				}
				prev = b
			}
			assertIndexesEqual(t, fresh, grown, n, segSize)
			// The mixture on the appended index must equal the fresh one.
			w1, _ := fresh.Mixture(0.5, 0.1)
			w2, _ := grown.Mixture(0.5, 0.1)
			for i := range w1 {
				if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) {
					t.Fatalf("segSize=%d splits=%v: mixture weight %d differs", segSize, splits, i)
				}
			}
		}
	}
}

// TestAppendLeavesReceiverUsable: Append must not mutate the old
// index, whose queries keep answering over the pre-append column.
func TestAppendLeavesReceiverUsable(t *testing.T) {
	old, err := NewWithOptions([]float64{0.9, 0.1, 0.5}, Options{SegmentSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := old.Append([]float64{0.7, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 3 || grown.Len() != 5 {
		t.Fatalf("lengths: old %d (want 3), grown %d (want 5)", old.Len(), grown.Len())
	}
	if got := old.CountAtLeast(0.6); got != 1 {
		t.Fatalf("old index CountAtLeast(0.6) = %d, want 1", got)
	}
	if got := grown.CountAtLeast(0.6); got != 2 {
		t.Fatalf("grown index CountAtLeast(0.6) = %d, want 2", got)
	}
	ids := grown.AppendAtLeast(nil, 0.5)
	want := []int{0, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("grown ids %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("grown ids %v, want %v", ids, want)
		}
	}
}

// TestAppendValidation: invalid appended scores are rejected with the
// offending global record id, and empty appends are errors.
func TestAppendValidation(t *testing.T) {
	ix, err := New([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Append(nil); err == nil {
		t.Error("empty append must be rejected")
	}
	_, err = ix.Append([]float64{0.3, math.NaN()})
	if err == nil {
		t.Fatal("NaN append must be rejected")
	}
	if want := "record 3"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not name the global offending record (%s)", err, want)
	}
}

// TestBuildValidationReportsFirstOffender: with parallel segment
// builds, the error must still name the smallest offending record id.
func TestBuildValidationReportsFirstOffender(t *testing.T) {
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = 0.5
	}
	scores[93] = 2 // later segment
	scores[11] = -1
	_, err := NewWithOptions(scores, Options{SegmentSize: 10, Parallelism: 4})
	if err == nil {
		t.Fatal("invalid column accepted")
	}
	if want := "record 11"; !containsStr(err.Error(), want) {
		t.Errorf("error %q should report the first offender (%s)", err, want)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestNegativeZeroNormalized: -0.0 passes range validation (it is not
// < 0) but its sign bit would make the single-segment array lookup and
// the multi-segment bit-space search disagree, and JSON serializes -0
// distinctly. Validation must normalize it so every layout stores and
// returns +0.0.
func TestNegativeZeroNormalized(t *testing.T) {
	negZero := math.Copysign(0, -1)
	scores := []float64{0.5, negZero, 0.25, negZero, 0.75}
	for _, segSize := range []int{len(scores), 2} {
		ix, err := NewWithOptions(scores, Options{SegmentSize: segSize})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range ix.Scores() {
			if math.Signbit(s) {
				t.Errorf("segSize=%d: stored score %d kept its sign bit", segSize, i)
			}
		}
		if got := ix.KthHighest(len(scores) - 1); math.Signbit(got) {
			t.Errorf("segSize=%d: KthHighest returned -0.0", segSize)
		}
		if got := ix.MinScore(); math.Signbit(got) {
			t.Errorf("segSize=%d: MinScore returned -0.0", segSize)
		}
	}
}

// TestKthHighestBitSearchEdgeCases covers exact endpoints the bit
// search must land on: all-equal columns, 0 and 1 scores, and columns
// whose answer changes across segment boundaries.
func TestKthHighestBitSearchEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
	}{
		{"all-zero", []float64{0, 0, 0, 0, 0}},
		{"all-one", []float64{1, 1, 1, 1}},
		{"endpoints", []float64{0, 1, 0, 1, 0.5}},
		{"tiny", []float64{5e-324, 0, 1e-300, 0.5}},
		{"ties", []float64{0.25, 0.25, 0.25, 0.75, 0.75, 0.5}},
	}
	for _, tc := range cases {
		mono, err := NewWithOptions(tc.scores, Options{SegmentSize: len(tc.scores)})
		if err != nil {
			t.Fatal(err)
		}
		seg, err := NewWithOptions(tc.scores, Options{SegmentSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		for k := -1; k <= len(tc.scores)+1; k++ {
			m, s := mono.KthHighest(k), seg.KthHighest(k)
			if m != s {
				t.Errorf("%s k=%d: %v vs %v", tc.name, k, m, s)
			}
		}
	}
}
