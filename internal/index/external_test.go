package index

import (
	"math"
	"strings"
	"testing"

	"supg/internal/randx"
)

// externalImage extracts the persistable artifact set of ix, copying
// each slice so tests can corrupt one without touching the original.
func externalImage(ix *ScoreIndex) External {
	ext := External{Column: append([]float64(nil), ix.Scores()...)}
	for i := 0; i < ix.Segments(); i++ {
		sd := ix.SegmentView(i)
		ext.Segments = append(ext.Segments, SegmentData{
			Base:   sd.Base,
			Perm:   append([]int(nil), sd.Perm...),
			Sorted: append([]float64(nil), sd.Sorted...),
		})
	}
	return ext
}

func testScores(n int) []float64 {
	r := randx.New(17)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = r.Float64()
	}
	// Duplicate runs exercise the (score, id) tie-break in the ascent
	// verification.
	for i := 0; i+3 < n; i += 97 {
		scores[i+1], scores[i+2], scores[i+3] = scores[i], scores[i], scores[i]
	}
	return scores
}

// TestFromExternalEquivalence: an index reconstructed from its own
// artifacts must answer every query bit-for-bit like the original, at
// any segmentation, without sorting anything.
func TestFromExternalEquivalence(t *testing.T) {
	scores := testScores(5000)
	for _, segSize := range []int{1, 7, 512, 5000, 9000} {
		opts := Options{SegmentSize: segSize}
		want, err := NewWithOptions(scores, opts)
		if err != nil {
			t.Fatal(err)
		}
		sortsBefore := BuildSortsTotal()
		got, err := FromExternal(externalImage(want), opts)
		if err != nil {
			t.Fatalf("segSize %d: %v", segSize, err)
		}
		if delta := BuildSortsTotal() - sortsBefore; delta != 0 {
			t.Fatalf("segSize %d: FromExternal performed %d sorts", segSize, delta)
		}
		if got.Len() != want.Len() || got.Segments() != want.Segments() {
			t.Fatalf("segSize %d: shape diverged", segSize)
		}
		for _, tau := range []float64{0, 0.001, 0.25, 0.5, 0.75, 0.999, 1} {
			if g, w := got.CountAtLeast(tau), want.CountAtLeast(tau); g != w {
				t.Fatalf("segSize %d: CountAtLeast(%g) = %d, want %d", segSize, tau, g, w)
			}
			g, w := got.AppendAtLeast(nil, tau), want.AppendAtLeast(nil, tau)
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("segSize %d: AppendAtLeast(%g) diverged at %d", segSize, tau, i)
				}
			}
		}
		for _, k := range []int{1, 2, 100, len(scores)} {
			if math.Float64bits(got.KthHighest(k)) != math.Float64bits(want.KthHighest(k)) {
				t.Fatalf("segSize %d: KthHighest(%d) diverged", segSize, k)
			}
		}
	}
}

// TestFromExternalRejectsCorruption: every way an on-disk image can be
// inconsistent must be detected and refused — never served.
func TestFromExternalRejectsCorruption(t *testing.T) {
	scores := testScores(1000)
	opts := Options{SegmentSize: 300}
	ix, err := NewWithOptions(scores, opts)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(ext *External)
		errPart string
	}{
		{"empty column", func(ext *External) { ext.Column = nil; ext.Segments = nil }, "empty"},
		{"no segments", func(ext *External) { ext.Segments = nil }, "no segments"},
		{"wrong base", func(ext *External) { ext.Segments[1].Base = 299 }, "starts at"},
		{"gap in tiling", func(ext *External) { ext.Segments = append(ext.Segments[:1], ext.Segments[2:]...) }, "starts at"},
		{"short cover", func(ext *External) { ext.Segments = ext.Segments[:len(ext.Segments)-1] }, "cover"},
		{"perm/sorted length skew", func(ext *External) { ext.Segments[0].Sorted = ext.Segments[0].Sorted[:200] }, "entries"},
		{"perm out of range", func(ext *External) { ext.Segments[0].Perm[5] = 300 }, "out of range"},
		{"negative perm entry", func(ext *External) { ext.Segments[0].Perm[5] = -1 }, "out of range"},
		{"duplicate perm entry", func(ext *External) {
			ext.Segments[0].Perm[5] = ext.Segments[0].Perm[4]
			ext.Segments[0].Sorted[5] = ext.Segments[0].Sorted[4]
		}, "ascending"},
		{"sorted diverges from column", func(ext *External) { ext.Segments[0].Sorted[5] += 1e-9 }, "diverges"},
		{"descending pair", func(ext *External) {
			s := &ext.Segments[0]
			s.Perm[0], s.Perm[1] = s.Perm[1], s.Perm[0]
			s.Sorted[0], s.Sorted[1] = s.Sorted[1], s.Sorted[0]
		}, "ascending"},
		{"score above 1", func(ext *External) {
			p := ext.Segments[0].Perm[len(ext.Segments[0].Perm)-1]
			ext.Column[p] = 1.5
			ext.Segments[0].Sorted[len(ext.Segments[0].Sorted)-1] = 1.5
		}, "outside [0,1]"},
		{"NaN score", func(ext *External) {
			p := ext.Segments[0].Perm[0]
			ext.Column[p] = math.NaN()
			ext.Segments[0].Sorted[0] = math.NaN()
		}, "outside"},
		{"negative zero", func(ext *External) {
			p := ext.Segments[0].Perm[0]
			ext.Column[p] = math.Copysign(0, -1)
			ext.Segments[0].Sorted[0] = math.Copysign(0, -1)
		}, "-0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ext := externalImage(ix)
			tc.mutate(&ext)
			_, err := FromExternal(ext, opts)
			if err == nil {
				t.Fatal("corrupt image accepted")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestFromExternalAppend: a reconstructed index keeps growing like a
// built one — appended segments are fresh heap memory, the adopted
// image is never written.
func TestFromExternalAppend(t *testing.T) {
	scores := testScores(2000)
	opts := Options{SegmentSize: 600}
	want, err := NewWithOptions(scores, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromExternal(externalImage(want), opts)
	if err != nil {
		t.Fatal(err)
	}
	extra := testScores(700)
	wantGrown, err := want.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	gotGrown, err := got.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if gotGrown.Len() != wantGrown.Len() || gotGrown.Segments() != wantGrown.Segments() {
		t.Fatal("appended shape diverged")
	}
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		if gotGrown.CountAtLeast(tau) != wantGrown.CountAtLeast(tau) {
			t.Fatalf("CountAtLeast(%g) diverged after append", tau)
		}
	}
}
