package index

import (
	"math"
	"sync"
	"testing"

	"supg/internal/parallel"
	"supg/internal/randx"
)

// parallelTestIndex builds an index large and finely-segmented enough
// to cross both parallel-reduction thresholds (>= countParallelMinSegs
// segments, >= appendParallelMinIDs matching ids at low taus).
func parallelTestIndex(t *testing.T, poolLimit int, quantize bool) *ScoreIndex {
	t.Helper()
	n := 2 * appendParallelMinIDs // 32768 records
	segSize := 256                // 128 segments >= countParallelMinSegs
	scores := quantizedScores(99, n)
	ix, err := NewWithOptions(scores, Options{
		SegmentSize: segSize,
		Quantize:    quantize,
		QueryPool:   parallel.NewPool(poolLimit),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Segments() < countParallelMinSegs {
		t.Fatalf("test index has %d segments, below the parallel-count threshold %d",
			ix.Segments(), countParallelMinSegs)
	}
	return ix
}

var parallelTestTaus = []float64{-1, 0, 0.025, 0.3, 0.5, 0.975, 1, 1.5, math.Inf(1), math.Inf(-1)}

// TestParallelCountMatchesSequential pins CountAtLeast and KthHighest
// at pool limits 2 and 8 against the sequential (limit-1) reference:
// integer partial sums commute exactly, so the parallel path must be
// equal, not approximately equal.
func TestParallelCountMatchesSequential(t *testing.T) {
	for _, quantize := range []bool{false, true} {
		ref := parallelTestIndex(t, 1, quantize)
		for _, limit := range []int{2, 8} {
			ix := parallelTestIndex(t, limit, quantize)
			for _, tau := range parallelTestTaus {
				if want, got := ref.CountAtLeast(tau), ix.CountAtLeast(tau); want != got {
					t.Fatalf("quant=%v limit=%d tau=%v: count %d, sequential %d", quantize, limit, tau, got, want)
				}
			}
			for _, k := range []int{1, 100, ix.Len() / 2, ix.Len()} {
				want, got := ref.KthHighest(k), ix.KthHighest(k)
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("quant=%v limit=%d k=%d: KthHighest %v, sequential %v", quantize, limit, k, got, want)
				}
			}
		}
	}
}

// TestParallelAppendMatchesSequential pins the parallel AppendAtLeast
// gather — presized per-segment slots in fixed segment order — against
// the sequential reference, both from a nil dst and appending onto a
// prefilled one (base offsets plus capacity growth).
func TestParallelAppendMatchesSequential(t *testing.T) {
	for _, quantize := range []bool{false, true} {
		ref := parallelTestIndex(t, 1, quantize)
		for _, limit := range []int{2, 8} {
			ix := parallelTestIndex(t, limit, quantize)
			for _, tau := range parallelTestTaus {
				want := ref.AppendAtLeast(nil, tau)
				got := ix.AppendAtLeast(nil, tau)
				assertSameIDs(t, "fresh dst", quantize, limit, tau, want, got)

				prefix := []int{-7, -8, -9}
				want = ref.AppendAtLeast(append([]int(nil), prefix...), tau)
				got = ix.AppendAtLeast(append([]int(nil), prefix...), tau)
				assertSameIDs(t, "prefilled dst", quantize, limit, tau, want, got)

				// Reused capacity: a second gather into the same backing array.
				reuse := make([]int, 0, ix.Len()+8)
				got = ix.AppendAtLeast(ix.AppendAtLeast(reuse, tau)[:0], tau)
				want = ref.AppendAtLeast(nil, tau)
				assertSameIDs(t, "reused dst", quantize, limit, tau, want, got)
			}
		}
	}
}

func assertSameIDs(t *testing.T, mode string, quantize bool, limit int, tau float64, want, got []int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s quant=%v limit=%d tau=%v: %d ids, sequential %d", mode, quantize, limit, tau, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s quant=%v limit=%d tau=%v: id[%d] = %d, sequential %d",
				mode, quantize, limit, tau, i, got[i], want[i])
		}
	}
}

// TestParallelMixtureMatchesSequential pins the pooled mixture build
// bit-for-bit against the sequential one: the transform and normalize
// passes fan out, but the normalizing sum stays one left-to-right pass.
func TestParallelMixtureMatchesSequential(t *testing.T) {
	ref := parallelTestIndex(t, 1, false)
	for _, limit := range []int{2, 8} {
		ix := parallelTestIndex(t, limit, false)
		for _, cfg := range []struct{ exp, mix float64 }{{0.5, 0.1}, {1, 0.5}, {0, 0}, {2, 0.25}} {
			wantW, refA := ref.Mixture(cfg.exp, cfg.mix)
			gotW, gotA := ix.Mixture(cfg.exp, cfg.mix)
			for i := range wantW {
				if math.Float64bits(wantW[i]) != math.Float64bits(gotW[i]) {
					t.Fatalf("limit=%d cfg=%v: weight[%d] = %v, sequential %v", limit, cfg, i, gotW[i], wantW[i])
				}
			}
			// Draws consume the stream identically, so a fixed seed must
			// yield the same indices either way.
			r1, r2 := randx.New(7), randx.New(7)
			for d := 0; d < 200; d++ {
				if a, b := refA.Draw(r1), gotA.Draw(r2); a != b {
					t.Fatalf("limit=%d cfg=%v: draw %d = %d, sequential %d", limit, cfg, d, b, a)
				}
			}
		}
	}
}

// TestParallelReductionsRaceStress hammers one shared index (and its
// shared pool) from many goroutines running counts, gathers, merges,
// and mixture draws concurrently, each checking byte-identity against
// precomputed sequential references. Run under -race this pins that
// the parallel read path shares no unsynchronized state across
// queries.
func TestParallelReductionsRaceStress(t *testing.T) {
	ref := parallelTestIndex(t, 1, true)
	ix := parallelTestIndex(t, 4, true)

	taus := []float64{0, 0.025, 0.5, 0.975}
	wantCounts := make([]int, len(taus))
	wantIDs := make([][]int, len(taus))
	for i, tau := range taus {
		wantCounts[i] = ref.CountAtLeast(tau)
		wantIDs[i] = ref.AppendAtLeast(nil, tau)
	}
	wantW, _ := ref.Mixture(0.5, 0.1)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				i := (g + iter) % len(taus)
				if got := ix.CountAtLeast(taus[i]); got != wantCounts[i] {
					t.Errorf("goroutine %d: count(%v) = %d, want %d", g, taus[i], got, wantCounts[i])
					return
				}
				ids := ix.AppendAtLeast(nil, taus[i])
				if len(ids) != len(wantIDs[i]) {
					t.Errorf("goroutine %d: %d ids for tau %v, want %d", g, len(ids), taus[i], len(wantIDs[i]))
					return
				}
				for j := range ids {
					if ids[j] != wantIDs[i][j] {
						t.Errorf("goroutine %d: id[%d] = %d, want %d", g, j, ids[j], wantIDs[i][j])
						return
					}
				}
				gotW, _ := ix.Mixture(0.5, 0.1)
				for j := range wantW {
					if math.Float64bits(gotW[j]) != math.Float64bits(wantW[j]) {
						t.Errorf("goroutine %d: weight[%d] diverges", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
