// Package index provides ScoreIndex, the immutable per-table proxy
// index at the heart of the selection hot path.
//
// The paper's operational model (Section 4.1) evaluates the cheap proxy
// once over the whole dataset; everything a query then needs from the
// score column — threshold counts |{x : A(x) >= tau}|, order
// statistics, the defensive-mixture sampling distribution and its Vose
// alias table — is a pure function of that column. A ScoreIndex
// precomputes all of it at table/proxy registration so each query costs
// O(oracle budget + |result|) instead of re-scanning, re-sorting, and
// rebuilding sampling structures over all n records:
//
//   - the validated score vector (every score in [0, 1], no NaNs),
//   - an ascending permutation of record ids by (score, id), giving
//     O(log n) threshold counts and O(k log k) selective extraction,
//   - a cache of defensive-mixture weights + alias tables keyed by
//     (WeightExponent, Mix), so repeated queries with the same sampling
//     configuration draw from a prebuilt table in O(1) per draw.
//
// A ScoreIndex is immutable after New and safe for concurrent use by
// any number of queries; the mixture cache is internally synchronized.
package index

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"supg/internal/sampling"
)

// MixtureKey identifies a cached defensive-mixture sampling
// distribution: the importance-weight exponent applied to proxy scores
// and the uniform mixing ratio (Algorithms 4/5 use 0.5 and 0.1).
type MixtureKey struct {
	Exponent float64
	Mix      float64
}

// mixture pairs the normalized defensive weights with their alias
// table. Both are immutable once published in the cache.
type mixture struct {
	weights []float64
	alias   *sampling.Alias
}

// ScoreIndex is the precomputed, immutable index over one proxy-score
// column. Construct with New; the zero value is not usable.
type ScoreIndex struct {
	scores []float64 // validated column, record order
	perm   []int     // record ids ascending by (score, id)
	sorted []float64 // scores[perm[i]] — ascending

	mu       sync.RWMutex
	mixtures map[MixtureKey]*mixture
}

// New validates the score column and builds the index. Every score
// must be a non-NaN value in [0, 1]; the first offending record is
// reported. The slice is copied, so callers may reuse their buffer.
func New(scores []float64) (*ScoreIndex, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("index: empty score column")
	}
	own := make([]float64, n)
	for i, s := range scores {
		if s < 0 || s > 1 || s != s {
			return nil, fmt.Errorf("index: score %g for record %d outside [0,1]", s, i)
		}
		own[i] = s
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Ties break by record id so the permutation is a deterministic
	// function of the column and suffix runs of equal scores stay
	// id-sorted.
	sort.Slice(perm, func(a, b int) bool {
		if own[perm[a]] != own[perm[b]] {
			return own[perm[a]] < own[perm[b]]
		}
		return perm[a] < perm[b]
	})
	sorted := make([]float64, n)
	for i, p := range perm {
		sorted[i] = own[p]
	}
	return &ScoreIndex{
		scores:   own,
		perm:     perm,
		sorted:   sorted,
		mixtures: make(map[MixtureKey]*mixture),
	}, nil
}

// Len returns the number of records.
func (ix *ScoreIndex) Len() int { return len(ix.scores) }

// Score returns record i's proxy score.
func (ix *ScoreIndex) Score(i int) float64 { return ix.scores[i] }

// Scores returns the validated score column in record order. The slice
// is shared with the index and must be treated as read-only.
func (ix *ScoreIndex) Scores() []float64 { return ix.scores }

// CountAtLeast returns |{x : A(x) >= tau}| in O(log n).
func (ix *ScoreIndex) CountAtLeast(tau float64) int {
	return len(ix.sorted) - sort.SearchFloat64s(ix.sorted, tau)
}

// KthHighest returns the k-th highest score (0-based); k beyond the
// data clamps to the minimum score.
func (ix *ScoreIndex) KthHighest(k int) float64 {
	n := len(ix.sorted)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return ix.sorted[n-1-k]
}

// AppendAtLeast appends the record ids with score >= tau to dst in
// ascending id order and returns the extended slice. With capacity
// already in dst (size it with CountAtLeast) the call does not
// allocate. Selective thresholds copy the k-record suffix of the
// sorted permutation and re-sort it by id in O(k log k); dense
// thresholds (k comparable to n) scan the column once in O(n), which
// is cheaper than the sort and emits ids already ordered.
func (ix *ScoreIndex) AppendAtLeast(dst []int, tau float64) []int {
	n := len(ix.sorted)
	cut := sort.SearchFloat64s(ix.sorted, tau)
	k := n - cut
	if k == 0 {
		return dst
	}
	if k <= n/8 {
		start := len(dst)
		dst = append(dst, ix.perm[cut:]...)
		slices.Sort(dst[start:])
		return dst
	}
	for i, s := range ix.scores {
		if s >= tau {
			dst = append(dst, i)
		}
	}
	return dst
}

// maxCachedMixtures bounds the per-index mixture cache. Each entry
// holds O(n) weights plus an O(n) alias table, so an unbounded cache
// keyed by caller-supplied floats would let a parameter-sweeping
// workload accrete multi-MB entries for the life of the table. Real
// serving workloads use one or two (exponent, mix) configurations;
// past the bound, mixtures are built per call and not retained.
const maxCachedMixtures = 8

// Mixture returns the defensive-mixture weights and alias table for
// the given exponent/mix, building and caching them on first use (up
// to maxCachedMixtures distinct keys). The returned slices/tables are
// shared and must be treated as read-only. Concurrent callers may race
// to build the same entry; the loser's copy is discarded, so every
// caller observes one canonical value and draws are deterministic for
// a deterministic random stream.
func (ix *ScoreIndex) Mixture(exponent, mix float64) ([]float64, *sampling.Alias) {
	key := MixtureKey{Exponent: exponent, Mix: mix}
	ix.mu.RLock()
	m := ix.mixtures[key]
	ix.mu.RUnlock()
	if m == nil {
		w := sampling.DefensiveWeights(ix.scores, exponent, mix)
		built := &mixture{weights: w, alias: sampling.NewAlias(w)}
		ix.mu.Lock()
		switch {
		case ix.mixtures[key] != nil:
			m = ix.mixtures[key]
		case len(ix.mixtures) < maxCachedMixtures:
			ix.mixtures[key] = built
			m = built
		default:
			m = built // cache full: serve uncached, identical draws
		}
		ix.mu.Unlock()
	}
	return m.weights, m.alias
}

// CachedMixtures reports how many (exponent, mix) entries the cache
// holds — observability for tests and metrics.
func (ix *ScoreIndex) CachedMixtures() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.mixtures)
}

// MinScore returns the smallest score in the column.
func (ix *ScoreIndex) MinScore() float64 { return ix.sorted[0] }

// MaxScore returns the largest score in the column.
func (ix *ScoreIndex) MaxScore() float64 { return ix.sorted[len(ix.sorted)-1] }
