// Package index provides ScoreIndex, the immutable per-table proxy
// index at the heart of the selection hot path.
//
// The paper's operational model (Section 4.1) evaluates the cheap proxy
// once over the whole dataset; everything a query then needs from the
// score column — threshold counts |{x : A(x) >= tau}|, order
// statistics, the defensive-mixture sampling distribution and its Vose
// alias table — is a pure function of that column. A ScoreIndex
// precomputes all of it at table/proxy registration so each query costs
// O(oracle budget + |result|) instead of re-scanning, re-sorting, and
// rebuilding sampling structures over all n records.
//
// # Segmented layout
//
// The score column is split into fixed-size segments (Options.
// SegmentSize, default 256Ki records). Each segment owns its validated
// score sub-column and an ascending (score, id) permutation, and the
// segments are built independently across a bounded worker pool, so
// registration of an n-record table costs O(n/P · log S) wall time for
// P workers and segment size S instead of a single-core O(n log n)
// sort. The paper's statistical guarantees are distributional — they
// constrain which records are sampled, not how the sampling structures
// are laid out in memory — so the segmented index is required (and
// tested, see core.TestSelectSegmentedMatchesMonolithic) to answer
// every ScoreSource operation bit-for-bit identically to a monolithic
// single-segment index:
//
//   - CountAtLeast sums exact per-segment binary-search counts.
//   - KthHighest selects the exact global order statistic by binary
//     search over the IEEE-754 bit space (scores are validated
//     non-negative, where the bit pattern orders like the value).
//   - AppendAtLeast emits each segment's matching ids in ascending id
//     order; segments partition the id space in order, so the
//     concatenation is globally ascending — the degenerate k-way merge.
//   - Ascend streams (id, score) pairs in global (score, id) order via
//     a loser-tree k-way merge of the per-segment sorted runs (see
//     losertree.go) — the explicit form of the global sorted view a
//     monolithic index stores. The selection hot path itself needs only
//     the primitives above; Ascend is the exported iteration surface
//     for consumers that want the merged order, and the equivalence
//     tests pin it against both the retained heap merge (ascendHeap)
//     and a monolithic sort.
//   - Mixture computes the defensive weights with the exact per-element
//     operations and left-to-right summation order of
//     sampling.DefensiveWeights (segments only parallelize the
//     embarrassingly-parallel transform step) and feeds them to the
//     same global alias-table machinery, so weighted draws consume the
//     random stream identically to the monolithic path. Per-segment
//     cumulative weight masses are exposed for observability.
//
// # Quantized codes
//
// With Options.Quantize, each segment additionally carries a 16-bit
// bucket code per record (floor(score·65536), clamped). The code map
// is monotone, so a strict code inequality decides the exact score
// inequality and only the threshold's own bucket — resolved with the
// same float comparisons, in the same order, as the unquantized path —
// ever consults the 8-byte column. Scans and merge comparisons walk 2
// bytes per record instead of 8 while every operation stays
// bit-identical to the float index; see quantize.go for the invariant
// and the skew guard on dense scans.
//
// # Incremental append
//
// Append extends an index with newly appended records without
// re-sorting the existing ones: old segments are reused as-is (their
// permutations are local, so nothing is rebased), the new records form
// fresh segments, and only those are validated and sorted. The mixture
// cache starts empty on the appended index because the defensive
// weights are a function of the whole column.
//
// A ScoreIndex is immutable after New/Append and safe for concurrent
// use by any number of queries; the mixture cache is internally
// synchronized.
//
// # Intra-query parallelism
//
// Per-segment reductions — CountAtLeast partial counts, AppendAtLeast
// gathers into presized per-segment slots, and the mixture
// transform/normalize passes — fan out across the shared query pool
// (Options.QueryPool). Only phases whose outputs are independent of
// worker assignment parallelize: integer partial sums commute exactly,
// gathers write disjoint presized slots concatenated in fixed segment
// order, and the mixture's global normalizing sum stays one sequential
// left-to-right pass because float addition is not associative. The
// random stream is never consumed off the submitting goroutine, so
// results are byte-identical at every parallelism level (pinned by the
// equivalence sweeps in parallel_query_test.go).
package index

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"supg/internal/parallel"
	"supg/internal/sampling"
)

// DefaultSegmentSize is the records-per-segment default: large enough
// that per-segment binary searches stay cheap relative to a query's
// oracle budget, small enough that a million-record table builds across
// several workers and an appended batch re-sorts only its own tail.
const DefaultSegmentSize = 256 << 10

// Options tune index construction. The zero value selects the
// defaults noted on each field.
type Options struct {
	// SegmentSize is the number of records per segment (the last
	// segment of a table may be smaller). <= 0 selects
	// DefaultSegmentSize.
	SegmentSize int
	// Parallelism bounds the number of segments built concurrently.
	// <= 0 selects GOMAXPROCS.
	Parallelism int
	// Quantize additionally stores a 16-bit bucket code per record and
	// runs scans and binary searches over the 2-byte codes, consulting
	// the exact floats only inside the boundary bucket (see quantize.go).
	// Results are byte-identical to an unquantized index; the option
	// trades ~4 extra bits per record of resident memory for ~4x less
	// scan traffic.
	Quantize bool
	// QueryPool bounds the intra-query parallel segment reductions —
	// CountAtLeast partial counts, AppendAtLeast gathers, and the
	// mixture transform/normalize passes. The pool is typically shared
	// across every index of an engine (engine.Options.QueryParallelism);
	// nil selects a private pool of Parallelism workers. Results are
	// byte-identical at every setting: only phases whose outputs are
	// order-independent (integer sums, disjoint writes) fan out, and the
	// random stream is never touched off the submitting goroutine.
	QueryPool *parallel.Pool
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.QueryPool == nil {
		o.QueryPool = parallel.NewPool(o.Parallelism)
	}
	return o
}

// MixtureKey identifies a cached defensive-mixture sampling
// distribution: the importance-weight exponent applied to proxy scores
// and the uniform mixing ratio (Algorithms 4/5 use 0.5 and 0.1).
type MixtureKey struct {
	Exponent float64
	Mix      float64
}

// mixture pairs the normalized defensive weights with their alias
// table. Both are immutable once published in the cache.
type mixture struct {
	weights []float64
	alias   *sampling.Alias
}

// segment is one fixed-size shard of the score column: a validated
// sub-column plus its local ascending (score, id) permutation. Record
// ids inside a segment are local; the global id of local record i is
// base+i, which keeps permutations reusable across appends.
type segment struct {
	base   int       // global id of the segment's first record
	scores []float64 // sub-column, record order (aliases the global column)
	perm   []int     // local ids ascending by (score, local id)
	sorted []float64 // scores[perm[i]] — ascending
	// codes / qsorted are the 16-bit quantized views of scores / sorted
	// (nil on unquantized segments). See quantize.go.
	codes   []uint16
	qsorted []uint16
}

// countAtLeast returns the segment's |{x : A(x) >= tau}| in O(log S).
func (s *segment) countAtLeast(tau float64) int {
	return len(s.sorted) - s.cutAtLeast(tau)
}

// appendAtLeast appends the segment's global record ids with score >=
// tau to dst in ascending id order. Selective thresholds copy the
// k-record suffix of the sorted permutation and re-sort it by id in
// O(k log k); dense thresholds scan the sub-column once in O(S), which
// is cheaper than the sort and emits ids already ordered.
func (s *segment) appendAtLeast(dst []int, tau float64) []int {
	n := len(s.sorted)
	cut := s.cutAtLeast(tau)
	k := n - cut
	if k == 0 {
		return dst
	}
	if k <= n/8 {
		start := len(dst)
		for _, p := range s.perm[cut:] {
			dst = append(dst, s.base+p)
		}
		slices.Sort(dst[start:])
		return dst
	}
	if s.codes != nil && tau > 0 && tau <= 1 {
		ct := quantizeScore(tau)
		if lo, hi := s.codeBucket(ct); hi-lo <= n/8 {
			// Quantized dense scan: 2 bytes per record, floats touched
			// only in the boundary bucket. Strict code inequalities
			// decide exact score inequalities (monotone map), so the
			// emitted id set — and its record order — equals the float
			// scan's. Guarded on the bucket population: a skewed column
			// can concentrate in one bucket (e.g. Beta(0.01, 2) puts
			// ~90% of records in bucket 0), and a dominant boundary
			// bucket would make this path read both vectors — the float
			// scan below is cheaper there.
			for i, c := range s.codes {
				if c > ct || (c == ct && s.scores[i] >= tau) {
					dst = append(dst, s.base+i)
				}
			}
			return dst
		}
	}
	for i, sc := range s.scores {
		if sc >= tau {
			dst = append(dst, s.base+i)
		}
	}
	return dst
}

// ScoreIndex is the precomputed, immutable segmented index over one
// proxy-score column. Construct with New, NewWithOptions, or Append;
// the zero value is not usable.
type ScoreIndex struct {
	scores  []float64 // full validated column, record order
	segs    []*segment
	segSize int
	par     int
	pool    *parallel.Pool // intra-query reduction pool (Options.QueryPool)
	quant   bool           // segments carry 16-bit score codes (Options.Quantize)
	// backing pins externally-owned memory (a mapped file) the column
	// and segment slices alias; nil for heap-built indexes. See
	// FromExternal.
	backing any

	mu       sync.RWMutex
	mixtures map[MixtureKey]*mixture
}

// New validates the score column and builds the index with default
// options. Every score must be a non-NaN value in [0, 1]; the first
// offending record is reported. The slice is copied, so callers may
// reuse their buffer.
func New(scores []float64) (*ScoreIndex, error) {
	return NewWithOptions(scores, Options{})
}

// NewWithOptions is New with explicit segment size and build
// parallelism. The resulting index answers every query identically to
// any other segmentation of the same column (including the monolithic
// SegmentSize >= len(scores) layout); options trade build latency and
// append granularity only.
func NewWithOptions(scores []float64, opts Options) (*ScoreIndex, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("index: empty score column")
	}
	opts = opts.withDefaults()
	own := make([]float64, n)
	copy(own, scores)
	segs, err := buildSegments(own, 0, opts)
	if err != nil {
		return nil, err
	}
	return &ScoreIndex{
		scores:   own,
		segs:     segs,
		segSize:  opts.SegmentSize,
		par:      opts.Parallelism,
		pool:     opts.QueryPool,
		quant:    opts.Quantize,
		mixtures: make(map[MixtureKey]*mixture),
	}, nil
}

// Append returns a new index over the old column extended with extra,
// reusing every existing segment's permutation and sorting only the
// appended records. The appended records always start a fresh segment
// at the old column's end regardless of how full the last segment is —
// query results are segmentation-independent, so nothing observable
// depends on the boundary. The receiving index is unchanged.
func (ix *ScoreIndex) Append(extra []float64) (*ScoreIndex, error) {
	if len(extra) == 0 {
		return nil, fmt.Errorf("index: empty append")
	}
	old := len(ix.scores)
	own := make([]float64, old+len(extra))
	copy(own, ix.scores)
	copy(own[old:], extra)
	opts := Options{SegmentSize: ix.segSize, Parallelism: ix.par, Quantize: ix.quant, QueryPool: ix.pool}
	fresh, err := buildSegments(own, old, opts)
	if err != nil {
		return nil, err
	}
	segs := make([]*segment, 0, len(ix.segs)+len(fresh))
	for _, s := range ix.segs {
		// Re-point the sub-column into the new backing array (values are
		// bit-identical); perm, sorted, and the code vectors are local and
		// shared as-is — codes are per-segment, so nothing rebases.
		segs = append(segs, &segment{
			base:    s.base,
			scores:  own[s.base : s.base+len(s.scores)],
			perm:    s.perm,
			sorted:  s.sorted,
			codes:   s.codes,
			qsorted: s.qsorted,
		})
	}
	segs = append(segs, fresh...)
	return &ScoreIndex{
		scores:  own,
		segs:    segs,
		segSize: ix.segSize,
		par:     ix.par,
		pool:    ix.pool,
		quant:   ix.quant,
		// Old segments share their perm/sorted slices, which may alias
		// externally-owned memory — keep it pinned.
		backing:  ix.backing,
		mixtures: make(map[MixtureKey]*mixture),
	}, nil
}

// buildSegments validates and sorts column[start:] as SegmentSize-record
// segments across a bounded worker pool. Segment bases are global ids
// into column. On validation failure the error for the smallest
// offending record id is returned, matching the deterministic
// first-offender report of a sequential scan.
func buildSegments(column []float64, start int, opts Options) ([]*segment, error) {
	n := len(column) - start
	count := (n + opts.SegmentSize - 1) / opts.SegmentSize
	segs := make([]*segment, count)
	errs := make([]error, count)
	errAt := make([]int, count)

	parallel.Run(opts.Parallelism, count, func(j int) {
		base := start + j*opts.SegmentSize
		end := base + opts.SegmentSize
		if end > len(column) {
			end = len(column)
		}
		segs[j], errAt[j], errs[j] = buildSegment(column, base, end, opts.Quantize)
	})

	firstErr, firstAt := error(nil), -1
	for j := range errs {
		if errs[j] != nil && (firstAt < 0 || errAt[j] < firstAt) {
			firstErr, firstAt = errs[j], errAt[j]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return segs, nil
}

// buildSegment validates column[base:end] and builds its sorted
// permutation (plus, when quantize is set, the 16-bit code vectors).
// The returned int is the global id of the offending record when
// validation fails.
func buildSegment(column []float64, base, end int, quantize bool) (*segment, int, error) {
	sub := column[base:end]
	for i, s := range sub {
		if s < 0 || s > 1 || s != s {
			return nil, base + i, fmt.Errorf("index: score %g for record %d outside [0,1]", s, base+i)
		}
		if s == 0 {
			// Normalize -0.0 (which passes the s < 0 check) to +0.0:
			// the two compare equal everywhere scores are used, but
			// KthHighest's bit-space search and JSON serialization
			// distinguish the sign bit, and results must be identical
			// at every segment size.
			sub[i] = 0
		}
	}
	n := len(sub)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	buildSorts.Add(1)
	// Ties break by record id so the permutation is a deterministic
	// function of the column — the unique ascending (score, id) total
	// order, independent of the sort algorithm. Local id order equals
	// global id order within a segment. slices.SortFunc (pdqsort over a
	// monomorphized comparator) sorts measurably faster than the
	// interface-based sort.Slice on large segments.
	slices.SortFunc(perm, func(a, b int) int {
		if sub[a] != sub[b] {
			if sub[a] < sub[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	sorted := make([]float64, n)
	for i, p := range perm {
		sorted[i] = sub[p]
	}
	seg := &segment{base: base, scores: sub, perm: perm, sorted: sorted}
	if quantize {
		// Quantize AFTER the validation loop above so the codes are built
		// from the normalized sub-column (-0.0 already rewritten to +0.0),
		// never from the caller's raw values.
		seg.codes = quantizeSub(sub)
		seg.qsorted = permuteCodes(seg.codes, perm)
	}
	return seg, 0, nil
}

// Len returns the number of records.
func (ix *ScoreIndex) Len() int { return len(ix.scores) }

// Segments returns the number of segments.
func (ix *ScoreIndex) Segments() int { return len(ix.segs) }

// SegmentSize returns the configured records-per-segment.
func (ix *ScoreIndex) SegmentSize() int { return ix.segSize }

// Score returns record i's proxy score.
func (ix *ScoreIndex) Score(i int) float64 { return ix.scores[i] }

// Scores returns the validated score column in record order. The slice
// is shared with the index and must be treated as read-only.
func (ix *ScoreIndex) Scores() []float64 { return ix.scores }

// countParallelMinSegs gates the parallel CountAtLeast reduction: each
// segment contributes one O(log S) binary search, so fanning out pays
// only when there are enough segments to amortize spawning helpers.
// Below the bound (including every default-segment-size table under
// ~8M records) the sequential loop is faster and allocation-free.
const countParallelMinSegs = 32

// CountAtLeast returns |{x : A(x) >= tau}| as the sum of exact
// per-segment binary-search counts — O(S/segSize · log segSize). With
// many segments and a query pool the per-segment counts fan out and
// accumulate atomically; integer addition commutes exactly, so the sum
// is identical to the sequential loop's at any parallelism.
func (ix *ScoreIndex) CountAtLeast(tau float64) int {
	if len(ix.segs) >= countParallelMinSegs && ix.pool.Limit() > 1 {
		var total atomic.Int64
		ix.pool.ForEach(len(ix.segs), func(j int) {
			total.Add(int64(ix.segs[j].countAtLeast(tau)))
		})
		return int(total.Load())
	}
	n := 0
	for _, s := range ix.segs {
		n += s.countAtLeast(tau)
	}
	return n
}

// KthHighest returns the k-th highest score (0-based); k beyond the
// data clamps to the minimum score. With one segment this is a direct
// array lookup; across segments the exact global order statistic is
// found by binary search over the IEEE-754 bit space: scores are
// validated into [0, 1], where float bits order identically to values,
// and CountAtLeast(v) >= k+1 holds exactly for v at or below the
// answer, so the search converges to the stored element itself.
func (ix *ScoreIndex) KthHighest(k int) float64 {
	n := len(ix.scores)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	if len(ix.segs) == 1 {
		return ix.segs[0].sorted[n-1-k]
	}
	lo, hi := uint64(0), math.Float64bits(1.0)
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if ix.CountAtLeast(math.Float64frombits(mid)) >= k+1 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return math.Float64frombits(lo)
}

// appendParallelMinIDs gates the parallel AppendAtLeast gather: below
// this many emitted ids the sequential per-segment loop beats the cost
// of the counting pre-pass plus helper spawns.
const appendParallelMinIDs = 1 << 14

// AppendAtLeast appends the record ids with score >= tau to dst in
// ascending id order and returns the extended slice. With capacity
// already in dst (size it with CountAtLeast) the call does not
// allocate. Segments partition the id space in ascending order, so
// emitting each segment's ascending matches in segment order yields
// the globally ascending id list.
//
// Large gathers with a query pool fan out: an exact per-segment count
// pre-pass (binary searches) sizes disjoint destination slots at fixed
// offsets, each segment emits into its own slot concurrently, and the
// slots concatenate in segment order — every byte of output, and its
// position, is the one the sequential loop writes.
func (ix *ScoreIndex) AppendAtLeast(dst []int, tau float64) []int {
	if len(ix.segs) > 1 && ix.pool.Limit() > 1 {
		base := len(dst)
		// Common segment counts keep the offset table on the stack so the
		// pre-pass stays allocation-free on the hot path.
		var offBuf [33]int
		offs := offBuf[:]
		if len(ix.segs)+1 > len(offBuf) {
			offs = make([]int, len(ix.segs)+1)
		}
		for j, s := range ix.segs {
			offs[j+1] = offs[j] + s.countAtLeast(tau)
		}
		if total := offs[len(ix.segs)]; total >= appendParallelMinIDs {
			if cap(dst) < base+total {
				grown := make([]int, base, base+total)
				copy(grown, dst)
				dst = grown
			}
			dst = dst[:base+total]
			ix.pool.ForEach(len(ix.segs), func(j int) {
				lo, hi := base+offs[j], base+offs[j+1]
				// Full slice expression: a slot's cap ends where the next
				// slot begins, so appendAtLeast can never write outside
				// its own segment's range.
				ix.segs[j].appendAtLeast(dst[lo:lo:hi], tau)
			})
			return dst
		}
	}
	for _, s := range ix.segs {
		dst = s.appendAtLeast(dst, tau)
	}
	return dst
}

// segCursor is one segment's position in the Ascend k-way merge.
type segCursor struct {
	seg *segment
	pos int // index into seg.perm/seg.sorted
}

func (c segCursor) score() float64 { return c.seg.sorted[c.pos] }
func (c segCursor) id() int        { return c.seg.base + c.seg.perm[c.pos] }

// mergeHeap orders segment cursors by (score, global id) ascending.
type mergeHeap []segCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(a, b int) bool {
	ca, cb := h[a], h[b]
	// On a quantized index, a strict 2-byte code inequality decides the
	// exact score comparison (monotone map); only code-equal cursors —
	// one bucket in 65536 — touch the 8-byte sorted runs. The resulting
	// order is identical either way.
	if qa, qb := ca.seg.qsorted, cb.seg.qsorted; qa != nil && qb != nil {
		if x, y := qa[ca.pos], qb[cb.pos]; x != y {
			return x < y
		}
	}
	if ca.score() != cb.score() {
		return ca.score() < cb.score()
	}
	return ca.id() < cb.id()
}
func (h mergeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(segCursor)) }
func (h *mergeHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Ascend streams every (record id, score) pair in ascending (score,
// id) order — the global sorted view a monolithic index stores
// explicitly — via a loser-tree k-way merge of the per-segment sorted
// runs (see losertree.go), O(n log S) for S segments with one
// comparison per level per pop and the quantized code carried inline.
// Iteration stops when yield returns false.
func (ix *ScoreIndex) Ascend(yield func(id int, score float64) bool) {
	newLoserTree(ix.segs, ix.quant).ascend(yield)
}

// ascendHeap is the historical container/heap merge, retained as the
// independent test oracle for the loser tree (the equivalence sweep in
// losertree_test.go pins Ascend's output against it).
func (ix *ScoreIndex) ascendHeap(yield func(id int, score float64) bool) {
	h := make(mergeHeap, 0, len(ix.segs))
	for _, s := range ix.segs {
		if len(s.sorted) > 0 {
			h = append(h, segCursor{seg: s})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := h[0]
		if !yield(c.id(), c.score()) {
			return
		}
		if c.pos+1 < len(c.seg.sorted) {
			h[0].pos++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}

// maxCachedMixtures bounds the per-index mixture cache. Each entry
// holds O(n) weights plus an O(n) alias table, so an unbounded cache
// keyed by caller-supplied floats would let a parameter-sweeping
// workload accrete multi-MB entries for the life of the table. Real
// serving workloads use one or two (exponent, mix) configurations;
// past the bound, mixtures are built per call and not retained.
const maxCachedMixtures = 8

// Mixture returns the defensive-mixture weights and alias table for
// the given exponent/mix, building and caching them on first use (up
// to maxCachedMixtures distinct keys). The returned slices/tables are
// shared and must be treated as read-only. Concurrent callers may race
// to build the same entry; the loser's copy is discarded, so every
// caller observes one canonical value and draws are deterministic for
// a deterministic random stream.
func (ix *ScoreIndex) Mixture(exponent, mix float64) ([]float64, *sampling.Alias) {
	m := ix.mixtureEntry(exponent, mix)
	return m.weights, m.alias
}

// MixtureSegmentCumulative returns, for the given mixture
// configuration, the cumulative sampling mass of segments 0..i at each
// position i (the last entry is the total mass, 1 up to float
// rounding). This is the per-segment view of the sampling
// distribution: entry i - entry i-1 is the probability one weighted
// draw lands in segment i. It is an observability call, computed on
// demand from the cached weights (O(n)) rather than stored, so the
// query hot path never pays for it.
func (ix *ScoreIndex) MixtureSegmentCumulative(exponent, mix float64) []float64 {
	w := ix.mixtureEntry(exponent, mix).weights
	segCum := make([]float64, len(ix.segs))
	cum := 0.0
	for j, s := range ix.segs {
		for i := range s.scores {
			cum += w[s.base+i]
		}
		segCum[j] = cum
	}
	return segCum
}

func (ix *ScoreIndex) mixtureEntry(exponent, mix float64) *mixture {
	key := MixtureKey{Exponent: exponent, Mix: mix}
	ix.mu.RLock()
	m := ix.mixtures[key]
	ix.mu.RUnlock()
	if m == nil {
		built := ix.buildMixture(exponent, mix)
		ix.mu.Lock()
		switch {
		case ix.mixtures[key] != nil:
			m = ix.mixtures[key]
		case len(ix.mixtures) < maxCachedMixtures:
			ix.mixtures[key] = built
			m = built
		default:
			m = built // cache full: serve uncached, identical draws
		}
		ix.mu.Unlock()
	}
	return m
}

// buildMixture computes the defensive-mixture weights and their alias
// table. The per-element transform runs in parallel across segments,
// but every operation and the left-to-right summation order match
// sampling.DefensiveWeights exactly, so the weight vector — and hence
// the alias table and every draw made from it — is bit-for-bit the one
// a monolithic index computes (TestMixtureMatchesDefensiveWeights
// pins this).
func (ix *ScoreIndex) buildMixture(exponent, mix float64) *mixture {
	n := len(ix.scores)
	if mix < 0 {
		mix = 0
	}
	if mix > 1 {
		mix = 1
	}
	w := make([]float64, n)
	ix.eachSegmentParallel(func(s *segment) {
		for i, sc := range s.scores {
			if sc < 0 {
				sc = 0
			}
			var v float64
			switch {
			case exponent == 0:
				v = 1
			case exponent == 1:
				v = sc
			case exponent == 0.5:
				v = math.Sqrt(sc)
			default:
				v = math.Pow(sc, exponent)
			}
			w[s.base+i] = v
		}
	})
	// Global left-to-right reduction: float addition is not
	// associative, so per-segment partial sums would drift from the
	// monolithic total by rounding and break bit-exact equivalence.
	total := 0.0
	for _, v := range w {
		total += v
	}
	uniform := 1.0 / float64(n)
	if total <= 0 {
		for i := range w {
			w[i] = uniform
		}
	} else {
		ix.eachSegmentParallel(func(s *segment) {
			for i := range s.scores {
				j := s.base + i
				w[j] = (1-mix)*w[j]/total + mix*uniform
			}
		})
	}
	return &mixture{weights: w, alias: sampling.NewAlias(w)}
}

// eachSegmentParallel runs fn over every segment across the index's
// shared query pool. fn must only write state disjoint between
// segments.
func (ix *ScoreIndex) eachSegmentParallel(fn func(*segment)) {
	ix.pool.ForEach(len(ix.segs), func(j int) { fn(ix.segs[j]) })
}

// CachedMixtures reports how many (exponent, mix) entries the cache
// holds — observability for tests and metrics.
func (ix *ScoreIndex) CachedMixtures() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.mixtures)
}

// MinScore returns the smallest score in the column.
func (ix *ScoreIndex) MinScore() float64 {
	min := ix.segs[0].sorted[0]
	for _, s := range ix.segs[1:] {
		if v := s.sorted[0]; v < min {
			min = v
		}
	}
	return min
}

// MaxScore returns the largest score in the column.
func (ix *ScoreIndex) MaxScore() float64 {
	max := ix.segs[0].sorted[len(ix.segs[0].sorted)-1]
	for _, s := range ix.segs[1:] {
		if v := s.sorted[len(s.sorted)-1]; v > max {
			max = v
		}
	}
	return max
}
