package index

import (
	"fmt"
	"math"
	"sync/atomic"

	"supg/internal/parallel"
)

// buildSorts counts segment permutation sorts performed process-wide by
// buildSegment. It exists so recovery tests (and operators) can assert
// the zero-rescan contract: booting from a persisted index performs
// zero sorts, because FromExternal verifies the stored permutation
// instead of recomputing it.
var buildSorts atomic.Int64

// BuildSortsTotal reports how many segment permutation sorts this
// process has performed across all indexes.
func BuildSortsTotal() int64 { return buildSorts.Load() }

// SegmentData is the persistable artifact set of one segment: the
// global id of its first record plus the local ascending (score, id)
// permutation and the permuted score run. The slices are shared with
// the index that produced them (SegmentView) or adopted by the index
// that consumes them (FromExternal) and must be treated as read-only.
type SegmentData struct {
	// Base is the global id of the segment's first record.
	Base int
	// Perm holds local ids ascending by (score, local id).
	Perm []int
	// Sorted holds Column[Base+Perm[i]] — the segment's ascending run.
	Sorted []float64
	// Codes / SortedCodes are the segment's 16-bit score codes in record
	// order and sorted order (see quantize.go). Both nil on an
	// unquantized segment; when present, both must be len(Perm) long and
	// satisfy Codes[i] == quantizeScore(sub[i]) and SortedCodes[i] ==
	// Codes[Perm[i]].
	Codes       []uint16
	SortedCodes []uint16
}

// SegmentView exposes the i-th segment's artifacts for persistence.
// The returned slices alias the index's internal state.
func (ix *ScoreIndex) SegmentView(i int) SegmentData {
	s := ix.segs[i]
	return SegmentData{Base: s.base, Perm: s.perm, Sorted: s.sorted, Codes: s.codes, SortedCodes: s.qsorted}
}

// External is a fully-materialized index image living in memory the
// index package did not allocate — typically mmap'd file sections. The
// column and every segment slice are adopted without copying, so the
// backing memory must stay valid (and unmodified) for the life of the
// returned index and anything derived from it.
type External struct {
	// Column is the full score column in record order. Segment
	// sub-columns alias Column[Base : Base+len(Perm)].
	Column []float64
	// Segments tile Column in ascending Base order.
	Segments []SegmentData
	// Backing optionally pins whatever owns the memory (a mapped file
	// handle); the index retains it so the mapping cannot be released
	// while reachable.
	Backing any
}

// FromExternal reconstructs a ScoreIndex over externally-owned memory
// without sorting anything. Instead of trusting the stored
// permutations, it verifies in O(n) that each segment's (Sorted, Perm)
// run is strictly ascending by (score, local id), in-bounds, and
// consistent with the column — which mathematically pins the
// permutation as the unique ascending (score, id) total order
// buildSegment computes, so a verified index answers every query
// bit-for-bit identically to a rebuild. Any inconsistency (including a
// -0.0 score, which buildSegment would have normalized in place —
// impossible here because the memory may be read-only) returns an
// error; callers fall back to a full rebuild rather than serving
// corrupt data.
//
// opts supplies the segment size and parallelism used for future
// Appends and parallel mixture builds; it does not re-segment the
// external image.
func FromExternal(ext External, opts Options) (*ScoreIndex, error) {
	n := len(ext.Column)
	if n == 0 {
		return nil, fmt.Errorf("index: empty external column")
	}
	if len(ext.Segments) == 0 {
		return nil, fmt.Errorf("index: external image has no segments")
	}
	opts = opts.withDefaults()

	// Segments must tile the column contiguously from 0.
	next := 0
	for i, sd := range ext.Segments {
		if sd.Base != next {
			return nil, fmt.Errorf("index: external segment %d starts at %d, want %d", i, sd.Base, next)
		}
		if len(sd.Perm) == 0 || len(sd.Perm) != len(sd.Sorted) {
			return nil, fmt.Errorf("index: external segment %d has %d perm / %d sorted entries",
				i, len(sd.Perm), len(sd.Sorted))
		}
		if (sd.Codes == nil) != (sd.SortedCodes == nil) ||
			(sd.Codes != nil && (len(sd.Codes) != len(sd.Perm) || len(sd.SortedCodes) != len(sd.Perm))) {
			return nil, fmt.Errorf("index: external segment %d has inconsistent code vectors (%d/%d codes for %d records)",
				i, len(sd.Codes), len(sd.SortedCodes), len(sd.Perm))
		}
		next += len(sd.Perm)
		if next > n {
			return nil, fmt.Errorf("index: external segment %d overruns the %d-record column", i, n)
		}
	}
	if next != n {
		return nil, fmt.Errorf("index: external segments cover %d of %d records", next, n)
	}

	segs := make([]*segment, len(ext.Segments))
	errs := make([]error, len(ext.Segments))
	parallel.Run(opts.Parallelism, len(ext.Segments), func(j int) {
		sd := ext.Segments[j]
		sub := ext.Column[sd.Base : sd.Base+len(sd.Perm)]
		if err := verifySegmentData(sub, sd); err != nil {
			errs[j] = err
			return
		}
		seg := &segment{base: sd.Base, scores: sub, perm: sd.Perm, sorted: sd.Sorted,
			codes: sd.Codes, qsorted: sd.SortedCodes}
		if opts.Quantize && seg.codes == nil {
			// The image was persisted unquantized; build the code vectors
			// on the heap so the recovered index serves the configured
			// representation. Results are identical either way.
			seg.codes = quantizeSub(sub)
			seg.qsorted = permuteCodes(seg.codes, sd.Perm)
		}
		segs[j] = seg
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The index counts as quantized when every segment carries codes —
	// whether configured (opts.Quantize) or adopted from a quantized disk
	// image under a Quantize-off configuration (the codes are already
	// verified, so serving them costs nothing and scans stay 2-byte).
	quant := true
	for _, s := range segs {
		if s.codes == nil {
			quant = false
			break
		}
	}
	return &ScoreIndex{
		scores:   ext.Column,
		segs:     segs,
		segSize:  opts.SegmentSize,
		par:      opts.Parallelism,
		pool:     opts.QueryPool,
		quant:    quant,
		backing:  ext.Backing,
		mixtures: make(map[MixtureKey]*mixture),
	}, nil
}

// verifySegmentData checks one external segment against its sub-column.
// Strict (score, local id) ascent plus Sorted[i] == sub[Perm[i]] imply
// Perm is injective (two equal ids would force equal scores, breaking
// strictness) and therefore a bijection on [0, len) — the unique sorted
// permutation. Scores are additionally checked against the [0, 1]
// non-NaN, no-negative-zero invariant every built index guarantees, and
// any persisted code vectors are verified against the column in the
// same pass: a stored code that diverges from quantizeScore of the
// mmap'd float (bit rot, format skew) would silently misroute quantized
// scans, so it is rejected like any other corruption.
func verifySegmentData(sub []float64, sd SegmentData) error {
	n := len(sub)
	for i, v := range sub {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("index: external score %g for record %d outside [0,1]", v, sd.Base+i)
		}
		if v == 0 && math.Signbit(v) {
			return fmt.Errorf("index: external score -0 for record %d (unnormalized column)", sd.Base+i)
		}
		if sd.Codes != nil && sd.Codes[i] != quantizeScore(v) {
			return fmt.Errorf("index: external code %d for record %d diverges from its score %g",
				sd.Codes[i], sd.Base+i, v)
		}
	}
	prevBits, prevID := uint64(0), -1
	for i, p := range sd.Perm {
		if p < 0 || p >= n {
			return fmt.Errorf("index: external perm entry %d of segment at %d out of range", p, sd.Base)
		}
		bits := math.Float64bits(sd.Sorted[i])
		if bits != math.Float64bits(sub[p]) {
			return fmt.Errorf("index: external sorted run diverges from column at record %d", sd.Base+p)
		}
		if sd.SortedCodes != nil && sd.SortedCodes[i] != sd.Codes[p] {
			return fmt.Errorf("index: external sorted codes diverge at segment offset %d (base %d)", i, sd.Base)
		}
		// Non-negative floats order by their bit patterns, so one integer
		// compare checks the (score, id) ascent.
		if i > 0 && (bits < prevBits || (bits == prevBits && p <= prevID)) {
			return fmt.Errorf("index: external permutation not ascending at segment offset %d (base %d)", i, sd.Base)
		}
		prevBits, prevID = bits, p
	}
	return nil
}
