package index

import (
	"math"
	"testing"

	"supg/internal/randx"
)

// The quantized index's one correctness obligation is invisibility:
// every operation must return byte-identical results to the float
// index over the same column, at every segmentation. These tests
// attack the only place that can break — the boundary bucket, where
// code comparisons hand off to float comparisons — with columns
// engineered to straddle bucket edges, collapse into single buckets,
// and exercise the -0.0/denormal normalization the quantizer depends
// on.

// quantSegSizes mirrors the satellite-mandated sweep: degenerate
// 1-record segments, a misaligned prime, a power of two, and the
// monolithic layout.
func quantSegSizes(n int) []int {
	return []int{1, 7, 1024, n}
}

// quantTaus returns the threshold probe set for a column: every
// distinct score, each score's neighbors one ulp away, the exact
// bucket boundary below and above each score, plus the global edges
// and out-of-domain fallbacks (0, 1, tiny denormal, negative, >1, NaN).
func quantTaus(scores []float64) []float64 {
	taus := []float64{0, 1, math.SmallestNonzeroFloat64, -0.5, 1.5, math.NaN()}
	for _, s := range scores {
		b := float64(quantizeScore(s)) / codeBuckets
		taus = append(taus,
			s,
			math.Nextafter(s, 0),
			math.Nextafter(s, 2),
			b,
			math.Nextafter(b, 2),
			b+1.0/codeBuckets,
		)
	}
	return taus
}

// assertQuantizedInvisible builds the float and quantized indexes over
// the same column at one segment size and asserts bit-identical
// behavior of CountAtLeast, KthHighest, AppendAtLeast, Ascend, and
// Mixture across the probe taus.
func assertQuantizedInvisible(t *testing.T, label string, scores []float64, segSize int) {
	t.Helper()
	opts := Options{SegmentSize: segSize, Parallelism: 2}
	ref, err := NewWithOptions(scores, opts)
	if err != nil {
		t.Fatalf("%s: float build: %v", label, err)
	}
	opts.Quantize = true
	q, err := NewWithOptions(scores, opts)
	if err != nil {
		t.Fatalf("%s: quantized build: %v", label, err)
	}
	if !q.Quantized() || ref.Quantized() {
		t.Fatalf("%s: Quantized() flags wrong", label)
	}

	for _, tau := range quantTaus(scores) {
		if w, g := ref.CountAtLeast(tau), q.CountAtLeast(tau); w != g {
			t.Fatalf("%s: CountAtLeast(%v) = %d quantized vs %d float", label, tau, g, w)
		}
		w := ref.AppendAtLeast(nil, tau)
		g := q.AppendAtLeast(nil, tau)
		if len(w) != len(g) {
			t.Fatalf("%s: AppendAtLeast(%v) lengths %d vs %d", label, tau, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: AppendAtLeast(%v)[%d] = %d quantized vs %d float", label, tau, i, g[i], w[i])
			}
		}
	}

	for k := 1; k <= len(scores); k++ {
		w, g := ref.KthHighest(k), q.KthHighest(k)
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("%s: KthHighest(%d) = %x quantized vs %x float", label, k, math.Float64bits(g), math.Float64bits(w))
		}
	}

	type pair struct {
		id   int
		bits uint64
	}
	var wantAsc, gotAsc []pair
	ref.Ascend(func(id int, s float64) bool {
		wantAsc = append(wantAsc, pair{id, math.Float64bits(s)})
		return true
	})
	q.Ascend(func(id int, s float64) bool {
		gotAsc = append(gotAsc, pair{id, math.Float64bits(s)})
		return true
	})
	if len(wantAsc) != len(gotAsc) {
		t.Fatalf("%s: Ascend lengths %d vs %d", label, len(gotAsc), len(wantAsc))
	}
	for i := range wantAsc {
		if wantAsc[i] != gotAsc[i] {
			t.Fatalf("%s: Ascend[%d] = %+v quantized vs %+v float", label, i, gotAsc[i], wantAsc[i])
		}
	}

	wWeights, wAlias := ref.Mixture(0.5, 0.1)
	gWeights, gAlias := q.Mixture(0.5, 0.1)
	for i := range wWeights {
		if math.Float64bits(wWeights[i]) != math.Float64bits(gWeights[i]) {
			t.Fatalf("%s: Mixture weight %d differs", label, i)
		}
	}
	wr, gr := randx.New(99), randx.New(99)
	for i := 0; i < 64; i++ {
		if w, g := wAlias.Draw(wr), gAlias.Draw(gr); w != g {
			t.Fatalf("%s: alias draw %d = %d quantized vs %d float", label, i, g, w)
		}
	}
}

// TestQuantizedBoundaryBuckets sweeps engineered boundary-hostile
// columns through every operation at every segment size.
func TestQuantizedBoundaryBuckets(t *testing.T) {
	bucket := func(c int) float64 { return float64(c) / codeBuckets }
	columns := map[string][]float64{
		// Ties straddling a bucket edge: values exactly on boundaries,
		// one ulp below, one ulp above, and duplicated.
		"straddle": {
			bucket(100), bucket(100), math.Nextafter(bucket(100), 0),
			math.Nextafter(bucket(100), 2), bucket(101),
			math.Nextafter(bucket(101), 0), bucket(99), bucket(100),
		},
		// One dominant bucket with interior ties: the k-th highest and
		// every threshold land inside a single code.
		"one-bucket": {
			bucket(7), bucket(7) + 1e-9, bucket(7) + 2e-9, bucket(7) + 1e-9,
			bucket(7) + 3e-9, bucket(7), bucket(7) + 2e-9,
		},
		// All records bit-identical: every operation's answer is decided
		// purely by id tie-breaks.
		"all-equal": {0.25, 0.25, 0.25, 0.25, 0.25, 0.25},
		// Global edges: the 0 and 1 codes, including values in the
		// clamped top bucket.
		"edges": {0, 1, math.Nextafter(1, 0), bucket(65535), 0, 1,
			math.SmallestNonzeroFloat64, bucket(1)},
		"single": {0.625},
	}
	for name, scores := range columns {
		for _, segSize := range quantSegSizes(len(scores)) {
			assertQuantizedInvisible(t, name+"/seg="+itoaQ(segSize), scores, segSize)
		}
	}
}

// TestQuantizedRandomColumns is the randomized variant at sizes that
// cross the dense-scan and bucket-population cutoffs in appendAtLeast.
func TestQuantizedRandomColumns(t *testing.T) {
	r := randx.New(4242)
	for _, n := range []int{33, 257, 3000} {
		scores := make([]float64, n)
		for i := range scores {
			switch r.IntN(4) {
			case 0:
				// Exact bucket boundary.
				scores[i] = float64(r.IntN(codeBuckets)) / codeBuckets
			case 1:
				// Skewed cluster: most records share very few buckets.
				scores[i] = r.Float64() * (16.0 / codeBuckets)
			default:
				scores[i] = r.Float64()
			}
		}
		for _, segSize := range quantSegSizes(n) {
			if n > 300 && segSize == 1 {
				continue // 3000 one-record segments add time, not coverage
			}
			assertQuantizedInvisible(t, "rand/n="+itoaQ(n)+"/seg="+itoaQ(segSize), scores, segSize)
		}
	}
}

// TestQuantizeNormalizedZeros pins the -0.0 audit satellite: the
// quantizer consumes the normalized column, so a caller's -0.0 builds
// the same bucket-0 code as +0.0, and every surface that returns a
// score returns the normalized +0.0 bit pattern. Denormals and the
// clamped 1.0 ride along.
func TestQuantizeNormalizedZeros(t *testing.T) {
	negZero := math.Copysign(0, -1)
	scores := []float64{negZero, 0, math.SmallestNonzeroFloat64, 1.0,
		5e-324, negZero, 2.2250738585072014e-308, 1.0}
	for _, segSize := range quantSegSizes(len(scores)) {
		assertQuantizedInvisible(t, "negzero/seg="+itoaQ(segSize), scores, segSize)

		q, err := NewWithOptions(scores, Options{SegmentSize: segSize, Quantize: true})
		if err != nil {
			t.Fatal(err)
		}
		// The caller's -0.0 must never surface: Score, Ascend, and
		// KthHighest all return the normalized +0.0.
		for i := 0; i < q.Len(); i++ {
			if s := q.Score(i); s == 0 && math.Signbit(s) {
				t.Fatalf("seg=%d: Score(%d) is -0.0", segSize, i)
			}
		}
		q.Ascend(func(id int, s float64) bool {
			if s == 0 && math.Signbit(s) {
				t.Fatalf("seg=%d: Ascend yielded -0.0 at id %d", segSize, id)
			}
			return true
		})
		if s := q.KthHighest(q.Len()); s == 0 && math.Signbit(s) {
			t.Fatalf("seg=%d: KthHighest returned -0.0", segSize)
		}
		// Codes must come from the normalized values: -0.0 and +0.0
		// records carry identical bucket-0 codes, so CountAtLeast at the
		// smallest positive threshold counts none of the zeros…
		if got := q.CountAtLeast(math.SmallestNonzeroFloat64); got != 5 {
			t.Fatalf("seg=%d: CountAtLeast(denormal) = %d, want 5", segSize, got)
		}
		// …and tau = 0 counts everything (>= 0 matches -0.0 too, but
		// only because both normalize to the same +0.0).
		if got := q.CountAtLeast(0); got != len(scores) {
			t.Fatalf("seg=%d: CountAtLeast(0) = %d, want %d", segSize, got, len(scores))
		}
	}
}

// TestQuantizeScoreMonotone pins the quantizer's contract directly:
// monotone over the probe lattice, exact at bucket boundaries, clamped
// at 1.0.
func TestQuantizeScoreMonotone(t *testing.T) {
	if quantizeScore(0) != 0 || quantizeScore(1) != codeBuckets-1 {
		t.Fatalf("edge codes: q(0)=%d q(1)=%d", quantizeScore(0), quantizeScore(1))
	}
	if quantizeScore(math.SmallestNonzeroFloat64) != 0 {
		t.Fatal("denormal must land in bucket 0")
	}
	prev := uint16(0)
	for c := 0; c < codeBuckets; c += 97 {
		b := float64(c) / codeBuckets
		if quantizeScore(b) != uint16(c) {
			t.Fatalf("boundary %d quantized to %d", c, quantizeScore(b))
		}
		if below := math.Nextafter(b, 0); b > 0 && quantizeScore(below) != uint16(c-1) && quantizeScore(below) != uint16(c) {
			// One ulp below a boundary is in the previous bucket except
			// when the product rounds back up — either way it must not
			// exceed the boundary's own code.
			t.Fatalf("below boundary %d quantized to %d", c, quantizeScore(below))
		}
		q := quantizeScore(b)
		if q < prev {
			t.Fatalf("non-monotone at bucket %d", c)
		}
		prev = q
	}
}

// FuzzQuantizedEquivalence feeds arbitrary boundary-heavy columns and
// thresholds through both indexes and requires bit-identical counts,
// cuts, extraction, and order statistics. Each 2-byte chunk of data
// becomes one record: chunks ending in 0 sit exactly on their bucket
// boundary, others are perturbed into the bucket interior — the
// distribution lives on the code map's decision edges by construction.
func FuzzQuantizedEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0x64, 0x00, 0x64, 0x01}, 0.5)
	f.Add([]byte{0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x02, 0x00}, 1.0/codeBuckets)
	f.Add([]byte{0xff, 0xff}, 1.0)
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90, 0xa0}, math.NaN())
	f.Fuzz(func(t *testing.T, data []byte, tau float64) {
		if len(data) < 2 || len(data) > 4096 {
			t.Skip()
		}
		scores := make([]float64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			c := uint16(data[i]) | uint16(data[i+1])<<8
			s := float64(c) / codeBuckets
			if data[i]&1 != 0 {
				s += float64(data[i+1]) / (256 * codeBuckets) // bucket interior
			}
			if s > 1 {
				s = 1
			}
			scores = append(scores, s)
		}
		n := len(scores)
		for _, segSize := range []int{1, 3, n} {
			ref, err := NewWithOptions(scores, Options{SegmentSize: segSize})
			if err != nil {
				t.Fatal(err)
			}
			q, err := NewWithOptions(scores, Options{SegmentSize: segSize, Quantize: true})
			if err != nil {
				t.Fatal(err)
			}
			if w, g := ref.CountAtLeast(tau), q.CountAtLeast(tau); w != g {
				t.Fatalf("seg=%d: CountAtLeast(%v) %d vs %d", segSize, tau, g, w)
			}
			w := ref.AppendAtLeast(nil, tau)
			g := q.AppendAtLeast(nil, tau)
			if len(w) != len(g) {
				t.Fatalf("seg=%d: AppendAtLeast(%v) lengths %d vs %d", segSize, tau, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("seg=%d: AppendAtLeast(%v)[%d] %d vs %d", segSize, tau, i, g[i], w[i])
				}
			}
			for k := 1; k <= n; k += 1 + n/7 {
				if wb, gb := math.Float64bits(ref.KthHighest(k)), math.Float64bits(q.KthHighest(k)); wb != gb {
					t.Fatalf("seg=%d: KthHighest(%d) %x vs %x", segSize, k, gb, wb)
				}
			}
		}
	})
}

func itoaQ(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
