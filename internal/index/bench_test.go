package index

import (
	"fmt"
	"testing"

	"supg/internal/benchtool"
	"supg/internal/parallel"
	"supg/internal/randx"
)

// Benchmarks for the one-time index costs the segmented layout
// attacks: full builds at varying parallelism (registration latency)
// and incremental appends versus from-scratch rebuilds. Run with:
//
//	go test ./internal/index -bench 'IndexBuild|IndexAppend' -benchmem
//
// On a multi-core machine BenchmarkIndexBuild/par=8 should beat
// par=1 by >= 2x at n = 10^6 (segments sort independently); on a
// single-core runner the variants converge, but the segmented sort is
// still O(n log S) work versus the monolithic O(n log n).
//
// benchBuildN scales down via SUPG_BENCH_N for the CI bench smoke.
var benchBuildN = benchtool.N(1_000_000)

func benchScores(n int) []float64 {
	r := randx.New(1701)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = r.Float64()
	}
	return scores
}

func BenchmarkIndexBuild(b *testing.B) {
	scores := benchScores(benchBuildN)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix, err := NewWithOptions(scores, Options{SegmentSize: 128 << 10, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if ix.Len() != benchBuildN {
					b.Fatal("bad build")
				}
			}
		})
	}
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := NewWithOptions(scores, Options{SegmentSize: benchBuildN, Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			if ix.Len() != benchBuildN {
				b.Fatal("bad build")
			}
		}
	})
}

// BenchmarkPermScan prices the dense AppendAtLeast scan — the paper's
// "extract everything above tau" step at an unselective threshold,
// which walks every record — on the float column versus the 16-bit
// code vector. The quantized variant reads 2 bytes per record instead
// of 8 (reported as scan-bytes/rec, the >= 3x traffic cut BENCH_
// hotpath.json records); both emit identical ids, and neither
// allocates (dst capacity is reused).
func BenchmarkPermScan(b *testing.B) {
	scores := benchScores(benchBuildN)
	const tau = 0.25 // ~75% of a uniform column matches: the dense path
	for _, quantize := range []bool{false, true} {
		name := "float"
		if quantize {
			name = "quantized"
		}
		b.Run(name, func(b *testing.B) {
			ix, err := NewWithOptions(scores, Options{Quantize: quantize})
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]int, 0, ix.CountAtLeast(tau))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = ix.AppendAtLeast(dst[:0], tau)
				if len(dst) == 0 {
					b.Fatal("no matches")
				}
			}
			// After ResetTimer: it clears previously reported metrics.
			b.ReportMetric(float64(ix.ResidentBytes()), "resident-bytes")
			b.ReportMetric(float64(ix.ScanBytesPerRecord()), "scan-bytes/rec")
		})
	}
}

// BenchmarkAscendMerge prices the k-way merge behind KthHighest and
// threshold discovery: popping the top 4096 records from a segmented
// index through the loser-tree Ascend versus the historical
// container/heap merge it replaced (kept as the test oracle). Both
// emit the identical stream; the tree does one comparison per level
// with the quantized code inline instead of interface-dispatched sift
// calls.
func BenchmarkAscendMerge(b *testing.B) {
	scores := benchScores(benchBuildN)
	const topK = 4096
	for _, quantize := range []bool{false, true} {
		ix, err := NewWithOptions(scores, Options{SegmentSize: 128 << 10, Quantize: quantize})
		if err != nil {
			b.Fatal(err)
		}
		suffix := ""
		if quantize {
			suffix = "-quantized"
		}
		for _, v := range []struct {
			name   string
			ascend func(func(int, float64) bool)
		}{
			{"loser-tree", ix.Ascend},
			{"heap", ix.ascendHeap},
		} {
			ascend := v.ascend
			b.Run(v.name+suffix, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					popped := 0
					ascend(func(id int, score float64) bool {
						popped++
						return popped < topK
					})
					if popped != topK {
						b.Fatalf("popped %d", popped)
					}
				}
			})
		}
	}
}

// BenchmarkParallelCount prices the parallel CountAtLeast reduction:
// per-segment partial sums on the shared query pool versus the
// sequential walk. Counts are integers, so the parallel sum is exact
// and the reported value is identical at any worker count.
func BenchmarkParallelCount(b *testing.B) {
	scores := benchScores(benchBuildN)
	const tau = 0.25
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			// 16k-record segments put the index well past the >= 32
			// segment gate that engages the parallel reduction.
			ix, err := NewWithOptions(scores, Options{
				SegmentSize: 16 << 10,
				QueryPool:   parallel.NewPool(par),
			})
			if err != nil {
				b.Fatal(err)
			}
			want := ix.CountAtLeast(tau)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := ix.CountAtLeast(tau); got != want {
					b.Fatalf("count %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkIndexBuildQuantized prices quantized index construction
// (the extra cost is one linear pass building both code vectors).
func BenchmarkIndexBuildQuantized(b *testing.B) {
	scores := benchScores(benchBuildN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := NewWithOptions(scores, Options{SegmentSize: 128 << 10, Parallelism: 1, Quantize: true})
		if err != nil {
			b.Fatal(err)
		}
		if ix.Len() != benchBuildN {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkIndexAppend prices appending one 256k-record segment to an
// n=10^6 table against re-registering (rebuilding) the combined
// column — the acceptance target is append >= 4x cheaper.
func BenchmarkIndexAppend(b *testing.B) {
	const extraN = 256 << 10
	scores := benchScores(benchBuildN + extraN)
	base, err := NewWithOptions(scores[:benchBuildN], Options{SegmentSize: DefaultSegmentSize})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := base.Append(scores[benchBuildN:])
			if err != nil {
				b.Fatal(err)
			}
			if ix.Len() != len(scores) {
				b.Fatal("bad append")
			}
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := NewWithOptions(scores, Options{SegmentSize: DefaultSegmentSize})
			if err != nil {
				b.Fatal(err)
			}
			if ix.Len() != len(scores) {
				b.Fatal("bad rebuild")
			}
		}
	})
}
