package index

import (
	"math"
	"testing"
)

// mergedPair is one (id, score) emission captured from a merge, with
// the score held as raw bits so comparisons are exact.
type mergedPair struct {
	id   int
	bits uint64
}

func collectAscend(ix *ScoreIndex, limit int) []mergedPair {
	var out []mergedPair
	ix.Ascend(func(id int, score float64) bool {
		out = append(out, mergedPair{id, math.Float64bits(score)})
		return limit <= 0 || len(out) < limit
	})
	return out
}

func collectAscendHeap(ix *ScoreIndex, limit int) []mergedPair {
	var out []mergedPair
	ix.ascendHeap(func(id int, score float64) bool {
		out = append(out, mergedPair{id, math.Float64bits(score)})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// TestAscendMatchesHeapMerge is the loser-tree equivalence sweep: the
// production Ascend must emit exactly the sequence of the retained
// container/heap oracle at every segmentation, quantized and float,
// over a column dense with cross-segment score ties.
func TestAscendMatchesHeapMerge(t *testing.T) {
	for _, n := range []int{1, 2, 9, 1000, 5000} {
		scores := quantizedScores(uint64(500+n), n)
		for _, segSize := range segmentSizesFor(n) {
			for _, quantize := range []bool{false, true} {
				ix, err := NewWithOptions(scores, Options{SegmentSize: segSize, Quantize: quantize})
				if err != nil {
					t.Fatal(err)
				}
				want := collectAscendHeap(ix, 0)
				got := collectAscend(ix, 0)
				if len(got) != n || len(want) != n {
					t.Fatalf("n=%d segSize=%d quant=%v: emitted %d/%d pairs, want %d",
						n, segSize, quantize, len(got), len(want), n)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d segSize=%d quant=%v: pair %d = %v, heap oracle %v",
							n, segSize, quantize, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAscendTieColumn drives the merge through a column where every
// record ties on score, so ordering is decided purely by global id
// across every segment boundary.
func TestAscendTieColumn(t *testing.T) {
	const n = 257
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 0.5
	}
	for _, segSize := range []int{1, 7, 64, n} {
		for _, quantize := range []bool{false, true} {
			ix, err := NewWithOptions(scores, Options{SegmentSize: segSize, Quantize: quantize})
			if err != nil {
				t.Fatal(err)
			}
			got := collectAscend(ix, 0)
			if len(got) != n {
				t.Fatalf("segSize=%d quant=%v: %d pairs, want %d", segSize, quantize, len(got), n)
			}
			for i, p := range got {
				if p.id != i || p.bits != math.Float64bits(0.5) {
					t.Fatalf("segSize=%d quant=%v: pair %d = %v, want id %d score 0.5",
						segSize, quantize, i, p, i)
				}
			}
		}
	}
}

// TestAscendEarlyStop checks that a yield returning false stops the
// merge after exactly the emitted prefix, and that the prefix matches
// the heap oracle's.
func TestAscendEarlyStop(t *testing.T) {
	const n = 1000
	scores := quantizedScores(42, n)
	for _, quantize := range []bool{false, true} {
		ix, err := NewWithOptions(scores, Options{SegmentSize: 64, Quantize: quantize})
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{1, 2, 63, 64, 65, n - 1, n} {
			got := collectAscend(ix, limit)
			want := collectAscendHeap(ix, limit)
			if len(got) != limit || len(want) != limit {
				t.Fatalf("quant=%v limit=%d: emitted %d/%d pairs", quantize, limit, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("quant=%v limit=%d: pair %d = %v, heap oracle %v",
						quantize, limit, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLoserTreeEmptySegments drives newLoserTree directly over segment
// slices that include exhausted (empty) runs — a state built indexes
// never produce but the tree must tolerate, since it skips empties at
// init.
func TestLoserTreeEmptySegments(t *testing.T) {
	mk := func(base int, scores ...float64) *segment {
		perm := make([]int, len(scores))
		for i := range perm {
			perm[i] = i
		}
		return &segment{base: base, scores: scores, perm: perm, sorted: scores}
	}
	empty := &segment{}

	for _, tc := range []struct {
		name string
		segs []*segment
		want []mergedPair
	}{
		{"all empty", []*segment{empty, empty}, nil},
		{"no segments", nil, nil},
		{"empty between runs", []*segment{mk(0, 0.3, 0.9), empty, mk(2, 0.1)},
			[]mergedPair{{2, math.Float64bits(0.1)}, {0, math.Float64bits(0.3)}, {1, math.Float64bits(0.9)}}},
		{"single run after empties", []*segment{empty, mk(5, 0.2, 0.4), empty},
			[]mergedPair{{5, math.Float64bits(0.2)}, {6, math.Float64bits(0.4)}}},
	} {
		lt := newLoserTree(tc.segs, false)
		var got []mergedPair
		lt.ascend(func(id int, score float64) bool {
			got = append(got, mergedPair{id, math.Float64bits(score)})
			return true
		})
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d pairs, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: pair %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}
