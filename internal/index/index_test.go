package index

import (
	"math"
	"sort"
	"sync"
	"testing"

	"supg/internal/randx"
	"supg/internal/sampling"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty column must be rejected")
	}
	if _, err := New([]float64{0.5, math.NaN()}); err == nil {
		t.Error("NaN score must be rejected")
	}
	if _, err := New([]float64{0.5, -0.1}); err == nil {
		t.Error("negative score must be rejected")
	}
	if _, err := New([]float64{0.5, 1.5}); err == nil {
		t.Error("score above 1 must be rejected")
	}
	if _, err := New([]float64{0, 1, 0.5}); err != nil {
		t.Errorf("valid boundary scores rejected: %v", err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	scores := []float64{0.3, 0.7}
	ix, err := New(scores)
	if err != nil {
		t.Fatal(err)
	}
	scores[0] = 0.99
	if ix.Score(0) != 0.3 {
		t.Error("index must not alias the caller's buffer")
	}
}

func TestSortedPermutationWithTies(t *testing.T) {
	scores := []float64{0.5, 0.1, 0.9, 0.5, 0.5, 0.0}
	ix, err := New(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending by (score, id): 5(0.0) 1(0.1) 0(0.5) 3(0.5) 4(0.5) 2(0.9).
	want := []int{5, 1, 0, 3, 4, 2}
	if len(ix.segs) != 1 {
		t.Fatalf("%d records built %d segments, want 1", len(scores), len(ix.segs))
	}
	for i, p := range ix.segs[0].perm {
		if p != want[i] {
			t.Fatalf("perm = %v, want %v", ix.segs[0].perm, want)
		}
	}
	if got := ix.CountAtLeast(0.5); got != 4 {
		t.Errorf("CountAtLeast(0.5) = %d, want 4", got)
	}
	if got := ix.CountAtLeast(0.91); got != 0 {
		t.Errorf("CountAtLeast(0.91) = %d, want 0", got)
	}
	if got := ix.CountAtLeast(0); got != 6 {
		t.Errorf("CountAtLeast(0) = %d, want 6", got)
	}
	if got := ix.CountAtLeast(math.Inf(1)); got != 0 {
		t.Errorf("CountAtLeast(+Inf) = %d, want 0", got)
	}
	if ix.KthHighest(0) != 0.9 || ix.KthHighest(1) != 0.5 || ix.KthHighest(100) != 0 {
		t.Error("KthHighest order statistics wrong")
	}
	if ix.MinScore() != 0 || ix.MaxScore() != 0.9 {
		t.Error("min/max scores wrong")
	}
}

// appendAtLeastRef is the O(n) reference: ids with score >= tau,
// ascending.
func appendAtLeastRef(scores []float64, tau float64) []int {
	var out []int
	for i, s := range scores {
		if s >= tau {
			out = append(out, i)
		}
	}
	return out
}

func TestAppendAtLeastMatchesReference(t *testing.T) {
	r := randx.New(41)
	n := 5000
	scores := make([]float64, n)
	for i := range scores {
		// Coarse quantization forces heavy score ties.
		scores[i] = math.Round(r.Float64()*50) / 50
	}
	ix, err := New(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds spanning the dense-scan and sparse-copy regimes,
	// including exact tie values and the empty selection.
	taus := []float64{0, 0.02, 0.5, 0.9, 0.98, 1.0, 1.1, math.Inf(1)}
	for _, tau := range taus {
		got := ix.AppendAtLeast(nil, tau)
		want := appendAtLeastRef(scores, tau)
		if len(got) != len(want) {
			t.Fatalf("tau=%v: %d ids, want %d", tau, len(got), len(want))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("tau=%v: output not ascending", tau)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tau=%v: got[%d]=%d, want %d", tau, i, got[i], want[i])
			}
		}
		if len(got) != ix.CountAtLeast(tau) {
			t.Fatalf("tau=%v: CountAtLeast disagrees with extraction", tau)
		}
	}
}

func TestAppendAtLeastReusesCapacity(t *testing.T) {
	ix, err := New([]float64{0.1, 0.9, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 4)
	out := ix.AppendAtLeast(buf, 0.5)
	if &out[0] != &buf[:1][0] {
		t.Error("sufficient capacity must be reused without reallocation")
	}
}

func TestMixtureCacheKeying(t *testing.T) {
	ix, err := New([]float64{0.2, 0.4, 0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	w1, a1 := ix.Mixture(0.5, 0.1)
	w2, a2 := ix.Mixture(0.5, 0.1)
	if &w1[0] != &w2[0] || a1 != a2 {
		t.Error("same key must return the cached mixture")
	}
	w3, _ := ix.Mixture(1.0, 0.1)
	if &w3[0] == &w1[0] {
		t.Error("different exponent must build a distinct mixture")
	}
	ix.Mixture(0.5, 0.2)
	if got := ix.CachedMixtures(); got != 3 {
		t.Errorf("cache holds %d entries, want 3", got)
	}
	// Cached weights must equal a fresh defensive-mixture build.
	fresh := sampling.DefensiveWeights(ix.Scores(), 0.5, 0.1)
	for i := range fresh {
		if w1[i] != fresh[i] {
			t.Fatalf("cached weight %d = %v, want %v", i, w1[i], fresh[i])
		}
	}
}

func TestMixtureDrawsMatchUncached(t *testing.T) {
	r := randx.New(11)
	scores := make([]float64, 400)
	for i := range scores {
		scores[i] = r.Float64()
	}
	ix, err := New(scores)
	if err != nil {
		t.Fatal(err)
	}
	_, alias := ix.Mixture(0.5, 0.1)
	fresh := sampling.NewAlias(sampling.DefensiveWeights(scores, 0.5, 0.1))
	a := alias.DrawN(randx.New(7), 200)
	b := fresh.DrawN(randx.New(7), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: cached alias %d, fresh alias %d", i, a[i], b[i])
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	r := randx.New(5)
	scores := make([]float64, 20000)
	for i := range scores {
		scores[i] = r.Float64()
	}
	ix, err := New(scores)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rg := randx.New(uint64(g))
			for i := 0; i < 200; i++ {
				tau := rg.Float64()
				k := ix.CountAtLeast(tau)
				out := ix.AppendAtLeast(make([]int, 0, k), tau)
				if len(out) != k {
					t.Errorf("goroutine %d: extraction size %d != count %d", g, len(out), k)
					return
				}
				// Exercise the mixture cache under contention with a
				// small set of keys so builds and hits interleave.
				w, a := ix.Mixture(0.5, float64(i%3)/10)
				if len(w) != ix.Len() || a == nil {
					t.Errorf("goroutine %d: bad mixture", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
