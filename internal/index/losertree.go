package index

// This file implements the flat tournament (loser) tree behind Ascend's
// k-way merge of the per-segment sorted runs, replacing the historical
// container/heap merge (kept as ascendHeap, the test oracle).
//
// A loser tree beats a binary heap for repeated-pop merges on two
// counts. First, replacing the just-popped minimum costs exactly one
// root-to-leaf path of ceil(log2 k) comparisons — a heap's sift-down
// performs up to two comparisons per level to pick the smaller child.
// Second, the structure is monomorphic: cursors cache their current
// (code, score, id) key inline in a flat slice, so a comparison touches
// two 32-byte cursor records with no interface dispatch and no
// heap.Interface indirection. On a quantized index the cached 2-byte
// code decides all but the one-in-65536 boundary-bucket comparisons
// exactly as the heap's Less did, so the emitted order — (score, id)
// ascending — is byte-identical either way (pinned by the
// loser-tree-vs-heap equivalence sweep in losertree_test.go).

// ltCursor is one segment's position in the merge with its current sort
// key cached inline. done marks an exhausted (or initially empty)
// segment; done cursors lose every match.
type ltCursor struct {
	seg   *segment
	pos   int
	id    int     // seg.base + seg.perm[pos]
	score float64 // seg.sorted[pos]
	code  uint16  // seg.qsorted[pos] (quantized trees only)
	done  bool
}

// load refreshes the cached key from the cursor's position.
func (c *ltCursor) load(quant bool) {
	s := c.seg
	c.id = s.base + s.perm[c.pos]
	c.score = s.sorted[c.pos]
	if quant {
		c.code = s.qsorted[c.pos]
	}
}

// loserTree is the flat tournament over k segment cursors. node[1..k-1]
// hold the losers of the internal matches (node t plays the winners of
// its subtrees 2t and 2t+1; leaf i sits at implicit position k+i);
// node[0] holds the overall winner — the cursor with the least (score,
// id) key.
type loserTree struct {
	cursors []ltCursor
	node    []int
	quant   bool
}

// newLoserTree builds the initial tournament over every non-empty
// segment. quant must only be set when every segment carries sorted
// code vectors.
func newLoserTree(segs []*segment, quant bool) *loserTree {
	lt := &loserTree{quant: quant}
	for _, s := range segs {
		if len(s.sorted) == 0 {
			continue
		}
		c := ltCursor{seg: s}
		c.load(quant)
		lt.cursors = append(lt.cursors, c)
	}
	k := len(lt.cursors)
	if k == 0 {
		return lt
	}
	// Bottom-up initial tournament: winner[t] is the winner of the
	// subtree rooted at t, and the loser of each match is frozen into
	// node[t]. winner is init-only scratch; pops replay only one leaf's
	// path via fix.
	lt.node = make([]int, k)
	winner := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winner[k+i] = i
	}
	for t := k - 1; t >= 1; t-- {
		a, b := winner[2*t], winner[2*t+1]
		if lt.less(a, b) {
			winner[t], lt.node[t] = a, b
		} else {
			winner[t], lt.node[t] = b, a
		}
	}
	lt.node[0] = winner[1]
	return lt
}

// less reports whether cursor a's current key sorts strictly before
// cursor b's in the global (score, id) ascent. On a quantized tree the
// cached 2-byte codes decide every comparison except within the one
// bucket where they tie (the code map is monotone, so a strict code
// inequality is exactly a strict score inequality); there the float
// comparison resolves it, as in the unquantized tree. Exhausted cursors
// sort after everything.
func (lt *loserTree) less(a, b int) bool {
	ca, cb := &lt.cursors[a], &lt.cursors[b]
	if ca.done || cb.done {
		return !ca.done && cb.done
	}
	if lt.quant && ca.code != cb.code {
		return ca.code < cb.code
	}
	if ca.score != cb.score {
		return ca.score < cb.score
	}
	return ca.id < cb.id
}

// fix replays leaf s's matches after its cursor advanced: the new key
// plays the stored loser at each ancestor, swapping whenever the stored
// cursor wins, and the surviving winner lands in node[0]. One
// comparison per level — the loser tree's whole advantage.
func (lt *loserTree) fix(s int) {
	for t := (s + len(lt.cursors)) / 2; t >= 1; t /= 2 {
		if lt.less(lt.node[t], s) {
			s, lt.node[t] = lt.node[t], s
		}
	}
	lt.node[0] = s
}

// ascend streams the merged (id, score) sequence into yield until the
// tree is exhausted or yield returns false.
func (lt *loserTree) ascend(yield func(id int, score float64) bool) {
	if len(lt.cursors) == 0 {
		return
	}
	w := lt.node[0]
	for {
		c := &lt.cursors[w]
		if c.done {
			return
		}
		if !yield(c.id, c.score) {
			return
		}
		if c.pos++; c.pos < len(c.seg.sorted) {
			c.load(lt.quant)
		} else {
			c.done = true
		}
		lt.fix(w)
		w = lt.node[0]
	}
}
