package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestStreamIndependentOfConsumption(t *testing.T) {
	a := New(7)
	want := a.Stream(3).Float64()
	b := New(7)
	for i := 0; i < 50; i++ {
		b.Float64() // consume parent randomness
	}
	if got := b.Stream(3).Float64(); got != want {
		t.Fatalf("Stream(3) depends on parent consumption: %v vs %v", got, want)
	}
}

func TestStreamsDiffer(t *testing.T) {
	r := New(7)
	if r.Stream(0).Float64() == r.Stream(1).Float64() {
		t.Fatal("streams 0 and 1 produced identical first draws")
	}
}

func TestSplit(t *testing.T) {
	r := New(9)
	streams := r.Split(4)
	if len(streams) != 4 {
		t.Fatalf("Split(4) returned %d streams", len(streams))
	}
	seen := map[float64]bool{}
	for _, s := range streams {
		v := s.Float64()
		if seen[v] {
			t.Fatalf("duplicate first draw %v across split streams", v)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntNRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.IntN(10)
		if v < 0 || v >= 10 {
			t.Fatalf("IntN(10) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("IntN(10) bucket %d count %d far from 1000", i, c)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(6)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(123).Seed() != 123 {
		t.Fatal("Seed() mismatch")
	}
}

func TestShuffle(t *testing.T) {
	r := New(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d", i)
		}
	}
}
