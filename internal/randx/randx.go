// Package randx provides seedable, splittable random number streams used
// throughout the library.
//
// All randomness in supg flows through *randx.Rand so that every
// experiment, test, and benchmark is reproducible from a single uint64
// seed. Streams are backed by the PCG generator from math/rand/v2.
// Derived streams (see Split and Stream) let parallel trials consume
// independent, deterministic randomness without sharing state.
package randx

import (
	"math/rand/v2"
)

// Rand is a deterministic random source. It wraps rand.Rand with
// convenience methods and deterministic stream derivation. It is not
// safe for concurrent use; derive one stream per goroutine with Stream.
//
// The PCG state is embedded rather than boxed so constructing a Rand —
// which query paths do several times per query for stream derivation —
// costs a single allocation. The generator and its consumption are
// exactly rand.New(rand.NewPCG(...)); only the memory layout differs,
// so sequences are unchanged.
type Rand struct {
	src  rand.Rand
	pcg  rand.PCG
	seed uint64
}

// New returns a Rand seeded with seed. Two Rands created with the same
// seed produce identical sequences.
func New(seed uint64) *Rand {
	r := &Rand{seed: seed}
	r.pcg.Seed(seed, mix(seed))
	r.src = *rand.New(&r.pcg)
	return r
}

// mix scrambles a seed with the SplitMix64 finalizer so that nearby
// seeds yield unrelated streams.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed returns the seed this Rand was created with.
func (r *Rand) Seed() uint64 { return r.seed }

// Stream derives an independent deterministic sub-stream identified by
// id. Calling Stream with the same (seed, id) always yields the same
// sequence regardless of how much randomness the parent has consumed.
func (r *Rand) Stream(id uint64) *Rand {
	return New(mix(r.seed ^ mix(id+0x6a09e667f3bcc909)))
}

// Split derives n independent sub-streams (Stream(0..n-1)).
func (r *Rand) Split(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Stream(uint64(i))
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 { return r.src.ExpFloat64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}
