package engine

import (
	"path/filepath"
	"sync"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

// Kill-and-restart coverage for the quantized index: the .qcv code
// vectors must survive a restart (zero proxy calls, zero sorts, scans
// stay 2-byte) and the quantize configuration may change across the
// restart without ever changing an answer.

func quantPersistEngine(t *testing.T, dir string, d *dataset.Dataset, quantize bool, proxyCalls *int) *Engine {
	t.Helper()
	e, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096, Quantize: quantize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.RegisterTable("t", d)
	e.RegisterOracle("o", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	var mu sync.Mutex
	e.RegisterProxy("p", func(i int) float64 {
		mu.Lock()
		*proxyCalls++
		mu.Unlock()
		return d.Score(i)
	})
	return e
}

// TestRestartQuantizedZeroRescanRecovery is the quantized variant of
// the engine restart acceptance test: a killed engine with a persisted
// quantized index restarts with zero proxy UDF calls, zero permutation
// sorts, and byte-identical answers, with its code vectors adopted
// straight from the mapped .qcv files.
func TestRestartQuantizedZeroRescanRecovery(t *testing.T) {
	dir := t.TempDir()
	d := dataset.Beta(randx.New(31), 20000, 0.01, 2)

	var calls1 int
	e1 := quantPersistEngine(t, dir, d, true, &calls1)
	cold, err := e1.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.IndexBuilt || calls1 != d.Len() {
		t.Fatalf("cold query: IndexBuilt=%v proxy calls=%d", cold.IndexBuilt, calls1)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if qcvs, _ := filepath.Glob(filepath.Join(dir, "*.qcv")); len(qcvs) == 0 {
		t.Fatal("quantized engine persisted no .qcv code files")
	}

	var calls2 int
	sortsBefore := index.BuildSortsTotal()
	e2 := quantPersistEngine(t, dir, d.Clone(), true, &calls2)
	info, ok := e2.RecoveryInfo()
	if !ok || info.Indexes != 1 || len(info.Degraded) != 0 {
		t.Fatalf("recovery info = %+v, %v", info, ok)
	}
	warm, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if calls2 != 0 {
		t.Fatalf("restarted engine invoked the proxy UDF %d times, want 0", calls2)
	}
	if sorts := index.BuildSortsTotal() - sortsBefore; sorts != 0 {
		t.Fatalf("restarted engine performed %d permutation sorts, want 0", sorts)
	}
	if !warm.IndexRecovered || warm.IndexBuilt {
		t.Fatalf("warm query: IndexRecovered=%v IndexBuilt=%v", warm.IndexRecovered, warm.IndexBuilt)
	}
	assertSameResult(t, cold, warm)
}

// TestRestartQuantizeConfigChangeIsInvisible flips the Quantize option
// across restarts in both directions. Answers must never change:
// recovery adopts persisted codes even when quantization is off (they
// are already verified, and 2-byte scans cost nothing to keep), and a
// quantize-on restart over a float persist computes codes from the
// recovered column without re-calling the proxy.
func TestRestartQuantizeConfigChangeIsInvisible(t *testing.T) {
	for _, tc := range []struct {
		name            string
		persistQ, bootQ bool
	}{
		{"on-then-off", true, false},
		{"off-then-on", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := dataset.Beta(randx.New(57), 12000, 0.5, 2)

			var calls1 int
			e1 := quantPersistEngine(t, dir, d, tc.persistQ, &calls1)
			cold, err := e1.Execute(persistTestSQL)
			if err != nil {
				t.Fatal(err)
			}
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}

			var calls2 int
			e2 := quantPersistEngine(t, dir, d.Clone(), tc.bootQ, &calls2)
			warm, err := e2.Execute(persistTestSQL)
			if err != nil {
				t.Fatal(err)
			}
			if calls2 != 0 {
				t.Fatalf("config flip re-invoked the proxy %d times", calls2)
			}
			if !warm.IndexRecovered {
				t.Fatal("config flip discarded the persisted index")
			}
			assertSameResult(t, cold, warm)
		})
	}
}
