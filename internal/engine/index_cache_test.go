package engine

import (
	"sync"
	"testing"

	"supg/internal/dataset"
	"supg/internal/query"
	"supg/internal/randx"
)

// TestIndexCachedAcrossQueries verifies the amortization contract: the
// first query of a (table, proxy) pair pays the proxy scan, later
// queries reuse the index and report zero proxy evaluations.
func TestIndexCachedAcrossQueries(t *testing.T) {
	d := dataset.Beta(randx.New(6), 20000, 0.01, 2)
	e := New(1)
	e.RegisterTable("t", d)
	e.RegisterOracle("o", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	proxyCalls := 0
	var mu sync.Mutex
	e.RegisterProxy("p", func(i int) float64 {
		mu.Lock()
		proxyCalls++
		mu.Unlock()
		return d.Score(i)
	})
	const sql = `SELECT * FROM t WHERE o(x) ORACLE LIMIT 500 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`

	first, err := e.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !first.IndexBuilt || first.ProxyCalls != d.Len() {
		t.Fatalf("first query: IndexBuilt=%v ProxyCalls=%d, want build with %d calls", first.IndexBuilt, first.ProxyCalls, d.Len())
	}
	if proxyCalls != d.Len() {
		t.Fatalf("proxy UDF invoked %d times, want %d", proxyCalls, d.Len())
	}

	second, err := e.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	if second.IndexBuilt || second.ProxyCalls != 0 {
		t.Fatalf("second query: IndexBuilt=%v ProxyCalls=%d, want cache hit", second.IndexBuilt, second.ProxyCalls)
	}
	if proxyCalls != d.Len() {
		t.Fatalf("cache hit re-ran the proxy: %d total calls", proxyCalls)
	}
	if first.Tau != second.Tau || len(first.Indices) != len(second.Indices) {
		t.Fatal("cached index changed the query answer")
	}
}

// TestIndexInvalidatedOnReregistration: re-registering the table or the
// proxy must drop the cached index so stale scores are never served.
func TestIndexInvalidatedOnReregistration(t *testing.T) {
	d := dataset.Beta(randx.New(7), 5000, 1, 1)
	e := New(1)
	e.RegisterDatasetDefaults("t", d)
	const sql = `SELECT * FROM t WHERE t_oracle(x) ORACLE LIMIT 200 USING t_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`
	if _, err := e.Execute(sql); err != nil {
		t.Fatal(err)
	}

	// New data under the same names: the next query must rebuild.
	d2 := dataset.Beta(randx.New(8), 5000, 1, 1)
	e.RegisterDatasetDefaults("t", d2)
	res, err := e.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexBuilt {
		t.Fatal("re-registration must invalidate the cached index")
	}
}

// TestConcurrentQueriesBuildIndexOnce: concurrent first queries of the
// same table must share one proxy scan and agree on the answer.
func TestConcurrentQueriesBuildIndexOnce(t *testing.T) {
	d := dataset.Beta(randx.New(9), 30000, 0.01, 2)
	e := New(3)
	e.RegisterTable("t", d)
	e.RegisterOracle("o", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	proxyCalls := 0
	var mu sync.Mutex
	e.RegisterProxy("p", func(i int) float64 {
		mu.Lock()
		proxyCalls++
		mu.Unlock()
		return d.Score(i)
	})
	q, err := query.Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 400 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	results := make([]*QueryResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = e.ExecutePlan(plan)
		}(w)
	}
	wg.Wait()

	builds := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].IndexBuilt {
			builds++
		}
		if results[w].Tau != results[0].Tau || len(results[w].Indices) != len(results[0].Indices) {
			t.Fatalf("worker %d answer diverged", w)
		}
	}
	if builds != 1 {
		t.Fatalf("%d workers report building the index, want exactly 1", builds)
	}
	if proxyCalls != d.Len() {
		t.Fatalf("proxy UDF invoked %d times across concurrent queries, want %d", proxyCalls, d.Len())
	}
}
