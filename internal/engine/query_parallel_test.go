package engine

import (
	"sync"
	"testing"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/query"
	"supg/internal/randx"
)

// This file pins engine.Options.QueryParallelism as an execution
// detail: every query result must be byte-identical at parallelism
// 1/2/8, and the shared pool must be race-free under concurrent
// queries and AppendTable traffic.

// queryParCase pairs a parseable statement with an estimator config
// override (nil keeps the planner's SUPG default). The SQL grammar has
// no estimator clause — alternate methods are a PlanOptions concern —
// so the UNoCI/UCI variants route through BuildPlan.
type queryParCase struct {
	sql string
	cfg *core.Config
}

func queryParCases() []queryParCase {
	unoci := core.DefaultUNoCI()
	uci := core.DefaultUCI()
	rt := `SELECT * FROM t WHERE t_oracle(x) = true ORACLE LIMIT 600
	 USING t_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`
	pt := `SELECT * FROM t WHERE t_oracle(x) = true ORACLE LIMIT 600
	 USING t_proxy(x) PRECISION TARGET 90% WITH PROBABILITY 95%`
	return []queryParCase{
		{sql: rt},
		{sql: pt},
		{sql: rt, cfg: &unoci},
		{sql: pt, cfg: &uci},
	}
}

// queryParPlans lowers every case once; the plans are read-only and
// shared across engines and goroutines.
func queryParPlans(t *testing.T) []*query.Plan {
	t.Helper()
	cases := queryParCases()
	plans := make([]*query.Plan, len(cases))
	for i, c := range cases {
		q, err := query.Parse(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		plans[i], err = query.BuildPlan(q, query.PlanOptions{Config: c.cfg})
		if err != nil {
			t.Fatalf("plan %q: %v", c.sql, err)
		}
	}
	return plans
}

func queryParEngine(t *testing.T, par int, quantize bool, d *dataset.Dataset) *Engine {
	t.Helper()
	// 512-record segments over 40000 records: 79 segments, so both the
	// parallel count (>= 32 segments) and parallel gather thresholds
	// engage.
	e := NewWithOptions(11, Options{SegmentSize: 512, QueryParallelism: par, Quantize: quantize})
	e.RegisterDatasetDefaults("t", d)
	return e
}

// TestExecuteByteIdenticalAcrossQueryParallelism runs every estimator
// family at query-parallelism 1, 2, and 8 and requires identical
// Indices, Tau, and OracleCalls.
func TestExecuteByteIdenticalAcrossQueryParallelism(t *testing.T) {
	d := dataset.Beta(randx.New(3), 40000, 0.01, 2)
	plans := queryParPlans(t)
	for _, quantize := range []bool{false, true} {
		ref := queryParEngine(t, 1, quantize, d)
		for ci, plan := range plans {
			want, err := ref.ExecutePlan(plan)
			if err != nil {
				t.Fatalf("quant=%v case %d sequential: %v", quantize, ci, err)
			}
			for _, par := range []int{2, 8} {
				got, err := queryParEngine(t, par, quantize, d).ExecutePlan(plan)
				if err != nil {
					t.Fatalf("quant=%v case %d par=%d: %v", quantize, ci, par, err)
				}
				if got.Tau != want.Tau || got.OracleCalls != want.OracleCalls {
					t.Fatalf("quant=%v case %d par=%d: tau/calls %v/%d, sequential %v/%d",
						quantize, ci, par, got.Tau, got.OracleCalls, want.Tau, want.OracleCalls)
				}
				if len(got.Indices) != len(want.Indices) {
					t.Fatalf("quant=%v case %d par=%d: %d records, sequential %d",
						quantize, ci, par, len(got.Indices), len(want.Indices))
				}
				for i := range want.Indices {
					if got.Indices[i] != want.Indices[i] {
						t.Fatalf("quant=%v case %d par=%d: record %d = %d, sequential %d",
							quantize, ci, par, i, got.Indices[i], want.Indices[i])
					}
				}
			}
		}
	}
}

// TestQueryParallelStress hammers one parallel engine with concurrent
// queries on a stable table while a second table grows through
// AppendTable, checking every stable-table result against a
// sequential reference engine. Run under -race this pins the shared
// query pool, the shared arena pool, and the index read path as free
// of cross-query data races.
func TestQueryParallelStress(t *testing.T) {
	stable := dataset.Beta(randx.New(5), 40000, 0.01, 2)
	growBase := dataset.Beta(randx.New(6), 8000, 0.5, 1)
	plans := queryParPlans(t)

	ref := queryParEngine(t, 1, true, stable)
	e := queryParEngine(t, 8, true, stable)
	e.RegisterDatasetDefaults("g", growBase)

	want := make([]*QueryResult, len(plans))
	for i, plan := range plans {
		res, err := ref.ExecutePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	growSQL := `SELECT * FROM g WHERE g_oracle(x) = true ORACLE LIMIT 200
	 USING g_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				i := (g + iter) % len(plans)
				got, err := e.ExecutePlan(plans[i])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got.Tau != want[i].Tau || len(got.Indices) != len(want[i].Indices) {
					t.Errorf("goroutine %d query %d: tau %v / %d records, want %v / %d",
						g, i, got.Tau, len(got.Indices), want[i].Tau, len(want[i].Indices))
					return
				}
				for j := range want[i].Indices {
					if got.Indices[j] != want[i].Indices[j] {
						t.Errorf("goroutine %d query %d: record %d diverges", g, i, j)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent append + query traffic on the growing table exercises
	// index extension under the shared pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := randx.New(99)
		for iter := 0; iter < 4; iter++ {
			extra := dataset.Beta(r.Stream(uint64(iter)), 2000, 0.5, 1)
			if _, err := e.AppendTable("g", extra); err != nil {
				t.Errorf("append %d: %v", iter, err)
				return
			}
			if _, err := e.Execute(growSQL); err != nil {
				t.Errorf("growing-table query %d: %v", iter, err)
				return
			}
		}
	}()
	wg.Wait()

	// The stress must not have perturbed determinism: a final quiet
	// pass still matches the sequential reference.
	for i, plan := range plans {
		got, err := e.ExecutePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tau != want[i].Tau {
			t.Fatalf("post-stress query %d: tau %v, want %v", i, got.Tau, want[i].Tau)
		}
	}
}
