package engine

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

// fusedEngine returns an engine over one table with two registered
// proxy views of the same signal — the raw calibrated score and its
// square root — plus a counter of real oracle UDF invocations.
func fusedEngine(t testing.TB, opts Options) (*Engine, *dataset.Dataset, *atomic.Int64) {
	t.Helper()
	d := dataset.Beta(randx.New(3), 20000, 0.05, 1)
	e := NewWithOptions(42, opts)
	var udfCalls atomic.Int64
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	e.RegisterProxy("video_proxy_b", func(i int) float64 { return math.Sqrt(d.Score(i)) })
	e.RegisterOracle("video_oracle", func(i int) (bool, error) {
		udfCalls.Add(1)
		return d.TrueLabel(i), nil
	})
	return e, d, &udfCalls
}

const fusedMeanRT = `
SELECT * FROM video
WHERE video_oracle(frame) = true
ORACLE LIMIT 800
USING FUSE(mean, video_proxy(frame), video_proxy_b(frame))
RECALL TARGET 90%
WITH PROBABILITY 95%`

const fusedLogisticRT = `
SELECT * FROM video
WHERE video_oracle(frame) = true
ORACLE LIMIT 800
USING FUSE(logistic, video_proxy(frame), video_proxy_b(frame)) CALIBRATE 100
RECALL TARGET 90%
WITH PROBABILITY 95%`

func sameResult(t *testing.T, label string, a, b *QueryResult) {
	t.Helper()
	if !sameIndices(a.Indices, b.Indices) {
		t.Errorf("%s: indices differ (%d vs %d records)", label, len(a.Indices), len(b.Indices))
	}
	if a.Tau != b.Tau {
		t.Errorf("%s: tau %v vs %v", label, a.Tau, b.Tau)
	}
	if a.OracleCalls != b.OracleCalls {
		t.Errorf("%s: oracle calls %d vs %d", label, a.OracleCalls, b.OracleCalls)
	}
}

// TestFusedSingleMemberByteIdenticalToLegacy pins the refactor's
// degenerate case: a one-proxy FUSE(mean|max, p(col)) source is
// normalized to the classic single-proxy form, so it produces
// byte-identical Indices/Tau/OracleCalls to the legacy USING p(col)
// path — same plan text, same random stream, same index cache slot.
func TestFusedSingleMemberByteIdenticalToLegacy(t *testing.T) {
	legacySQL := `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 800
		USING video_proxy(frame)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`
	for _, kind := range []string{"mean", "max"} {
		fusedSQL := strings.Replace(legacySQL,
			"USING video_proxy(frame)",
			"USING FUSE("+kind+", video_proxy(frame))", 1)

		e1, _, _ := fusedEngine(t, Options{})
		legacy, err := e1.Execute(legacySQL)
		if err != nil {
			t.Fatal(err)
		}
		e2, _, _ := fusedEngine(t, Options{})
		fused, err := e2.Execute(fusedSQL)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, kind+" vs legacy (fresh engines)", legacy, fused)
		if fused.Fusion != "" {
			t.Errorf("%s: degenerate fused source reported fusion %q", kind, fused.Fusion)
		}

		// Same engine: the two spellings share one index cache slot.
		again, err := e1.Execute(fusedSQL)
		if err != nil {
			t.Fatal(err)
		}
		if again.IndexBuilt || again.ProxyCalls != 0 {
			t.Errorf("%s: degenerate FUSE rebuilt the index (built=%v proxyCalls=%d)", kind, again.IndexBuilt, again.ProxyCalls)
		}
		sameResult(t, kind+" cache-slot reuse", legacy, again)
	}
}

// TestFusedIndexCachedAcrossQueries asserts the second identical
// multi-proxy query rebuilds nothing — no proxy calls, no calibration
// — and returns byte-identical results (charged label reuse keeps the
// budget trace of the estimation phase identical too).
func TestFusedIndexCachedAcrossQueries(t *testing.T) {
	for _, sql := range []string{fusedMeanRT, fusedLogisticRT} {
		e, d, _ := fusedEngine(t, Options{})
		cold, err := e.Execute(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !cold.IndexBuilt {
			t.Fatal("first query did not build the fused index")
		}
		if cold.ProxyCalls != 2*d.Len() {
			t.Errorf("fused build proxy calls %d, want %d (2 members x %d records)", cold.ProxyCalls, 2*d.Len(), d.Len())
		}
		warm, err := e.Execute(sql)
		if err != nil {
			t.Fatal(err)
		}
		if warm.IndexBuilt || warm.ProxyCalls != 0 || warm.CalibrationCalls != 0 {
			t.Errorf("warm query rebuilt: built=%v proxy=%d calib=%d", warm.IndexBuilt, warm.ProxyCalls, warm.CalibrationCalls)
		}
		sameResult(t, "cold vs warm", cold, warm)
	}
}

// TestFusedStatsReporting checks the fusion metadata surfaced on the
// engine result: strategy name, calibration spend for logistic, zero
// calibration for label-free fusions.
func TestFusedStatsReporting(t *testing.T) {
	e, _, _ := fusedEngine(t, Options{})
	mean, err := e.Execute(fusedMeanRT)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Fusion != "mean" || mean.CalibrationCalls != 0 || mean.CalibrationCacheHits != 0 {
		t.Errorf("mean stats %q %d %d", mean.Fusion, mean.CalibrationCalls, mean.CalibrationCacheHits)
	}
	logi, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if logi.Fusion != "logistic" {
		t.Errorf("fusion %q", logi.Fusion)
	}
	if logi.CalibrationCalls != 100 {
		t.Errorf("calibration calls %d, want the CALIBRATE budget 100", logi.CalibrationCalls)
	}
	if logi.CalibrationCacheHits != 0 {
		t.Errorf("cold calibration reported %d store hits", logi.CalibrationCacheHits)
	}
}

// TestWarmLogisticCalibrationZeroUDFCalls is the acceptance pin for
// calibration label reuse: re-registering a member proxy drops the
// fused index but not the label store, so the rebuild recalibrates
// entirely from stored labels — zero inner oracle UDF calls — and
// returns byte-identical results.
func TestWarmLogisticCalibrationZeroUDFCalls(t *testing.T) {
	e, d, udfCalls := fusedEngine(t, Options{})
	cold, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	coldUDF := udfCalls.Load()
	if coldUDF == 0 {
		t.Fatal("cold run made no oracle UDF calls")
	}

	// Same functions, fresh registration: the fused index is dropped,
	// stored labels survive.
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })

	warm, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.IndexBuilt {
		t.Fatal("re-registration did not drop the fused index")
	}
	if got := udfCalls.Load() - coldUDF; got != 0 {
		t.Errorf("warm rebuild made %d oracle UDF calls, want 0", got)
	}
	if warm.CalibrationCalls != cold.CalibrationCalls {
		t.Errorf("warm calibration charged %d calls, cold charged %d", warm.CalibrationCalls, cold.CalibrationCalls)
	}
	if warm.CalibrationCacheHits != warm.CalibrationCalls {
		t.Errorf("warm calibration: %d of %d labels from the store", warm.CalibrationCacheHits, warm.CalibrationCalls)
	}
	sameResult(t, "cold vs warm rebuild", cold, warm)
}

// TestAppendExtendsFusedIndexIncrementally asserts a label-free fused
// index extends with only the appended records' proxy evaluations —
// and that the extended index answers identically to one built from
// scratch over the combined table.
func TestAppendExtendsFusedIndexIncrementally(t *testing.T) {
	full := dataset.Beta(randx.New(9), 24000, 0.05, 1)
	head, tail := full.Slice(0, 20000), full.Slice(20000, 24000)

	build := func(d *dataset.Dataset) *Engine {
		e := New(42)
		e.RegisterTable("video", d)
		e.RegisterProxy("video_proxy", func(i int) float64 { return full.Score(i) })
		e.RegisterProxy("video_proxy_b", func(i int) float64 { return math.Sqrt(full.Score(i)) })
		e.RegisterOracle("video_oracle", func(i int) (bool, error) { return full.TrueLabel(i), nil })
		return e
	}

	inc := build(head)
	if _, err := inc.Execute(fusedMeanRT); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AppendTable("video", tail); err != nil {
		t.Fatal(err)
	}
	after, err := inc.Execute(fusedMeanRT)
	if err != nil {
		t.Fatal(err)
	}
	if !after.IndexBuilt {
		t.Fatal("append did not republish the fused index entry")
	}
	if want := 2 * tail.Len(); after.ProxyCalls != want {
		t.Errorf("incremental extension cost %d proxy calls, want %d (members x appended only)", after.ProxyCalls, want)
	}

	fresh := build(full)
	scratch, err := fresh.Execute(fusedMeanRT)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "incremental vs from-scratch", scratch, after)
}

// TestAppendDropsCalibratedFusedIndex: appends change the population a
// logistic stacker is calibrated against, so the entry is dropped and
// the next query re-fuses the whole table (with warm labels).
func TestAppendDropsCalibratedFusedIndex(t *testing.T) {
	full := dataset.Beta(randx.New(11), 24000, 0.05, 1)
	head, tail := full.Slice(0, 20000), full.Slice(20000, 24000)

	// UDFs cover the full id range up front, so the append only has to
	// extend the table registration.
	e := New(42)
	e.RegisterTable("video", head)
	e.RegisterProxy("video_proxy", func(i int) float64 { return full.Score(i) })
	e.RegisterProxy("video_proxy_b", func(i int) float64 { return math.Sqrt(full.Score(i)) })
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return full.TrueLabel(i), nil })

	if _, err := e.Execute(fusedLogisticRT); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendTable("video", tail); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexBuilt {
		t.Fatal("logistic fused index survived an append")
	}
	if want := 2 * full.Len(); res.ProxyCalls != want {
		t.Errorf("rebuild cost %d proxy calls, want full re-fuse %d", res.ProxyCalls, want)
	}
	if res.CalibrationCalls == 0 {
		t.Error("rebuild skipped recalibration")
	}
}

// TestFusedInvalidation covers the invalidation matrix: any member
// proxy re-registration drops a fused index; oracle re-registration
// (and wrapping) drops calibrated fusions but spares label-free ones.
func TestFusedInvalidation(t *testing.T) {
	e, d, _ := fusedEngine(t, Options{})
	if _, err := e.Execute(fusedMeanRT); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(fusedLogisticRT); err != nil {
		t.Fatal(err)
	}

	// Oracle re-registration: logistic drops, mean survives.
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	mean, err := e.Execute(fusedMeanRT)
	if err != nil {
		t.Fatal(err)
	}
	if mean.IndexBuilt {
		t.Error("oracle re-registration dropped a label-free fused index")
	}
	logi, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if !logi.IndexBuilt {
		t.Error("oracle re-registration kept a calibrated fused index")
	}

	// Wrapping the oracle: same rule.
	if !e.WrapOracle("video_oracle", func(inner OracleUDF) OracleUDF { return inner }) {
		t.Fatal("WrapOracle lost the registration")
	}
	logi, err = e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if !logi.IndexBuilt {
		t.Error("oracle wrap kept a calibrated fused index")
	}

	// Re-registering the second member drops both fused indexes.
	e.RegisterProxy("video_proxy_b", func(i int) float64 { return math.Sqrt(d.Score(i)) })
	mean, err = e.Execute(fusedMeanRT)
	if err != nil {
		t.Fatal(err)
	}
	if !mean.IndexBuilt {
		t.Error("member proxy re-registration kept the mean fused index")
	}
}

// TestFusedLogisticWithLabelStoreDisabled: a disabled label store must
// not break calibration — the budgeted calibration oracle simply runs
// storeless. (Regression: the typed-nil *labelstore.Cache used to
// defeat WithStore's nil guard and panic the build goroutine.)
func TestFusedLogisticWithLabelStoreDisabled(t *testing.T) {
	e, _, udfCalls := fusedEngine(t, Options{LabelCacheBytes: -1})
	res, err := e.Execute(fusedLogisticRT)
	if err != nil {
		t.Fatal(err)
	}
	if res.CalibrationCalls != 100 || res.CalibrationCacheHits != 0 {
		t.Errorf("storeless calibration stats %d/%d", res.CalibrationCalls, res.CalibrationCacheHits)
	}
	if udfCalls.Load() == 0 {
		t.Error("no oracle UDF calls recorded")
	}
}

// TestFusedUnknownMemberProxy: every member must be registered.
func TestFusedUnknownMemberProxy(t *testing.T) {
	e, _, _ := fusedEngine(t, Options{})
	bad := strings.Replace(fusedMeanRT, "video_proxy_b", "mystery", 1)
	_, err := e.Execute(bad)
	if err == nil || !strings.Contains(err.Error(), `"mystery"`) {
		t.Fatalf("missing member proxy error = %v", err)
	}
}

// TestFusedJointQuery runs a fused joint-target plan end to end.
func TestFusedJointQuery(t *testing.T) {
	e, d, _ := fusedEngine(t, Options{})
	res, err := e.Execute(`
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		USING FUSE(logistic, video_proxy(frame), video_proxy_b(frame)) CALIBRATE 60
		RECALL TARGET 80%
		PRECISION TARGET 80%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fusion != "logistic" || res.CalibrationCalls != 60 {
		t.Errorf("joint fused stats %q %d", res.Fusion, res.CalibrationCalls)
	}
	if len(res.Indices) == 0 {
		t.Error("joint fused query returned nothing")
	}
	for _, i := range res.Indices {
		if i < 0 || i >= d.Len() {
			t.Fatalf("index %d out of range", i)
		}
	}
}
