package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/randx"
)

const ctxTestSQL = `SELECT * FROM beta WHERE beta_oracle(x) = true ` +
	`ORACLE LIMIT 300 USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

func newCtxTestEngine(t *testing.T, seed uint64) (*Engine, *dataset.Dataset) {
	t.Helper()
	d := dataset.Beta(randx.New(3), 20_000, 0.02, 2)
	e := New(seed)
	e.RegisterDatasetDefaults("beta", d)
	return e, d
}

func TestExecuteContextMatchesSequential(t *testing.T) {
	seq, _ := newCtxTestEngine(t, 1)
	want, err := seq.Execute(ctxTestSQL)
	if err != nil {
		t.Fatal(err)
	}

	par, _ := newCtxTestEngine(t, 1)
	var c metrics.Counters
	got, err := par.ExecuteContext(context.Background(), ctxTestSQL, ExecOptions{
		OracleParallelism: 8,
		Counters:          &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tau != want.Tau || got.OracleCalls != want.OracleCalls {
		t.Errorf("parallel tau/calls = %v/%d, want %v/%d", got.Tau, got.OracleCalls, want.Tau, want.OracleCalls)
	}
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("parallel returned %d indices, want %d", len(got.Indices), len(want.Indices))
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("index[%d] = %d, want %d", i, got.Indices[i], want.Indices[i])
		}
	}
	snap := c.Snapshot()
	if snap.Queries != 1 || snap.DispatchBatches == 0 {
		t.Errorf("counters = %+v, want 1 query and >0 dispatch batches", snap)
	}
}

func TestExecuteContextProgress(t *testing.T) {
	e, _ := newCtxTestEngine(t, 1)
	var last atomic.Int64
	res, err := e.ExecuteContext(context.Background(), ctxTestSQL, ExecOptions{
		OracleParallelism: 4,
		Progress:          func(n int) { last.Store(int64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(last.Load()) != res.OracleCalls {
		t.Errorf("final progress = %d, want %d oracle calls", last.Load(), res.OracleCalls)
	}
}

func TestExecuteContextCancelledBeforeStart(t *testing.T) {
	e, _ := newCtxTestEngine(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteContext(ctx, ctxTestSQL, ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExecuteContextCancelledMidQuery(t *testing.T) {
	d := dataset.Beta(randx.New(3), 20_000, 0.02, 2)
	e := New(1)
	e.RegisterTable("beta", d)
	e.RegisterProxy("beta_proxy", func(i int) float64 { return d.Score(i) })
	var calls atomic.Int64
	e.RegisterOracle("beta_oracle", func(i int) (bool, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return d.TrueLabel(i), nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.ExecuteContext(ctx, ctxTestSQL, ExecOptions{OracleParallelism: 2})
		done <- err
	}()
	// Let the query get into the labeling loop, then cancel.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settled := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != settled {
		t.Errorf("oracle consumption continued after cancellation: %d -> %d", settled, calls.Load())
	}
	if settled >= 300 {
		t.Errorf("cancellation did not stop mid-run: %d calls of budget 300", settled)
	}
}
