package engine

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// resilienceSQL are the three query families of the paper (recall
// target, precision target, joint) the chaos battery pins.
var resilienceSQL = map[string]string{
	"RT": `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 1000
		USING video_proxy(frame)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`,
	"PT": `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 1000
		USING video_proxy(frame)
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`,
	"JT": `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		USING video_proxy(frame)
		RECALL TARGET 80%
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`,
}

// registerVideo registers the test table with a plain (fault-free)
// oracle UDF over d's ground truth.
func registerVideo(e *Engine, d *dataset.Dataset) {
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return d.TrueLabel(i), nil })
}

// TestChaosEquivalence is the tentpole guarantee: with 30% of oracle
// attempts failing transiently, a query retried by the resilience
// layer returns Indices, Tau, and OracleCalls byte-identical to a
// fault-free run — faults change latency, never answers.
func TestChaosEquivalence(t *testing.T) {
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	for name, sql := range resilienceSQL {
		t.Run(name, func(t *testing.T) {
			base := NewWithOptions(42, Options{})
			registerVideo(base, d)
			want, err := base.Execute(sql)
			if err != nil {
				t.Fatal(err)
			}

			// 0.3^(1+retries) per-record exhaustion probability: with 24
			// retries it is ~3e-13 — deterministically zero failures for
			// any fixed seed that does not hit the bound, and this one
			// does not (the test would fail loudly if it did).
			chaotic := NewWithOptions(42, Options{
				OracleRetries: 24,
				OracleBackoff: time.Nanosecond,
			})
			chaotic.RegisterTable("video", d)
			chaotic.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
			chaos := oracle.NewChaos(
				oracle.Func(func(i int) (bool, error) { return d.TrueLabel(i), nil }),
				oracle.ChaosOptions{Seed: 7, FailureRate: 0.3},
			)
			chaotic.RegisterOracle("video_oracle", chaos.Label)

			var c metrics.Counters
			got, err := chaotic.ExecutePlanContextForTest(t, sql, &c)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIndices(got.Indices, want.Indices) {
				t.Fatalf("Indices diverged under chaos: %d vs %d records", len(got.Indices), len(want.Indices))
			}
			if got.Tau != want.Tau {
				t.Fatalf("Tau diverged: %v vs %v", got.Tau, want.Tau)
			}
			if got.OracleCalls != want.OracleCalls {
				t.Fatalf("OracleCalls diverged: %d vs %d", got.OracleCalls, want.OracleCalls)
			}
			injected, _ := chaos.Injected()
			if injected == 0 {
				t.Fatal("chaos injected nothing; the equivalence is vacuous")
			}
			if got := c.Snapshot().OracleRetries; got == 0 {
				t.Fatal("no retries recorded despite injected failures")
			}
			t.Logf("%s: %d injected transient failures, identical result", name, injected)
		})
	}
}

// ExecutePlanContextForTest executes sql with counters attached —
// a test shim keeping the chaos battery readable.
func (e *Engine) ExecutePlanContextForTest(t *testing.T, sql string, c *metrics.Counters) (*QueryResult, error) {
	t.Helper()
	return e.ExecuteContext(context.Background(), sql, ExecOptions{Counters: c})
}

// TestChaosEquivalenceParallelDispatch repeats the RT equivalence
// under parallel oracle dispatch: retries happen per failing record
// inside the dispatcher's workers, and the merged result is still
// byte-identical.
func TestChaosEquivalenceParallelDispatch(t *testing.T) {
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	base := NewWithOptions(42, Options{})
	registerVideo(base, d)
	want, err := base.Execute(resilienceSQL["RT"])
	if err != nil {
		t.Fatal(err)
	}

	chaotic := NewWithOptions(42, Options{OracleRetries: 24, OracleBackoff: time.Nanosecond})
	chaotic.RegisterTable("video", d)
	chaotic.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	chaos := oracle.NewChaos(
		oracle.Func(func(i int) (bool, error) { return d.TrueLabel(i), nil }),
		oracle.ChaosOptions{Seed: 3, FailureRate: 0.3},
	)
	chaotic.RegisterOracle("video_oracle", chaos.Label)
	got, err := chaotic.ExecuteContext(context.Background(), resilienceSQL["RT"], ExecOptions{
		OracleParallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndices(got.Indices, want.Indices) || got.Tau != want.Tau || got.OracleCalls != want.OracleCalls {
		t.Fatalf("parallel chaos run diverged: %d/%v/%d vs %d/%v/%d",
			len(got.Indices), got.Tau, got.OracleCalls, len(want.Indices), want.Tau, want.OracleCalls)
	}
}

// TestKillRestartZeroRebuy is the durability acceptance test: a query
// against a WAL-backed engine, then a simulated crash (new engine, same
// WAL), then the same query — which must make ZERO inner oracle UDF
// calls and return a byte-identical result.
func TestKillRestartZeroRebuy(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "labels.wal")
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	opts := Options{LabelWALPath: walPath}

	mk := func() (*Engine, *atomic.Int64) {
		e, err := Open(42, opts)
		if err != nil {
			t.Fatal(err)
		}
		var udfCalls atomic.Int64
		e.RegisterTable("video", d)
		e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
		e.RegisterOracle("video_oracle", func(i int) (bool, error) {
			udfCalls.Add(1)
			return d.TrueLabel(i), nil
		})
		return e, &udfCalls
	}

	for name, sql := range resilienceSQL {
		t.Run(name, func(t *testing.T) {
			e1, calls1 := mk()
			want, err := e1.Execute(sql)
			if err != nil {
				t.Fatal(err)
			}
			if calls1.Load() == 0 {
				t.Fatal("cold run made no oracle calls")
			}
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}

			// "Restart": a fresh engine process replays the WAL; the fresh
			// registrations must NOT invalidate the recovered labels.
			e2, calls2 := mk()
			defer e2.Close()
			if got := e2.LabelStore().Stats().WALReplayed; got == 0 {
				t.Fatal("nothing replayed from the WAL")
			}
			got, err := e2.Execute(sql)
			if err != nil {
				t.Fatal(err)
			}
			if n := calls2.Load(); n != 0 {
				t.Fatalf("warm run re-bought %d labels, want 0", n)
			}
			if !sameIndices(got.Indices, want.Indices) || got.Tau != want.Tau || got.OracleCalls != want.OracleCalls {
				t.Fatalf("post-restart result diverged")
			}
			if got.LabelCacheHits != got.OracleCalls {
				t.Fatalf("warm run: %d cache hits vs %d oracle calls, want equal", got.LabelCacheHits, got.OracleCalls)
			}
		})
	}
}

// TestRestartThenReRegistrationInvalidates pins the other half of the
// recovery contract: replayed labels survive the FIRST registration of
// a name after boot, but a SECOND (re-)registration still invalidates
// them — durably, via a journaled tombstone.
func TestRestartThenReRegistrationInvalidates(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "labels.wal")
	opts := Options{LabelWALPath: walPath}
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)

	e1, err := Open(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	registerVideo(e1, d)
	if _, err := e1.Execute(resilienceSQL["RT"]); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2, err := Open(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	registerVideo(e2, d)
	if e2.LabelStore().Len() == 0 {
		t.Fatal("labels did not survive first post-boot registration")
	}
	registerVideo(e2, d) // re-registration in-process: supersedes the labels
	if got := e2.LabelStore().Len(); got != 0 {
		t.Fatalf("labels survived re-registration: %d", got)
	}
	e2.Close()

	e3, err := Open(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if got := e3.LabelStore().Len(); got != 0 {
		t.Fatalf("tombstoned labels resurrected after restart: %d", got)
	}
}

// failAfterOracle succeeds for the first n calls, then fails
// transiently forever.
func failAfterOracle(d *dataset.Dataset, n int64) (OracleUDF, *atomic.Int64) {
	var calls atomic.Int64
	return func(i int) (bool, error) {
		if calls.Add(1) > n {
			return false, oracle.Transient(errors.New("backend down"))
		}
		return d.TrueLabel(i), nil
	}, &calls
}

// TestBreakerFailFastWithDiagnostic drives the graceful-degradation
// path end to end: an oracle that dies mid-query surfaces a typed
// ErrOracleUnavailable carrying the labels-folded-so-far count, repeated
// failures trip the shared breaker, and further queries fail fast.
func TestBreakerFailFastWithDiagnostic(t *testing.T) {
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	e := NewWithOptions(42, Options{
		OracleRetries:    1,
		OracleBackoff:    time.Nanosecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	udf, _ := failAfterOracle(d, 5)
	e.RegisterOracle("video_oracle", udf)

	for q := 0; q < 3; q++ {
		_, err := e.Execute(resilienceSQL["RT"])
		if !errors.Is(err, oracle.ErrOracleUnavailable) {
			t.Fatalf("query %d: err = %v, want ErrOracleUnavailable", q, err)
		}
		var ue *oracle.UnavailableError
		if !errors.As(err, &ue) {
			t.Fatalf("query %d: no UnavailableError in chain", q)
		}
		// The first query bought 5 labels before the outage; warm
		// repeats fold the same 5 from the label store.
		if ue.LabelsFolded != 5 {
			t.Fatalf("query %d: LabelsFolded = %d, want 5", q, ue.LabelsFolded)
		}
	}
	if got := e.OpenBreakers(); got != 1 {
		t.Fatalf("OpenBreakers = %d, want 1 after threshold failures", got)
	}
	if got := e.Breaker("video_oracle").State(); got != oracle.BreakerOpen {
		t.Fatalf("breaker state %v, want open", got)
	}

	// Fail-fast: the breaker refuses the call without touching the UDF.
	_, err := e.Execute(resilienceSQL["RT"])
	if !errors.Is(err, oracle.ErrOracleUnavailable) || !errors.Is(err, oracle.ErrBreakerOpen) {
		t.Fatalf("breaker-open query: err = %v, want breaker-open unavailable", err)
	}
}

// TestResilienceDisabledIsTransparent pins that the default Options
// add no wrapper: a failing oracle error propagates raw (no
// UnavailableError, no breaker).
func TestResilienceDisabledIsTransparent(t *testing.T) {
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	e := New(42)
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	raw := errors.New("plain failure")
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return false, raw })
	_, err := e.Execute(resilienceSQL["RT"])
	if err == nil || errors.Is(err, oracle.ErrOracleUnavailable) {
		t.Fatalf("err = %v, want the raw error", err)
	}
	if !errors.Is(err, raw) {
		t.Fatalf("err = %v does not wrap the raw failure", err)
	}
	if got := e.OpenBreakers(); got != 0 {
		t.Fatalf("OpenBreakers = %d without resilience", got)
	}
}
