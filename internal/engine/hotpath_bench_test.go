package engine

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"supg/internal/benchtool"
	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/oracle"
	"supg/internal/query"
	"supg/internal/randx"
)

// The hot-path benchmarks measure the cost of one SUPG query against an
// already-registered table at paper scale (n = 10^6, oracle budget
// 1000) — the production-server workload where many queries hit the
// same table. BenchmarkSelectHotPath runs the indexed engine path;
// BenchmarkSelectHotPathPreIndex reproduces the historical per-query
// pipeline (full proxy scan, validation, weight construction, alias
// build, map-based assembly) for comparison. Run with:
//
//	go test ./internal/engine -bench SelectHotPath -benchmem
//
// benchN scales down via SUPG_BENCH_N (the Makefile's bench smoke uses
// a reduced n so the CI trajectory gate diffs like against like).
var benchN = benchtool.N(1_000_000)

const benchBudget = 1000

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	return dataset.Beta(randx.New(1701), benchN, 0.01, 2)
}

func benchPlan(b *testing.B) *query.Plan {
	b.Helper()
	q, err := query.Parse(fmt.Sprintf(`
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT %d
		USING video_proxy(frame)
		RECALL TARGET 90%%
		WITH PROBABILITY 95%%`, benchBudget))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkSelectHotPath measures repeated queries against one
// registered table through the cached ScoreIndex.
func BenchmarkSelectHotPath(b *testing.B) {
	d := benchDataset(b)
	e := New(42)
	e.RegisterDatasetDefaults("video", d)
	plan := benchPlan(b)
	// Warm the index so the steady state is measured.
	if _, err := e.ExecutePlan(plan); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.ExecutePlan(plan)
		if err != nil {
			b.Fatal(err)
		}
		if res.IndexBuilt {
			b.Fatal("steady state rebuilt the index")
		}
	}
}

// BenchmarkSelectHotPathQuantized is BenchmarkSelectHotPath over a
// quantized index (engine Options.Quantize): identical query results,
// scans over 2-byte codes instead of 8-byte floats.
func BenchmarkSelectHotPathQuantized(b *testing.B) {
	d := benchDataset(b)
	e := NewWithOptions(42, Options{Quantize: true})
	e.RegisterDatasetDefaults("video", d)
	plan := benchPlan(b)
	if _, err := e.ExecutePlan(plan); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.ExecutePlan(plan)
		if err != nil {
			b.Fatal(err)
		}
		if res.IndexBuilt {
			b.Fatal("steady state rebuilt the index")
		}
	}
}

// BenchmarkSelectMixtureWarm measures the steady state the quantized
// index was built for: a spread score column (Beta(2,2), no dominant
// code bucket, so the 2-byte dense scan engages instead of tripping
// the skew guard the way benchDataset's Beta(0.01,2) column does) with
// the index and the defensive-mixture cache both warm. The float and
// quantized sub-runs answer identical queries; the quantized one reads
// 2 bytes per record in the threshold scan instead of 8, reported as
// scan-bytes/rec and visible in ns/op.
func BenchmarkSelectMixtureWarm(b *testing.B) {
	d := dataset.Beta(randx.New(2401), benchN, 2, 2)
	for _, quantize := range []bool{false, true} {
		name := "float"
		if quantize {
			name = "quantized"
		}
		b.Run(name, func(b *testing.B) {
			e := NewWithOptions(42, Options{Quantize: quantize})
			e.RegisterDatasetDefaults("video", d)
			plan := benchPlan(b)
			// Warm the index and the mixture/alias cache so the timed
			// region is pure select: sample, estimate, scan, assemble.
			if _, err := e.ExecutePlan(plan); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.ExecutePlan(plan)
				if err != nil {
					b.Fatal(err)
				}
				if res.IndexBuilt {
					b.Fatal("steady state rebuilt the index")
				}
			}
			entry, built, err := e.tableIndex(plan)
			if err != nil || built {
				b.Fatalf("warm index lookup: built=%v err=%v", built, err)
			}
			b.ReportMetric(float64(entry.res.ix.ScanBytesPerRecord()), "scan-bytes/rec")
		})
	}
}

// BenchmarkSelectHotPathPreIndex reproduces the historical per-query
// pipeline the ScoreIndex replaced: proxy scan over all n records,
// score validation, threshold estimation over the raw slice (fresh
// sort, defensive-mixture weights and alias table every query), and
// the map-plus-full-sort result assembly.
func BenchmarkSelectHotPathPreIndex(b *testing.B) {
	d := benchDataset(b)
	plan := benchPlan(b)
	proxyFn := func(i int) float64 { return d.Score(i) }
	rng := randx.New(42)
	orc := oracle.Func(func(i int) (bool, error) { return d.TrueLabel(i), nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := scoreAll(proxyFn, d.Len())
		for j, s := range scores {
			if s < 0 || s > 1 || s != s {
				b.Fatalf("score %g at %d", s, j)
			}
		}
		r := rng.Stream(hashString(plan.SourceText))
		budgeted := oracle.NewBudgeted(orc, plan.Spec.Budget)
		tr, err := core.EstimateTau(r, scores, budgeted, plan.Spec, plan.Config)
		if err != nil {
			b.Fatal(err)
		}
		// Historical assemble: an include-map over up to the whole
		// table followed by a full sort of the extracted keys.
		include := make(map[int]struct{})
		for j, lab := range tr.Labeled {
			if lab {
				include[j] = struct{}{}
			}
		}
		if !math.IsInf(tr.Tau, 1) {
			for j, s := range scores {
				if s >= tr.Tau {
					include[j] = struct{}{}
				}
			}
		}
		out := make([]int, 0, len(include))
		for j := range include {
			out = append(out, j)
		}
		sort.Ints(out)
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkIndexBuild prices the one-time cost the hot path amortizes:
// the full proxy scan plus ScoreIndex construction at n = 10^6.
func BenchmarkIndexBuild(b *testing.B) {
	d := benchDataset(b)
	plan := benchPlan(b)
	proxyFn := func(i int) float64 { return d.Score(i) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(42)
		e.RegisterTable("video", d)
		e.RegisterOracle("video_oracle", func(j int) (bool, error) { return d.TrueLabel(j), nil })
		e.RegisterProxy("video_proxy", proxyFn)
		entry, built, err := e.tableIndex(plan)
		if err != nil {
			b.Fatal(err)
		}
		if !built || entry.res.ix.Len() != d.Len() {
			b.Fatal("index not built")
		}
	}
}
