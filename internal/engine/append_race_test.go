package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"supg/internal/dataset"
	"supg/internal/query"
	"supg/internal/randx"
)

// TestConcurrentAppendQueryReregister is the torn-state stress test
// for the segmented index cache, meant to run under -race (CI does):
// queriers, an appender, and a re-registrar hammer one table
// concurrently. The invariants checked are the ones the publish-lock
// design promises:
//
//   - no data race (the race detector's job) and no panic;
//   - every successful query returns a sorted id list whose ids are
//     valid for SOME published table state (never beyond the largest
//     length ever registered or grown);
//   - appends never resurrect stale indexes: after the final append
//     settles, a query sees exactly the final table length.
func TestConcurrentAppendQueryReregister(t *testing.T) {
	const (
		baseN    = 4000
		appends  = 8
		appendN  = 500
		queriers = 4
	)
	base := dataset.Beta(randx.New(404), baseN, 0.01, 2)
	e := NewWithOptions(11, Options{SegmentSize: 512})
	e.RegisterDatasetDefaults("t", base)

	q, err := query.Parse(`SELECT * FROM t WHERE t_oracle(x) ORACLE LIMIT 200 USING t_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The largest id space any registration or append ever published;
	// results may lag behind the latest state but can never exceed it.
	maxLen := atomic.Int64{}
	maxLen.Store(baseN)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.ExecutePlan(plan)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !sort.IntsAreSorted(res.Indices) {
					t.Error("query returned unsorted indices")
					return
				}
				if n := len(res.Indices); n > 0 {
					if last := res.Indices[n-1]; int64(last) >= maxLen.Load() {
						t.Errorf("returned id %d beyond any published table length %d", last, maxLen.Load())
						return
					}
				}
			}
		}()
	}

	// The appender interleaves with a re-registrar resetting the table
	// to the base dataset (dropping every incremental entry).
	for i := 0; i < appends; i++ {
		extra := dataset.Beta(randx.New(uint64(1000+i)), appendN, 0.01, 2)
		if i == appends/2 {
			e.RegisterDatasetDefaults("t", base)
			maxLen.Store(int64(baseN + appends*appendN)) // conservative bound
		}
		combined, err := e.AppendTable("t", extra)
		if err != nil {
			t.Fatal(err)
		}
		for {
			cur := maxLen.Load()
			if int64(combined.Len()) <= cur || maxLen.CompareAndSwap(cur, int64(combined.Len())) {
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settled state: the next queries must see exactly the final table —
	// a stale pre-re-registration index would have a longer id space,
	// a dropped append a shorter one.
	finalLen := baseN + (appends-appends/2)*appendN
	res, err := e.ExecutePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	e.mu.RLock()
	got := e.tables["t"].Len()
	e.mu.RUnlock()
	if got != finalLen {
		t.Fatalf("settled table has %d records, want %d", got, finalLen)
	}
	for _, id := range res.Indices {
		if id < 0 || id >= finalLen {
			t.Fatalf("settled query returned id %d outside [0, %d)", id, finalLen)
		}
	}
}
