package engine

import (
	"fmt"
	"sort"
	"time"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/query"
	"supg/internal/storage"
)

// The durable storage tier (Options.PersistDir) hooks into the engine
// at four points:
//
//   - Open stages everything the storage tier recovered: datasets and
//     verified indexes wait in e.staged / e.stagedIx until the
//     registrations they depend on arrive.
//   - Registration either ADOPTS staged state (first registration of a
//     recovered name with identical content — loading, not
//     superseding, mirroring the label store's WAL semantics) or
//     durably drops and rewrites it.
//   - tableIndex flushes a freshly built index after publishing it,
//     outside the engine lock; a per-table epoch makes a flush that
//     raced an invalidation abandon itself instead of resurrecting
//     tombstoned state.
//   - Every invalidation site (table/proxy/oracle re-registration,
//     append-driven entry drops) tombstones the corresponding durable
//     record, so a restart can never resurrect state the process
//     dropped.
//
// All staged state is consumed at most once: a staged index either
// becomes the cache entry for its (table, source) — whole if lengths
// match, as the base of an append chain if the table grew — or is
// durably dropped the first time it is found unusable.

// stagedTable is a recovered dataset awaiting its first registration.
type stagedTable struct {
	ds  *dataset.Dataset
	crc uint32
}

// stagedIndex is a recovered, verified index awaiting the first query
// of its (table, source) after the member registrations return.
type stagedIndex struct {
	ix          *index.ScoreIndex
	proxies     []string
	fusion      query.FusionKind
	calibOracle string
}

func (si *stagedIndex) usesProxy(name string) bool {
	for _, p := range si.proxies {
		if p == name {
			return true
		}
	}
	return false
}

// matches reports whether the staged index's provenance is exactly the
// plan source's (defense in depth: the cache key already encodes it).
func (si *stagedIndex) matches(src query.ScoreSource) bool {
	if si.fusion != src.Fusion || len(si.proxies) != len(src.Proxies) {
		return false
	}
	for i, p := range si.proxies {
		if src.Proxies[i] != p {
			return false
		}
	}
	return true
}

// openStorage opens the persistence directory and stages its recovered
// state. Called from Open before the Engine is published.
func (e *Engine) openStorage(opts Options) error {
	if opts.PersistDir == "" {
		return nil
	}
	store, err := storage.Open(storage.Options{
		Dir:     opts.PersistDir,
		NoMmap:  opts.PersistNoMmap,
		Madvise: opts.PersistMadvise,
		Index:   e.ixOpts,
	})
	if err != nil {
		return err
	}
	e.store = store
	for _, rt := range store.RecoveredTables() {
		e.staged[rt.Name] = stagedTable{ds: rt.Dataset, crc: rt.CRC}
	}
	for _, ri := range store.RecoveredIndexes() {
		fusion, ok := fusionFromString(ri.Fusion)
		if !ok {
			store.DropIndex(ri.Table, ri.Source)
			continue
		}
		e.stagedIx[indexKey{table: ri.Table, source: ri.Source}] = &stagedIndex{
			ix:          ri.Index,
			proxies:     ri.Proxies,
			fusion:      fusion,
			calibOracle: ri.CalibOracle,
		}
	}
	return nil
}

// fusionFromString inverts query.FusionKind.String.
func fusionFromString(s string) (query.FusionKind, bool) {
	for _, k := range []query.FusionKind{query.FusionNone, query.FusionMean, query.FusionMax, query.FusionLogistic} {
		if k.String() == s {
			return k, true
		}
	}
	return query.FusionNone, false
}

// persistTableLocked records a table registration durably. The first
// registration of a recovered name with identical content (same
// dataset pointer, or same binary CRC) adopts the on-disk state — the
// files already describe exactly this dataset, and the staged indexes
// stay eligible. Anything else — a RE-registration, or different
// content — durably drops the old state (dataset, indexes, staged
// recoveries) and persists the new dataset. Callers hold e.mu.
func (e *Engine) persistTableLocked(name string, d *dataset.Dataset, existed bool) {
	if e.store == nil {
		return
	}
	if !existed {
		if st, ok := e.staged[name]; ok && (st.ds == d || storage.DatasetCRC(d) == st.crc) {
			delete(e.staged, name)
			return
		}
	}
	e.dropStagedTableLocked(name)
	e.store.DropTable(name)
	e.store.SaveDataset(name, d) // best-effort: a failed write degrades to rebuild-on-boot
}

// dropStagedTableLocked discards staged recoveries of a table (the
// durable records go with store.DropTable). Callers hold e.mu.
func (e *Engine) dropStagedTableLocked(name string) {
	delete(e.staged, name)
	for k := range e.stagedIx {
		if k.table == name {
			delete(e.stagedIx, k)
		}
	}
}

// dropIndexDurably tombstones one (table, source) index record and
// advances the table's epoch, so neither a restart nor an in-flight
// flush can resurrect it. Callers hold e.mu.
func (e *Engine) dropIndexDurably(k indexKey) {
	if e.store != nil {
		e.store.DropIndex(k.table, k.source)
	}
}

// persistDataset records a dataset's current content (AppendTable's
// grown snapshot) without touching index records: index lineages
// survive appends and flush their extended form after the next build.
// Callers hold e.mu.
func (e *Engine) persistDataset(name string, d *dataset.Dataset) {
	if e.store != nil {
		e.store.SaveDataset(name, d)
	}
}

// storeEpoch snapshots the table's invalidation epoch for a new cache
// entry (0 when persistence is off).
func (e *Engine) storeEpoch(table string) uint64 {
	if e.store == nil {
		return 0
	}
	return e.store.Epoch(table)
}

// adoptStagedLocked consumes a staged recovered index for key, if one
// exists and is usable against the current table and source. It
// returns a build closure (plus the recovered flag) or nil to build
// from scratch. Callers hold e.mu; fns are the snapshotted member
// proxies of the source.
func (e *Engine) adoptStagedLocked(key indexKey, src query.ScoreSource, table *dataset.Dataset, fns []ProxyUDF) func() (built, error) {
	if e.store == nil {
		return nil
	}
	si, ok := e.stagedIx[key]
	if !ok {
		return nil
	}
	delete(e.stagedIx, key) // consumed either way
	if !si.matches(src) || si.ix.Len() > table.Len() {
		e.dropIndexDurably(key)
		return nil
	}
	if si.ix.Len() == table.Len() {
		// Whole-index adoption: zero proxy calls, zero sorts — the
		// verified on-disk permutation answers queries byte-identically.
		ix := si.ix
		return func() (built, error) { return built{ix: ix}, nil }
	}
	// The table grew (AppendTable, or a larger upload adopted by CRC —
	// impossible, so: appends) since the index was flushed. Label-free
	// sources extend incrementally: score only the tail and append it
	// as fresh segments, exactly like an in-process append. Calibrated
	// fusions must recalibrate against the grown population — drop.
	if src.Fusion.Calibrated() {
		e.dropIndexDurably(key)
		return nil
	}
	base, fusion := si.ix, src.Fusion
	lo, hi, source := base.Len(), table.Len(), key.source
	return func() (built, error) {
		fresh, err := fuseRange(fns, fusion, lo, hi)
		if err != nil {
			return built{}, fmt.Errorf("engine: source %q: %w", source, err)
		}
		b := built{proxyCalls: len(fns) * (hi - lo)}
		ix, err := base.Append(fresh)
		if err != nil {
			return b, fmt.Errorf("engine: source %q: %w", source, err)
		}
		b.ix = ix
		return b, nil
	}
}

// persistIndex flushes a just-built index to the durable store. Runs
// without e.mu (column and segment writes are the expensive part); the
// epoch captured at entry creation makes a flush that lost a race with
// an invalidation abandon itself (ErrSuperseded) instead of
// resurrecting dropped state. A fully-recovered entry skips the flush:
// its on-disk form is already exact.
func (e *Engine) persistIndex(key indexKey, entry *indexEntry) {
	if e.store == nil || entry.err != nil || entry.res.ix == nil {
		return
	}
	if entry.recovered && entry.res.proxyCalls == 0 {
		return
	}
	meta := storage.IndexMeta{
		Table:       key.table,
		Source:      key.source,
		Fusion:      entry.fusion.String(),
		CalibOracle: entry.calibOracle,
		Proxies:     entry.proxies,
	}
	// Best-effort: ErrSuperseded means an invalidation won the race
	// (correct outcome), any other failure just costs a rebuild on the
	// next boot.
	e.store.SaveIndex(meta, entry.res.ix, entry.epoch)
}

// RecoveryInfo summarizes what the durable storage tier restored at
// Open — for the server's boot banner and tests.
type RecoveryInfo struct {
	// Tables / Indexes / Segments restored, verified, and staged.
	Tables   int
	Indexes  int
	Segments int
	// MappedBytes is the total size of persisted files currently
	// mmap'd into the process (0 on heap-load platforms or with
	// PersistNoMmap).
	MappedBytes int64
	// Elapsed is the wall-clock recovery duration.
	Elapsed time.Duration
	// Degraded lists manifest entries that could not be served
	// (corrupt or torn files) and were dropped in favor of a rebuild.
	Degraded []string
}

// RecoveryInfo reports the storage tier's boot-time recovery outcome;
// ok is false when no persistence directory is configured.
func (e *Engine) RecoveryInfo() (RecoveryInfo, bool) {
	if e == nil || e.store == nil {
		return RecoveryInfo{}, false
	}
	st := e.store.Stats()
	return RecoveryInfo{
		Tables:      st.TablesRecovered,
		Indexes:     st.IndexesRecovered,
		Segments:    st.SegmentsRecovered,
		MappedBytes: st.MappedBytes,
		Elapsed:     st.RecoveryElapsed,
		Degraded:    st.Degraded,
	}, true
}

// RecoveredDatasets returns the recovered datasets still awaiting
// their first registration, sorted by name. Registering one of them
// (same pointer or identical content) adopts the on-disk state instead
// of rewriting it — the hook servers use to re-offer recovered tables
// automatically.
func (e *Engine) RecoveredDatasets() []*dataset.Dataset {
	if e == nil || e.store == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*dataset.Dataset, 0, len(e.staged))
	for _, st := range e.staged {
		out = append(out, st.ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Storage exposes the engine's durable store (nil when persistence is
// off) — for stats and tests.
func (e *Engine) Storage() *storage.Store { return e.store }
