package engine

import (
	"testing"
)

// BenchmarkLabelStoreWarmQuery measures repeated identical queries
// against a warm label store and reports the oracle-UDF call counts:
// the cold run pays the full budget in real oracle calls, every warm
// iteration pays zero (the store answers), which is the whole point of
// cross-query label reuse — see `make bench-labelstore`.
func BenchmarkLabelStoreWarmQuery(b *testing.B) { //supg:benchhygiene-ok trailing StopTimer excludes the metric math from the timed region; no StartTimer follows by design
	e, _, udfCalls := countedEngine(b, Options{})
	if _, err := e.Execute(engineRT); err != nil {
		b.Fatal(err)
	}
	cold := udfCalls.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(engineRT); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	warm := udfCalls.Load() - cold
	b.ReportMetric(float64(cold), "cold-oracle-calls")
	b.ReportMetric(float64(warm)/float64(b.N), "warm-oracle-calls/op")
}

// BenchmarkLabelStoreDisabled is the storeless baseline: every
// iteration re-buys the full oracle budget.
func BenchmarkLabelStoreDisabled(b *testing.B) { //supg:benchhygiene-ok trailing StopTimer excludes the metric math from the timed region; no StartTimer follows by design
	e, _, udfCalls := countedEngine(b, Options{LabelCacheBytes: -1})
	if _, err := e.Execute(engineRT); err != nil {
		b.Fatal(err)
	}
	before := udfCalls.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(engineRT); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(udfCalls.Load()-before) / float64(b.N)
	b.ReportMetric(perOp, "oracle-calls/op")
}
