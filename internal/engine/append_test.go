package engine

import (
	"strings"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

const appendTestSQL = `SELECT * FROM t WHERE t_oracle(x) ORACLE LIMIT 500 USING t_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%`

func betaPair(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	base := dataset.Beta(randx.New(61), 30000, 0.01, 2)
	extra := dataset.Beta(randx.New(62), 10000, 0.01, 2)
	return base, extra
}

// TestAppendTableMatchesFreshRegistration: a table grown by AppendTable
// must answer queries byte-identically to a fresh engine registered
// with the combined dataset — the guarantees are a function of the
// data, not of how it arrived.
func TestAppendTableMatchesFreshRegistration(t *testing.T) {
	base, extra := betaPair(t)

	grown := NewWithOptions(7, Options{SegmentSize: 4096})
	grown.RegisterDatasetDefaults("t", base)
	if _, err := grown.Execute(appendTestSQL); err != nil {
		t.Fatal(err)
	}
	combined, err := grown.AppendTable("t", extra)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Len() != base.Len()+extra.Len() {
		t.Fatalf("combined has %d records, want %d", combined.Len(), base.Len()+extra.Len())
	}
	grownRes, err := grown.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !grownRes.IndexBuilt {
		t.Fatal("first query after append must extend the index")
	}
	if grownRes.ProxyCalls != extra.Len() {
		t.Fatalf("append path evaluated the proxy %d times, want only the %d appended records",
			grownRes.ProxyCalls, extra.Len())
	}

	fresh := NewWithOptions(7, Options{SegmentSize: 4096})
	fresh.RegisterDatasetDefaults("t", base.Append(extra))
	freshRes, err := fresh.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if grownRes.Tau != freshRes.Tau {
		t.Fatalf("tau %v (append) vs %v (fresh)", grownRes.Tau, freshRes.Tau)
	}
	if grownRes.OracleCalls != freshRes.OracleCalls {
		t.Fatalf("oracle calls %d vs %d", grownRes.OracleCalls, freshRes.OracleCalls)
	}
	if len(grownRes.Indices) != len(freshRes.Indices) {
		t.Fatalf("%d records (append) vs %d (fresh)", len(grownRes.Indices), len(freshRes.Indices))
	}
	for i := range freshRes.Indices {
		if grownRes.Indices[i] != freshRes.Indices[i] {
			t.Fatalf("record %d differs: %d vs %d", i, grownRes.Indices[i], freshRes.Indices[i])
		}
	}

	// Steady state after the extension: cache hit, no proxy work.
	again, err := grown.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if again.IndexBuilt || again.ProxyCalls != 0 {
		t.Fatalf("post-append steady state: IndexBuilt=%v ProxyCalls=%d, want cache hit", again.IndexBuilt, again.ProxyCalls)
	}
}

// TestAppendTableBeforeFirstQuery: appending to a never-queried table
// charges the first query for the full combined scan — base through
// the parent entry, extra through the append entry.
func TestAppendTableBeforeFirstQuery(t *testing.T) {
	base, extra := betaPair(t)
	e := New(7)
	e.RegisterDatasetDefaults("t", base)
	if _, err := e.AppendTable("t", extra); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexBuilt || res.ProxyCalls != base.Len()+extra.Len() {
		t.Fatalf("IndexBuilt=%v ProxyCalls=%d, want full %d-record build",
			res.IndexBuilt, res.ProxyCalls, base.Len()+extra.Len())
	}
}

// TestAppendTableChained: several appends before the next query chain
// incremental entries; the query pays for exactly the un-indexed tail.
func TestAppendTableChained(t *testing.T) {
	base, extra := betaPair(t)
	e := New(7)
	e.RegisterDatasetDefaults("t", base)
	if _, err := e.Execute(appendTestSQL); err != nil {
		t.Fatal(err)
	}
	half := extra.Len() / 2
	first, second := extra.Slice(0, half), extra.Slice(half, extra.Len())
	if _, err := e.AppendTable("t", first); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendTable("t", second); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexBuilt || res.ProxyCalls != extra.Len() {
		t.Fatalf("IndexBuilt=%v ProxyCalls=%d, want the %d appended records only",
			res.IndexBuilt, res.ProxyCalls, extra.Len())
	}
}

// TestAppendTableErrors covers the input contract: unknown tables and
// empty appends are rejected.
func TestAppendTableErrors(t *testing.T) {
	base, extra := betaPair(t)
	e := New(1)
	if _, err := e.AppendTable("missing", extra); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("appending to unknown table: err = %v", err)
	}
	e.RegisterDatasetDefaults("t", base)
	if _, err := e.AppendTable("t", nil); err == nil {
		t.Fatal("nil append must be rejected")
	}
}

// TestReregistrationAfterAppendRebuildsFully: re-registering the
// table after appends must drop every incremental entry — the next
// query rebuilds from the new registration, never from stale segments.
func TestReregistrationAfterAppendRebuildsFully(t *testing.T) {
	base, extra := betaPair(t)
	e := New(7)
	e.RegisterDatasetDefaults("t", base)
	if _, err := e.Execute(appendTestSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendTable("t", extra); err != nil {
		t.Fatal(err)
	}
	d2 := dataset.Beta(randx.New(99), 5000, 1, 1)
	e.RegisterDatasetDefaults("t", d2)
	res, err := e.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexBuilt || res.ProxyCalls != d2.Len() {
		t.Fatalf("IndexBuilt=%v ProxyCalls=%d, want a %d-record rebuild from the new registration",
			res.IndexBuilt, res.ProxyCalls, d2.Len())
	}
}
