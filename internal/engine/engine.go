// Package engine executes SUPG query plans against registered datasets
// and user-defined oracle / proxy functions, mirroring the operational
// architecture of the paper's Section 4.1: a batch query system where
// the user supplies the oracle and proxy as callbacks, the proxy is
// evaluated over the complete dataset up front (it is cheap), and the
// oracle is sampled under the budget.
//
// The proxy scan and everything derived from it are amortized across
// queries: the first query of a (table, proxy) pair evaluates the proxy
// over all records and builds an immutable index.ScoreIndex (validated
// scores, sorted permutation, cached sampling structures); subsequent
// queries — including concurrent ones — reuse it, so their cost is
// O(oracle budget + |result|) rather than O(n log n) per query.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/query"
	"supg/internal/randx"
)

// OracleUDF is a user-provided ground-truth predicate over record ids.
type OracleUDF func(record int) (bool, error)

// ProxyUDF is a user-provided proxy scorer over record ids; scores must
// be in [0, 1].
type ProxyUDF func(record int) float64

// indexKey identifies one cached per-table proxy index.
type indexKey struct {
	table string
	proxy string
}

// indexEntry is a lazily-built, shared ScoreIndex. The sync.Once makes
// concurrent first queries of the same (table, proxy) pair build the
// index exactly once while the others wait for it. The table and proxy
// are snapshotted under the same lock that publishes the entry into the
// cache, so an entry can never be built from registrations older than
// the ones its cache slot represents (a later re-registration deletes
// the slot, and the next query snapshots fresh state).
type indexEntry struct {
	table *dataset.Dataset
	proxy ProxyUDF

	once    sync.Once
	ix      *index.ScoreIndex
	err     error
	elapsed time.Duration // wall time of the proxy scan + index build
}

// Engine holds the catalog of tables, the UDF registry, and the cache
// of per-(table, proxy) score indexes.
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*dataset.Dataset
	oracles map[string]OracleUDF
	proxies map[string]ProxyUDF
	indexes map[indexKey]*indexEntry
	seed    uint64
}

// New returns an empty engine whose query randomness derives from seed.
func New(seed uint64) *Engine {
	return &Engine{
		tables:  make(map[string]*dataset.Dataset),
		oracles: make(map[string]OracleUDF),
		proxies: make(map[string]ProxyUDF),
		indexes: make(map[indexKey]*indexEntry),
		seed:    seed,
	}
}

// RegisterTable adds a dataset under the given table name, invalidating
// any cached indexes built over a previous registration of the name.
func (e *Engine) RegisterTable(name string, d *dataset.Dataset) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[name] = d
	for k := range e.indexes {
		if k.table == name {
			delete(e.indexes, k)
		}
	}
}

// RegisterOracle adds an oracle UDF under the given function name.
func (e *Engine) RegisterOracle(name string, fn OracleUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.oracles[name] = fn
}

// RegisterProxy adds a proxy UDF under the given function name,
// invalidating any cached indexes built from a previous registration.
func (e *Engine) RegisterProxy(name string, fn ProxyUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.proxies[name] = fn
	for k := range e.indexes {
		if k.proxy == name {
			delete(e.indexes, k)
		}
	}
}

// WrapOracle replaces a registered oracle UDF with wrap(current) — the
// hook for layering simulated latency or instrumentation onto an
// existing registration without re-implementing it. It reports whether
// the name was registered.
func (e *Engine) WrapOracle(name string, wrap func(OracleUDF) OracleUDF) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn, ok := e.oracles[name]
	if !ok {
		return false
	}
	e.oracles[name] = wrap(fn)
	return true
}

// RegisterDatasetDefaults registers table name plus "<name>_oracle" and
// "<name>_proxy" UDFs backed by the dataset's own labels and scores —
// the common simulation path.
func (e *Engine) RegisterDatasetDefaults(name string, d *dataset.Dataset) {
	e.RegisterTable(name, d)
	e.RegisterOracle(name+"_oracle", func(i int) (bool, error) {
		if i < 0 || i >= d.Len() {
			return false, fmt.Errorf("engine: record %d out of range", i)
		}
		return d.TrueLabel(i), nil
	})
	e.RegisterProxy(name+"_proxy", func(i int) float64 { return d.Score(i) })
}

// QueryResult is the engine-level answer with execution statistics.
type QueryResult struct {
	// Indices is the sorted returned record set.
	Indices []int
	// Tau is the chosen proxy threshold (Inf = sample positives only).
	Tau float64
	// OracleCalls counts budget-consuming oracle invocations.
	OracleCalls int
	// ProxyCalls counts proxy evaluations performed by this query: |D|
	// when the query built the table's score index, 0 when a cached
	// index was reused.
	ProxyCalls int
	// IndexBuilt reports whether this query performed the proxy scan
	// and index construction (the first query of a table/proxy pair).
	IndexBuilt bool
	// Elapsed covers planning through result assembly.
	Elapsed time.Duration
	// ProxyElapsed covers the upfront proxy scan and index build when
	// this query performed it (see IndexBuilt).
	ProxyElapsed time.Duration
	// Plan echoes the executed plan.
	Plan *query.Plan
}

// ExecOptions tune one query execution. The zero value runs the query
// synchronously with a sequential oracle, exactly as ExecutePlan always
// has.
type ExecOptions struct {
	// OracleParallelism bounds the number of concurrent oracle UDF
	// invocations per labeling batch (<= 1 labels sequentially). The
	// oracle UDF must be goroutine-safe when parallelism > 1. Results
	// are independent of the setting: draws are made before labeling,
	// and batch labels are merged back in draw order.
	OracleParallelism int
	// Progress, when non-nil, receives the cumulative count of
	// budget-consuming oracle calls as the query runs. It may be invoked
	// from multiple goroutines concurrently (under parallel dispatch)
	// and must be fast and goroutine-safe.
	Progress func(oracleCalls int)
	// Counters, when non-nil, records query and dispatch activity.
	Counters *metrics.Counters
}

// Execute parses, plans, and runs a SUPG statement.
func (e *Engine) Execute(sql string) (*QueryResult, error) {
	return e.ExecuteContext(context.Background(), sql, ExecOptions{})
}

// ExecuteContext parses, plans, and runs a SUPG statement with
// cancellation, oracle parallelism, and progress reporting.
func (e *Engine) ExecuteContext(ctx context.Context, sql string, opts ExecOptions) (*QueryResult, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return e.ExecutePlanContext(ctx, plan, opts)
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(plan *query.Plan) (*QueryResult, error) {
	return e.ExecutePlanContext(context.Background(), plan, ExecOptions{})
}

// ExecutePlanContext runs an already-built plan under ctx: once ctx is
// done the query stops consuming oracle calls and returns ctx's error.
// See ExecOptions for parallel oracle dispatch and progress reporting.
func (e *Engine) ExecutePlanContext(ctx context.Context, plan *query.Plan, opts ExecOptions) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	_, okT := e.tables[plan.Table]
	oracleFn, okO := e.oracles[plan.OracleUDF]
	_, okP := e.proxies[plan.ProxyUDF]
	seed := e.seed
	e.mu.RUnlock()

	if !okT {
		return nil, fmt.Errorf("engine: unknown table %q (known: %v)", plan.Table, e.tableNames())
	}
	if !okO {
		return nil, fmt.Errorf("engine: unknown oracle UDF %q", plan.OracleUDF)
	}
	if !okP {
		return nil, fmt.Errorf("engine: unknown proxy UDF %q", plan.ProxyUDF)
	}

	start := time.Now()
	// Stage 1 (§4.1): the proxy scan over the complete set of records,
	// performed once per (table, proxy) registration and indexed.
	entry, built, err := e.tableIndex(plan)
	if err != nil {
		return nil, err
	}

	rng := randx.New(seed).Stream(hashString(plan.SourceText))
	orc := buildOracle(oracleFn, opts)
	opts.Counters.QueryExecuted()

	res := &QueryResult{Plan: plan, IndexBuilt: built}
	if built {
		res.ProxyCalls = entry.ix.Len()
		res.ProxyElapsed = entry.elapsed
	}
	switch plan.Kind {
	case query.PlanBudgeted:
		sel, err := core.SelectFromContext(ctx, rng, entry.ix, orc, plan.Spec, plan.Config)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
	case query.PlanJoint:
		sel, err := core.SelectJointFromContext(ctx, rng, entry.ix, orc, plan.JointSpec, plan.Config)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", int(plan.Kind))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildOracle stacks the execution options onto the raw oracle UDF:
// a progress-counting wrapper (innermost, so every real invocation is
// observed) and, when parallelism is requested, a batch dispatcher that
// overlaps oracle latency across goroutines.
func buildOracle(fn OracleUDF, opts ExecOptions) oracle.Oracle {
	var orc oracle.Oracle = oracle.Func(fn)
	if opts.Progress != nil {
		orc = &countingOracle{inner: orc, hook: opts.Progress}
	}
	if opts.OracleParallelism > 1 {
		orc = oracle.NewDispatcher(orc, opts.OracleParallelism).WithCounters(opts.Counters)
	}
	return orc
}

// countingOracle reports the cumulative number of successful oracle
// invocations to a progress hook. It sits below the budget wrapper, so
// every counted call is budget-consuming (memoized repeats never reach
// it), and below the dispatcher, so counts arrive as calls complete.
type countingOracle struct {
	inner oracle.Oracle
	calls atomic.Int64
	hook  func(int)
}

func (c *countingOracle) Label(i int) (bool, error) {
	v, err := c.inner.Label(i)
	if err == nil {
		c.hook(int(c.calls.Add(1)))
	}
	return v, err
}

// tableIndex returns the shared ScoreIndex for the plan's (table,
// proxy) pair, building it on first use. The second return reports
// whether this call performed the build. The current table and proxy
// registrations are captured under the write lock that publishes the
// entry, so a concurrent re-registration either deletes the slot
// before publication (the build sees the new state) or after (the
// slot is gone and the next query snapshots afresh) — a cached index
// can never outlive the registrations it was built from. A build
// error is cached with the entry — the proxy is deterministic by
// contract, so retrying cannot succeed until the table or proxy is
// re-registered (which drops the entry).
func (e *Engine) tableIndex(plan *query.Plan) (*indexEntry, bool, error) {
	key := indexKey{table: plan.Table, proxy: plan.ProxyUDF}
	e.mu.RLock()
	entry := e.indexes[key]
	e.mu.RUnlock()
	if entry == nil {
		e.mu.Lock()
		entry = e.indexes[key]
		if entry == nil {
			table, okT := e.tables[plan.Table]
			proxyFn, okP := e.proxies[plan.ProxyUDF]
			if !okT || !okP {
				e.mu.Unlock()
				return nil, false, fmt.Errorf("engine: table %q / proxy %q no longer registered", plan.Table, plan.ProxyUDF)
			}
			entry = &indexEntry{table: table, proxy: proxyFn}
			e.indexes[key] = entry
		}
		e.mu.Unlock()
	}
	built := false
	entry.once.Do(func() {
		built = true
		buildStart := time.Now()
		scores := scoreAll(entry.proxy, entry.table.Len())
		ix, err := index.New(scores)
		if err != nil {
			entry.err = fmt.Errorf("engine: proxy %q: %w", plan.ProxyUDF, err)
			return
		}
		entry.ix = ix
		entry.elapsed = time.Since(buildStart)
	})
	if entry.err != nil {
		return nil, built, entry.err
	}
	return entry, built, nil
}

// scoreAll evaluates the proxy over all records, in parallel shards.
func scoreAll(proxyFn ProxyUDF, n int) []float64 {
	scores := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				scores[i] = proxyFn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return scores
}

func (e *Engine) tableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashString is FNV-1a, used to derive per-query random streams.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
