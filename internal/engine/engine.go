// Package engine executes SUPG query plans against registered datasets
// and user-defined oracle / proxy functions, mirroring the operational
// architecture of the paper's Section 4.1: a batch query system where
// the user supplies the oracle and proxy as callbacks, the proxy is
// evaluated over the complete dataset up front (it is cheap), and the
// oracle is sampled under the budget.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/oracle"
	"supg/internal/query"
	"supg/internal/randx"
)

// OracleUDF is a user-provided ground-truth predicate over record ids.
type OracleUDF func(record int) (bool, error)

// ProxyUDF is a user-provided proxy scorer over record ids; scores must
// be in [0, 1].
type ProxyUDF func(record int) float64

// Engine holds the catalog of tables and the UDF registry.
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*dataset.Dataset
	oracles map[string]OracleUDF
	proxies map[string]ProxyUDF
	seed    uint64
}

// New returns an empty engine whose query randomness derives from seed.
func New(seed uint64) *Engine {
	return &Engine{
		tables:  make(map[string]*dataset.Dataset),
		oracles: make(map[string]OracleUDF),
		proxies: make(map[string]ProxyUDF),
		seed:    seed,
	}
}

// RegisterTable adds a dataset under the given table name.
func (e *Engine) RegisterTable(name string, d *dataset.Dataset) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[name] = d
}

// RegisterOracle adds an oracle UDF under the given function name.
func (e *Engine) RegisterOracle(name string, fn OracleUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.oracles[name] = fn
}

// RegisterProxy adds a proxy UDF under the given function name.
func (e *Engine) RegisterProxy(name string, fn ProxyUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.proxies[name] = fn
}

// RegisterDatasetDefaults registers table name plus "<name>_oracle" and
// "<name>_proxy" UDFs backed by the dataset's own labels and scores —
// the common simulation path.
func (e *Engine) RegisterDatasetDefaults(name string, d *dataset.Dataset) {
	e.RegisterTable(name, d)
	e.RegisterOracle(name+"_oracle", func(i int) (bool, error) {
		if i < 0 || i >= d.Len() {
			return false, fmt.Errorf("engine: record %d out of range", i)
		}
		return d.TrueLabel(i), nil
	})
	e.RegisterProxy(name+"_proxy", func(i int) float64 { return d.Score(i) })
}

// QueryResult is the engine-level answer with execution statistics.
type QueryResult struct {
	// Indices is the sorted returned record set.
	Indices []int
	// Tau is the chosen proxy threshold (Inf = sample positives only).
	Tau float64
	// OracleCalls counts budget-consuming oracle invocations.
	OracleCalls int
	// ProxyCalls counts proxy evaluations (|D| by design).
	ProxyCalls int
	// Elapsed covers planning through result assembly.
	Elapsed time.Duration
	// ProxyElapsed covers the upfront proxy scan.
	ProxyElapsed time.Duration
	// Plan echoes the executed plan.
	Plan *query.Plan
}

// Execute parses, plans, and runs a SUPG statement.
func (e *Engine) Execute(sql string) (*QueryResult, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(plan)
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(plan *query.Plan) (*QueryResult, error) {
	e.mu.RLock()
	table, okT := e.tables[plan.Table]
	oracleFn, okO := e.oracles[plan.OracleUDF]
	proxyFn, okP := e.proxies[plan.ProxyUDF]
	seed := e.seed
	e.mu.RUnlock()

	if !okT {
		return nil, fmt.Errorf("engine: unknown table %q (known: %v)", plan.Table, e.tableNames())
	}
	if !okO {
		return nil, fmt.Errorf("engine: unknown oracle UDF %q", plan.OracleUDF)
	}
	if !okP {
		return nil, fmt.Errorf("engine: unknown proxy UDF %q", plan.ProxyUDF)
	}

	start := time.Now()
	// Stage 1 (§4.1): run the proxy over the complete set of records.
	scores, proxyElapsed := scoreAll(proxyFn, table.Len())
	for i, s := range scores {
		if s < 0 || s > 1 || s != s {
			return nil, fmt.Errorf("engine: proxy %q returned score %g for record %d, outside [0,1]", plan.ProxyUDF, s, i)
		}
	}

	rng := randx.New(seed).Stream(hashString(plan.SourceText))
	orc := oracle.Func(oracleFn)

	res := &QueryResult{ProxyCalls: table.Len(), ProxyElapsed: proxyElapsed, Plan: plan}
	switch plan.Kind {
	case query.PlanBudgeted:
		sel, err := core.Select(rng, scores, orc, plan.Spec, plan.Config)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
	case query.PlanJoint:
		sel, err := core.SelectJoint(rng, scores, orc, plan.JointSpec, plan.Config)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", int(plan.Kind))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// scoreAll evaluates the proxy over all records, in parallel shards.
func scoreAll(proxyFn ProxyUDF, n int) ([]float64, time.Duration) {
	start := time.Now()
	scores := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				scores[i] = proxyFn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return scores, time.Since(start)
}

func (e *Engine) tableNames() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashString is FNV-1a, used to derive per-query random streams.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
