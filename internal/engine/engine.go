// Package engine executes SUPG query plans against registered datasets
// and user-defined oracle / proxy functions, mirroring the operational
// architecture of the paper's Section 4.1: a batch query system where
// the user supplies the oracle and proxy as callbacks, the proxy is
// evaluated over the complete dataset up front (it is cheap), and the
// oracle is sampled under the budget.
//
// The proxy scan and everything derived from it are amortized across
// queries: the first query of a (table, proxy) pair evaluates the proxy
// over all records and builds an immutable index.ScoreIndex (validated
// scores, sorted permutation, cached sampling structures); subsequent
// queries — including concurrent ones — reuse it, so their cost is
// O(oracle budget + |result|) rather than O(n log n) per query.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/labelstore"
	"supg/internal/metrics"
	"supg/internal/multiproxy"
	"supg/internal/oracle"
	"supg/internal/parallel"
	"supg/internal/query"
	"supg/internal/randx"
	"supg/internal/storage"
)

// ErrUnknownTable is the sentinel wrapped into every "no such table"
// error; callers route on it with errors.Is instead of matching
// message text.
var ErrUnknownTable = errors.New("unknown table")

// OracleUDF is a user-provided ground-truth predicate over record ids.
type OracleUDF func(record int) (bool, error)

// ProxyUDF is a user-provided proxy scorer over record ids; scores must
// be in [0, 1].
type ProxyUDF func(record int) float64

// indexKey identifies one cached per-table score-source index. source
// is query.ScoreSource.CacheKey: the bare proxy name for single-proxy
// sources (byte-compatible with the historical per-proxy cache), the
// full fusion identity — strategy, member proxies, and for calibrated
// fusions the calibration budget and oracle UDF — otherwise.
type indexKey struct {
	table  string
	source string
}

// built is the output of one index build: the index itself plus the
// work accounting the building query reports.
type built struct {
	ix *index.ScoreIndex
	// proxyCalls is the number of proxy UDF evaluations performed
	// (members × records for fused sources).
	proxyCalls int
	// calibCalls / calibHits account the calibration labels of a
	// calibrated fusion: budget-consuming oracle calls and the subset
	// served by the cross-query label store.
	calibCalls int
	calibHits  int
}

// indexEntry is a lazily-built, shared ScoreIndex. The sync.Once makes
// concurrent first queries of the same (table, source) pair build the
// index exactly once while the others wait for it. The build closure
// snapshots the table, member proxies, and (for calibrated fusions)
// the oracle and label-store handle under the same lock that publishes
// the entry into the cache, so an entry can never be built from
// registrations older than the ones its cache slot represents (a later
// re-registration deletes the slot, and the next query snapshots fresh
// state). An append publishes a new entry whose closure chains on the
// replaced one, indexing only the appended records.
//
// The proxies/fusion/calibOracle fields are immutable invalidation
// metadata: re-registering any member proxy drops the entry, and
// re-registering (or wrapping) the calibration oracle drops every
// fused index whose stacker was fitted with its labels.
type indexEntry struct {
	// build produces the index plus its work accounting. Set at entry
	// creation, run at most once via ensure.
	build func() (built, error)

	proxies     []string         // member proxy UDFs, in source order
	fusion      query.FusionKind // FusionNone for single-proxy entries
	calibOracle string           // oracle UDF a calibrated fusion was fitted with ("" otherwise)

	// recovered marks an entry adopted from the durable storage tier:
	// its build verifies (or append-extends) a persisted index instead
	// of scanning proxies. epoch is the table's invalidation epoch at
	// entry creation; a flush with a stale epoch abandons itself. See
	// persist.go.
	recovered bool
	epoch     uint64

	once    sync.Once
	res     built
	err     error
	elapsed time.Duration // wall time of the proxy scan + fusion + index build
}

// ensure runs the entry's build exactly once (concurrent callers wait)
// and reports whether this call performed it.
func (en *indexEntry) ensure() bool {
	ran := false
	en.once.Do(func() {
		ran = true
		start := time.Now()
		en.res, en.err = en.build()
		en.elapsed = time.Since(start)
		// Release the closure: an append entry's build holds the whole
		// parent-entry chain (old indexes, captured datasets), which
		// must not stay reachable once this index is published.
		en.build = nil
	})
	return ran
}

// usesProxy reports whether the entry's source reads the named proxy.
func (en *indexEntry) usesProxy(name string) bool {
	for _, p := range en.proxies {
		if p == name {
			return true
		}
	}
	return false
}

// Options tune index construction for all tables of an engine. The
// zero value selects the index package defaults.
type Options struct {
	// SegmentSize is the records-per-segment of every built score index
	// (<= 0 selects index.DefaultSegmentSize). Smaller segments mean
	// finer-grained parallel builds and cheaper appends; results are
	// identical at every setting.
	SegmentSize int
	// BuildParallelism bounds concurrent segment builds per index
	// (<= 0 selects GOMAXPROCS).
	BuildParallelism int
	// Quantize builds every score index with 16-bit quantized score
	// codes (index.Options.Quantize): scans and binary searches run over
	// 2-byte codes with exact-float tie-breaking at bucket boundaries,
	// so results stay byte-identical while scan memory traffic drops
	// ~4x. Persisted quantized indexes carry their code vectors to disk
	// and recover without recomputation.
	Quantize bool
	// QueryParallelism bounds the intra-query parallel segment
	// reductions — threshold counts, id gathers, and mixture builds —
	// across ALL concurrent queries of this engine: one shared
	// parallel.Pool hands out at most QueryParallelism-1 helper
	// goroutines engine-wide, and every query's submitting goroutine
	// always participates, so queries degrade to sequential instead of
	// queueing. <= 0 selects GOMAXPROCS; 1 disables intra-query
	// parallelism. Results are byte-identical at every setting — only
	// RNG-free, order-independent phases fan out.
	QueryParallelism int
	// LabelCacheBytes bounds the cross-query oracle label store shared
	// by every query and job of this engine (0 selects
	// labelstore.DefaultMaxBytes; negative disables label reuse
	// entirely). In the default charged mode the store changes only the
	// inner oracle's call count, never query results.
	LabelCacheBytes int64
	// LabelCacheShards is the label store's shard count per (table,
	// oracle) pair (<= 0 selects labelstore.DefaultShards).
	LabelCacheShards int
	// LabelWALPath, when non-empty, makes the label store crash-durable:
	// bought labels are journaled to a write-ahead log at this path and
	// replayed on Open, so a restarted process re-buys zero labels. See
	// labelstore.Options.WALPath. Ignored when the label store is
	// disabled.
	LabelWALPath string
	// LabelWALSyncEvery is the WAL fsync cadence (0 or 1 = every record).
	LabelWALSyncEvery int
	// OracleTimeout bounds one oracle UDF attempt's wall-clock time
	// (0 = unbounded). A timed-out attempt counts as a transient failure
	// and is retried; the oracle UDF must be goroutine-safe when a
	// timeout is set.
	OracleTimeout time.Duration
	// OracleRetries is how many times a transient oracle failure is
	// re-attempted after the first try (0 = fail on first error).
	// Retries never change results: labels are a pure function of the
	// record index, so an eventually-successful call yields exactly the
	// fault-free label and the budget wrapper never sees the failed
	// attempts.
	OracleRetries int
	// OracleBackoff is the base delay before the first retry, doubling
	// per further retry with deterministic jitter (0 = 10ms). Tests use
	// tiny values to keep chaos batteries fast.
	OracleBackoff time.Duration
	// BreakerThreshold is the number of consecutive finally-failed
	// oracle calls (retries exhausted) that trips the per-oracle circuit
	// breaker open (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening for a probe (0 = 1s).
	BreakerCooldown time.Duration
	// Clock overrides the resilience layer's time source (nil = real
	// time) — tests inject oracle.ManualClock to run retry/backoff and
	// breaker cooldown schedules without sleeping.
	Clock oracle.Clock
	// PersistDir, when non-empty, enables the durable storage tier:
	// registered datasets and built score indexes are flushed to this
	// directory and recovered on Open — mmap'd back into segment views
	// with zero proxy UDF calls and zero permutation sorts, answering
	// queries byte-identically to the pre-restart process. See
	// internal/storage.
	PersistDir string
	// PersistNoMmap forces heap loads with portable decoding even on
	// platforms that support zero-copy mapping.
	PersistNoMmap bool
	// PersistMadvise optionally hints mapped-file residency: "",
	// "normal", "random", "sequential", or "willneed".
	PersistMadvise string
}

// resilienceEnabled reports whether queries should stack the Resilient
// wrapper onto the oracle UDF.
func (o Options) resilienceEnabled() bool {
	return o.OracleTimeout > 0 || o.OracleRetries > 0
}

// Engine holds the catalog of tables, the UDF registry, and the cache
// of per-(table, proxy) score indexes.
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*dataset.Dataset
	oracles map[string]OracleUDF
	proxies map[string]ProxyUDF
	indexes map[indexKey]*indexEntry
	// refs backs the dataset-default UDFs (RegisterDatasetDefaults):
	// the closures read the current dataset through the pointer, so
	// AppendTable can extend their domain in place. Re-registration
	// installs a fresh pointer, leaving in-flight builds reading the
	// old snapshot — never torn data.
	refs   map[string]*atomic.Pointer[dataset.Dataset]
	seed   uint64
	ixOpts index.Options
	opts   Options
	// labels is the cross-query oracle label store (nil when disabled).
	// It is invalidated on table/oracle re-registration and survives
	// AppendTable: appends never change existing record ids or labels.
	labels *labelstore.Store
	// breakers holds one circuit breaker per oracle UDF name, created
	// lazily and shared by every query of the backend (guarded by mu).
	breakers map[string]*oracle.Breaker
	// counters receives breaker transitions and retry/timeout activity
	// (nil until WithCounters).
	counters atomic.Pointer[metrics.Counters]
	// store is the durable storage tier (nil when Options.PersistDir is
	// empty). staged / stagedIx hold its recovered datasets and indexes
	// until the registrations they depend on arrive (guarded by mu);
	// see persist.go.
	store    *storage.Store
	staged   map[string]stagedTable
	stagedIx map[indexKey]*stagedIndex
}

// New returns an empty engine whose query randomness derives from seed.
func New(seed uint64) *Engine {
	return NewWithOptions(seed, Options{})
}

// NewWithOptions is New with explicit index-construction, label-store,
// and resilience tuning. It panics if the configured label WAL cannot
// be opened — only reachable when Options.LabelWALPath is set; callers
// configuring a WAL should prefer Open and handle the error.
func NewWithOptions(seed uint64, opts Options) *Engine {
	e, err := Open(seed, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Open is NewWithOptions with the label WAL's open/replay error
// surfaced instead of panicking.
func Open(seed uint64, opts Options) (*Engine, error) {
	var labels *labelstore.Store
	if opts.LabelCacheBytes >= 0 {
		var err error
		labels, err = labelstore.Open(labelstore.Options{
			MaxBytes:     opts.LabelCacheBytes,
			Shards:       opts.LabelCacheShards,
			WALPath:      opts.LabelWALPath,
			WALSyncEvery: opts.LabelWALSyncEvery,
		})
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		tables:  make(map[string]*dataset.Dataset),
		oracles: make(map[string]OracleUDF),
		proxies: make(map[string]ProxyUDF),
		indexes: make(map[indexKey]*indexEntry),
		refs:    make(map[string]*atomic.Pointer[dataset.Dataset]),
		seed:    seed,
		ixOpts: index.Options{
			SegmentSize: opts.SegmentSize,
			Parallelism: opts.BuildParallelism,
			Quantize:    opts.Quantize,
			QueryPool:   parallel.NewPool(opts.QueryParallelism),
		},
		opts:     opts,
		labels:   labels,
		breakers: make(map[string]*oracle.Breaker),
		staged:   make(map[string]stagedTable),
		stagedIx: make(map[indexKey]*stagedIndex),
	}
	if err := e.openStorage(opts); err != nil {
		labels.Close()
		return nil, err
	}
	return e, nil
}

// Close flushes and closes the label store's write-ahead log and the
// durable storage tier, if configured. Nil-safe and idempotent.
func (e *Engine) Close() error {
	if e == nil {
		return nil
	}
	err := e.labels.Close()
	if e.store != nil {
		if cerr := e.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WithCounters mirrors breaker transitions and retry/timeout activity
// into the service counters. Attach before serving queries — breakers
// created earlier keep a nil counter set. Returns e for chaining.
func (e *Engine) WithCounters(c *metrics.Counters) *Engine {
	if e != nil {
		e.counters.Store(c)
		if e.store != nil && c != nil {
			e.store.WithCounters(c)
		}
	}
	return e
}

// LabelStore exposes the engine's cross-query oracle label store (nil
// when disabled via Options.LabelCacheBytes < 0) — for stats, counter
// attachment, and tests.
func (e *Engine) LabelStore() *labelstore.Store { return e.labels }

// breakerFor returns the circuit breaker shared by every query of the
// named oracle UDF, creating it on first use. Returns nil (allow
// everything) when resilience is not configured.
func (e *Engine) breakerFor(name string) *oracle.Breaker {
	if !e.opts.resilienceEnabled() {
		return nil
	}
	e.mu.RLock()
	b := e.breakers[name]
	e.mu.RUnlock()
	if b != nil {
		return b
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if b = e.breakers[name]; b != nil {
		return b
	}
	b = oracle.NewBreaker(oracle.BreakerOptions{
		Threshold: e.opts.BreakerThreshold,
		Cooldown:  e.opts.BreakerCooldown,
		Clock:     e.opts.Clock,
	}).WithCounters(e.counters.Load())
	e.breakers[name] = b
	return b
}

// Breaker exposes the named oracle's circuit breaker (nil when the
// oracle has never been queried under a resilience configuration) —
// for stats, readiness checks, and tests.
func (e *Engine) Breaker(name string) *oracle.Breaker {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.breakers[name]
}

// OpenBreakers reports how many oracle circuit breakers are currently
// not closed — the readiness signal surfaced by GET /readyz.
func (e *Engine) OpenBreakers() int {
	e.mu.RLock()
	breakers := make([]*oracle.Breaker, 0, len(e.breakers))
	for _, b := range e.breakers {
		breakers = append(breakers, b)
	}
	e.mu.RUnlock()
	n := 0
	for _, b := range breakers {
		if b.State() != oracle.BreakerClosed {
			n++
		}
	}
	return n
}

// RegisterTable adds a dataset under the given table name, invalidating
// any cached indexes and stored oracle labels built over a previous
// registration of the name. The label store is invalidated only on
// RE-registration (the name was already registered in this process):
// the first registration after boot is loading, not superseding, so
// labels replayed from the write-ahead log survive it — a restarted
// server that loads the same datasets re-buys zero labels. Operators
// re-registering a table with *different* data after a restart get the
// invalidation at that (second) registration, exactly as in-process.
func (e *Engine) RegisterTable(name string, d *dataset.Dataset) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, existed := e.tables[name]
	e.tables[name] = d
	delete(e.refs, name) // a direct registration detaches default UDF refs
	for k := range e.indexes {
		if k.table == name {
			delete(e.indexes, k)
		}
	}
	if existed {
		e.labels.InvalidateTable(name)
	}
	// The durable tier mirrors the label store's first-registration
	// rule: a fresh boot loading a recovered dataset adopts the on-disk
	// state; a re-registration (or different content) tombstones and
	// rewrites it.
	e.persistTableLocked(name, d, existed)
}

// AppendTable atomically extends table name with extra's records,
// which take the ids [old len, new len). Unlike re-registration, every
// cached index of the table survives: its slot is republished as an
// incremental entry that — on next use — evaluates the proxy over only
// the appended records and merges them into the existing index as a
// fresh segment, instead of re-scanning and re-sorting the whole
// table. Stored oracle labels likewise survive: existing ids keep
// their records and labels, so the label store extends naturally as
// the new ids get labeled. Registered UDFs must accept the extended
// id range; the
// dataset-default UDFs (RegisterDatasetDefaults) are extended
// automatically. The combined dataset is returned.
func (e *Engine) AppendTable(name string, extra *dataset.Dataset) (*dataset.Dataset, error) {
	if extra == nil || extra.Len() == 0 {
		return nil, fmt.Errorf("engine: empty append to table %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: %w %q (known: %v)", ErrUnknownTable, name, e.tableNamesLocked())
	}
	combined := old.Append(extra)
	e.tables[name] = combined
	if ref, ok := e.refs[name]; ok {
		// Extend the default UDFs' domain. Scores and labels of existing
		// ids are value-identical in the combined dataset, so in-flight
		// index builds reading through the pointer cannot observe torn
		// state.
		ref.Store(combined)
	}
	// Persist the grown dataset. Index records are left alone: lineages
	// survive appends, and each index re-flushes its extended form after
	// its next build.
	e.persistDataset(name, combined)
	oldLen, newLen := old.Len(), combined.Len()
	for key, parent := range e.indexes {
		if key.table != name {
			continue
		}
		// Calibrated fusions cannot extend incrementally: the stacker is
		// fitted on a uniform sample of the whole table, so an append
		// changes the population it must be calibrated against. Drop the
		// entry — the next query rebuilds and recalibrates, and its
		// labels come warm out of the cross-query label store.
		if parent.fusion.Calibrated() {
			delete(e.indexes, key)
			e.dropIndexDurably(key)
			continue
		}
		fns := make([]ProxyUDF, len(parent.proxies))
		ok := true
		for i, p := range parent.proxies {
			if fns[i], ok = e.proxies[p]; !ok {
				break
			}
		}
		if !ok {
			delete(e.indexes, key)
			e.dropIndexDurably(key)
			continue
		}
		key, parent := key, parent
		fusion := parent.fusion
		e.indexes[key] = &indexEntry{
			proxies: parent.proxies,
			fusion:  fusion,
			epoch:   e.storeEpoch(name),
			build: func() (built, error) {
				var b built
				if parent.ensure() {
					b.proxyCalls += parent.res.proxyCalls
				}
				if parent.err != nil {
					return b, parent.err
				}
				fresh, err := fuseRange(fns, fusion, oldLen, newLen)
				if err != nil {
					return b, fmt.Errorf("engine: source %q: %w", key.source, err)
				}
				b.proxyCalls += len(fns) * (newLen - oldLen)
				ix, err := parent.res.ix.Append(fresh)
				if err != nil {
					return b, fmt.Errorf("engine: source %q: %w", key.source, err)
				}
				b.ix = ix
				return b, nil
			},
		}
	}
	return combined, nil
}

// fuseRange evaluates every member proxy over records [lo, hi) and
// fuses the columns with the label-free strategy (FusionNone passes the
// single column through). Label-free fusions are per-record functions,
// which is what makes incremental appends possible: fusing only the
// appended rows yields exactly the rows a full rebuild would compute.
func fuseRange(fns []ProxyUDF, fusion query.FusionKind, lo, hi int) ([]float64, error) {
	cols := make([][]float64, len(fns))
	for i, fn := range fns {
		cols[i] = scoreRange(fn, lo, hi)
	}
	if fusion == query.FusionNone {
		return cols[0], nil
	}
	fuser, err := fuserFor(fusion, 0)
	if err != nil {
		return nil, err
	}
	fused, err := fuser.Fuse(nil, cols, nil)
	if err != nil {
		return nil, err
	}
	return fused.Scores, nil
}

// fuserFor maps the grammar's fusion kind onto the multiproxy provider.
func fuserFor(fusion query.FusionKind, calibBudget int) (multiproxy.Fuser, error) {
	switch fusion {
	case query.FusionMean:
		return multiproxy.Fuser{Kind: multiproxy.FuseMean}, nil
	case query.FusionMax:
		return multiproxy.Fuser{Kind: multiproxy.FuseMax}, nil
	case query.FusionLogistic:
		return multiproxy.Fuser{Kind: multiproxy.FuseLogistic, CalibrationBudget: calibBudget}, nil
	}
	return multiproxy.Fuser{}, fmt.Errorf("engine: unknown fusion %v", fusion)
}

// RegisterOracle adds an oracle UDF under the given function name,
// invalidating any stored labels bought from a previous registration
// and any fused index whose calibration was fitted with its labels.
// As with RegisterTable, the invalidation fires only on
// RE-registration, so WAL-replayed labels survive the first
// registration after a restart.
func (e *Engine) RegisterOracle(name string, fn OracleUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, existed := e.oracles[name]
	e.oracles[name] = fn
	if existed {
		e.invalidateOracleLocked(name)
	}
}

// RegisterProxy adds a proxy UDF under the given function name,
// invalidating any cached index built from a previous registration —
// including every fused index the name is a member of.
func (e *Engine) RegisterProxy(name string, fn ProxyUDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, existed := e.proxies[name]
	e.proxies[name] = fn
	for k, en := range e.indexes {
		if en.usesProxy(name) {
			delete(e.indexes, k)
			e.dropIndexDurably(k)
		}
	}
	// Staged recovered indexes follow the first-registration rule: the
	// first RegisterProxy after boot is loading the UDF the index was
	// built from, not superseding it. (In-memory entries need no such
	// guard — they can only exist if the proxy was already registered.)
	if existed {
		for k, si := range e.stagedIx {
			if si.usesProxy(name) {
				delete(e.stagedIx, k)
				e.dropIndexDurably(k)
			}
		}
	}
}

// WrapOracle replaces a registered oracle UDF with wrap(current) — the
// hook for layering simulated latency or instrumentation onto an
// existing registration without re-implementing it. It reports whether
// the name was registered. Stored labels of the name are invalidated —
// the wrapper may change what the function answers — and with them
// every fused index calibrated through it.
func (e *Engine) WrapOracle(name string, wrap func(OracleUDF) OracleUDF) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn, ok := e.oracles[name]
	if !ok {
		return false
	}
	e.oracles[name] = wrap(fn)
	e.invalidateOracleLocked(name)
	return true
}

// invalidateOracleLocked drops everything derived from labels of the
// named oracle: the label store's cache and every index whose fused
// column was calibrated with it. Callers hold e.mu.
func (e *Engine) invalidateOracleLocked(name string) {
	e.labels.InvalidateOracle(name)
	for k, en := range e.indexes {
		if en.calibOracle == name {
			delete(e.indexes, k)
			e.dropIndexDurably(k)
		}
	}
	for k, si := range e.stagedIx {
		if si.calibOracle == name {
			delete(e.stagedIx, k)
			e.dropIndexDurably(k)
		}
	}
}

// RegisterDatasetDefaults registers table name plus "<name>_oracle" and
// "<name>_proxy" UDFs backed by the dataset's own labels and scores —
// the common simulation path. The UDFs read the dataset through an
// indirection the engine updates on AppendTable, so appended records
// are scorable and labelable without re-registering (which would
// invalidate cached indexes). Re-registering defaults installs a fresh
// indirection: queries already building against the old registration
// keep reading the old snapshot.
func (e *Engine) RegisterDatasetDefaults(name string, d *dataset.Dataset) {
	ref := &atomic.Pointer[dataset.Dataset]{}
	ref.Store(d)
	oracleName, proxyName := name+"_oracle", name+"_proxy"
	// One critical section for table, UDFs, ref, and invalidation: a
	// concurrent AppendTable interleaving between the steps could
	// otherwise extend the table without extending the ref the UDFs
	// read, and the next proxy scan would index out of range.
	e.mu.Lock()
	defer e.mu.Unlock()
	_, tableExisted := e.tables[name]
	_, oracleExisted := e.oracles[oracleName]
	_, proxyExisted := e.proxies[proxyName]
	e.tables[name] = d
	e.oracles[oracleName] = func(i int) (bool, error) {
		cur := ref.Load()
		if i < 0 || i >= cur.Len() {
			return false, fmt.Errorf("engine: record %d out of range", i)
		}
		return cur.TrueLabel(i), nil
	}
	e.proxies[proxyName] = func(i int) float64 { return ref.Load().Score(i) }
	e.refs[name] = ref
	for k, en := range e.indexes {
		if k.table == name || en.usesProxy(proxyName) || en.calibOracle == oracleName {
			delete(e.indexes, k)
			if k.table != name {
				// Same-table drops are tombstoned wholesale by
				// persistTableLocked below (when not adopting).
				e.dropIndexDurably(k)
			}
		}
	}
	// Invalidate only on re-registration (see RegisterTable): a fresh
	// boot loading the same dataset keeps every WAL-replayed label.
	if tableExisted {
		e.labels.InvalidateTable(name)
	}
	if oracleExisted {
		e.labels.InvalidateOracle(oracleName)
	}
	if proxyExisted || oracleExisted {
		for k, si := range e.stagedIx {
			if (proxyExisted && si.usesProxy(proxyName)) || (oracleExisted && si.calibOracle == oracleName) {
				delete(e.stagedIx, k)
				e.dropIndexDurably(k)
			}
		}
	}
	e.persistTableLocked(name, d, tableExisted)
}

// QueryResult is the engine-level answer with execution statistics.
type QueryResult struct {
	// Indices is the sorted returned record set.
	Indices []int
	// Tau is the chosen proxy threshold (Inf = sample positives only).
	Tau float64
	// OracleCalls counts budget-consuming oracle invocations.
	OracleCalls int
	// ProxyCalls counts proxy evaluations performed by this query:
	// members × |D| when the query built the table's score-source index
	// from scratch, only the appended records when it extended an index
	// after AppendTable, and 0 when a cached index was reused.
	ProxyCalls int
	// IndexBuilt reports whether this query performed the proxy scan,
	// fusion, and index construction (the first query of a
	// table/score-source pair).
	IndexBuilt bool
	// IndexRecovered reports that this query was the first of its
	// (table, score source) pair and its index came from the durable
	// storage tier instead of a build: zero sorts, and zero proxy calls
	// unless the table grew since the flush (then ProxyCalls covers
	// exactly the appended tail).
	IndexRecovered bool
	// Fusion names the score source's fusion strategy ("mean", "max",
	// "logistic"; empty for the classic single-proxy form).
	Fusion string
	// CalibrationCalls counts the budget-consuming oracle calls spent
	// calibrating a fused index when this query built it (0 on cache
	// hits and for label-free sources). Calibration is charged to index
	// construction — not to the query's ORACLE LIMIT — and amortized
	// across every query sharing the fused index.
	CalibrationCalls int
	// CalibrationCacheHits counts the calibration labels served by the
	// cross-query label store instead of the oracle UDF: a warm
	// recalibration reports CalibrationCalls == CalibrationCacheHits
	// and costs zero real oracle invocations.
	CalibrationCacheHits int
	// LabelCacheHits counts labels served from the cross-query label
	// store instead of the oracle UDF. In the default charged mode they
	// are included in OracleCalls (budget accounting is unchanged); in
	// reuse-free mode they are free.
	LabelCacheHits int
	// Elapsed covers planning through result assembly.
	Elapsed time.Duration
	// ProxyElapsed covers the upfront proxy scan and index build when
	// this query performed it (see IndexBuilt).
	ProxyElapsed time.Duration
	// Plan echoes the executed plan.
	Plan *query.Plan
}

// ExecOptions tune one query execution. The zero value runs the query
// synchronously with a sequential oracle, exactly as ExecutePlan always
// has.
type ExecOptions struct {
	// OracleParallelism bounds the number of concurrent oracle UDF
	// invocations per labeling batch (<= 1 labels sequentially). The
	// oracle UDF must be goroutine-safe when parallelism > 1. Results
	// are independent of the setting: draws are made before labeling,
	// and batch labels are merged back in draw order.
	OracleParallelism int
	// Progress, when non-nil, receives the cumulative count of
	// budget-consuming oracle calls as the query runs. It may be invoked
	// from multiple goroutines concurrently (under parallel dispatch)
	// and must be fast and goroutine-safe.
	Progress func(oracleCalls int)
	// Counters, when non-nil, records query and dispatch activity.
	Counters *metrics.Counters
	// FreeReuse makes cross-query label store hits free instead of
	// budget-charged for this execution — the ExecOptions form of the
	// query grammar's ORACLE LIMIT ... REUSE FREE clause. The default
	// (charged) mode keeps results byte-identical to a cold run; free
	// reuse stretches the effective sample size the budget buys.
	FreeReuse bool
}

// Execute parses, plans, and runs a SUPG statement.
func (e *Engine) Execute(sql string) (*QueryResult, error) {
	return e.ExecuteContext(context.Background(), sql, ExecOptions{})
}

// ExecuteContext parses, plans, and runs a SUPG statement with
// cancellation, oracle parallelism, and progress reporting.
func (e *Engine) ExecuteContext(ctx context.Context, sql string, opts ExecOptions) (*QueryResult, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := query.BuildPlan(q, query.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return e.ExecutePlanContext(ctx, plan, opts)
}

// ExecutePlan runs an already-built plan.
func (e *Engine) ExecutePlan(plan *query.Plan) (*QueryResult, error) {
	return e.ExecutePlanContext(context.Background(), plan, ExecOptions{})
}

// ExecutePlanContext runs an already-built plan under ctx: once ctx is
// done the query stops consuming oracle calls and returns ctx's error.
// See ExecOptions for parallel oracle dispatch and progress reporting.
func (e *Engine) ExecutePlanContext(ctx context.Context, plan *query.Plan, opts ExecOptions) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	_, okT := e.tables[plan.Table]
	oracleFn, okO := e.oracles[plan.OracleUDF]
	missingProxy := ""
	for _, p := range plan.Source.Proxies {
		if _, ok := e.proxies[p]; !ok {
			missingProxy = p
			break
		}
	}
	okP := missingProxy == "" && len(plan.Source.Proxies) > 0
	seed := e.seed
	// The label cache handle must be snapshotted under the same lock
	// that read oracleFn: invalidation (RegisterOracle et al.) replaces
	// the UDF and kills the cache atomically under e.mu, so pairing the
	// reads here guarantees a query can never write labels bought from
	// a superseded oracle into the replacement cache — a later
	// re-registration kills this handle, turning its writes into no-ops.
	var labelCache *labelstore.Cache
	if e.labels != nil && okT && okO {
		labelCache = e.labels.Cache(plan.Table, plan.OracleUDF)
	}
	e.mu.RUnlock()

	if !okT {
		return nil, fmt.Errorf("engine: %w %q (known: %v)", ErrUnknownTable, plan.Table, e.tableNames())
	}
	if !okO {
		return nil, fmt.Errorf("engine: unknown oracle UDF %q", plan.OracleUDF)
	}
	if !okP {
		return nil, fmt.Errorf("engine: unknown proxy UDF %q", missingProxy)
	}

	start := time.Now()
	// Stage 1 (§4.1): the proxy scan over the complete set of records,
	// performed once per (table, proxy) registration and indexed.
	entry, built, err := e.tableIndex(plan)
	if err != nil {
		return nil, err
	}

	rng := randx.New(seed).Stream(hashString(plan.SourceText))
	progress := newProgressCounter(opts.Progress)
	orc := e.buildOracle(ctx, plan, oracleFn, opts, progress)
	opts.Counters.QueryExecuted()

	// Wire the shared label store into the budget wrapper. The grammar's
	// REUSE FREE clause and the per-execution option are equivalent —
	// either makes warm hits free instead of budget-charged.
	var sopts core.SelectOptions
	if labelCache != nil {
		sopts.Store = labelCache
		sopts.FreeReuse = opts.FreeReuse || plan.FreeReuse
		if opts.Progress != nil {
			// Charged store hits never reach the counting wrapper below
			// the dispatcher, yet they consume budget; routing them
			// through the same cumulative counter keeps progress totals
			// equal to the result's OracleCalls (see Budgeted.Used).
			sopts.OnCachedCharge = progress.add
		}
	}

	res := &QueryResult{Plan: plan}
	if built {
		if entry.recovered {
			res.IndexRecovered = true
		} else {
			res.IndexBuilt = true
		}
	}
	if !plan.Source.Single() {
		res.Fusion = plan.Source.Fusion.String()
	}
	if built {
		res.ProxyCalls = entry.res.proxyCalls
		res.ProxyElapsed = entry.elapsed
		res.CalibrationCalls = entry.res.calibCalls
		res.CalibrationCacheHits = entry.res.calibHits
	}
	switch plan.Kind {
	case query.PlanBudgeted:
		sel, err := core.SelectFromContextOptions(ctx, rng, entry.res.ix, orc, plan.Spec, plan.Config, sopts)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
		res.LabelCacheHits = sel.CachedLabels
	case query.PlanJoint:
		sel, err := core.SelectJointFromContextOptions(ctx, rng, entry.res.ix, orc, plan.JointSpec, plan.Config, sopts)
		if err != nil {
			return nil, err
		}
		res.Indices = sel.Indices
		res.Tau = sel.Tau
		res.OracleCalls = sel.OracleCalls
		res.LabelCacheHits = sel.CachedLabels
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", int(plan.Kind))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildOracle stacks the execution options onto the raw oracle UDF.
// From the inside out: the resilience wrapper (per-attempt timeouts,
// retries with deterministic backoff jitter, the per-oracle shared
// circuit breaker) so a transient failure is retried for the failing
// record alone; the progress-counting wrapper, which therefore counts
// only finally-successful invocations; and, when parallelism is
// requested, the batch dispatcher that overlaps oracle latency across
// goroutines. The resilience jitter seed derives from the engine seed
// and the query text — a pure function, so a replayed query backs off
// on an identical schedule regardless of interleaving.
func (e *Engine) buildOracle(ctx context.Context, plan *query.Plan, fn OracleUDF, opts ExecOptions, progress *progressCounter) oracle.Oracle {
	var orc oracle.Oracle = oracle.Func(fn)
	if e.opts.resilienceEnabled() {
		counters := opts.Counters
		if counters == nil {
			counters = e.counters.Load()
		}
		orc = oracle.NewResilient(orc, oracle.ResilientOptions{
			Timeout:     e.opts.OracleTimeout,
			Retries:     e.opts.OracleRetries,
			BaseBackoff: e.opts.OracleBackoff,
			Seed:        e.seed ^ hashString("resilient:"+plan.SourceText),
			Clock:       e.opts.Clock,
		}).WithBreaker(e.breakerFor(plan.OracleUDF)).WithContext(ctx).WithCounters(counters)
	}
	if opts.Progress != nil {
		orc = &countingOracle{inner: orc, progress: progress}
	}
	if opts.OracleParallelism > 1 {
		orc = oracle.NewDispatcher(orc, opts.OracleParallelism).WithCounters(opts.Counters)
	}
	return orc
}

// progressCounter accumulates budget-consuming oracle calls from both
// sources — real UDF invocations (via countingOracle) and charged
// label-store hits (via the Budgeted charge hook) — into one
// cumulative total for the progress hook, so progress reports always
// agree with the result's OracleCalls. Nil-safe: a nil counter or nil
// hook records nothing.
type progressCounter struct {
	calls atomic.Int64
	hook  func(int)
}

func newProgressCounter(hook func(int)) *progressCounter {
	return &progressCounter{hook: hook}
}

func (p *progressCounter) add(n int) {
	if p == nil || p.hook == nil {
		return
	}
	p.hook(int(p.calls.Add(int64(n))))
}

// countingOracle reports successful oracle invocations to the shared
// progress counter. It sits below the budget wrapper, so every counted
// call is budget-consuming (memoized repeats and store hits never
// reach it), and below the dispatcher, so counts arrive as calls
// complete.
type countingOracle struct {
	inner    oracle.Oracle
	progress *progressCounter
}

func (c *countingOracle) Label(i int) (bool, error) {
	v, err := c.inner.Label(i)
	if err == nil {
		c.progress.add(1)
	}
	return v, err
}

// tableIndex returns the shared ScoreIndex for the plan's (table,
// score source) pair, building it on first use. The second return
// reports whether this call performed the build. The current table,
// member proxy, and — for calibrated fusions — oracle and label-store
// registrations are captured (into the build closure) under the write
// lock that publishes the entry, so a concurrent re-registration
// either deletes the slot before publication (the build sees the new
// state) or after (the slot is gone and the next query snapshots
// afresh) — a cached index can never outlive the registrations it was
// built from. A build error is cached with the entry — the proxies are
// deterministic by contract and calibration randomness is derived from
// the engine seed plus the source identity, so retrying cannot succeed
// until a member registration changes (which drops the entry).
func (e *Engine) tableIndex(plan *query.Plan) (*indexEntry, bool, error) {
	key := indexKey{table: plan.Table, source: plan.Source.CacheKey(plan.OracleUDF)}
	e.mu.RLock()
	entry := e.indexes[key]
	e.mu.RUnlock()
	if entry == nil {
		e.mu.Lock()
		entry = e.indexes[key]
		if entry == nil {
			var err error
			entry, err = e.newIndexEntryLocked(key, plan)
			if err != nil {
				e.mu.Unlock()
				return nil, false, err
			}
			e.indexes[key] = entry
		}
		e.mu.Unlock()
	}
	built := entry.ensure()
	if entry.err != nil {
		return nil, built, entry.err
	}
	if built {
		// Flush the fresh index to the durable tier (off the engine
		// lock; no-op when persistence is off or the entry was recovered
		// whole from disk).
		e.persistIndex(key, entry)
	}
	return entry, built, nil
}

// newIndexEntryLocked snapshots the registrations the plan's score
// source reads and returns an unbuilt cache entry for it. Callers hold
// e.mu for writing.
func (e *Engine) newIndexEntryLocked(key indexKey, plan *query.Plan) (*indexEntry, error) {
	table, okT := e.tables[plan.Table]
	if !okT {
		return nil, fmt.Errorf("engine: table %q no longer registered", plan.Table)
	}
	src := plan.Source
	fns := make([]ProxyUDF, len(src.Proxies))
	for i, p := range src.Proxies {
		fn, ok := e.proxies[p]
		if !ok {
			return nil, fmt.Errorf("engine: table %q / proxy %q no longer registered", plan.Table, p)
		}
		fns[i] = fn
	}
	opts := e.ixOpts
	entry := &indexEntry{
		proxies: append([]string(nil), src.Proxies...),
		fusion:  src.Fusion,
		epoch:   e.storeEpoch(key.table),
	}

	// A staged recovered index for this exact (table, source) short-
	// circuits the build: the persisted permutation was verified at
	// boot, so the entry adopts it (whole, or as the base of an append
	// chain when the table grew since the flush).
	if adopted := e.adoptStagedLocked(key, src, table, fns); adopted != nil {
		entry.recovered = true
		entry.build = adopted
		if src.Fusion.Calibrated() {
			entry.calibOracle = plan.OracleUDF
		}
		return entry, nil
	}

	if src.Single() {
		proxyFn, proxyName := fns[0], src.Proxies[0]
		entry.build = func() (built, error) {
			scores := scoreRange(proxyFn, 0, table.Len())
			ix, err := index.NewWithOptions(scores, opts)
			if err != nil {
				return built{proxyCalls: table.Len()}, fmt.Errorf("engine: proxy %q: %w", proxyName, err)
			}
			return built{ix: ix, proxyCalls: table.Len()}, nil
		}
		return entry, nil
	}

	fuser, err := fuserFor(src.Fusion, src.CalibrationBudget)
	if err != nil {
		return nil, err
	}
	// Calibrated fusions label their calibration sample through a
	// dedicated budgeted oracle backed by the cross-query label store:
	// the first build pays real oracle calls, and any rebuild of the
	// same source (after a proxy re-registration or an append) is served
	// warm. The calibration random stream derives from the engine seed
	// and the source identity — never from the query text — so every
	// query of the source shares one fused column.
	var (
		oracleFn   OracleUDF
		labelCache *labelstore.Cache
		seed       = e.seed
	)
	if src.Fusion.Calibrated() {
		var okO bool
		oracleFn, okO = e.oracles[plan.OracleUDF]
		if !okO {
			return nil, fmt.Errorf("engine: oracle UDF %q no longer registered", plan.OracleUDF)
		}
		entry.calibOracle = plan.OracleUDF
		if e.labels != nil {
			labelCache = e.labels.Cache(plan.Table, plan.OracleUDF)
		}
	}
	sourceID := key.source
	entry.build = func() (built, error) {
		n := table.Len()
		cols := make([][]float64, len(fns))
		for i, fn := range fns {
			cols[i] = scoreRange(fn, 0, n)
		}
		b := built{proxyCalls: len(fns) * n}
		var budgeted *oracle.Budgeted
		if fuser.NeedsOracle() {
			budgeted = oracle.NewBudgeted(oracle.Func(oracleFn), fuser.CalibrationBudget)
			if labelCache != nil {
				// Guard before the interface conversion: a typed-nil
				// *labelstore.Cache would defeat WithStore's nil check and
				// panic on first use when the label store is disabled.
				budgeted.WithStore(labelCache, false)
			}
		}
		rng := randx.New(seed).Stream(hashString("calibrate:" + sourceID))
		fused, err := fuser.Fuse(rng, cols, budgeted)
		if err != nil {
			return b, fmt.Errorf("engine: source %q: %w", sourceID, err)
		}
		b.calibCalls = fused.CalibrationCalls
		b.calibHits = fused.CalibrationStoreHits
		ix, err := index.NewWithOptions(fused.Scores, opts)
		if err != nil {
			return b, fmt.Errorf("engine: source %q: %w", sourceID, err)
		}
		b.ix = ix
		return b, nil
	}
	return entry, nil
}

// scoreAll evaluates the proxy over all records, in parallel shards.
func scoreAll(proxyFn ProxyUDF, n int) []float64 {
	return scoreRange(proxyFn, 0, n)
}

// scoreRange evaluates the proxy over records [lo, hi), in parallel
// shards, returning the hi-lo scores in record order.
func scoreRange(proxyFn ProxyUDF, lo, hi int) []float64 {
	n := hi - lo
	scores := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				scores[i] = proxyFn(lo + i)
			}
		}(start, end)
	}
	wg.Wait()
	return scores
}

func (e *Engine) tableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tableNamesLocked()
}

// tableNamesLocked is tableNames for callers already holding e.mu.
func (e *Engine) tableNamesLocked() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashString is FNV-1a, used to derive per-query random streams.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
