package engine

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"supg/internal/dataset"
	"supg/internal/index"
	"supg/internal/randx"
)

const persistTestSQL = `SELECT * FROM t WHERE o(x) ORACLE LIMIT 500 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`

// persistEngine opens an engine over dir with a counting proxy
// registered for dataset d.
func persistEngine(t *testing.T, dir string, d *dataset.Dataset, proxyCalls *int) *Engine {
	t.Helper()
	e, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.RegisterTable("t", d)
	e.RegisterOracle("o", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	var mu sync.Mutex
	e.RegisterProxy("p", func(i int) float64 {
		mu.Lock()
		*proxyCalls++
		mu.Unlock()
		return d.Score(i)
	})
	return e
}

func assertSameResult(t *testing.T, want, got *QueryResult) {
	t.Helper()
	if got.Tau != want.Tau {
		t.Fatalf("tau %v, want %v", got.Tau, want.Tau)
	}
	if got.OracleCalls != want.OracleCalls {
		t.Fatalf("oracle calls %d, want %d", got.OracleCalls, want.OracleCalls)
	}
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("%d records, want %d", len(got.Indices), len(want.Indices))
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("record %d: %d, want %d", i, got.Indices[i], want.Indices[i])
		}
	}
}

// TestEngineRestartZeroRescanRecovery is the engine-level acceptance
// test for the durable storage tier: after a kill-and-restart, the
// first query adopts the persisted index with ZERO proxy UDF calls and
// ZERO permutation sorts, and answers byte-identically.
func TestEngineRestartZeroRescanRecovery(t *testing.T) {
	dir := t.TempDir()
	d := dataset.Beta(randx.New(31), 20000, 0.01, 2)

	var calls1 int
	e1 := persistEngine(t, dir, d, &calls1)
	cold, err := e1.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.IndexBuilt || calls1 != d.Len() {
		t.Fatalf("cold query: IndexBuilt=%v proxy calls=%d", cold.IndexBuilt, calls1)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: register identical CONTENT under a different pointer, so
	// adoption goes through the CRC match, as it would across processes.
	var calls2 int
	sortsBefore := index.BuildSortsTotal()
	e2 := persistEngine(t, dir, d.Clone(), &calls2)
	info, ok := e2.RecoveryInfo()
	if !ok || info.Tables != 1 || info.Indexes != 1 {
		t.Fatalf("recovery info = %+v, %v", info, ok)
	}
	if len(info.Degraded) != 0 {
		t.Fatalf("recovery degraded: %v", info.Degraded)
	}
	warm, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if calls2 != 0 {
		t.Fatalf("restarted engine invoked the proxy UDF %d times, want 0", calls2)
	}
	if sorts := index.BuildSortsTotal() - sortsBefore; sorts != 0 {
		t.Fatalf("restarted engine performed %d permutation sorts, want 0", sorts)
	}
	if !warm.IndexRecovered || warm.IndexBuilt || warm.ProxyCalls != 0 {
		t.Fatalf("warm query: IndexRecovered=%v IndexBuilt=%v ProxyCalls=%d",
			warm.IndexRecovered, warm.IndexBuilt, warm.ProxyCalls)
	}
	assertSameResult(t, cold, warm)

	// Steady state: the adopted entry is a plain cache hit now.
	again, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if again.IndexRecovered || again.IndexBuilt || again.ProxyCalls != 0 {
		t.Fatalf("steady state: %+v", again)
	}
}

// TestRestartReRegistrationInvalidatesDurably: a proxy RE-registration
// after recovery must drop the staged index durably — neither this
// boot nor the next can serve the superseded permutation.
func TestRestartReRegistrationInvalidatesDurably(t *testing.T) {
	dir := t.TempDir()
	d := dataset.Beta(randx.New(32), 10000, 0.01, 2)

	var calls1 int
	e1 := persistEngine(t, dir, d, &calls1)
	if _, err := e1.Execute(persistTestSQL); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	var calls2 int
	e2 := persistEngine(t, dir, d, &calls2)
	// Second registration of "p" in this process: an UPDATE, not a load.
	e2.RegisterProxy("p", func(i int) float64 {
		calls2++
		return d.Score(i)
	})
	res, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexRecovered || !res.IndexBuilt || calls2 != d.Len() {
		t.Fatalf("re-registered proxy served recovered index: %+v (calls %d)", res, calls2)
	}
	e2.Close()

	// The rebuild was flushed, so the NEXT boot recovers the new index;
	// the old one is gone for good either way.
	var calls3 int
	e3 := persistEngine(t, dir, d, &calls3)
	res3, err := e3.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.IndexRecovered || calls3 != 0 {
		t.Fatalf("third boot: IndexRecovered=%v proxy calls=%d", res3.IndexRecovered, calls3)
	}
}

// TestRestartAppendChainsTail: when the table grew (AppendTable) after
// the last index flush, recovery adopts the persisted prefix and scores
// only the appended tail — and the chained result is byte-identical to
// a from-scratch build over the combined data.
func TestRestartAppendChainsTail(t *testing.T) {
	dir := t.TempDir()
	base := dataset.Beta(randx.New(33), 20000, 0.01, 2)
	extra := dataset.Beta(randx.New(34), 5000, 0.01, 2)

	e1, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	e1.RegisterDatasetDefaults("t", base)
	if _, err := e1.Execute(appendTestSQL); err != nil {
		t.Fatal(err)
	}
	// Grow the table but crash before any query flushes the extended
	// index: disk now has the combined dataset + the base-only index.
	if _, err := e1.AppendTable("t", extra); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recovered := e2.RecoveredDatasets()
	if len(recovered) != 1 || recovered[0].Len() != base.Len()+extra.Len() {
		t.Fatalf("recovered datasets: %d (len %d)", len(recovered), recovered[0].Len())
	}
	e2.RegisterDatasetDefaults("t", recovered[0])
	res, err := e2.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexRecovered || res.ProxyCalls != extra.Len() {
		t.Fatalf("chained recovery: IndexRecovered=%v ProxyCalls=%d, want tail of %d",
			res.IndexRecovered, res.ProxyCalls, extra.Len())
	}

	fresh := NewWithOptions(7, Options{SegmentSize: 4096})
	fresh.RegisterDatasetDefaults("t", base.Append(extra))
	want, err := fresh.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, res)

	// The chained flush made the extension durable: a third boot pays
	// nothing at all.
	e2.Close()
	e3, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	e3.RegisterDatasetDefaults("t", e3.RecoveredDatasets()[0])
	res3, err := e3.Execute(appendTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.IndexRecovered || res3.ProxyCalls != 0 {
		t.Fatalf("third boot: IndexRecovered=%v ProxyCalls=%d, want full adoption", res3.IndexRecovered, res3.ProxyCalls)
	}
}

// TestRestartCorruptSegmentRebuilds: a bit-flipped segment file must
// degrade recovery to a full rebuild with identical results — corrupt
// bytes are never served.
func TestRestartCorruptSegmentRebuilds(t *testing.T) {
	dir := t.TempDir()
	d := dataset.Beta(randx.New(35), 10000, 0.01, 2)

	var calls1 int
	e1 := persistEngine(t, dir, d, &calls1)
	cold, err := e1.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files persisted: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var calls2 int
	e2 := persistEngine(t, dir, d, &calls2)
	info, _ := e2.RecoveryInfo()
	if info.Indexes != 0 || len(info.Degraded) == 0 {
		t.Fatalf("corrupt segment not degraded: %+v", info)
	}
	if info.Tables != 1 {
		t.Fatalf("dataset lost with the corrupt segment: %+v", info)
	}
	warm, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.IndexBuilt || warm.IndexRecovered || calls2 != d.Len() {
		t.Fatalf("degraded boot must rebuild: IndexBuilt=%v IndexRecovered=%v calls=%d",
			warm.IndexBuilt, warm.IndexRecovered, calls2)
	}
	assertSameResult(t, cold, warm)
}

// TestRestartDifferentContentRewrites: registering DIFFERENT data under
// a recovered name must not adopt — the stale dataset and its indexes
// are dropped durably and the new content is persisted.
func TestRestartDifferentContentRewrites(t *testing.T) {
	dir := t.TempDir()
	d1 := dataset.Beta(randx.New(36), 8000, 0.01, 2)
	d2 := dataset.Beta(randx.New(37), 8000, 0.01, 2)

	var calls1 int
	e1 := persistEngine(t, dir, d1, &calls1)
	if _, err := e1.Execute(persistTestSQL); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	var calls2 int
	e2 := persistEngine(t, dir, d2, &calls2)
	res, err := e2.Execute(persistTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexRecovered || !res.IndexBuilt || calls2 != d2.Len() {
		t.Fatalf("stale index served for replaced content: %+v (calls %d)", res, calls2)
	}
	e2.Close()

	// The store now describes d2: the next boot recovers IT.
	e3, err := Open(7, Options{PersistDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	rec := e3.RecoveredDatasets()
	if len(rec) != 1 || rec[0].Score(0) != d2.Score(0) {
		t.Fatal("replacement content not persisted")
	}
}
